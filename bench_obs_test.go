// Observability-overhead benchmarks: the instrumentation threaded
// through the hot paths must be free when no registry is attached.
// BenchmarkObsOverhead/QueryDisabled is the acceptance gate: 0 allocs/op
// and within noise of the pre-instrumentation Oracle.Query. The Flat
// serving form carries the same contract, extended to the slow-query
// sampler hook: FlatQueryDisabled (no registry, no sampler) and
// FlatQuerySampled (registry + sampler attached) are both 0 allocs/op.
//
// TestEmitBenchObs (run with EMIT_BENCH_OBS=1) regenerates BENCH_obs.json,
// the committed metrics-on vs. metrics-off numbers for oracle build+query.
package pathsep_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
)

func buildObsOracle(tb testing.TB, reg *obs.Registry) (*oracle.Oracle, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r, Metrics: reg})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal, Metrics: reg})
	if err != nil {
		tb.Fatal(err)
	}
	return o, r.G.N()
}

func BenchmarkObsOverhead(b *testing.B) {
	b.Run("QueryDisabled", func(b *testing.B) {
		o, n := buildObsOracle(b, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Query(i%n, (i*31)%n)
		}
	})
	b.Run("QueryEnabled", func(b *testing.B) {
		reg := obs.New()
		o, n := buildObsOracle(b, reg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Query(i%n, (i*31)%n)
		}
	})
	b.Run("FlatQueryDisabled", func(b *testing.B) {
		fl, n := buildObsFlat(b, nil, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fl.Query(i%n, (i*31)%n)
		}
	})
	b.Run("FlatQuerySampled", func(b *testing.B) {
		fl, n := buildObsFlat(b, obs.New(), obs.NewSlowQuerySampler(16))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fl.Query(i%n, (i*31)%n)
		}
	})
}

// buildObsFlat freezes the benchmark oracle into its flat serving form
// with the given observability hooks attached (either may be nil).
func buildObsFlat(tb testing.TB, reg *obs.Registry, slow *obs.SlowQuerySampler) (*oracle.Flat, int) {
	tb.Helper()
	o, n := buildObsOracle(tb, nil)
	fl, err := o.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	if reg != nil {
		fl.SetMetrics(reg)
	}
	fl.SetSlowSampler(slow)
	return fl, n
}

// TestQueryDisabledZeroAllocs enforces the acceptance criterion directly:
// a query on an oracle with no registry attached must not allocate.
func TestQueryDisabledZeroAllocs(t *testing.T) {
	o, n := buildObsOracle(t, nil)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		o.Query(i%n, (i*31)%n)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Oracle.Query with metrics disabled: %v allocs/run, want 0", allocs)
	}
}

// TestFlatQueryZeroAllocs extends the acceptance criterion to the flat
// serving form and the slow-query sampler hook: Flat.Query must not
// allocate with observability fully disabled, and attaching a registry
// plus a sampler must not introduce allocations either.
func TestFlatQueryZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		reg  *obs.Registry
		slow *obs.SlowQuerySampler
	}{
		{"Disabled", nil, nil},
		{"Sampled", obs.New(), obs.NewSlowQuerySampler(16)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl, n := buildObsFlat(t, tc.reg, tc.slow)
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				fl.Query(i%n, (i*31)%n)
				i++
			})
			if allocs != 0 {
				t.Fatalf("Flat.Query (%s): %v allocs/run, want 0", tc.name, allocs)
			}
		})
	}
}

// TestEmitBenchObs writes BENCH_obs.json when EMIT_BENCH_OBS=1. It times
// oracle build and query with the registry attached and detached so the
// committed file documents the measured instrumentation overhead.
func TestEmitBenchObs(t *testing.T) {
	if os.Getenv("EMIT_BENCH_OBS") != "1" {
		t.Skip("set EMIT_BENCH_OBS=1 to regenerate BENCH_obs.json")
	}

	type row struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		N           int     `json:"iterations"`
	}
	out := map[string]row{}

	record := func(name string, fn func(b *testing.B)) row {
		res := testing.Benchmark(fn)
		r := row{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			N:           res.N,
		}
		out[name] = r
		return r
	}

	record("oracle_build_disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildObsOracle(b, nil)
		}
	})
	record("oracle_build_enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildObsOracle(b, obs.New())
		}
	})
	qd := record("oracle_query_disabled", func(b *testing.B) {
		o, n := buildObsOracle(b, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Query(i%n, (i*31)%n)
		}
	})
	record("oracle_query_enabled", func(b *testing.B) {
		o, n := buildObsOracle(b, obs.New())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Query(i%n, (i*31)%n)
		}
	})

	if qd.AllocsPerOp != 0 {
		t.Errorf("oracle_query_disabled allocates %d/op, want 0", qd.AllocsPerOp)
	}

	f, err := os.Create("BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_obs.json: %+v", out)
}
