// Serving benchmark gate: stand up the pathsepd engine in-process, drive
// it with the self-load client, and record QPS + latency percentiles in
// BENCH_serve.json.
//
// TestServeBenchGate (run with BENCH_SERVE_GATE=1, wired into make check
// via the bench-serve target) asserts the daemon actually answers load:
// nonzero single-query QPS, nonzero batched throughput, a recorded p99,
// and no request errors. The latency ceiling is deliberately generous
// (p99 < 250ms on a 64x64 grid) — it catches pathological regressions
// such as a lock on the query path, not machine-to-machine noise.
package pathsep_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
	"pathsep/internal/serve"
)

func TestServeBenchGate(t *testing.T) {
	if os.Getenv("BENCH_SERVE_GATE") != "1" {
		t.Skip("set BENCH_SERVE_GATE=1 to run the serving benchmark gate")
	}

	rng := rand.New(rand.NewSource(23))
	r := embed.Grid(64, 64, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	s, err := serve.New(serve.Config{
		Flat:   fl,
		Slow:   obs.NewSlowQuerySampler(16),
		Source: "bench:grid64",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	// Six image swaps fire mid-load (the same image re-posted: a full
	// decode + flip + drain each time), so BENCH_serve.json also records
	// what a zero-downtime reload costs under traffic.
	res, err := serve.LoadBenchReload("http://"+addr.String(), fl.N(), 2*time.Second, 4, 1024, 23, fl.Encode(), 6)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reloadP99 := int64(0)
	if res.ReloadP99Ns != nil {
		reloadP99 = *res.ReloadP99Ns
	}
	t.Logf("wrote BENCH_serve.json: qps=%.0f p50=%dns p99=%dns batch=%.0f pairs/s errors=%d reloads=%d reload_p99=%dns",
		res.QPS, res.P50Ns, res.P99Ns, res.BatchQPS, res.Errors, res.Reloads, reloadP99)

	if res.Errors != 0 {
		t.Fatalf("self-load produced %d request errors", res.Errors)
	}
	if res.Reloads < 1 || res.ReloadErrors != 0 {
		t.Fatalf("mid-load reloads: %d succeeded, %d failed; want >=1 and 0", res.Reloads, res.ReloadErrors)
	}
	if res.ReloadP50Ns == nil || res.ReloadP99Ns == nil || res.ReloadMaxNs == nil {
		t.Fatal("reload percentiles missing despite successful reloads")
	}
	if res.Requests == 0 || res.QPS <= 0 {
		t.Fatalf("single-query phase served no traffic: %+v", res)
	}
	if res.BatchPairs == 0 || res.BatchQPS <= 0 {
		t.Fatalf("batch phase served no traffic: %+v", res)
	}
	if res.P99Ns <= 0 || res.P99Ns > int64(250*time.Millisecond) {
		t.Fatalf("p99 latency %dns outside (0, 250ms]", res.P99Ns)
	}
}
