// Ablation benchmarks for the design choices DESIGN.md calls out:
// separator strategy (planar cycles vs center bag vs greedy on the same
// graphs), tree-decomposition heuristic, oracle mode, and portal density.
package pathsep_test

import (
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
	"pathsep/internal/routing"
	"pathsep/internal/treedecomp"
)

// Ablation A: strategy choice on the same planar graph. The planar
// strategy is the principled one; greedy is the fallback — compare both
// cost and resulting k.

func benchStrategyOnGrid(b *testing.B, strat core.Strategy, rot bool) {
	rng := rand.New(rand.NewSource(31))
	r := embed.Grid(24, 24, graph.UniformWeights(1, 4), rng)
	opt := core.Options{Strategy: strat}
	if rot {
		opt.Rot = r
	}
	b.ResetTimer()
	maxK := 0
	for i := 0; i < b.N; i++ {
		dec, err := core.Decompose(r.G, opt)
		if err != nil {
			b.Fatal(err)
		}
		maxK = dec.MaxK
	}
	b.ReportMetric(float64(maxK), "maxK")
}

func BenchmarkAblationStrategyPlanar(b *testing.B) {
	benchStrategyOnGrid(b, core.Planar{}, true)
}

func BenchmarkAblationStrategyGreedy(b *testing.B) {
	benchStrategyOnGrid(b, core.Greedy{}, false)
}

func BenchmarkAblationStrategyCenterBag(b *testing.B) {
	benchStrategyOnGrid(b, core.CenterBag{}, false)
}

// Ablation B: tree-decomposition heuristic (width vs time).

func benchHeuristic(b *testing.B, h treedecomp.Heuristic) {
	rng := rand.New(rand.NewSource(32))
	g := graph.PartialKTree(300, 4, 0.3, graph.UnitWeights(), rng)
	b.ResetTimer()
	width := 0
	for i := 0; i < b.N; i++ {
		width = treedecomp.Build(g, h).Width()
	}
	b.ReportMetric(float64(width), "width")
}

func BenchmarkAblationMinDegree(b *testing.B) { benchHeuristic(b, treedecomp.MinDegree) }
func BenchmarkAblationMinFill(b *testing.B)   { benchHeuristic(b, treedecomp.MinFill) }

// Ablation C: oracle mode (construction cost vs guarantee).

func benchOracleMode(b *testing.B, mode oracle.Mode) {
	rng := rand.New(rand.NewSource(33))
	r := embed.Grid(16, 16, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	space := 0
	for i := 0; i < b.N; i++ {
		o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		space = o.SpacePortals()
	}
	b.ReportMetric(float64(space), "spaceEntries")
}

func BenchmarkAblationOracleExact(b *testing.B)  { benchOracleMode(b, oracle.CoverExact) }
func BenchmarkAblationOraclePortal(b *testing.B) { benchOracleMode(b, oracle.CoverPortal) }

// Ablation D: routing portal density (table size vs stretch is reported
// by E6; here the build cost).

func benchRouterPortals(b *testing.B, portals int) {
	rng := rand.New(rand.NewSource(34))
	r := embed.Grid(16, 16, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	words := 0
	for i := 0; i < b.N; i++ {
		router, err := routing.Build(dec, routing.Options{Epsilon: 0.25, PortalsPerPath: portals})
		if err != nil {
			b.Fatal(err)
		}
		words = router.MaxTableWords()
	}
	b.ReportMetric(float64(words), "maxTableWords")
}

func BenchmarkAblationRouterPortals4(b *testing.B)  { benchRouterPortals(b, 4) }
func BenchmarkAblationRouterPortals16(b *testing.B) { benchRouterPortals(b, 16) }

// Ablation E: epsilon sweep for the exact-cover oracle (label growth).

func benchOracleEps(b *testing.B, eps float64) {
	rng := rand.New(rand.NewSource(35))
	r := embed.Grid(14, 14, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	maxLbl := 0
	for i := 0; i < b.N; i++ {
		o, err := oracle.Build(dec, oracle.Options{Epsilon: eps, Mode: oracle.CoverExact})
		if err != nil {
			b.Fatal(err)
		}
		maxLbl = o.MaxLabelPortals()
	}
	b.ReportMetric(float64(maxLbl), "maxLabelPortals")
}

func BenchmarkAblationEps50(b *testing.B) { benchOracleEps(b, 0.5) }
func BenchmarkAblationEps10(b *testing.B) { benchOracleEps(b, 0.1) }
func BenchmarkAblationEps02(b *testing.B) { benchOracleEps(b, 0.02) }
