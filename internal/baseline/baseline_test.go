package baseline

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

func TestExactMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ConnectedGNM(30, 70, graph.UniformWeights(1, 4), rng)
	e := &Exact{G: g}
	tr := shortest.Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		if math.Abs(e.Query(0, v)-tr.Dist[v]) > 1e-9 {
			t.Fatalf("Exact.Query(0,%d) mismatch", v)
		}
	}
}

func TestAPSPMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ConnectedGNM(25, 60, graph.UniformWeights(1, 3), rng)
	a := BuildAPSP(g)
	e := &Exact{G: g}
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v++ {
			if math.Abs(a.Query(u, v)-e.Query(u, v)) > 1e-9 {
				t.Fatalf("APSP(%d,%d) mismatch", u, v)
			}
		}
	}
	if a.SpaceEntries() != 25*25 {
		t.Fatalf("space = %d", a.SpaceEntries())
	}
}

func TestALTBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ConnectedGNM(40, 100, graph.UniformWeights(1, 5), rng)
	alt := BuildALT(g, 6, rng)
	a := BuildAPSP(g)
	for u := 0; u < g.N(); u += 3 {
		for v := 0; v < g.N(); v += 2 {
			d := a.Query(u, v)
			up := alt.Query(u, v)
			lo := alt.LowerBound(u, v)
			if up < d-1e-9 {
				t.Fatalf("ALT upper bound %v < true %v", up, d)
			}
			if u != v && lo > d+1e-9 {
				t.Fatalf("ALT lower bound %v > true %v", lo, d)
			}
		}
	}
	if alt.SpaceEntries() != 6*40 {
		t.Fatalf("space = %d", alt.SpaceEntries())
	}
}

func TestALTLandmarkExactAtLandmark(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Path(20, graph.UnitWeights(), rng)
	alt := BuildALT(g, 3, rng)
	for _, l := range alt.landmarks {
		for v := 0; v < g.N(); v++ {
			d := math.Abs(float64(l - v))
			if math.Abs(alt.Query(l, v)-d) > 1e-9 {
				t.Fatalf("landmark query (%d,%d) = %v, want %v", l, v, alt.Query(l, v), d)
			}
		}
	}
}

func TestTZStretchBound(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		rng := rand.New(rand.NewSource(int64(10 + k)))
		g := graph.ConnectedGNM(60, 150, graph.UniformWeights(1, 3), rng)
		tz, err := BuildTZ(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		a := BuildAPSP(g)
		bound := float64(2*k - 1)
		for u := 0; u < g.N(); u += 2 {
			for v := u + 1; v < g.N(); v += 3 {
				d := a.Query(u, v)
				est := tz.Query(u, v)
				if est < d-1e-9 {
					t.Fatalf("k=%d: TZ(%d,%d) = %v < %v", k, u, v, est, d)
				}
				if est > bound*d+1e-9 {
					t.Fatalf("k=%d: TZ(%d,%d) = %v > %v * %v", k, u, v, est, bound, d)
				}
			}
		}
	}
}

func TestTZK1IsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ConnectedGNM(30, 80, graph.UniformWeights(1, 2), rng)
	tz, err := BuildTZ(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildAPSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if math.Abs(tz.Query(u, v)-a.Query(u, v)) > 1e-9 {
				t.Fatalf("TZ k=1 (%d,%d) = %v, want %v", u, v, tz.Query(u, v), a.Query(u, v))
			}
		}
	}
	// k=1 stores everything: space = n^2.
	if tz.SpaceEntries() != 30*30 {
		t.Fatalf("k=1 space = %d, want %d", tz.SpaceEntries(), 900)
	}
}

func TestTZSpaceShrinksWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ConnectedGNM(200, 600, graph.UniformWeights(1, 2), rng)
	tz1, _ := BuildTZ(g, 1, rng)
	tz3, _ := BuildTZ(g, 3, rng)
	if tz3.SpaceEntries() >= tz1.SpaceEntries() {
		t.Fatalf("k=3 space %d not below k=1 space %d", tz3.SpaceEntries(), tz1.SpaceEntries())
	}
	if tz3.Stretch() != 5 || tz1.Stretch() != 1 {
		t.Fatal("stretch accessor wrong")
	}
	if tz3.MedianBunch() <= 0 {
		t.Fatal("median bunch")
	}
}

func TestTZRejectsBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Path(5, graph.UnitWeights(), rng)
	if _, err := BuildTZ(g, 0, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestALTAStarExactAndFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ConnectedGNM(300, 900, graph.UniformWeights(1, 4), rng)
	alt := BuildALT(g, 8, rng)
	totalAstar, totalBlind := 0, 0
	for trial := 0; trial < 20; trial++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		want := shortest.Dijkstra(g, u).Dist[v]
		got, settled := alt.QueryAStar(g, u, v)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ALT A* (%d,%d) = %v, want %v", u, v, got, want)
		}
		_, blind := shortest.AStar(g, u, v, nil)
		totalAstar += settled
		totalBlind += blind
	}
	if totalAstar > totalBlind {
		t.Errorf("ALT A* settled more vertices than Dijkstra: %d vs %d", totalAstar, totalBlind)
	}
}
