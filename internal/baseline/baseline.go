// Package baseline provides the comparison oracles the path-separator
// oracle is benchmarked against: exact Dijkstra-on-demand, exact all-pairs
// (small n), ALT landmark lower bounds, and a Thorup–Zwick approximate
// distance oracle for general graphs (stretch 2k-1).
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// Exact answers queries with a fresh Dijkstra run: zero space, O(m log n)
// query time — the "no oracle" end of the trade-off curve.
type Exact struct {
	G *graph.Graph
}

// Query returns the exact distance.
func (e *Exact) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	return shortest.Dijkstra(e.G, u).Dist[v]
}

// APSP stores all pairwise distances: O(n^2) space, O(1) query — the
// other end of the trade-off curve. Build only for small n.
type APSP struct {
	n    int
	dist []float64
}

// BuildAPSP computes all-pairs distances by n Dijkstra runs.
func BuildAPSP(g *graph.Graph) *APSP {
	n := g.N()
	a := &APSP{n: n, dist: make([]float64, n*n)}
	for u := 0; u < n; u++ {
		tr := shortest.Dijkstra(g, u)
		copy(a.dist[u*n:(u+1)*n], tr.Dist)
	}
	return a
}

// Query returns the exact distance in O(1).
func (a *APSP) Query(u, v int) float64 { return a.dist[u*a.n+v] }

// SpaceEntries returns the number of stored distances.
func (a *APSP) SpaceEntries() int { return a.n * a.n }

// ALT stores distances to a set of landmark vertices and answers with the
// triangle-inequality upper bound min over landmarks of d(u,l)+d(l,v).
// (The classical ALT lower bound |d(u,l)-d(l,v)| is also available.)
type ALT struct {
	n         int
	landmarks []int
	dist      [][]float64 // dist[i][v] = d(landmark i, v)
}

// BuildALT picks k landmarks (farthest-point greedy from a random start)
// and stores their distance vectors.
func BuildALT(g *graph.Graph, k int, rng *rand.Rand) *ALT {
	n := g.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	a := &ALT{n: n}
	cur := rng.Intn(n)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for i := 0; i < k; i++ {
		tr := shortest.Dijkstra(g, cur)
		a.landmarks = append(a.landmarks, cur)
		a.dist = append(a.dist, tr.Dist)
		far, farD := cur, -1.0
		for v := 0; v < n; v++ {
			if tr.Dist[v] < minDist[v] {
				minDist[v] = tr.Dist[v]
			}
			if !math.IsInf(minDist[v], 1) && minDist[v] > farD {
				far, farD = v, minDist[v]
			}
		}
		cur = far
	}
	return a
}

// Query returns the landmark upper bound on d(u,v).
func (a *ALT) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for i := range a.landmarks {
		if est := a.dist[i][u] + a.dist[i][v]; est < best {
			best = est
		}
	}
	return best
}

// LowerBound returns the ALT lower bound max over landmarks of
// |d(u,l) - d(l,v)|.
func (a *ALT) LowerBound(u, v int) float64 {
	best := 0.0
	for i := range a.landmarks {
		du, dv := a.dist[i][u], a.dist[i][v]
		if math.IsInf(du, 1) || math.IsInf(dv, 1) {
			continue
		}
		if lb := math.Abs(du - dv); lb > best {
			best = lb
		}
	}
	return best
}

// SpaceEntries returns the number of stored distances.
func (a *ALT) SpaceEntries() int { return len(a.landmarks) * a.n }

// TZ is the Thorup–Zwick approximate distance oracle for general weighted
// graphs: stretch 2k-1, space O(k n^{1+1/k}) in expectation.
type TZ struct {
	k       int
	n       int
	pivot   [][]int     // pivot[i][v] = nearest A_i vertex p_i(v)
	pivotD  [][]float64 // distance to it
	bunches []map[int]float64
}

// BuildTZ constructs the oracle with parameter k >= 1 (k=1 stores exact
// distances from every vertex; k=2 gives stretch 3, etc.).
func BuildTZ(g *graph.Graph, k int, rng *rand.Rand) (*TZ, error) {
	n := g.N()
	if k < 1 {
		return nil, fmt.Errorf("baseline: TZ requires k >= 1")
	}
	t := &TZ{k: k, n: n}
	// Sample hierarchy A_0 = V > A_1 > ... > A_{k-1}; A_k = empty.
	levels := make([][]bool, k+1)
	levels[0] = make([]bool, n)
	for v := range levels[0] {
		levels[0][v] = true
	}
	p := math.Pow(float64(n), -1.0/float64(k))
	for i := 1; i < k; i++ {
		levels[i] = make([]bool, n)
		nonEmpty := false
		for v := 0; v < n; v++ {
			if levels[i-1][v] && rng.Float64() < p {
				levels[i][v] = true
				nonEmpty = true
			}
		}
		if !nonEmpty {
			// Resample guard: keep one random vertex from the previous level.
			var prev []int
			for v := 0; v < n; v++ {
				if levels[i-1][v] {
					prev = append(prev, v)
				}
			}
			levels[i][prev[rng.Intn(len(prev))]] = true
		}
	}
	levels[k] = make([]bool, n)

	t.pivot = make([][]int, k)
	t.pivotD = make([][]float64, k)
	t.bunches = make([]map[int]float64, n)
	for v := range t.bunches {
		t.bunches[v] = make(map[int]float64)
	}
	for i := 0; i < k; i++ {
		// Multi-source Dijkstra from A_i gives p_i(v) and d(A_i, v).
		var srcs []int
		for v := 0; v < n; v++ {
			if levels[i][v] {
				srcs = append(srcs, v)
			}
		}
		tr := shortest.MultiSource(g, srcs)
		t.pivot[i] = tr.Source
		t.pivotD[i] = tr.Dist
	}
	// Bunch of v: w in A_i \ A_{i+1} is in B(v) iff d(w,v) < d(A_{i+1}, v).
	// Compute by Dijkstra from each w in A_i \ A_{i+1}, pruned at the
	// threshold.
	for i := 0; i < k; i++ {
		nextD := func(v int) float64 {
			if i+1 >= k {
				return math.Inf(1)
			}
			return t.pivotD[i+1][v]
		}
		for w := 0; w < n; w++ {
			if !levels[i][w] || (i+1 < k && levels[i+1][w]) {
				continue
			}
			// Pruned Dijkstra from w: only relax vertices v with
			// d(w,v) < d(A_{i+1}, v).
			prunedDijkstra(g, w, nextD, func(v int, d float64) {
				t.bunches[v][w] = d
			})
		}
	}
	return t, nil
}

func prunedDijkstra(g *graph.Graph, src int, limit func(int) float64, visit func(int, float64)) {
	dist := make(map[int]float64, 64)
	done := make(map[int]bool, 64)
	// Simple pair heap over (vertex, dist) using sorted insertion into a
	// slice would be O(n^2); reuse a small binary heap keyed by vertex.
	type qi struct {
		v int
		d float64
	}
	h := []qi{{src, 0}}
	dist[src] = 0
	push := func(x qi) {
		h = append(h, x)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].d <= h[i].d {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() qi {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && h[l].d < h[s].d {
				s = l
			}
			if r < len(h) && h[r].d < h[s].d {
				s = r
			}
			if s == i {
				break
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
		return top
	}

	for len(h) > 0 {
		it := pop()
		if done[it.v] || it.d > dist[it.v] {
			continue
		}
		done[it.v] = true
		visit(it.v, it.d)
		for _, e := range g.Neighbors(it.v) {
			nd := it.d + e.W
			if nd >= limit(e.To) {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				push(qi{e.To, nd})
			}
		}
	}
}

// Query returns a stretch-(2k-1) estimate of d(u,v) using the classic
// Thorup–Zwick ping-pong walk up the sampling hierarchy.
func (t *TZ) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	w := u // w = p_0(u) = u, with d(w,u) = 0
	dwu := 0.0
	for i := 0; ; {
		if dwv, ok := t.bunches[v][w]; ok {
			return dwu + dwv
		}
		i++
		if i >= t.k {
			return math.Inf(1)
		}
		u, v = v, u
		w = t.pivot[i][u]
		if w < 0 {
			return math.Inf(1)
		}
		dwu = t.pivotD[i][u]
	}
}

// SpaceEntries returns the total bunch size (the oracle's space in words).
func (t *TZ) SpaceEntries() int {
	total := 0
	for _, b := range t.bunches {
		total += len(b)
	}
	return total
}

// Stretch returns the theoretical stretch bound 2k-1.
func (t *TZ) Stretch() int { return 2*t.k - 1 }

// MedianBunch returns the median bunch size, a space diagnostic.
func (t *TZ) MedianBunch() int {
	sizes := make([]int, len(t.bunches))
	for i, b := range t.bunches {
		sizes[i] = len(b)
	}
	sort.Ints(sizes)
	if len(sizes) == 0 {
		return 0
	}
	return sizes[len(sizes)/2]
}

// QueryAStar answers an exact distance query with A* guided by the ALT
// landmark lower bounds — the classical "ALT" algorithm. It returns the
// distance and the number of settled vertices (compare with plain
// Dijkstra's n).
func (a *ALT) QueryAStar(g *graph.Graph, u, v int) (float64, int) {
	h := func(x int) float64 { return a.LowerBound(x, v) }
	return shortest.AStar(g, u, v, h)
}
