// Package exp is the experiment harness: it regenerates, as printed
// tables, the measurable claim of every theorem in the paper (see
// DESIGN.md §4 and EXPERIMENTS.md). Each experiment is a function
// returning a Table so that cmd/experiments and the benchmarks share one
// implementation.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
