// Package exp is the experiment harness: it regenerates, as printed
// tables, the measurable claim of every theorem in the paper (see
// DESIGN.md §4 and EXPERIMENTS.md). Each experiment is a function
// returning a Table so that cmd/experiments and the benchmarks share one
// implementation.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// printer accumulates the first write error so formatting code stays
// linear instead of checking every Fprintf.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Fprint writes the table with aligned columns, returning the first write
// error.
func (t *Table) Fprint(w io.Writer) error {
	p := &printer{w: w}
	p.printf("== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		p.printf("  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		p.printf("  note: %s\n", n)
	}
	p.printf("\n")
	return p.err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b) // strings.Builder writes cannot fail
	return b.String()
}
