package exp

import (
	"math"

	"pathsep/internal/core"
)

// FitExponent estimates b in y ≈ a·x^b by least squares on (log x, log y):
// the growth-exponent summary the experiment tables report for the
// Theorem 5 / Section 5.3 curves. Pairs with non-positive coordinates are
// skipped; fewer than two valid pairs yield NaN.
func FitExponent(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	den := float64(n)*sxx - sx*sx
	if core.IsZeroDist(den) {
		return math.NaN()
	}
	return (float64(n)*sxy - sx*sy) / den
}
