package exp

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment harness is self-checking: each quick-mode table must
// reproduce the paper's claimed shape, not merely print.

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestE1ShapeConstantK(t *testing.T) {
	tbl := E1Separator(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if row[3] == "ERR" {
			t.Fatalf("E1 row errored: %v", row)
		}
		k := cellFloat(t, row[3])
		if k > 6 {
			t.Errorf("class %s n=%s: maxK=%v too large", row[0], row[1], k)
		}
		depth := cellFloat(t, row[5])
		logn := cellFloat(t, row[6])
		if depth > logn+2 {
			t.Errorf("class %s: depth %v exceeds log2(n)+2=%v", row[0], depth, logn+2)
		}
	}
}

func TestE2ShapeBoundsHold(t *testing.T) {
	tbl := E2Treewidth(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E2 bound violated: %v", row)
		}
	}
}

func TestE3ShapePhasedConstant(t *testing.T) {
	tbl := E3StrongLB(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if row[3] == "ERR" {
			t.Fatalf("E3 row errored: %v", row)
		}
		if k := cellFloat(t, row[3]); k > 5 {
			t.Errorf("phased k = %v > 5: %v", k, row)
		}
		if spv := cellFloat(t, row[4]); spv != 3 {
			t.Errorf("mesh+universal diameter-2 property broken: %v", row)
		}
	}
}

func TestE4ShapeExactGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E4Oracle(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[2], "pathsep-exact") {
			continue
		}
		eps := cellFloat(t, row[3])
		maxS := cellFloat(t, row[7])
		if maxS > 1+eps+1e-6 {
			t.Errorf("Theorem 2 violated: eps=%v maxStretch=%v", eps, maxS)
		}
	}
}

func TestE5ShapeLabelsGrow(t *testing.T) {
	tbl := E5Labels(Config{Quick: true, Seed: 1})
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Smaller eps must not shrink labels (rows alternate eps 0.5, 0.1).
	if cellFloat(t, tbl.Rows[1][3]) < cellFloat(t, tbl.Rows[0][3]) {
		t.Errorf("eps=0.1 labels smaller than eps=0.5: %v vs %v", tbl.Rows[1], tbl.Rows[0])
	}
}

func TestE6ShapeDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E6Routing(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if cellFloat(t, row[3]) != 100 {
			t.Errorf("delivery below 100%%: %v", row)
		}
		if cellFloat(t, row[4]) > 3+1e-6 {
			t.Errorf("stretch cap exceeded: %v", row)
		}
	}
}

func TestE7ShapeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E7SmallWorld(Config{Quick: true, Seed: 1})
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if cellFloat(t, row[3]) <= 0 {
			t.Errorf("no hops measured: %v", row)
		}
	}
}

func TestE8ShapeWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E8Note2(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		hops := cellFloat(t, row[2])
		bound := cellFloat(t, row[3])
		if hops > bound {
			t.Errorf("Note 2 bound exceeded: %v", row)
		}
	}
}

func TestE9ShapeDoublingOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E9Doubling(Config{Quick: true, Seed: 1})
	for _, row := range tbl.Rows {
		if s := cellFloat(t, row[4]); s > 1.2+1e-6 {
			t.Errorf("doubling oracle stretch %v > 1.2: %v", s, row)
		}
	}
}

func TestE10ShapeGrowth(t *testing.T) {
	tbl := E10Sparse(Config{Quick: true, Seed: 1})
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	first := cellFloat(t, tbl.Rows[0][2])
	last := cellFloat(t, tbl.Rows[len(tbl.Rows)-1][2])
	if last <= first {
		t.Errorf("hard-family k did not grow: %v -> %v", first, last)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	tbl.Notes = append(tbl.Notes, "note")
	s := tbl.String()
	for _, want := range []string{"== t ==", "a", "bb", "2.5", "note:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFitExponent(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8}
	ys := []float64{3, 12, 48, 192}
	if b := FitExponent(xs, ys); b < 1.99 || b > 2.01 {
		t.Fatalf("exponent %v, want 2", b)
	}
	// Degenerate inputs.
	if b := FitExponent([]float64{1}, []float64{1}); !isNaN(b) {
		t.Fatalf("single point fit %v", b)
	}
	if b := FitExponent([]float64{-1, 2}, []float64{1, -2}); !isNaN(b) {
		t.Fatalf("invalid points fit %v", b)
	}
	// Same x twice: zero denominator.
	if b := FitExponent([]float64{2, 2}, []float64{1, 5}); !isNaN(b) {
		t.Fatalf("vertical fit %v", b)
	}
}

func isNaN(f float64) bool { return f != f }
