package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pathsep/internal/baseline"
	"pathsep/internal/core"
	"pathsep/internal/doubling"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/hardness"
	"pathsep/internal/oracle"
	"pathsep/internal/routing"
	"pathsep/internal/shortest"
	"pathsep/internal/smallworld"
)

// Config scales the experiments.
type Config struct {
	// Quick shrinks instance sizes for fast runs (tests, -quick flag).
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the construction worker pool (0 = GOMAXPROCS,
	// 1 = serial); results are identical for every value.
	Workers int
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed + 7)) }

func (c Config) pick(quick, full []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// sampledStretch compares oracle estimates with exact distances over
// sampled pairs, returning (max, mean) stretch.
func sampledStretch(g *graph.Graph, query func(u, v int) float64, pairs int, rng *rand.Rand) (float64, float64) {
	worst, sum, count := 1.0, 0.0, 0
	for i := 0; i < pairs; i++ {
		u := rng.Intn(g.N())
		tr := shortest.Dijkstra(g, u)
		v := rng.Intn(g.N())
		if u == v || math.IsInf(tr.Dist[v], 1) || core.IsZeroDist(tr.Dist[v]) {
			continue
		}
		ratio := query(u, v) / tr.Dist[v]
		if ratio > worst {
			worst = ratio
		}
		sum += ratio
		count++
	}
	if count == 0 {
		return 1, 1
	}
	return worst, sum / float64(count)
}

// E1Separator measures Definition 1 quantities per graph class: the max
// paths per separator (k), phases, decomposition depth vs ceil(log2 n),
// and construction time (Theorem 1's shape: k constant, depth log n).
func E1Separator(c Config) *Table {
	t := &Table{
		Title:   "E1 (Thm 1 / Def 1): separator size k and depth per graph class",
		Columns: []string{"class", "n", "m", "maxK", "maxPhases", "depth", "ceil(log2 n)", "build"},
	}
	rng := c.rng()
	sizes := c.pick([]int{64, 256}, []int{64, 256, 1024, 4096})
	type inst struct {
		name string
		g    *graph.Graph
		rot  *embed.Rotation
	}
	for _, n := range sizes {
		side := int(math.Sqrt(float64(n)))
		grid := embed.Grid(side, side, graph.UniformWeights(1, 4), rng)
		apo := embed.Apollonian(n, graph.UniformWeights(1, 4), rng)
		outer := embed.Outerplanar(n, n/2, graph.UniformWeights(1, 4), rng)
		instances := []inst{
			{"tree", graph.RandomTree(n, graph.UniformWeights(1, 4), rng), nil},
			{"grid", grid.G, grid},
			{"apollonian", apo.G, apo},
			{"outerplanar", outer.G, outer},
			{"3-tree", graph.KTree(n, 3, graph.UniformWeights(1, 4), rng), nil},
		}
		for _, in := range instances {
			start := time.Now()
			dec, err := core.Decompose(in.g, core.Options{Strategy: core.Auto{}, Rot: in.rot, Workers: c.Workers})
			if err != nil {
				t.AddRow(in.name, in.g.N(), in.g.M(), "ERR", err.Error())
				continue
			}
			maxPhases := 0
			for _, nd := range dec.Nodes {
				if nd.Sep != nil && nd.Sep.NumPhases() > maxPhases {
					maxPhases = nd.Sep.NumPhases()
				}
			}
			t.AddRow(in.name, in.g.N(), in.g.M(), dec.MaxK, maxPhases, dec.Depth,
				int(math.Ceil(math.Log2(float64(in.g.N())))), time.Since(start).Round(time.Millisecond))
		}
	}
	t.Notes = append(t.Notes,
		"Theorem 1 shape: maxK stays constant per class while n grows; depth tracks log2 n.")
	return t
}

// E2Treewidth measures Theorem 7: k-trees get strong separators of at
// most r+1 single-vertex paths; K_{r,n-r} needs at least r/2 paths.
func E2Treewidth(c Config) *Table {
	t := &Table{
		Title:   "E2 (Thm 7): treewidth-r strong separators and the K_{r,n-r} bound",
		Columns: []string{"graph", "r", "n", "paths", "bound", "holds"},
	}
	rng := c.rng()
	n := 200
	if c.Quick {
		n = 60
	}
	for _, r := range c.pick([]int{2, 4}, []int{1, 2, 4, 6, 8}) {
		g := graph.KTree(n, r, graph.UniformWeights(1, 3), rng)
		sep, err := (core.CenterBag{}).Separate(core.Input{G: g})
		if err != nil {
			t.AddRow("k-tree", r, n, "ERR", err.Error(), false)
			continue
		}
		t.AddRow("k-tree", r, n, sep.NumPaths(), r+1, sep.NumPaths() <= r+1 && sep.NumPhases() == 1)
	}
	for _, r := range c.pick([]int{4}, []int{4, 6, 10}) {
		g := graph.CompleteBipartite(r, n-r, graph.UnitWeights(), rng)
		k, err := hardness.MeasureGreedyK(g)
		if err != nil {
			t.AddRow("K_{r,n-r}", r, n, "ERR", err.Error(), false)
			continue
		}
		lb := hardness.BipartiteStrongLB(r)
		t.AddRow("K_{r,n-r}", r, n, k, lb, k >= lb)
	}
	t.Notes = append(t.Notes,
		"k-tree rows: a single phase of <= r+1 one-vertex paths (strong separator).",
		"K_{r,n-r} rows: measured paths vs the analytic >= r/2 lower bound.")
	return t
}

// E3StrongLB measures Theorem 6(3): the mesh+universal family needs
// Omega(sqrt n) STRONG paths (analytic t/3), while phased separators use
// far fewer; tiny instances are verified exhaustively.
func E3StrongLB(c Config) *Table {
	t := &Table{
		Title:   "E3 (Thm 6.3): mesh+universal strong lower bound vs phased k",
		Columns: []string{"t", "n", "strongLB(t/3)", "phasedK(cert)", "maxSPvertices"},
	}
	for _, tt := range c.pick([]int{3, 4, 6}, []int{3, 4, 6, 9, 12, 16, 24, 32}) {
		g := graph.MeshUniversal(tt)
		k, err := hardness.MeshUniversalPhasedK(tt)
		if err != nil {
			t.AddRow(tt, g.N(), hardness.MeshUniversalStrongLB(tt), "ERR", err.Error())
			continue
		}
		t.AddRow(tt, g.N(), hardness.MeshUniversalStrongLB(tt), k, hardness.MaxShortestPathVertices(g))
	}
	t.Notes = append(t.Notes,
		"strongLB grows like sqrt(n) (Theorem 6.3); the certified PHASED separator (universal vertex,",
		"then planar fundamental cycles) keeps k <= 5 at every size, realizing Theorem 1's contrast.",
		"maxSPvertices = 3: diameter 2, the heart of the counting argument.")
	return t
}

// E4Oracle measures Theorem 2: stretch <= 1+eps (exact mode), space,
// query time — against exact Dijkstra and Thorup–Zwick baselines.
func E4Oracle(c Config) *Table {
	t := &Table{
		Title:   "E4 (Thm 2): distance oracle stretch / space / query time vs baselines",
		Columns: []string{"graph", "n", "oracle", "eps", "space(entries)", "build", "query", "maxStretch", "meanStretch"},
	}
	rng := c.rng()
	sides := c.pick([]int{8}, []int{8, 16, 24})
	pairs := 300
	if c.Quick {
		pairs = 100
	}
	for _, side := range sides {
		grid := embed.Grid(side, side, graph.UniformWeights(1, 4), rng)
		g := grid.G
		dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
		if err != nil {
			continue
		}
		for _, eps := range []float64{0.5, 0.1} {
			for _, mode := range []oracle.Mode{oracle.CoverExact, oracle.CoverPortal} {
				name := "pathsep-exact"
				if mode == oracle.CoverPortal {
					name = "pathsep-portal"
				}
				start := time.Now()
				o, err := oracle.Build(dec, oracle.Options{Epsilon: eps, Mode: mode, Workers: c.Workers})
				if err != nil {
					continue
				}
				build := time.Since(start)
				qStart := time.Now()
				const qn = 20000
				for i := 0; i < qn; i++ {
					o.Query(i%g.N(), (i*7)%g.N())
				}
				qTime := time.Since(qStart) / qn
				maxS, meanS := sampledStretch(g, o.Query, pairs, rng)
				t.AddRow("grid", g.N(), name, eps, o.SpacePortals(), build.Round(time.Millisecond), qTime, maxS, meanS)
			}
		}
		// Baselines.
		ex := &baseline.Exact{G: g}
		qStart := time.Now()
		for i := 0; i < 50; i++ {
			ex.Query(i%g.N(), (i*7)%g.N())
		}
		t.AddRow("grid", g.N(), "dijkstra", "-", 0, time.Duration(0), time.Since(qStart)/50, 1.0, 1.0)
		tz, err := baseline.BuildTZ(g, 2, rng)
		if err == nil {
			maxS, meanS := sampledStretch(g, tz.Query, pairs, rng)
			t.AddRow("grid", g.N(), "thorup-zwick k=2", "-", tz.SpaceEntries(), time.Duration(0), time.Duration(0), maxS, meanS)
		}
		alt := baseline.BuildALT(g, 8, rng)
		maxS, meanS := sampledStretch(g, alt.Query, pairs, rng)
		t.AddRow("grid", g.N(), "alt-8", "-", alt.SpaceEntries(), time.Duration(0), time.Duration(0), maxS, meanS)
	}
	t.Notes = append(t.Notes,
		"pathsep-exact maxStretch must stay <= 1+eps (Theorem 2 guarantee).",
		"space grows ~ n log n for the path-separator oracle, n^1.5 for Thorup-Zwick k=2.")
	return t
}

// E5Labels measures Theorem 2's label sizes: portals and serialized bits
// per vertex, which should track (k/eps) * log n.
func E5Labels(c Config) *Table {
	t := &Table{
		Title:   "E5 (Thm 2): distance label sizes",
		Columns: []string{"graph", "n", "eps", "avgPortals", "maxPortals", "avgBits", "maxBits", "log2(n)"},
	}
	rng := c.rng()
	sides := c.pick([]int{8, 12}, []int{8, 16, 24, 32})
	for _, side := range sides {
		grid := embed.Grid(side, side, graph.UniformWeights(1, 4), rng)
		dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
		if err != nil {
			continue
		}
		for _, eps := range []float64{0.5, 0.1} {
			o, err := oracle.Build(dec, oracle.Options{Epsilon: eps, Mode: oracle.CoverExact, Workers: c.Workers})
			if err != nil {
				continue
			}
			totP, maxP, totB, maxB := 0, 0, 0, 0
			for v := range o.Labels {
				p := o.Labels[v].NumPortals()
				b := o.Labels[v].Bits()
				totP += p
				totB += b
				if p > maxP {
					maxP = p
				}
				if b > maxB {
					maxB = b
				}
			}
			n := grid.G.N()
			t.AddRow("grid", n, eps, float64(totP)/float64(n), maxP,
				float64(totB)/float64(n), maxB, math.Log2(float64(n)))
		}
	}
	t.Notes = append(t.Notes, "label words ~ O(k/eps * log n): ratio avgPortals/log2(n) stays ~flat in n, grows with 1/eps.")
	return t
}

// E6Routing measures the compact routing scheme: delivery, stretch,
// table and address sizes.
func E6Routing(c Config) *Table {
	t := &Table{
		Title:   "E6 (compact routing): delivery, stretch, table sizes",
		Columns: []string{"graph", "n", "portals", "delivered", "maxStretch", "meanStretch", "maxTable(w)", "maxAddr(w)", "maxAddrBits"},
	}
	rng := c.rng()
	sides := c.pick([]int{8}, []int{8, 16, 24})
	trials := 200
	if c.Quick {
		trials = 60
	}
	for _, side := range sides {
		grid := embed.Grid(side, side, graph.UniformWeights(1, 4), rng)
		g := grid.G
		dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
		if err != nil {
			continue
		}
		for _, portals := range []int{4, 16} {
			r, err := routing.Build(dec, routing.Options{Epsilon: 0.25, PortalsPerPath: portals})
			if err != nil {
				continue
			}
			delivered := 0
			worst, sum, cnt := 1.0, 0.0, 0
			for i := 0; i < trials; i++ {
				s, tgt := rng.Intn(g.N()), rng.Intn(g.N())
				if s == tgt {
					delivered++
					continue
				}
				d := shortest.Dijkstra(g, s).Dist[tgt]
				path, ok := r.Route(s, tgt, 50*g.N())
				if !ok {
					continue
				}
				delivered++
				if w := r.RouteWeight(path); d > 0 {
					ratio := w / d
					if ratio > worst {
						worst = ratio
					}
					sum += ratio
					cnt++
				}
			}
			mean := 1.0
			if cnt > 0 {
				mean = sum / float64(cnt)
			}
			maxBits := 0
			for v := range r.Addrs {
				if b := r.Addrs[v].Bits(); b > maxBits {
					maxBits = b
				}
			}
			t.AddRow("grid", g.N(), portals, delivered*100/trials, worst, mean, r.MaxTableWords(), r.MaxAddrWords(), maxBits)
		}
	}
	t.Notes = append(t.Notes,
		"delivery is 100% by construction; stretch <= 3 guaranteed, approaching 1+eps as portals grow.")
	return t
}

// E7SmallWorld measures Theorem 3 and Corollary 1: mean greedy hops under
// the separator-landmark augmentation vs baselines, across n.
func E7SmallWorld(c Config) *Table {
	t := &Table{
		Title:   "E7 (Thm 3 / Cor 1): greedy routing hops under augmentation",
		Columns: []string{"graph", "n", "model", "meanHops", "maxHops", "k2log2n"},
	}
	rng := c.rng()
	sides := c.pick([]int{12}, []int{12, 20, 32})
	trials := 100
	if c.Quick {
		trials = 40
	}
	for _, side := range sides {
		grid := embed.Grid(side, side, graph.UniformWeights(1, 2), rng)
		g := grid.G
		dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
		if err != nil {
			continue
		}
		n := g.N()
		k2l2 := float64(dec.MaxK*dec.MaxK) * math.Pow(math.Log2(float64(n)), 2)
		for _, model := range []smallworld.Model{smallworld.ModelPathSeparator, smallworld.ModelClosestSeparator, smallworld.ModelUniform, smallworld.ModelNone} {
			a, err := smallworld.Augment(dec, model, rng)
			if err != nil {
				continue
			}
			st := smallworld.Experiment(a, trials, rng, nil)
			t.AddRow("grid", n, model.String(), st.MeanHops, st.MaxHops, k2l2)
		}
		kl := smallworld.AugmentKleinbergGrid(g, side, side, rng)
		st := smallworld.Experiment(kl, trials, rng, nil)
		t.AddRow("grid", n, "kleinberg", st.MeanHops, st.MaxHops, k2l2)
	}
	// Aspect-ratio sweep: Theorem 3 carries a log^2 Δ factor; grids with
	// exponentially spread weights probe it at fixed n.
	if !c.Quick {
		side := 20
		for _, spread := range []float64{1, 4, 8} {
			grid := embed.Grid(side, side, graph.ExpWeights(spread), rng)
			dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
			if err != nil {
				continue
			}
			a, err := smallworld.Augment(dec, smallworld.ModelPathSeparator, rng)
			if err != nil {
				continue
			}
			st := smallworld.Experiment(a, trials, rng, nil)
			delta := shortest.AspectRatio(grid.G)
			t.AddRow("grid(log2Δ≈"+fmt.Sprintf("%.0f", math.Log2(delta))+")",
				grid.G.N(), "path-separator", st.MeanHops, st.MaxHops,
				float64(dec.MaxK*dec.MaxK)*math.Pow(math.Log2(float64(grid.G.N())), 2))
		}
	}

	// Corollary 1: treewidth-k graphs, single-vertex separator paths.
	nk := 400
	if c.Quick {
		nk = 120
	}
	g := graph.KTree(nk, 3, graph.UniformWeights(1, 2), rng)
	dec, err := core.Decompose(g, core.Options{Strategy: core.CenterBag{}, Workers: c.Workers})
	if err == nil {
		a, err := smallworld.Augment(dec, smallworld.ModelPathSeparator, rng)
		if err == nil {
			st := smallworld.Experiment(a, trials, rng, nil)
			t.AddRow("3-tree", nk, "path-separator", st.MeanHops, st.MaxHops,
				float64(dec.MaxK*dec.MaxK)*math.Pow(math.Log2(float64(nk)), 2))
		}
	}
	t.Notes = append(t.Notes,
		"Theorem 3 shape: separator models' meanHops grow poly-logarithmically (compare k2log2n), uniform/none grow polynomially.")
	return t
}

// E8Note2 measures Note 2: on unweighted graphs with separator diameter
// delta, the closest-separator variant takes O(log^2 n + delta log n).
func E8Note2(c Config) *Table {
	t := &Table{
		Title:   "E8 (Note 2): unweighted closest-separator variant",
		Columns: []string{"n", "delta(maxPathDiam)", "meanHops", "bound(log2n^2+delta*log2n)"},
	}
	rng := c.rng()
	trials := 80
	if c.Quick {
		trials = 30
	}
	for _, side := range c.pick([]int{12}, []int{12, 20, 28}) {
		grid := embed.Grid(side, side, graph.UnitWeights(), rng)
		dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid, Workers: c.Workers})
		if err != nil {
			continue
		}
		delta := 0.0
		for _, nd := range dec.Nodes {
			if nd.Sep == nil {
				continue
			}
			if d := nd.Sep.MaxPathDiameter(nd.Sub.G); d > delta {
				delta = d
			}
		}
		a, err := smallworld.Augment(dec, smallworld.ModelClosestSeparator, rng)
		if err != nil {
			continue
		}
		st := smallworld.Experiment(a, trials, rng, nil)
		n := float64(grid.G.N())
		bound := math.Pow(math.Log2(n), 2) + delta*math.Log2(n)
		t.AddRow(grid.G.N(), delta, st.MeanHops, bound)
	}
	return t
}

// E9Doubling measures Section 5.3 / Theorem 8: path separators degrade on
// 3-D meshes while the plane doubling separator keeps (1+eps) oracles.
func E9Doubling(c Config) *Table {
	t := &Table{
		Title:   "E9 (Thm 8 / §5.3): 3-D mesh — path separators vs doubling separators",
		Columns: []string{"mesh", "n", "greedyPathK", "planeSep", "oracleMaxStretch", "maxLabel", "build"},
	}
	rng := c.rng()
	dims := [][3]int{{4, 4, 4}, {6, 6, 6}, {8, 8, 8}}
	if c.Quick {
		dims = [][3]int{{4, 4, 4}}
	}
	pairs := 200
	if c.Quick {
		pairs = 80
	}
	var ns, ks []float64
	for _, d := range dims {
		g := graph.Mesh3D(d[0], d[1], d[2], graph.UnitWeights(), nil)
		k, err := hardness.MeasureGreedyK(g)
		if err != nil {
			k = -1
		} else {
			ns = append(ns, float64(g.N()))
			ks = append(ks, float64(k))
		}
		dt, err := doubling.DecomposeMesh3D(d[0], d[1], d[2])
		if err != nil {
			continue
		}
		start := time.Now()
		o, err := doubling.BuildOracle(dt, 0.2)
		if err != nil {
			continue
		}
		build := time.Since(start)
		maxS, _ := sampledStretch(g, o.Query, pairs, rng)
		t.AddRow(
			formatDims(d), g.N(), k, len(dt.Nodes[0].Plane), maxS, o.MaxLabelLandmarks(), build.Round(time.Millisecond))
	}
	if b := FitExponent(ns, ks); !math.IsNaN(b) {
		t.Notes = append(t.Notes, fmt.Sprintf("fitted growth: pathK ~ n^%.2f (the plane obstruction predicts ~0.67)", b))
	}
	t.Notes = append(t.Notes,
		"greedyPathK grows with n (no bounded k-path separator exists); plane separators keep (1+eps) oracles with small labels.")
	return t
}

func formatDims(d [3]int) string {
	return fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2])
}

// E10Sparse measures Theorem 5's shape: on the sparse dense-core family
// the measured k grows like sqrt(n), unlike the minor-free classes.
func E10Sparse(c Config) *Table {
	t := &Table{
		Title:   "E10 (Thm 5): sparse graphs are not o(sqrt n)-path separable",
		Columns: []string{"n", "m", "greedyK", "sqrt(n)", "distinctRows"},
	}
	var ns, ks []float64
	for _, n := range c.pick([]int{64, 256}, []int{64, 256, 1024, 4096}) {
		g := hardness.SparseHard(n)
		k, err := hardness.MeasureGreedyK(g)
		if err != nil {
			t.AddRow(n, g.M(), "ERR", math.Sqrt(float64(n)), "-")
			continue
		}
		rows := "-"
		if n <= 256 {
			rows = fmt.Sprintf("%d", hardness.DistinctDistanceRows(g))
		}
		t.AddRow(n, g.M(), k, math.Sqrt(float64(n)), rows)
		ns = append(ns, float64(n))
		ks = append(ks, float64(k))
	}
	if b := FitExponent(ns, ks); !math.IsNaN(b) {
		t.Notes = append(t.Notes, fmt.Sprintf("fitted growth: k ~ n^%.2f (Theorem 5 predicts exponent 0.5)", b))
	}
	t.Notes = append(t.Notes,
		"greedyK tracks sqrt(n): the dense bipartite core forces many paths, matching the Theorem 5 obstruction.",
		"distinctRows = n means exact labels need >= log2(n) bits even at tiny scale.")
	return t
}

// All runs every experiment.
func All(c Config) []*Table {
	return []*Table{
		E1Separator(c),
		E2Treewidth(c),
		E3StrongLB(c),
		E4Oracle(c),
		E5Labels(c),
		E6Routing(c),
		E7SmallWorld(c),
		E8Note2(c),
		E9Doubling(c),
		E10Sparse(c),
	}
}
