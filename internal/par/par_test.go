package par

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"pathsep/internal/obs"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers, nil)
		hit := make([]atomic.Int64, 100)
		p.ForEach(len(hit), func(i int) { hit[i].Add(1) })
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers, nil)
	var busy, peak atomic.Int64
	p.ForEach(64, func(int) {
		b := busy.Add(1)
		for {
			old := peak.Load()
			if b <= old || peak.CompareAndSwap(old, b) {
				break
			}
		}
		busy.Add(-1)
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d > workers %d", got, workers)
	}
}

func TestNilAndSerialPoolsRunInline(t *testing.T) {
	var nilPool *Pool
	order := []int{}
	nilPool.ForEach(4, func(i int) { order = append(order, i) })
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Fatalf("nil pool order = %v, want 0..3 in order", order)
	}
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", nilPool.Workers())
	}
	nilPool.Finish() // must not panic

	p := New(1, nil)
	order = order[:0]
	p.ForEach(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool order = %v, want in-order", order)
		}
	}
}

func TestForkRunsAll(t *testing.T) {
	p := New(4, nil)
	var a, b atomic.Bool
	p.Fork(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("Fork did not run every function")
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.New()
	p := New(4, reg)
	p.ForEach(32, func(int) {})
	p.Finish()
	snap := reg.Snapshot()
	if got := snap.Histograms["build.task_ns"].Count; got != 32 {
		t.Fatalf("build.task_ns count = %d, want 32", got)
	}
	if _, ok := snap.Gauges["build.parallel_speedup"]; !ok {
		t.Fatal("build.parallel_speedup gauge missing after Finish")
	}
	if _, ok := snap.Gauges["build.workers_busy"]; !ok {
		t.Fatal("build.workers_busy gauge missing")
	}
	if _, ok := snap.Counters["build.tasks_stolen"]; !ok {
		t.Fatal("build.tasks_stolen counter missing")
	}
}

func TestSplitRandDeterministic(t *testing.T) {
	a := SplitRand(rand.New(rand.NewSource(42)), 5)
	b := SplitRand(rand.New(rand.NewSource(42)), 5)
	for i := range a {
		for j := 0; j < 10; j++ {
			if x, y := a[i].Int63(), b[i].Int63(); x != y {
				t.Fatalf("split %d draw %d: %d != %d", i, j, x, y)
			}
		}
	}
	// Distinct children produce distinct streams.
	c := SplitRand(rand.New(rand.NewSource(42)), 2)
	if c[0].Int63() == c[1].Int63() {
		t.Fatal("sibling streams coincide on first draw")
	}
}
