// Package par is the bounded deterministic worker pool behind the
// parallel construction pipeline (core.Decompose, oracle.Build,
// Oracle.Audit). It deliberately provides only fork/join primitives whose
// results land in caller-indexed slots, so parallel runs are bit-identical
// to serial ones: tasks may execute in any order on any worker, but every
// task writes only to its own index and callers merge the slots in a
// fixed order afterwards.
//
// A Pool with Workers() == 1 runs everything inline on the calling
// goroutine — the serial reference the differential tests compare
// against. The nil *Pool behaves the same way, so call sites thread a
// pool unconditionally.
//
// Instrumentation (all nil-safe, following internal/obs conventions):
//
//	build.workers_busy     gauge: peak number of simultaneously busy workers
//	build.tasks_stolen     counter: tasks executed by a helper worker
//	                       rather than the goroutine that submitted them
//	build.task_ns          histogram: per-task wall-clock latency
//	build.parallel_speedup gauge: 100 × (sum of task time / pool wall
//	                       time), set by Finish — 100 means no speedup
package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathsep/internal/obs"
)

// Pool is a bounded worker pool. Create one with New; the zero value and
// the nil pool run everything inline.
type Pool struct {
	workers      int
	instrumented bool
	start        time.Time

	busy      atomic.Int64
	taskNanos atomic.Int64

	busyGauge *obs.Gauge
	stolen    *obs.Counter
	taskNS    *obs.Histogram
	speedup   *obs.Gauge
}

// New returns a pool of the given width. workers <= 0 means
// runtime.GOMAXPROCS(0). A width above 1 is capped to 1 when only one
// scheduler thread exists: helper goroutines cannot run concurrently
// there, so they add handoff overhead without any speedup (the condition
// the bench-parallel gate measures). reg may be nil (all instruments
// become no-ops).
func New(workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && runtime.GOMAXPROCS(0) == 1 {
		workers = 1
	}
	return &Pool{
		workers:      workers,
		instrumented: reg != nil,
		start:        time.Now(),
		busyGauge:    reg.Gauge("build.workers_busy"),
		stolen:       reg.Counter("build.tasks_stolen"),
		taskNS:       reg.Histogram("build.task_ns"),
		speedup:      reg.Gauge("build.parallel_speedup"),
	}
}

// shuffleSeed, when non-zero, permutes the order in which ForEach hands
// tasks to workers. Tasks keep their own indices — fn still receives
// 0..n-1 exactly once and slot writes land where they always do — only
// the submission schedule changes. This is a test hook for the
// determinism gate (make determinism): if any call site leaks scheduling
// order into its results, shuffling makes the leak a guaranteed byte
// diff instead of a probabilistic one.
var shuffleSeed atomic.Int64

// SetShuffleSeed enables (non-zero) or disables (zero) shuffled task
// submission for all pools in the process. Test use only; not part of
// the build pipeline's API surface.
func SetShuffleSeed(seed int64) { shuffleSeed.Store(seed) }

// taskOrder returns the submission permutation for n tasks, or nil for
// the identity order. The permutation is a pure function of the seed and
// n, so a shuffled run is itself reproducible.
func taskOrder(n int) []int {
	seed := shuffleSeed.Load()
	if seed == 0 || n < 2 {
		return nil
	}
	return rand.New(rand.NewSource(seed ^ int64(n)<<32)).Perm(n)
}

// Workers returns the pool width; 1 for the nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// run executes one task with busy/latency accounting. wid 0 is the
// submitting goroutine; helper workers count their tasks as stolen.
func (p *Pool) run(i, wid int, fn func(int)) {
	if p == nil {
		fn(i)
		return
	}
	p.busyGauge.SetMax(p.busy.Add(1))
	if wid != 0 {
		p.stolen.Inc()
	}
	t0 := time.Now()
	fn(i)
	dt := time.Since(t0).Nanoseconds()
	p.taskNanos.Add(dt)
	p.taskNS.Observe(float64(dt))
	p.busy.Add(-1)
}

// ForEach runs fn(0..n-1), using up to Workers() goroutines (the caller
// counts as one and always participates, so a width-1 pool is fully
// serial and index order is preserved). It returns when every call has
// finished. fn must confine its writes to data owned by its index.
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	perm := taskOrder(n)
	task := func(i int) int {
		if perm != nil {
			return perm[i]
		}
		return i
	}
	if p == nil || p.workers <= 1 || n == 1 {
		if p == nil || !p.instrumented {
			// Serial fast path: no atomics, no clock reads per task.
			for i := 0; i < n; i++ {
				fn(task(i))
			}
			return
		}
		for i := 0; i < n; i++ {
			p.run(task(i), 0, fn)
		}
		return
	}
	var next atomic.Int64
	drain := func(wid int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			p.run(task(i), wid, fn)
		}
	}
	helpers := min(p.workers, n) - 1
	var wg sync.WaitGroup
	wg.Add(helpers)
	for w := 1; w <= helpers; w++ {
		go func(wid int) {
			defer wg.Done()
			drain(wid)
		}(w)
	}
	drain(0)
	wg.Wait()
}

// Fork runs the given functions as independent tasks (the two recursive
// halves of a decomposition step, for example) and returns when all have
// finished.
func (p *Pool) Fork(fns ...func()) {
	p.ForEach(len(fns), func(i int) { fns[i]() })
}

// Finish publishes the pool's aggregate speedup gauge: 100 × (total task
// time / wall time since New). Call it once, when the parallel phase is
// over (typically via defer). No-op on the nil pool.
func (p *Pool) Finish() {
	if p == nil {
		return
	}
	wall := time.Since(p.start).Nanoseconds()
	if wall <= 0 {
		return
	}
	p.speedup.Set(p.taskNanos.Load() * 100 / wall)
}

// SplitRand splits a parent generator into n child generators by drawing
// n seeds from the parent in a fixed serial order. Hand child i to
// subproblem i before fanning out: every subproblem then owns an
// independent deterministic stream, so results do not depend on worker
// count or scheduling. This is the sanctioned splitting helper — the
// seededrand analyzer flags ad-hoc rand.New(rand.NewSource(rng.Int63()))
// splits outside this package.
func SplitRand(parent *rand.Rand, n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(parent.Int63()))
	}
	return out
}
