// Package doubling implements Section 5.3 of the paper: (k,α)-doubling
// separators — separators made of isometric subgraphs of low doubling
// dimension instead of shortest paths — and the Theorem 8 distance oracle
// they support.
//
// The paper motivates the generalization with the 3-D mesh: it has no
// bounded k-path separator (a plane of Ω(n^{2/3}) vertices is needed),
// yet an axis-aligned middle plane is an isometric 2-D mesh of doubling
// dimension 2. DecomposeMesh3D builds that recursive plane decomposition;
// BuildOracle attaches per-vertex ε-cover landmarks on each plane, using
// the plane's closed-form Manhattan metric where the general construction
// would attach Talwar-style labels (documented substitution; the (1+ε)
// guarantee is preserved because the plane metric is exact).
package doubling

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/shortest"
)

// Net computes a greedy r-net of the metric given by distances from the
// subgraph's vertices: a subset of points pairwise more than r apart that
// covers every point within r. dist(i, j) must be symmetric.
func Net(n int, r float64, dist func(i, j int) float64) []int {
	var net []int
	for p := 0; p < n; p++ {
		covered := false
		for _, q := range net {
			if dist(p, q) <= r {
				covered = true
				break
			}
		}
		if !covered {
			net = append(net, p)
		}
	}
	return net
}

// EstimateDim estimates the doubling dimension of the graph's shortest
// path metric: the max over sampled centers x and radii r of
// log2(points of an r-net needed to cover the 2r-ball around x).
func EstimateDim(g *graph.Graph, samples int, radii []float64) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	worst := 0.0
	for s := 0; s < samples; s++ {
		x := (s * 2654435761) % n // deterministic spread
		tr := shortest.Dijkstra(g, x)
		for _, r := range radii {
			// Points in the 2r ball.
			var ball []int
			for v := 0; v < n; v++ {
				if tr.Dist[v] <= 2*r {
					ball = append(ball, v)
				}
			}
			if len(ball) < 2 {
				continue
			}
			// Greedy r-net of the ball, distances within g (upper bounded
			// by Dijkstra from each chosen net point lazily).
			var net []int
			dists := make([][]float64, 0, 8)
			for _, p := range ball {
				covered := false
				for qi := range net {
					if dists[qi][p] <= r {
						covered = true
						break
					}
				}
				if !covered {
					net = append(net, p)
					dists = append(dists, shortest.Dijkstra(g, p).Dist)
				}
			}
			if dim := math.Log2(float64(len(net))); dim > worst {
				worst = dim
			}
		}
	}
	return worst
}

// Node is one box of the recursive 3-D mesh plane decomposition.
type Node struct {
	ID     int
	Parent int
	Depth  int
	// Sub is the box subgraph with origin map to the root mesh.
	Sub *graph.Sub
	// Plane is the separator: local vertex IDs of the middle plane.
	Plane []int
	// Coords are 2-D coordinates of each plane vertex within the plane
	// (the two axes orthogonal to the cut).
	Coords [][2]int
	// Children are node IDs of the two half-boxes.
	Children []int
}

// Tree is the (1, 2)-doubling-separator decomposition of a 3-D mesh.
type Tree struct {
	G     *graph.Graph
	Nodes []*Node
	Home  []int
	Depth int
}

// HomePath returns the node IDs from the root to the node whose plane
// removed v.
func (t *Tree) HomePath(v int) []int {
	var rev []int
	for id := t.Home[v]; id >= 0; id = t.Nodes[id].Parent {
		rev = append(rev, id)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DecomposeMesh3D builds the unit-weight a x b x c mesh and its recursive
// middle-plane decomposition: every separator is a single isometric 2-D
// mesh (a (1,2)-doubling separator), and each child box has at most half
// the vertices.
func DecomposeMesh3D(a, b, c int) (*Tree, error) {
	if a < 1 || b < 1 || c < 1 {
		return nil, fmt.Errorf("doubling: bad mesh dims %dx%dx%d", a, b, c)
	}
	g := graph.Mesh3D(a, b, c, graph.UnitWeights(), nil)
	t := &Tree{G: g, Home: make([]int, g.N())}
	for i := range t.Home {
		t.Home[i] = -1
	}
	// Box: inclusive coordinate ranges.
	type box struct {
		lo, hi [3]int
		parent int
		depth  int
	}
	id := func(x, y, z int) int { return x + a*(y+b*z) }
	var queue []box
	queue = append(queue, box{lo: [3]int{0, 0, 0}, hi: [3]int{a - 1, b - 1, c - 1}, parent: -1})
	for len(queue) > 0 {
		bx := queue[0]
		queue = queue[1:]
		// Collect box vertices.
		var verts []int
		for z := bx.lo[2]; z <= bx.hi[2]; z++ {
			for y := bx.lo[1]; y <= bx.hi[1]; y++ {
				for x := bx.lo[0]; x <= bx.hi[0]; x++ {
					verts = append(verts, id(x, y, z))
				}
			}
		}
		sub := graph.Induced(g, verts)
		toLocal := make(map[int]int, len(verts))
		for lv, ov := range sub.Orig {
			toLocal[ov] = lv
		}
		node := &Node{ID: len(t.Nodes), Parent: bx.parent, Depth: bx.depth, Sub: sub}
		t.Nodes = append(t.Nodes, node)
		if bx.parent >= 0 {
			t.Nodes[bx.parent].Children = append(t.Nodes[bx.parent].Children, node.ID)
		}
		if bx.depth > t.Depth {
			t.Depth = bx.depth
		}
		// Longest axis.
		axis := 0
		for d := 1; d < 3; d++ {
			if bx.hi[d]-bx.lo[d] > bx.hi[axis]-bx.lo[axis] {
				axis = d
			}
		}
		mid := (bx.lo[axis] + bx.hi[axis]) / 2
		// Plane vertices and their 2-D coordinates.
		oa, ob := (axis+1)%3, (axis+2)%3
		var coordOf func(x, y, z int) [3]int
		coordOf = func(x, y, z int) [3]int { return [3]int{x, y, z} }
		for z := bx.lo[2]; z <= bx.hi[2]; z++ {
			for y := bx.lo[1]; y <= bx.hi[1]; y++ {
				for x := bx.lo[0]; x <= bx.hi[0]; x++ {
					cd := coordOf(x, y, z)
					if cd[axis] != mid {
						continue
					}
					ov := id(x, y, z)
					node.Plane = append(node.Plane, toLocal[ov])
					node.Coords = append(node.Coords, [2]int{cd[oa], cd[ob]})
					t.Home[ov] = node.ID
				}
			}
		}
		// Child boxes.
		if mid > bx.lo[axis] {
			lo, hi := bx.lo, bx.hi
			hi[axis] = mid - 1
			queue = append(queue, box{lo: lo, hi: hi, parent: node.ID, depth: bx.depth + 1})
		}
		if mid < bx.hi[axis] {
			lo, hi := bx.lo, bx.hi
			lo[axis] = mid + 1
			queue = append(queue, box{lo: lo, hi: hi, parent: node.ID, depth: bx.depth + 1})
		}
	}
	for v, h := range t.Home {
		if h < 0 {
			return nil, fmt.Errorf("doubling: vertex %d never separated", v)
		}
	}
	return t, nil
}

// Landmark is one label entry: plane coordinates and the exact distance
// from the labeled vertex within the box subgraph.
type Landmark struct {
	X, Y int
	Dist float64
}

// LEntry is a vertex's landmark list for one (node, plane).
type LEntry struct {
	Node      int32
	Landmarks []Landmark
}

// Label is a vertex's complete doubling-oracle label.
type Label struct {
	Entries []LEntry
}

// NumLandmarks returns the label size.
func (l *Label) NumLandmarks() int {
	total := 0
	for _, e := range l.Entries {
		total += len(e.Landmarks)
	}
	return total
}

// Oracle is the Theorem 8 distance oracle for the 3-D mesh family.
type Oracle struct {
	Labels []Label
	Eps    float64
	// Query-time instruments, cached so the hot path costs one nil check
	// when metrics are disabled. Set via SetMetrics.
	qLatency   *obs.Histogram
	qLandmarks *obs.Histogram
}

// SetMetrics attaches (or, with nil, detaches) query-time metrics:
// "doubling.query_ns" observes per-query latency and
// "doubling.query_landmarks" the number of landmark pairs compared.
func (o *Oracle) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		o.qLatency, o.qLandmarks = nil, nil
		return
	}
	o.qLatency = reg.Histogram("doubling.query_ns")
	o.qLandmarks = reg.Histogram("doubling.query_landmarks")
}

// BuildOracle attaches per-vertex ε-cover landmark sets on every plane of
// the decomposition.
func BuildOracle(t *Tree, eps float64) (*Oracle, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("doubling: epsilon must be positive")
	}
	o := &Oracle{Labels: make([]Label, t.G.N()), Eps: eps}
	for _, node := range t.Nodes {
		if len(node.Plane) == 0 {
			continue
		}
		j := node.Sub.G
		rootID := func(lv int) int { return node.Sub.Orig[lv] }
		// Plane metric: Manhattan in plane coordinates (isometric since the
		// mesh has unit weights).
		planeDist := func(x, y int) float64 {
			cx, cy := node.Coords[x], node.Coords[y]
			return float64(abs(cx[0]-cy[0]) + abs(cx[1]-cy[1]))
		}
		for w := 0; w < j.N(); w++ {
			tr := shortest.Dijkstra(j, w)
			// Greedy ε-cover over plane vertices.
			var chosen []int
			for y, lv := range node.Plane {
				dy := tr.Dist[lv]
				if math.IsInf(dy, 1) {
					continue
				}
				covered := false
				for _, x := range chosen {
					if tr.Dist[node.Plane[x]]+planeDist(x, y) <= (1+eps)*dy {
						covered = true
						break
					}
				}
				if !covered {
					chosen = append(chosen, y)
				}
			}
			if len(chosen) == 0 {
				continue
			}
			e := LEntry{Node: int32(node.ID)}
			for _, x := range chosen {
				e.Landmarks = append(e.Landmarks, Landmark{
					X:    node.Coords[x][0],
					Y:    node.Coords[x][1],
					Dist: tr.Dist[node.Plane[x]],
				})
			}
			lbl := &o.Labels[rootID(w)]
			lbl.Entries = append(lbl.Entries, e)
		}
	}
	for v := range o.Labels {
		sort.Slice(o.Labels[v].Entries, func(i, j int) bool {
			return o.Labels[v].Entries[i].Node < o.Labels[v].Entries[j].Node
		})
	}
	return o, nil
}

// Query returns a (1+ε)-approximate distance, +Inf for vertices sharing
// no decomposition node (cannot happen for a connected mesh). With
// metrics attached (SetMetrics) it also observes latency and landmark
// pairs compared; the disabled path is one nil check, allocation-free.
func (o *Oracle) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	if o.qLatency == nil {
		est, _ := o.query(u, v)
		return est
	}
	start := time.Now()
	est, pairs := o.query(u, v)
	o.qLatency.Observe(float64(time.Since(start)))
	o.qLandmarks.Observe(float64(pairs))
	return est
}

func (o *Oracle) query(u, v int) (float64, int) {
	lu, lv := &o.Labels[u], &o.Labels[v]
	best := math.Inf(1)
	pairs := 0
	i, j := 0, 0
	for i < len(lu.Entries) && j < len(lv.Entries) {
		a, b := lu.Entries[i], lv.Entries[j]
		switch {
		case a.Node == b.Node:
			pairs += len(a.Landmarks) * len(b.Landmarks)
			for _, p := range a.Landmarks {
				for _, q := range b.Landmarks {
					est := p.Dist + float64(abs(p.X-q.X)+abs(p.Y-q.Y)) + q.Dist
					if est < best {
						best = est
					}
				}
			}
			i++
			j++
		case a.Node < b.Node:
			i++
		default:
			j++
		}
	}
	return best, pairs
}

// SpaceLandmarks returns total landmark entries across labels.
func (o *Oracle) SpaceLandmarks() int {
	total := 0
	for i := range o.Labels {
		total += o.Labels[i].NumLandmarks()
	}
	return total
}

// MaxLabelLandmarks returns the largest label.
func (o *Oracle) MaxLabelLandmarks() int {
	best := 0
	for i := range o.Labels {
		if s := o.Labels[i].NumLandmarks(); s > best {
			best = s
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
