package doubling

import (
	"math"
	"math/rand"

	"pathsep/internal/shortest"
	"pathsep/internal/smallworld"
)

// Augment implements Note 3 of Section 4 for the 3-D mesh: since the mesh
// is (1,2)-doubling separable rather than path separable, each vertex's
// long-range contact is drawn from landmark RINGS on the separator plane
// (Slivkins-style rings of neighbors): choose a uniform level of the
// plane decomposition, find the closest plane vertex c(v) at distance d,
// and pick a landmark on the plane whose plane-metric distance from c(v)
// is close to a scale (i/2)·d (i ≤ 10) or 2^i·d — the 2-dimensional
// analogue of the Claim 1 landmark set.
func Augment(t *Tree, rng *rand.Rand) *smallworld.Augmented {
	a := &smallworld.Augmented{G: t.G, Long: make([]int, t.G.N())}
	for i := range a.Long {
		a.Long[i] = -1
	}
	// Per node: multi-source Dijkstra from the plane.
	type nodeData struct {
		distRoot map[int]float64
		closest  map[int]int // root vertex -> plane index
	}
	data := make([]nodeData, len(t.Nodes))
	for _, node := range t.Nodes {
		if len(node.Plane) == 0 {
			continue
		}
		j := node.Sub.G
		tr := shortest.MultiSource(j, node.Plane)
		idxOf := make(map[int]int, len(node.Plane))
		for x, lv := range node.Plane {
			idxOf[lv] = x
		}
		nd := nodeData{
			distRoot: make(map[int]float64, j.N()),
			closest:  make(map[int]int, j.N()),
		}
		for w := 0; w < j.N(); w++ {
			if tr.Source[w] < 0 {
				continue
			}
			rootW := node.Sub.Orig[w]
			nd.distRoot[rootW] = tr.Dist[w]
			nd.closest[rootW] = idxOf[tr.Source[w]]
		}
		data[node.ID] = nd
	}
	maxDim := shortest.DiameterApprox(t.G, 0)
	for v := 0; v < t.G.N(); v++ {
		homePath := t.HomePath(v)
		for attempt := 0; attempt < 4 && a.Long[v] < 0; attempt++ {
			nodeID := homePath[rng.Intn(len(homePath))]
			nd := data[nodeID]
			if nd.distRoot == nil {
				continue
			}
			d, ok := nd.distRoot[v]
			if !ok {
				continue
			}
			node := t.Nodes[nodeID]
			lm := RingLandmarks(node.Coords, nd.closest[v], d, maxDim, rng)
			// Filter out v itself.
			filtered := lm[:0]
			for _, x := range lm {
				if node.Sub.Orig[node.Plane[x]] != v {
					filtered = append(filtered, x)
				}
			}
			if len(filtered) == 0 {
				continue
			}
			x := filtered[rng.Intn(len(filtered))]
			a.Long[v] = node.Sub.Orig[node.Plane[x]]
		}
	}
	return a
}

// RingLandmarks selects plane-vertex indices whose Manhattan distance
// from the center index c is the first to reach each Claim 1 scale:
// (i/2)·d for i=0..10 and 2^i·d up to the diameter. One representative
// per (scale, quadrant-ish direction) is chosen at random among
// candidates within a half-scale band.
func RingLandmarks(coords [][2]int, c int, d, maxDim float64, rng *rand.Rand) []int {
	if d <= 0 {
		d = 1
	}
	var scales []float64
	for i := 0; i <= 10; i++ {
		scales = append(scales, float64(i)/2*d)
	}
	for s := d; s <= 2*maxDim; s *= 2 {
		scales = append(scales, s)
	}
	cc := coords[c]
	seen := make(map[int]bool)
	var out []int
	for _, s := range scales {
		// Candidates in the band [s, s + d/2 + 1).
		var band []int
		for x, xy := range coords {
			dist := float64(abs(xy[0]-cc[0]) + abs(xy[1]-cc[1]))
			if dist >= s && dist < s+d/2+1 {
				band = append(band, x)
			}
		}
		if len(band) == 0 {
			continue
		}
		pick := band[rng.Intn(len(band))]
		if !seen[pick] {
			seen[pick] = true
			out = append(out, pick)
		}
	}
	return out
}

// GreedyStats runs the Note 3 experiment: augment the mesh and measure
// greedy-routing hops.
func GreedyStats(t *Tree, trials int, rng *rand.Rand) smallworld.Stats {
	a := Augment(t, rng)
	return smallworld.Experiment(a, trials, rng, nil)
}

// Dim2Reference returns the Note 3 reference curve
// 2^O(alpha) * k^2 log^2 n log^2 Delta with alpha=2, k=1 for the mesh.
func Dim2Reference(n int, delta float64) float64 {
	if n < 2 {
		return 1
	}
	l := math.Log2(float64(n))
	ld := math.Log2(math.Max(2, delta))
	return 4 * l * l * ld * ld
}
