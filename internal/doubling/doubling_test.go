package doubling

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

func TestNetProperties(t *testing.T) {
	// Points on a line, distance |i-j|.
	n := 50
	dist := func(i, j int) float64 { return math.Abs(float64(i - j)) }
	for _, r := range []float64{1, 3, 10} {
		net := Net(n, r, dist)
		// Covering: every point within r of a net point.
		for p := 0; p < n; p++ {
			covered := false
			for _, q := range net {
				if dist(p, q) <= r {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("r=%v: point %d uncovered", r, p)
			}
		}
		// Packing: net points pairwise > r apart.
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				if dist(net[i], net[j]) <= r {
					t.Fatalf("r=%v: net points %d,%d too close", r, net[i], net[j])
				}
			}
		}
	}
}

func TestEstimateDimLineVsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	line := graph.Path(64, graph.UnitWeights(), rng)
	grid2 := graph.Mesh3D(8, 8, 1, graph.UnitWeights(), rng)
	dLine := EstimateDim(line, 4, []float64{2, 4, 8})
	dGrid := EstimateDim(grid2, 4, []float64{2, 4})
	if dLine > 2.1 {
		t.Errorf("line doubling dim estimate %v too high", dLine)
	}
	if dGrid <= dLine-0.5 {
		t.Errorf("grid (%v) should not be far below line (%v)", dGrid, dLine)
	}
	if dGrid > 3.6 {
		t.Errorf("2-D grid dim estimate %v too high", dGrid)
	}
}

func TestDecomposeMesh3D(t *testing.T) {
	tr, err := DecomposeMesh3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.G.N() != 64 {
		t.Fatalf("n = %d", tr.G.N())
	}
	// Every vertex homed; home paths well-formed.
	for v := 0; v < 64; v++ {
		hp := tr.HomePath(v)
		if len(hp) == 0 || hp[0] != 0 {
			t.Fatalf("home path of %d: %v", v, hp)
		}
	}
	// Children at most half the parent box.
	for _, nd := range tr.Nodes {
		for _, c := range nd.Children {
			if tr.Nodes[c].Sub.G.N() > nd.Sub.G.N()/2 {
				t.Fatalf("child %d has %d > half of %d", c, tr.Nodes[c].Sub.G.N(), nd.Sub.G.N())
			}
		}
	}
	// Planes are isometric 2-D meshes: check distances within the root
	// plane match Manhattan coordinates.
	root := tr.Nodes[0]
	if len(root.Plane) == 0 {
		t.Fatal("root has no plane")
	}
	j := root.Sub.G
	tr0 := shortest.Dijkstra(j, root.Plane[0])
	c0 := root.Coords[0]
	for i, lv := range root.Plane {
		want := float64(abs(root.Coords[i][0]-c0[0]) + abs(root.Coords[i][1]-c0[1]))
		if math.Abs(tr0.Dist[lv]-want) > 1e-9 {
			t.Fatalf("plane not isometric at %d: %v vs %v", i, tr0.Dist[lv], want)
		}
	}
}

func TestOracleStretchMesh(t *testing.T) {
	tr, err := DecomposeMesh3D(5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 0.2} {
		o, err := BuildOracle(tr, eps)
		if err != nil {
			t.Fatal(err)
		}
		g := tr.G
		for u := 0; u < g.N(); u++ {
			d := shortest.Dijkstra(g, u)
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				est := o.Query(u, v)
				if est < d.Dist[v]-1e-9 {
					t.Fatalf("eps=%v: Query(%d,%d)=%v < %v", eps, u, v, est, d.Dist[v])
				}
				if est > (1+eps)*d.Dist[v]+1e-9 {
					t.Fatalf("eps=%v: Query(%d,%d)=%v > (1+eps)*%v", eps, u, v, est, d.Dist[v])
				}
			}
		}
	}
}

func TestOracleSelfAndSpace(t *testing.T) {
	tr, _ := DecomposeMesh3D(4, 4, 4)
	o, err := BuildOracle(tr, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Query(5, 5) != 0 {
		t.Fatal("self query")
	}
	if o.SpaceLandmarks() <= 0 || o.MaxLabelLandmarks() <= 0 {
		t.Fatal("space accounting")
	}
	if _, err := BuildOracle(tr, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestDecomposeMesh3DRejectsBadDims(t *testing.T) {
	if _, err := DecomposeMesh3D(0, 3, 3); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestLabelSizeSublinear(t *testing.T) {
	small, _ := DecomposeMesh3D(4, 4, 2)
	big, _ := DecomposeMesh3D(8, 8, 4)
	oS, err := BuildOracle(small, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oB, err := BuildOracle(big, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 8x vertices should grow max label far less than 8x.
	if oB.MaxLabelLandmarks() > 6*oS.MaxLabelLandmarks() {
		t.Errorf("label growth %d -> %d for 8x vertices", oS.MaxLabelLandmarks(), oB.MaxLabelLandmarks())
	}
}

func TestAugmentNote3Delivers(t *testing.T) {
	tr, err := DecomposeMesh3D(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	a := Augment(tr, rng)
	linked := 0
	for v, l := range a.Long {
		if l >= tr.G.N() {
			t.Fatalf("contact %d out of range", l)
		}
		if l >= 0 && l != v {
			linked++
		}
	}
	if linked < tr.G.N()/2 {
		t.Fatalf("only %d/%d vertices linked", linked, tr.G.N())
	}
	st := GreedyStats(tr, 40, rng)
	if st.Delivered != 40 {
		t.Fatalf("stats: %+v", st)
	}
	// Reference sanity: hops below the Note 3 curve.
	if ref := Dim2Reference(tr.G.N(), 16); st.MeanHops > ref {
		t.Errorf("meanHops %v above reference %v", st.MeanHops, ref)
	}
}

func TestRingLandmarksScales(t *testing.T) {
	// A 9x9 plane: landmarks must cover multiple rings around the center.
	coords := make([][2]int, 0, 81)
	for y := 0; y < 9; y++ {
		for x := 0; x < 9; x++ {
			coords = append(coords, [2]int{x, y})
		}
	}
	rng := rand.New(rand.NewSource(21))
	center := 40 // (4,4)
	lm := RingLandmarks(coords, center, 2, 16, rng)
	if len(lm) < 3 {
		t.Fatalf("only %d landmarks", len(lm))
	}
	for _, x := range lm {
		if x < 0 || x >= len(coords) {
			t.Fatalf("landmark %d out of range", x)
		}
	}
}
