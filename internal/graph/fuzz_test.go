package graph

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// fuzzHeaderN extracts the vertex count from the first "p" record, or -1.
// The fuzzer uses it to skip inputs whose header demands an allocation far
// larger than the input itself (legal, but pointless to explore).
func fuzzHeaderN(data []byte) int {
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 3 && fields[0] == "p" {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return -1
			}
			return n
		}
	}
	return -1
}

// FuzzGraphIO feeds arbitrary text to Read. Whatever parses must be a
// fixed point of WriteText∘Read: writing and re-reading yields the exact
// same serialization.
func FuzzGraphIO(f *testing.F) {
	// Valid corpus: the shapes the deterministic tests exercise.
	f.Add([]byte("p 3 2\ne 0 1 1.5\ne 1 2 2.5\n"))
	f.Add([]byte("# comment\nc another\n\np 3 2\ne 0 1 1.5\ne 1 2 2.5\n"))
	f.Add([]byte("p 1 0\n"))
	rng := rand.New(rand.NewSource(1))
	g := ConnectedGNM(12, 24, UniformWeights(0.5, 9), rng)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Malformed corpus: every error class Read distinguishes.
	f.Add([]byte(""))
	f.Add([]byte("e 0 1 2\n"))
	f.Add([]byte("p x 2\n"))
	f.Add([]byte("p -3 0\n"))
	f.Add([]byte("p 3 1\ne -1 1 2\n"))
	f.Add([]byte("p 3 1\np 3 1\n"))
	f.Add([]byte("p 3 1\ne 0 1 oops\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		if n := fuzzHeaderN(data); n > 1<<15 {
			return
		}
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := g.WriteText(&w1); err != nil {
			t.Fatalf("WriteText after successful Read: %v", err)
		}
		g2, err := Read(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of own output: %v\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := g2.WriteText(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("round trip not a fixed point:\n%s\nvs\n%s", w1.Bytes(), w2.Bytes())
		}
	})
}
