package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes the graph as a text edge list:
//
//	p <n> <m>
//	e <u> <v> <weight>
//
// one line per undirected edge. (Named WriteText to avoid the io.WriterTo
// signature convention.)
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int, wt float64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "e %d %d %g\n", u, v, wt)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Read parses a graph written by WriteText. Blank lines and lines starting
// with '#' or 'c' are ignored.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	declared := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == 'c' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad header %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: negative vertex count %d", line, n)
			}
			b = NewBuilder(n)
			declared = n
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			wt, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u < 0 || v < 0 {
				return nil, fmt.Errorf("graph: line %d: negative endpoint in %q", line, text)
			}
			// The header's count is a promise, not a hint: an endpoint
			// beyond it is corrupt input, and letting it through would size
			// the graph by the rogue ID (arbitrary allocation from a
			// three-line file).
			if u >= declared || v >= declared {
				return nil, fmt.Errorf("graph: line %d: endpoint beyond the declared %d vertices in %q", line, declared, text)
			}
			b.AddEdge(u, v, wt)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	return b.Build(), nil
}
