package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1.0)
	b.AddEdge(2, 3, 0.5)
	g := b.Build()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Errorf("EdgeWeight(0,1) = %v,%v", w, ok)
	}
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 2.5 {
		t.Errorf("EdgeWeight(1,0) = %v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Error("EdgeWeight(0,3) should not exist")
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 7) // duplicate, ignored
	b.AddEdge(0, 0, 1) // self-loop, ignored
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("duplicate overwrote weight: %v", w)
	}
}

func TestBuilderGrowsVertices(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9, 1)
	g := b.Build()
	if g.N() != 10 {
		t.Fatalf("N = %d, want 10", g.N())
	}
}

func TestHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNM(20, 40, UnitWeights(), rng)
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Neighbors(u) {
			if !g.HasEdge(u, h.To) || !g.HasEdge(h.To, u) {
				t.Fatalf("missing edge %d-%d", u, h.To)
			}
		}
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("out-of-range HasEdge should be false")
	}
}

func TestDegreeSumIsTwiceM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GNM(50, 120, UniformWeights(1, 2), rng)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2M %d", sum, 2*g.M())
	}
}

func TestEdgesIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNM(30, 60, UnitWeights(), rng)
	count := 0
	g.Edges(func(u, v int, w float64) {
		if u >= v {
			t.Errorf("Edges gave u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != g.M() {
		t.Fatalf("Edges visited %d, M=%d", count, g.M())
	}
}

func TestInduced(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(3, 4, 4)
	b.AddEdge(0, 4, 5)
	g := b.Build()
	sub := Induced(g, []int{1, 2, 3})
	if sub.G.N() != 3 || sub.G.M() != 2 {
		t.Fatalf("induced: n=%d m=%d", sub.G.N(), sub.G.M())
	}
	// Origin map round-trips.
	for sv, ov := range sub.Orig {
		if ov < 1 || ov > 3 {
			t.Errorf("orig[%d] = %d out of range", sv, ov)
		}
	}
	// Weights preserved.
	w, ok := sub.G.EdgeWeight(0, 1)
	if !ok || w != 2 {
		t.Errorf("induced edge weight = %v, %v", w, ok)
	}
}

func TestInducedIgnoresBadInput(t *testing.T) {
	g := Path(4, UnitWeights(), rand.New(rand.NewSource(1)))
	sub := Induced(g, []int{2, 2, -1, 99, 3})
	if sub.G.N() != 2 {
		t.Fatalf("n=%d, want 2", sub.G.N())
	}
}

func TestRemoveVertices(t *testing.T) {
	g := Path(5, UnitWeights(), rand.New(rand.NewSource(1)))
	sub := RemoveVertices(g, []int{2})
	if sub.G.N() != 4 || sub.G.M() != 2 {
		t.Fatalf("n=%d m=%d", sub.G.N(), sub.G.M())
	}
	comps := ConnectedComponents(sub.G)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
}

func TestConnectedComponentsOrder(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1) // component of size 4
	b.AddEdge(4, 5, 1) // size 2; vertex 6 isolated
	g := b.Build()
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	for i := 1; i < len(comps); i++ {
		if len(comps[i]) > len(comps[i-1]) {
			t.Fatal("components not sorted largest-first")
		}
	}
}

func TestComponentsAfterRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Cycle(10, UnitWeights(), rng)
	comps := ComponentsAfterRemoval(g, []int{0, 5})
	if len(comps) != 2 || len(comps[0]) != 4 || len(comps[1]) != 4 {
		t.Fatalf("cycle split wrong: %v", comps)
	}
	// Components are in g's numbering.
	for _, c := range comps {
		for _, v := range c {
			if v == 0 || v == 5 {
				t.Fatal("removed vertex appears in component")
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tests := []struct {
		name string
		g    *Graph
		n, m int
		conn bool
	}{
		{"path", Path(6, UnitWeights(), rng), 6, 5, true},
		{"cycle", Cycle(6, UnitWeights(), rng), 6, 6, true},
		{"complete", Complete(5, UnitWeights(), rng), 5, 10, true},
		{"bipartite", CompleteBipartite(3, 4, UnitWeights(), rng), 7, 12, true},
		{"star", Star(5, UnitWeights(), rng), 5, 4, true},
		{"tree", RandomTree(20, UnitWeights(), rng), 20, 19, true},
		{"btree", BinaryTree(15, UnitWeights(), rng), 15, 14, true},
		{"hypercube", Hypercube(4, UnitWeights(), rng), 16, 32, true},
		{"mesh3d", Mesh3D(3, 3, 3, UnitWeights(), rng), 27, 54, true},
		{"meshuniv", MeshUniversal(4), 17, 24 + 16, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n {
				t.Errorf("n = %d, want %d", tc.g.N(), tc.n)
			}
			if tc.g.M() != tc.m {
				t.Errorf("m = %d, want %d", tc.g.M(), tc.m)
			}
			if tc.conn != IsConnected(tc.g) {
				t.Errorf("connected = %v, want %v", !tc.conn, tc.conn)
			}
		})
	}
}

func TestKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{1, 2, 3, 5} {
		g := KTree(40, k, UnitWeights(), rng)
		if g.N() != 40 {
			t.Fatalf("k=%d: n=%d", k, g.N())
		}
		// k-tree edge count: C(k+1,2) + k*(n-k-1).
		want := k*(k+1)/2 + k*(40-k-1)
		if g.M() != want {
			t.Errorf("k=%d: m=%d, want %d", k, g.M(), want)
		}
		if !IsConnected(g) {
			t.Errorf("k=%d: not connected", k)
		}
	}
}

func TestKTreeWithBags(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, bags := KTreeWithBags(30, 3, UnitWeights(), rng)
	for v := 4; v < 30; v++ {
		if len(bags[v]) != 3 {
			t.Fatalf("bag[%d] has %d vertices", v, len(bags[v]))
		}
		for _, u := range bags[v] {
			if !g.HasEdge(u, v) {
				t.Fatalf("bag vertex %d not adjacent to %d", u, v)
			}
		}
	}
}

func TestPartialKTreeConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := PartialKTree(60, 4, 0.5, UnitWeights(), rng)
	if !IsConnected(g) {
		t.Fatal("partial k-tree must stay connected")
	}
}

func TestConnectedGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := ConnectedGNM(50, 80, UnitWeights(), rng)
	if !IsConnected(g) {
		t.Fatal("not connected")
	}
	if g.M() < 49 {
		t.Fatalf("m=%d too small", g.M())
	}
}

func TestPathPlusStable(t *testing.T) {
	g := PathPlusStable(10)
	if g.N() != 10 {
		t.Fatalf("n=%d", g.N())
	}
	// Removing the path (vertices 0..4) disconnects into 5 singletons.
	comps := ComponentsAfterRemoval(g, []int{0, 1, 2, 3, 4})
	if len(comps) != 5 {
		t.Fatalf("components after removing path: %d", len(comps))
	}
}

func TestMeshUniversalDiameterTwo(t *testing.T) {
	g := MeshUniversal(5)
	u := 25
	// Universal vertex adjacent to all.
	if g.Degree(u) != 25 {
		t.Fatalf("universal degree = %d", g.Degree(u))
	}
}

func TestReweightedAndUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := GNM(20, 50, UniformWeights(1, 10), rng)
	u := g.Unweighted()
	if u.M() != g.M() || u.N() != g.N() {
		t.Fatal("unweighted changed shape")
	}
	u.Edges(func(_, _ int, w float64) {
		if w != 1 {
			t.Fatalf("weight %v != 1", w)
		}
	})
}

func TestTotalWeight(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2.5)
	g := b.Build()
	if got := g.TotalWeight(); got != 4 {
		t.Fatalf("TotalWeight = %v", got)
	}
	minW, ok := g.MinEdgeWeight()
	if !ok || minW != 1.5 {
		t.Fatalf("MinEdgeWeight = %v %v", minW, ok)
	}
	maxW, ok := g.MaxEdgeWeight()
	if !ok || maxW != 2.5 {
		t.Fatalf("MaxEdgeWeight = %v %v", maxW, ok)
	}
}

// Property: for any random graph, Induced over all vertices is isomorphic
// (identical under identity mapping) to the original.
func TestQuickInducedIdentity(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%40 + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		rng := rand.New(rand.NewSource(seed))
		g := GNM(n, m, UniformWeights(1, 5), rng)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		sub := Induced(g, all)
		if sub.G.N() != g.N() || sub.G.M() != g.M() {
			return false
		}
		ok := true
		g.Edges(func(u, v int, w float64) {
			w2, exists := sub.G.EdgeWeight(u, v)
			if !exists || w2 != w {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the vertex set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % (n*(n-1)/2 + 1)
		rng := rand.New(rand.NewSource(seed))
		g := GNM(n, m, UnitWeights(), rng)
		comps := ConnectedComponents(g)
		seen := make([]bool, n)
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesParallel(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		g := SeriesParallel(n, UnitWeights(), rng)
		if !IsConnected(g) {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if g.N() > n {
			t.Fatalf("seed %d: %d vertices, budget %d", seed, g.N(), n)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3, UnitWeights(), rand.New(rand.NewSource(1)))
	if g.N() != 20 || g.M() != 19 || !IsConnected(g) {
		t.Fatalf("caterpillar: %v", g)
	}
}

func TestGridTorus(t *testing.T) {
	g := GridTorus(4, 5, UnitWeights(), rand.New(rand.NewSource(1)))
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus: %v", g)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree %d at %d", g.Degree(v), v)
		}
	}
}
