// Package graph provides the weighted undirected graph representation,
// subgraph views, connected components, and the synthetic graph generators
// used throughout the path-separator library.
//
// Vertices are dense integers 0..N()-1. Edges are undirected with
// non-negative float64 weights. The zero value of Builder is ready to use.
package graph

import (
	"fmt"
	"sort"
)

// Half is one directed half of an undirected edge: the endpoint it leads to
// and the edge weight.
type Half struct {
	To int
	W  float64
}

// Graph is an immutable weighted undirected graph. Build one with a Builder
// or a generator. Methods never mutate the graph; algorithms that "remove"
// vertices build induced subgraphs instead.
type Graph struct {
	adj   [][]Half
	edges int
}

// New returns an empty graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Half, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Neighbors returns the adjacency list of v. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether an edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	a, b := u, v
	if g.Degree(a) > g.Degree(b) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.To == b {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return 0, false
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.W, true
		}
	}
	return 0, false
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for v := range g.adj {
		for _, h := range g.adj[v] {
			if h.To > v {
				s += h.W
			}
		}
	}
	return s
}

// MinEdgeWeight returns the smallest edge weight, or 0 for an edgeless graph.
func (g *Graph) MinEdgeWeight() (float64, bool) {
	first := true
	var best float64
	for v := range g.adj {
		for _, h := range g.adj[v] {
			if first || h.W < best {
				best = h.W
				first = false
			}
		}
	}
	return best, !first
}

// MaxEdgeWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxEdgeWeight() (float64, bool) {
	first := true
	var best float64
	for v := range g.adj {
		for _, h := range g.adj[v] {
			if first || h.W > best {
				best = h.W
				first = false
			}
		}
	}
	return best, !first
}

// Edges calls fn for every undirected edge exactly once, with u < v.
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := range g.adj {
		for _, h := range g.adj[u] {
			if h.To > u {
				fn(u, h.To, h.W)
			}
		}
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph.
// The zero value is ready to use; vertices are created on demand.
type Builder struct {
	n     int
	us    []int
	vs    []int
	ws    []float64
	seen  map[[2]int]int // edge -> index into us/vs/ws, for dedup
	dedup bool
}

// NewBuilder returns a Builder pre-sized for n vertices that silently
// deduplicates repeated edges (keeping the first weight).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[[2]int]int), dedup: true}
}

// EnsureVertex grows the vertex set to include v.
func (b *Builder) EnsureVertex(v int) {
	if v >= b.n {
		b.n = v + 1
	}
}

// AddEdge records the undirected edge {u,v} with weight w. Self-loops are
// ignored. Negative weights are clamped to 0. Duplicate edges keep the
// first weight when the builder deduplicates (the default for NewBuilder).
func (b *Builder) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	if w < 0 {
		w = 0
	}
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	if b.seen != nil {
		key := [2]int{min(u, v), max(u, v)}
		if _, ok := b.seen[key]; ok {
			return
		}
		b.seen[key] = len(b.us)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.us) }

// Build produces the immutable Graph. The builder may be reused afterwards,
// but further AddEdge calls do not affect the built graph.
func (b *Builder) Build() *Graph {
	g := New(b.n)
	deg := make([]int, b.n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	for v := 0; v < b.n; v++ {
		g.adj[v] = make([]Half, 0, deg[v])
	}
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		g.adj[u] = append(g.adj[u], Half{To: v, W: w})
		g.adj[v] = append(g.adj[v], Half{To: u, W: w})
	}
	g.edges = len(b.us)
	return g
}

// Reweighted returns a copy of g with every edge weight replaced by
// fn(u, v, oldWeight), with u < v.
func (g *Graph) Reweighted(fn func(u, v int, w float64) float64) *Graph {
	b := NewBuilder(g.N())
	g.Edges(func(u, v int, w float64) { b.AddEdge(u, v, fn(u, v, w)) })
	return b.Build()
}

// Unweighted returns a copy of g with all edge weights set to 1.
func (g *Graph) Unweighted() *Graph {
	return g.Reweighted(func(_, _ int, _ float64) float64 { return 1 })
}

// SortedNeighbors returns the neighbor IDs of v in increasing order
// (a fresh slice).
func (g *Graph) SortedNeighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for _, h := range g.adj[v] {
		out = append(out, h.To)
	}
	sort.Ints(out)
	return out
}
