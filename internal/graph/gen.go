package graph

import (
	"math"
	"math/rand"
)

// WeightFn assigns a weight to the edge {u,v}. Generators call it once per
// edge with u < v order not guaranteed.
type WeightFn func(u, v int, rng *rand.Rand) float64

// UnitWeights assigns weight 1 to every edge.
func UnitWeights() WeightFn {
	return func(_, _ int, _ *rand.Rand) float64 { return 1 }
}

// UniformWeights assigns independent uniform weights in [lo, hi).
func UniformWeights(lo, hi float64) WeightFn {
	return func(_, _ int, rng *rand.Rand) float64 {
		return lo + rng.Float64()*(hi-lo)
	}
}

// ExpWeights assigns weights 2^u where u is uniform in [0, logSpread),
// producing a controlled aspect ratio for small-world experiments.
func ExpWeights(logSpread float64) WeightFn {
	return func(_, _ int, rng *rand.Rand) float64 {
		return math.Exp2(rng.Float64() * logSpread)
	}
}

// Path returns the path graph on n vertices: 0-1-2-...-(n-1).
func Path(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w(i, i+1, rng))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w(i, i+1, rng))
	}
	if n > 2 {
		b.AddEdge(n-1, 0, w(n-1, 0, rng))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j, w(i, j, rng))
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{r,s}: vertices 0..r-1 on one side,
// r..r+s-1 on the other (the Theorem 7 lower-bound family).
func CompleteBipartite(r, s int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(r + s)
	for i := 0; i < r; i++ {
		for j := 0; j < s; j++ {
			b.AddEdge(i, r+j, w(i, r+j, rng))
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, w(0, i, rng))
	}
	return b.Build()
}

// RandomTree returns a uniform random recursive tree on n vertices: vertex i
// attaches to a uniform earlier vertex.
func RandomTree(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		b.AddEdge(p, i, w(p, i, rng))
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree with n vertices (heap
// numbering: children of i are 2i+1, 2i+2).
func BinaryTree(n int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		p := (i - 1) / 2
		b.AddEdge(p, i, w(p, i, rng))
	}
	return b.Build()
}

// KTree returns a random k-tree on n vertices (treewidth exactly k for
// n > k): start from K_{k+1}, then each new vertex is joined to a random
// existing k-clique. The returned bags can seed a width-k tree
// decomposition; see KTreeWithBags.
func KTree(n, k int, w WeightFn, rng *rand.Rand) *Graph {
	g, _ := KTreeWithBags(n, k, w, rng)
	return g
}

// KTreeWithBags is KTree but also returns, for each vertex i >= k+1, the
// k-clique it was attached to (its "bag" minus itself). The first k+1
// vertices form the seed clique.
func KTreeWithBags(n, k int, w WeightFn, rng *rand.Rand) (*Graph, [][]int) {
	if n < k+1 {
		n = k + 1
	}
	b := NewBuilder(n)
	// Seed clique.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(i, j, w(i, j, rng))
		}
	}
	// cliques holds k-cliques available for attachment.
	var cliques [][]int
	seed := make([]int, 0, k)
	for i := 0; i < k; i++ {
		seed = append(seed, i)
	}
	cliques = append(cliques, seed)
	// All k-subsets of the seed (k+1 choose k) = each vertex omitted once.
	for omit := 0; omit <= k; omit++ {
		c := make([]int, 0, k)
		for i := 0; i <= k; i++ {
			if i != omit {
				c = append(c, i)
			}
		}
		cliques = append(cliques, c)
	}
	bags := make([][]int, n)
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			b.AddEdge(u, v, w(u, v, rng))
		}
		bags[v] = append([]int(nil), c...)
		// New k-cliques: v plus each (k-1)-subset of c.
		for omit := 0; omit < len(c); omit++ {
			nc := make([]int, 0, k)
			for i, u := range c {
				if i != omit {
					nc = append(nc, u)
				}
			}
			nc = append(nc, v)
			cliques = append(cliques, nc)
		}
	}
	return b.Build(), bags
}

// PartialKTree returns a random partial k-tree: a k-tree with each edge
// independently deleted with probability drop, re-connected by keeping a
// random spanning tree of the k-tree intact so the result stays connected.
func PartialKTree(n, k int, drop float64, w WeightFn, rng *rand.Rand) *Graph {
	full := KTree(n, k, w, rng)
	// Spanning tree via DFS.
	keep := make(map[[2]int]bool)
	visited := make([]bool, full.N())
	stack := []int{0}
	visited[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range full.Neighbors(v) {
			if !visited[h.To] {
				visited[h.To] = true
				keep[[2]int{min(v, h.To), max(v, h.To)}] = true
				stack = append(stack, h.To)
			}
		}
	}
	b := NewBuilder(full.N())
	full.Edges(func(u, v int, wt float64) {
		if keep[[2]int{u, v}] || rng.Float64() >= drop {
			b.AddEdge(u, v, wt)
		}
	})
	return b.Build()
}

// GNM returns a uniform random simple graph with n vertices and (up to) m
// distinct edges.
func GNM(n, m int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for b.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, w(u, v, rng))
		}
	}
	return b.Build()
}

// ConnectedGNM returns GNM plus a random spanning tree so the result is
// connected; m counts total edges including the tree and is clamped to
// the complete-graph maximum.
func ConnectedGNM(n, m int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if maxM := n * (n - 1) / 2; m > maxM {
		m = maxM
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		p := perm[rng.Intn(i)]
		b.AddEdge(p, perm[i], w(p, perm[i], rng))
	}
	for b.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, w(u, v, rng))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int, w WeightFn, rng *rand.Rand) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(v, u, w(v, u, rng))
			}
		}
	}
	return b.Build()
}

// Mesh3D returns the a x b x c three-dimensional mesh (the Section 5.3
// example of a graph with no bounded k-path separator). Vertex (x,y,z) has
// ID x + a*(y + b*z).
func Mesh3D(a, b, c int, w WeightFn, rng *rand.Rand) *Graph {
	id := func(x, y, z int) int { return x + a*(y+b*z) }
	bd := NewBuilder(a * b * c)
	for z := 0; z < c; z++ {
		for y := 0; y < b; y++ {
			for x := 0; x < a; x++ {
				v := id(x, y, z)
				if x+1 < a {
					bd.AddEdge(v, id(x+1, y, z), w(v, id(x+1, y, z), rng))
				}
				if y+1 < b {
					bd.AddEdge(v, id(x, y+1, z), w(v, id(x, y+1, z), rng))
				}
				if z+1 < c {
					bd.AddEdge(v, id(x, y, z+1), w(v, id(x, y, z+1), rng))
				}
			}
		}
	}
	return bd.Build()
}

// MeshUniversal returns the t x t unweighted mesh augmented with a universal
// vertex (ID t*t): the K6-minor-free family of Theorem 6(3) on which every
// STRONG k-path separator needs k >= t/3.
func MeshUniversal(t int) *Graph {
	b := NewBuilder(t*t + 1)
	u := t * t
	id := func(x, y int) int { return x + t*y }
	for y := 0; y < t; y++ {
		for x := 0; x < t; x++ {
			v := id(x, y)
			if x+1 < t {
				b.AddEdge(v, id(x+1, y), 1)
			}
			if y+1 < t {
				b.AddEdge(v, id(x, y+1), 1)
			}
			b.AddEdge(v, u, 1)
		}
	}
	return b.Build()
}

// PathPlusStable returns the Section 5.2 example: a path of n/2 vertices
// (weight-1 edges) plus a stable set of n/2 vertices fully joined to the
// path with weight n/2 edges. It contains a K_{n/2,n/2} minor yet is 1-path
// separable, witnessing that path separability does not reduce to excluding
// a small minor.
func PathPlusStable(n int) *Graph {
	h := n / 2
	b := NewBuilder(2 * h)
	for i := 0; i+1 < h; i++ {
		b.AddEdge(i, i+1, 1)
	}
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			b.AddEdge(i, h+j, float64(h))
		}
	}
	return b.Build()
}

// SeriesParallel returns a random series-parallel graph (K4-minor-free,
// treewidth <= 2; one of the network classes the paper's introduction
// names) with approximately n vertices, built by random series/parallel
// compositions of the single edge.
func SeriesParallel(n int, w WeightFn, rng *rand.Rand) *Graph {
	if n < 2 {
		n = 2
	}
	b := NewBuilder(n)
	next := 2
	newVertex := func() int {
		v := next
		next++
		return v
	}
	// build wires a series-parallel network between s and t creating
	// `budget` fresh internal vertices.
	var build func(s, t, budget int)
	build = func(s, t, budget int) {
		if budget <= 0 {
			b.AddEdge(s, t, w(s, t, rng))
			return
		}
		if rng.Intn(2) == 0 {
			// Series: split through a new middle vertex.
			mid := newVertex()
			left := (budget - 1) / 2
			build(s, mid, left)
			build(mid, t, budget-1-left)
		} else {
			// Parallel: two networks sharing the terminals. Keep at least
			// one side trivial occasionally so edge multiplicity stays
			// bounded (the Builder deduplicates parallel unit edges).
			left := rng.Intn(budget + 1)
			build(s, t, left)
			build(s, t, budget-left)
		}
	}
	build(0, 1, n-2)
	return b.Build()
}

// Caterpillar returns a caterpillar tree: a spine path of `spine`
// vertices, each with `legs` pendant leaves — a worst case for
// path-length-sensitive structures.
func Caterpillar(spine, legs int, w WeightFn, rng *rand.Rand) *Graph {
	b := NewBuilder(spine * (1 + legs))
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1, w(i, i+1, rng))
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next, w(i, next, rng))
			next++
		}
	}
	return b.Build()
}

// GridTorus returns the rows x cols torus (grid with wraparound): NOT
// planar for rows,cols >= 3; used for failure-injection tests of the
// planar machinery.
func GridTorus(rows, cols int, w WeightFn, rng *rand.Rand) *Graph {
	id := func(x, y int) int { return x + cols*y }
	b := NewBuilder(rows * cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := id(x, y)
			b.AddEdge(v, id((x+1)%cols, y), w(v, id((x+1)%cols, y), rng))
			b.AddEdge(v, id(x, (y+1)%rows), w(v, id(x, (y+1)%rows), rng))
		}
	}
	return b.Build()
}
