package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ConnectedGNM(40, 100, UniformWeights(0.5, 9), rng)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("shape changed: %v -> %v", g, g2)
	}
	g.Edges(func(u, v int, w float64) {
		w2, ok := g2.EdgeWeight(u, v)
		if !ok {
			t.Fatalf("edge {%d,%d} lost", u, v)
		}
		if w2 != w {
			// %g prints full precision for floats we generate; exact match
			// can fail only for pathological values.
			if diff := w - w2; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("weight changed: %v -> %v", w, w2)
			}
		}
	})
}

func TestReadIgnoresComments(t *testing.T) {
	in := "# comment\nc another\n\np 3 2\ne 0 1 1.5\ne 1 2 2.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"e 0 1 2\n",           // edge before header
		"p x 2\n",             // bad n
		"p 3 1\ne 0 1\n",      // short edge
		"p 3 1\ne a b c\n",    // non-numeric
		"p 3 1\nq what\n",     // unknown record
		"p 2 1\ne 0 1 oops\n", // bad weight
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: error expected for %q", i, in)
		}
	}
}

func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		g := GNM(n, n*2, UniformWeights(1, 5), rng)
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		return g2.N() == g.N() && g2.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
