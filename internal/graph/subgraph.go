package graph

// Sub is an induced subgraph together with the mapping back to the vertex
// IDs of the graph it was taken from.
type Sub struct {
	G *Graph
	// Orig maps a Sub vertex ID to the vertex ID in the parent graph.
	Orig []int
}

// ToParent translates a Sub vertex ID to the parent graph's ID.
func (s *Sub) ToParent(v int) int { return s.Orig[v] }

// Induced returns the subgraph of g induced by the given vertices, with the
// origin map. Duplicate and out-of-range vertices are ignored. Vertex order
// in the Sub follows the input order of the first occurrence.
func Induced(g *Graph, vertices []int) *Sub {
	toSub := make(map[int]int, len(vertices))
	orig := make([]int, 0, len(vertices))
	for _, v := range vertices {
		if v < 0 || v >= g.N() {
			continue
		}
		if _, ok := toSub[v]; ok {
			continue
		}
		toSub[v] = len(orig)
		orig = append(orig, v)
	}
	b := NewBuilder(len(orig))
	for sv, ov := range orig {
		for _, h := range g.Neighbors(ov) {
			if sw, ok := toSub[h.To]; ok && sw > sv {
				b.AddEdge(sv, sw, h.W)
			}
		}
	}
	return &Sub{G: b.Build(), Orig: orig}
}

// RemoveVertices returns the subgraph of g induced by all vertices NOT in
// the removed set.
func RemoveVertices(g *Graph, removed []int) *Sub {
	drop := make([]bool, g.N())
	for _, v := range removed {
		if v >= 0 && v < g.N() {
			drop[v] = true
		}
	}
	keep := make([]int, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return Induced(g, keep)
}

// ConnectedComponents returns the vertex sets of the connected components of
// g, largest first.
func ConnectedComponents(g *Graph) [][]int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	stack := make([]int, 0, 64)
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		stack = append(stack[:0], s)
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, h := range g.Neighbors(v) {
				if comp[h.To] < 0 {
					comp[h.To] = id
					stack = append(stack, h.To)
				}
			}
		}
		comps = append(comps, members)
	}
	// Largest first (stable on ties by first vertex).
	for i := 1; i < len(comps); i++ {
		j := i
		for j > 0 && len(comps[j-1]) < len(comps[j]) {
			comps[j-1], comps[j] = comps[j], comps[j-1]
			j--
		}
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph counts as
// connected.
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	return len(ConnectedComponents(g)) == 1
}

// ComponentsAfterRemoval returns the connected components of g minus the
// removed vertex set, as vertex lists in g's numbering, largest first.
func ComponentsAfterRemoval(g *Graph, removed []int) [][]int {
	sub := RemoveVertices(g, removed)
	comps := ConnectedComponents(sub.G)
	out := make([][]int, len(comps))
	for i, c := range comps {
		lifted := make([]int, len(c))
		for j, v := range c {
			lifted[j] = sub.Orig[v]
		}
		out[i] = lifted
	}
	return out
}
