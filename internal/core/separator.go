// Package core implements the paper's primary contribution: k-path
// separators (Definition 1) and the recursive decomposition tree built
// from them (Section 4).
//
// A separator is a sequence of phases P_0, P_1, ...; each phase is a union
// of paths that are shortest paths in the graph minus all earlier phases.
// Removing the whole separator leaves connected components of at most half
// the vertices. Strategies produce separators for specific graph classes:
//
//   - TreeCentroid: trees are 1-path separable (a center vertex).
//   - CenterBag: treewidth-w graphs are strongly (w+1)-path separable via
//     the center bag of a tree decomposition (Lemma 1, Theorem 7).
//   - Planar: planar embedded graphs via shortest-path-tree fundamental
//     cycles (Theorem 6(1), after Thorup and Lipton–Tarjan) — at most two
//     phases of two shortest paths each.
//   - Greedy: arbitrary graphs via shortest-path-tree centroid paths; the
//     number of paths used is the measured k.
//   - Auto: per-node dispatch among the above.
package core

import (
	"fmt"
	"math"
	"sort"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/shortest"
)

// Path is a path given by its vertex sequence. A single vertex is a valid
// (trivial) shortest path.
type Path struct {
	Vertices []int
}

// Len returns the number of vertices on the path.
func (p Path) Len() int { return len(p.Vertices) }

// Phase is a union of paths removed together; each must be a shortest path
// in the graph minus all earlier phases (Definition 1, property P1).
type Phase struct {
	Paths []Path
}

// Separator is a k-path separator: the sequence of phases (Definition 1).
type Separator struct {
	Phases []Phase
}

// NumPaths returns the total number of paths over all phases — the "k" of
// k-path separability for this separator (property P2).
func (s *Separator) NumPaths() int {
	total := 0
	for _, ph := range s.Phases {
		total += len(ph.Paths)
	}
	return total
}

// NumPhases returns the number of phases.
func (s *Separator) NumPhases() int { return len(s.Phases) }

// Vertices returns all separator vertices, deduplicated, in first-seen
// order.
func (s *Separator) Vertices() []int {
	seen := make(map[int]bool)
	var out []int
	for _, ph := range s.Phases {
		for _, p := range ph.Paths {
			for _, v := range p.Vertices {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// MaxPathDiameter returns the maximum weighted length of any separator
// path in g (used by the Note 2 small-world variant).
func (s *Separator) MaxPathDiameter(g *graph.Graph) float64 {
	var d float64
	for _, ph := range s.Phases {
		for _, p := range ph.Paths {
			if l, ok := shortest.PathLength(g, p.Vertices); ok && l > d {
				d = l
			}
		}
	}
	return d
}

// Input is what a Strategy consumes: a connected graph and, optionally, a
// planar embedding of it and a metrics registry.
type Input struct {
	G   *graph.Graph
	Rot *embed.Rotation
	// Metrics, when non-nil, receives the strategy's internal work
	// accounting (Dijkstra heap and relaxation counters).
	Metrics *obs.Registry
}

// Strategy computes a separator for a connected graph.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Separate returns a separator for the connected graph in.G satisfying
	// Definition 1. It must remove at least one vertex.
	Separate(in Input) (*Separator, error)
}

// Certify verifies that sep is a valid k-path separator of g per
// Definition 1: phases are pairwise disjoint; every path of phase i is a
// shortest path in g minus phases j<i; and the connected components of g
// minus the separator have at most n/2 vertices. It is O(k · Dijkstra) and
// intended for tests and audits.
func Certify(g *graph.Graph, sep *Separator) error {
	if sep == nil || len(sep.Phases) == 0 {
		return fmt.Errorf("core: empty separator")
	}
	n := g.N()
	removed := make(map[int]bool)
	for i, ph := range sep.Phases {
		if len(ph.Paths) == 0 {
			return fmt.Errorf("core: phase %d has no paths", i)
		}
		// Residual graph J_i = g minus earlier phases.
		keep := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if !removed[v] {
				keep = append(keep, v)
			}
		}
		sub := graph.Induced(g, keep)
		toSub := make(map[int]int, len(sub.Orig))
		for sv, ov := range sub.Orig {
			toSub[ov] = sv
		}
		for j, p := range ph.Paths {
			if len(p.Vertices) == 0 {
				return fmt.Errorf("core: phase %d path %d empty", i, j)
			}
			local := make([]int, len(p.Vertices))
			for x, v := range p.Vertices {
				sv, ok := toSub[v]
				if !ok {
					return fmt.Errorf("core: phase %d path %d vertex %d already removed by an earlier phase", i, j, v)
				}
				local[x] = sv
			}
			if !shortest.IsShortestPath(sub.G, local) {
				return fmt.Errorf("core: phase %d path %d is not a shortest path in its residual graph", i, j)
			}
		}
		for _, p := range ph.Paths {
			for _, v := range p.Vertices {
				removed[v] = true
			}
		}
	}
	all := make([]int, 0, len(removed))
	for v := range removed {
		all = append(all, v)
	}
	sort.Ints(all)
	comps := graph.ComponentsAfterRemoval(g, all)
	if len(comps) > 0 && len(comps[0]) > n/2 {
		return fmt.Errorf("core: component of size %d > n/2 = %d remains", len(comps[0]), n/2)
	}
	return nil
}

// IsTree reports whether g is a tree (connected with n-1 edges).
func IsTree(g *graph.Graph) bool {
	return g.N() > 0 && g.M() == g.N()-1 && graph.IsConnected(g)
}

// treeCentroid returns a vertex of the tree g whose removal leaves
// components of at most n/2 vertices.
func treeCentroid(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return -1
	}
	size := make([]int, n)
	parent := make([]int, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == -2 {
				parent[h.To] = v
				stack = append(stack, h.To)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if parent[v] >= 0 {
			size[parent[v]] += size[v]
		}
	}
	// Descend from the root into the heavy child while one exists. The
	// stopping vertex v has all child subtrees <= n/2, and its up-side is
	// n - size[v] < n/2 since we only ever step into subtrees > n/2.
	v := 0
	for {
		next := -1
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == v && size[h.To] > n/2 {
				next = h.To
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// TreeCentroid separates trees with a single one-vertex path: trees are
// 1-path separable (Section 1.2).
type TreeCentroid struct{}

// Name implements Strategy.
func (TreeCentroid) Name() string { return "tree-centroid" }

// Separate implements Strategy. It fails if g is not a tree.
func (TreeCentroid) Separate(in Input) (*Separator, error) {
	if !IsTree(in.G) {
		return nil, fmt.Errorf("core: tree-centroid requires a tree, got n=%d m=%d", in.G.N(), in.G.M())
	}
	c := treeCentroid(in.G)
	return &Separator{Phases: []Phase{{Paths: []Path{{Vertices: []int{c}}}}}}, nil
}

// singleVertexSeparator is the fallback for degenerate tiny graphs.
func singleVertexSeparator(v int) *Separator {
	return &Separator{Phases: []Phase{{Paths: []Path{{Vertices: []int{v}}}}}}
}

// balanceOf returns the size of the largest component of g after removing
// the given vertices.
func balanceOf(g *graph.Graph, removed []int) int {
	comps := graph.ComponentsAfterRemoval(g, removed)
	if len(comps) == 0 {
		return 0
	}
	return len(comps[0])
}

// log2Ceil returns ceil(log2(x)) for x >= 1.
func log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}
