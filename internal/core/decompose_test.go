package core

import (
	"math/rand"
	"testing"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	g := tr.G
	// Every vertex has a home node whose separator (in root IDs) contains it.
	for v := 0; v < g.N(); v++ {
		h := tr.Home[v]
		if h < 0 || h >= len(tr.Nodes) {
			t.Fatalf("vertex %d home %d invalid", v, h)
		}
		found := false
		for _, u := range tr.Nodes[h].SepInRootIDs().Vertices() {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vertex %d not in its home separator", v)
		}
	}
	// Node subgraph sizes halve down the tree.
	for _, n := range tr.Nodes {
		if n.Parent >= 0 && tr.Nodes[n.Parent].Sep != nil {
			p := tr.Nodes[n.Parent]
			if n.Sub.G.N() > p.Sub.G.N()/2 {
				t.Fatalf("node %d size %d > parent half %d", n.ID, n.Sub.G.N(), p.Sub.G.N()/2)
			}
		}
	}
	// HomePath is a root path.
	for v := 0; v < g.N(); v++ {
		hp := tr.HomePath(v)
		if len(hp) == 0 || hp[len(hp)-1] != tr.Home[v] {
			t.Fatalf("HomePath(%d) = %v, home %d", v, hp, tr.Home[v])
		}
		for i := 1; i < len(hp); i++ {
			if tr.Nodes[hp[i]].Parent != hp[i-1] {
				t.Fatalf("HomePath(%d) broken at %d", v, i)
			}
		}
	}
}

func TestDecomposeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomTree(100, graph.UniformWeights(1, 2), rng)
	tr, err := Decompose(g, Options{Strategy: TreeCentroid{}, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.MaxK != 1 {
		t.Errorf("MaxK = %d, want 1 for trees", tr.MaxK)
	}
	if tr.Depth > log2Ceil(100)+2 {
		t.Errorf("depth %d too large", tr.Depth)
	}
}

func TestDecomposeGridPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := embed.Grid(9, 9, graph.UniformWeights(1, 3), rng)
	tr, err := Decompose(r.G, Options{Strategy: Auto{}, Rot: r, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.MaxK > 4 {
		t.Errorf("MaxK = %d, want <= 4 for planar", tr.MaxK)
	}
}

func TestDecomposeApollonianPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := embed.Apollonian(150, graph.UniformWeights(1, 2), rng)
	tr, err := Decompose(r.G, Options{Strategy: Auto{}, Rot: r, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
}

func TestDecomposeKTreeAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.KTree(90, 3, graph.UniformWeights(1, 2), rng)
	tr, err := Decompose(g, Options{Strategy: Auto{}, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.MaxK > 4 {
		t.Errorf("MaxK = %d, want <= 4 for 3-trees", tr.MaxK)
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.Build()
	tr, err := Decompose(g, Options{Strategy: Greedy{}, Certify: false})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().StrategyName != "virtual-root" {
		t.Fatalf("root strategy %q", tr.Root().StrategyName)
	}
	if len(tr.Root().Children) != 2 {
		t.Fatalf("root children = %d", len(tr.Root().Children))
	}
	for v := 0; v < 6; v++ {
		if tr.Home[v] < 0 {
			t.Fatalf("vertex %d unhomed", v)
		}
	}
}

func TestDecomposeMinComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ConnectedGNM(64, 128, graph.UnitWeights(), rng)
	tr, err := Decompose(g, Options{Strategy: Greedy{}, MinComponent: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Depth should be bounded by ~log2(64/8) + slack.
	if tr.Depth > 8 {
		t.Errorf("depth %d", tr.Depth)
	}
}

func TestDecomposeSingleVertex(t *testing.T) {
	g := graph.New(1)
	tr, err := Decompose(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.Home[0] != 0 {
		t.Fatal("singleton decomposition wrong")
	}
}

func TestDecomposeDepthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := embed.Grid(16, 16, graph.UnitWeights(), rng)
	tr, err := Decompose(r.G, Options{Strategy: Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth > log2Ceil(256)+2 {
		t.Errorf("depth %d > log2(256)+2", tr.Depth)
	}
}

func TestAutoSelfPlanarizes(t *testing.T) {
	// A bare grid with NO caller-provided rotation must still get the
	// planar machinery (constant k) via the DMP embedder.
	g := graph.Mesh3D(16, 16, 1, graph.UnitWeights(), nil)
	tr, err := Decompose(g, Options{Strategy: Auto{}})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.MaxK > 4 {
		t.Errorf("maxK = %d; self-planarization should give <= 4", tr.MaxK)
	}
}

func TestAutoSeriesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.SeriesParallel(150, graph.UniformWeights(1, 3), rng)
	tr, err := Decompose(g, Options{Strategy: Auto{}, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Series-parallel: treewidth 2, so k should stay tiny whichever route
	// Auto takes (planar or center bag).
	if tr.MaxK > 4 {
		t.Errorf("maxK = %d on a series-parallel graph", tr.MaxK)
	}
}

func TestDecomposeMaxDepthGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ConnectedGNM(64, 128, graph.UnitWeights(), rng)
	if _, err := Decompose(g, Options{Strategy: Greedy{}, MaxDepth: 1}); err == nil {
		t.Fatal("depth cap not enforced")
	}
}

func TestDecomposeEmptyGraph(t *testing.T) {
	if _, err := Decompose(graph.New(0), Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSepInRootIDsNilSeparator(t *testing.T) {
	n := &Node{}
	if n.SepInRootIDs() != nil {
		t.Fatal("nil separator should lift to nil")
	}
}
