package core

import (
	"fmt"
	"sort"

	"pathsep/internal/graph"
)

// This file implements the clique-weight machinery of Section 3 of the
// paper (Lemma 5): a clique-weight on the center bag's torso whose
// half-size separators are automatically balanced separators of the whole
// graph. It is the bridge the paper uses between Step 3's nearly-planar
// separator and the global n/2 guarantee.

// CliqueWeight is a set of cliques with non-negative weights (the paper's
// (K, ω) pair). Weight reaches a subgraph A as soon as A touches the
// clique: f(A) = Σ_{K ∩ A ≠ ∅} ω(K).
type CliqueWeight struct {
	Cliques [][]int
	Omega   []float64
}

// Total returns f of the whole ground set: the sum of all clique weights.
func (c *CliqueWeight) Total() float64 {
	var s float64
	for _, w := range c.Omega {
		s += w
	}
	return s
}

// WeightOf returns f(A) for the vertex set A.
func (c *CliqueWeight) WeightOf(a []int) float64 {
	inA := make(map[int]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	var s float64
	for i, k := range c.Cliques {
		for _, v := range k {
			if inA[v] {
				s += c.Omega[i]
				break
			}
		}
	}
	return s
}

// Lemma5Weight builds, for a center set C of graph g, the clique-weight
// (K, ω) of Lemma 5 on the torso of C: each component D of g∖C
// contributes its attachment set N(D) ∩ C as a clique of weight |D|, and
// every vertex of C contributes the singleton clique {v} of weight 1.
// TorsoEdges returns the filled-in edges so callers can build the torso
// graph: every attachment set is completed into a clique.
func Lemma5Weight(g *graph.Graph, center []int) (*CliqueWeight, [][2]int, error) {
	n := g.N()
	inC := make(map[int]bool, len(center))
	for _, v := range center {
		if v < 0 || v >= n {
			return nil, nil, fmt.Errorf("core: center vertex %d out of range", v)
		}
		inC[v] = true
	}
	cw := &CliqueWeight{}
	for _, v := range center {
		cw.Cliques = append(cw.Cliques, []int{v})
		cw.Omega = append(cw.Omega, 1)
	}
	var torso [][2]int
	for _, comp := range graph.ComponentsAfterRemoval(g, center) {
		attach := map[int]bool{}
		for _, v := range comp {
			for _, h := range g.Neighbors(v) {
				if inC[h.To] {
					attach[h.To] = true
				}
			}
		}
		if len(attach) == 0 {
			continue // component not adjacent to C; cannot merge across C
		}
		clique := make([]int, 0, len(attach))
		for v := range attach {
			clique = append(clique, v)
		}
		sort.Ints(clique)
		cw.Cliques = append(cw.Cliques, clique)
		cw.Omega = append(cw.Omega, float64(len(comp)))
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				torso = append(torso, [2]int{clique[i], clique[j]})
			}
		}
	}
	return cw, torso, nil
}

// TorsoGraph builds the induced subgraph on the center completed with the
// Lemma 5 fill-in edges (weight 0 for fill-ins: they exist only for the
// connectivity bookkeeping, never as shortest-path material).
func TorsoGraph(g *graph.Graph, center []int, fill [][2]int) *graph.Sub {
	sub := graph.Induced(g, center)
	toSub := make(map[int]int, len(sub.Orig))
	for sv, ov := range sub.Orig {
		toSub[ov] = sv
	}
	b := graph.NewBuilder(sub.G.N())
	sub.G.Edges(func(u, v int, w float64) { b.AddEdge(u, v, w) })
	for _, e := range fill {
		su, ok1 := toSub[e[0]]
		sv, ok2 := toSub[e[1]]
		if ok1 && ok2 {
			b.AddEdge(su, sv, 0)
		}
	}
	return &graph.Sub{G: b.Build(), Orig: sub.Orig}
}

// Lemma5Check verifies the lemma's conclusion for a candidate separator
// S ⊆ C: if S is a half-size separator of the torso under the
// clique-weight (every torso component has f ≤ f(C̃)/2), then every
// component of g∖S has at most n/2 vertices. It returns an error when S
// halves the torso by clique-weight but fails to halve g — i.e. when the
// lemma would be violated (useful as a property test of the
// construction).
func Lemma5Check(g *graph.Graph, center []int, torso *graph.Sub, cw *CliqueWeight, sepTorso []int) error {
	// f-weight of each torso component after removing S.
	half := cw.Total() / 2
	torsoHalved := true
	for _, comp := range graph.ComponentsAfterRemoval(torso.G, sepTorso) {
		lifted := make([]int, len(comp))
		for i, v := range comp {
			lifted[i] = torso.Orig[v]
		}
		if cw.WeightOf(lifted) > half {
			torsoHalved = false
			break
		}
	}
	if !torsoHalved {
		return nil // premise not met; lemma says nothing
	}
	// Conclusion: g minus S has components of at most n/2 vertices.
	lifted := make([]int, len(sepTorso))
	for i, v := range sepTorso {
		lifted[i] = torso.Orig[v]
	}
	comps := graph.ComponentsAfterRemoval(g, lifted)
	if len(comps) > 0 && len(comps[0]) > g.N()/2 {
		return fmt.Errorf("core: Lemma 5 violated: torso halved by clique-weight but g has a component of %d > %d",
			len(comps[0]), g.N()/2)
	}
	return nil
}
