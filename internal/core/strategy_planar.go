package core

import (
	"fmt"
	"math/bits"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// Planar separates embedded planar graphs via Lipton–Tarjan fundamental
// cycles of a shortest-path tree: each phase removes the two monotone
// root paths of the best-balanced fundamental cycle in a triangulation of
// the current largest component. One application leaves components of at
// most 2n/3 vertices, so at most two phases (four shortest paths) reach
// the n/2 bound. This is the sequential-phase counterpart of Thorup's
// strong 3-path separator for planar graphs (Theorem 6(1)).
type Planar struct{}

// Name implements Strategy.
func (Planar) Name() string { return "planar-cycle" }

// Separate implements Strategy. It requires in.Rot to be a valid embedding
// of in.G.
func (Planar) Separate(in Input) (*Separator, error) {
	g := in.G
	n := g.N()
	if in.Rot == nil {
		return nil, fmt.Errorf("core: planar strategy requires an embedding")
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if n <= 2 {
		return singleVertexSeparator(0), nil
	}
	col := shortest.NewCollector(in.Metrics)
	sep := &Separator{}
	removed := make([]int, 0, 16)
	// Two LT phases suffice; allow slack for degenerate tiny components.
	const maxPhases = 32
	for iter := 0; iter < maxPhases; iter++ {
		comps := graph.ComponentsAfterRemoval(g, removed)
		if len(comps) == 0 || len(comps[0]) <= n/2 {
			return sep, nil
		}
		sub := graph.Induced(g, comps[0])
		j := sub.G
		var paths [][]int
		if j.N() <= 3 || j.M() < 3 {
			paths = [][]int{{0}}
		} else {
			rot := in.Rot.Restrict(sub)
			var err error
			paths, err = fundamentalCycleSeparator(j, rot, col)
			if err != nil {
				return nil, fmt.Errorf("core: planar phase %d: %w", iter, err)
			}
		}
		phase := Phase{}
		for _, p := range paths {
			lifted := make([]int, len(p))
			for i, v := range p {
				lifted[i] = sub.Orig[v]
			}
			phase.Paths = append(phase.Paths, Path{Vertices: lifted})
			removed = append(removed, lifted...)
		}
		sep.Phases = append(sep.Phases, phase)
	}
	return nil, fmt.Errorf("core: planar strategy exceeded %d phases", maxPhases)
}

// fundamentalCycleSeparator returns one or two monotone shortest-path-tree
// paths whose union is the vertex set of the best-balanced fundamental
// cycle of a triangulation of (j, rot). By Lipton–Tarjan, the largest
// remaining component has at most 2n/3 vertices.
func fundamentalCycleSeparator(j *graph.Graph, rot *embed.Rotation, col *shortest.Collector) ([][]int, error) {
	n := j.N()
	tri, err := embed.Triangulate(rot)
	if err != nil {
		return nil, err
	}
	t := shortest.Dijkstra(j, 0)
	col.Record(t)
	// Tree-edge flags over the real edge IDs (graph.Edges enumeration order,
	// matching embed.Triangulate).
	edgeID := make(map[[2]int]int, j.M())
	{
		id := 0
		j.Edges(func(u, v int, _ float64) {
			edgeID[[2]int{u, v}] = id
			id++
		})
	}
	isTree := make([]bool, tri.RealM)
	for v := 0; v < n; v++ {
		if p := t.Parent[v]; p >= 0 {
			key := [2]int{min(p, v), max(p, v)}
			id, ok := edgeID[key]
			if !ok {
				return nil, fmt.Errorf("core: SP tree edge {%d,%d} missing from triangulation", p, v)
			}
			isTree[id] = true
		}
	}
	parentFace, parentEdge, post, err := tri.DualTree(isTree)
	if err != nil {
		return nil, err
	}
	// Subtree face counts.
	subFaces := make([]int, len(tri.Faces))
	for _, f := range post {
		subFaces[f]++
		if p := parentFace[f]; p >= 0 {
			subFaces[p] += subFaces[f]
		}
	}
	l := newLCA(t.Parent, t.Hops, n)
	bestEdge, bestCost := -1, n+1
	var bestLCA int
	for f := 1; f < len(tri.Faces); f++ {
		e := parentEdge[f]
		u, v := tri.EU[e], tri.EV[e]
		a := l.query(u, v)
		c := t.Hops[u] + t.Hops[v] - 2*t.Hops[a] + 1
		fin := subFaces[f]
		if (fin-c)%2 != 0 {
			return nil, fmt.Errorf("core: parity violation in cycle counting (F_in=%d, c=%d)", fin, c)
		}
		vin := 1 + (fin-c)/2
		vout := n - vin - c
		cost := max(vin, vout)
		if cost < bestCost {
			bestCost = cost
			bestEdge = e
			bestLCA = a
		}
	}
	if bestEdge < 0 {
		// No non-tree edges: j is a tree; single-vertex centroid.
		return [][]int{{treeCentroid(j)}}, nil
	}
	u, v := tri.EU[bestEdge], tri.EV[bestEdge]
	a := bestLCA
	pu := t.TreePath(a, u) // a..u, a monotone shortest path
	pv := t.TreePath(a, v)
	if pu == nil || pv == nil {
		return nil, fmt.Errorf("core: LCA path extraction failed")
	}
	if len(pv) > 1 {
		return [][]int{pu, pv}, nil
	}
	return [][]int{pu}, nil
}

// lca answers lowest-common-ancestor queries on a rooted forest given by
// parent pointers, via binary lifting.
type lca struct {
	up    [][]int // up[k][v] = 2^k-th ancestor, -1 beyond root
	depth []int
}

func newLCA(parent, depth []int, n int) *lca {
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n))
	}
	up := make([][]int, levels)
	up[0] = make([]int, n)
	copy(up[0], parent)
	for k := 1; k < levels; k++ {
		up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			mid := up[k-1][v]
			if mid < 0 {
				up[k][v] = -1
			} else {
				up[k][v] = up[k-1][mid]
			}
		}
	}
	d := make([]int, n)
	copy(d, depth)
	return &lca{up: up, depth: d}
}

func (l *lca) ancestor(v, steps int) int {
	for k := 0; steps > 0 && v >= 0; k++ {
		if steps&1 == 1 {
			v = l.up[k][v]
		}
		steps >>= 1
	}
	return v
}

func (l *lca) query(u, v int) int {
	if l.depth[u] < l.depth[v] {
		u, v = v, u
	}
	u = l.ancestor(u, l.depth[u]-l.depth[v])
	if u == v {
		return u
	}
	for k := len(l.up) - 1; k >= 0; k-- {
		if l.up[k][u] != l.up[k][v] {
			u = l.up[k][u]
			v = l.up[k][v]
		}
	}
	return l.up[0][u]
}
