package core

import (
	"fmt"
	"sort"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
	"pathsep/internal/treedecomp"
)

// This file implements the vertex-weighted strengthening noted after
// Theorem 1 in the paper: a k-path separator that splits the graph into
// components of at most HALF THE TOTAL VERTEX WEIGHT (rather than half
// the vertex count), with the separator still a sequence of phases of
// shortest paths. Lemmas 1 and 5 "can be easily adapted"; these are the
// adaptations for the implementable strategies.

// totalWeight sums the weights of the given vertices (weight 1 each when
// weights is nil).
func totalWeight(vertices []int, weights []float64) float64 {
	if weights == nil {
		return float64(len(vertices))
	}
	var s float64
	for _, v := range vertices {
		s += weights[v]
	}
	return s
}

// maxComponentWeight returns the heaviest component weight of g minus the
// removed set.
func maxComponentWeight(g *graph.Graph, weights []float64, removed []int) float64 {
	best := 0.0
	for _, comp := range graph.ComponentsAfterRemoval(g, removed) {
		if w := totalWeight(comp, weights); w > best {
			best = w
		}
	}
	return best
}

// WeightedTreeCentroid returns a vertex of the tree g whose removal
// leaves components of at most half the total vertex weight. All weights
// must be non-negative.
func WeightedTreeCentroid(g *graph.Graph, weights []float64) (int, error) {
	n := g.N()
	if n == 0 {
		return -1, fmt.Errorf("core: empty graph")
	}
	if !IsTree(g) {
		return -1, fmt.Errorf("core: weighted centroid requires a tree")
	}
	if weights != nil && len(weights) != n {
		return -1, fmt.Errorf("core: %d weights for %d vertices", len(weights), n)
	}
	wOf := func(v int) float64 {
		if weights == nil {
			return 1
		}
		if weights[v] < 0 {
			return 0
		}
		return weights[v]
	}
	total := 0.0
	for v := 0; v < n; v++ {
		total += wOf(v)
	}
	// Subtree weights rooted at 0.
	parent := make([]int, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == -2 {
				parent[h.To] = v
				stack = append(stack, h.To)
			}
		}
	}
	sub := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		sub[v] += wOf(v)
		if parent[v] >= 0 {
			sub[parent[v]] += sub[v]
		}
	}
	v := 0
	for {
		next := -1
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == v && sub[h.To] > total/2 {
				next = h.To
				break
			}
		}
		if next < 0 {
			return v, nil
		}
		v = next
	}
}

// WeightedCenterBag finds a bag of a heuristic tree decomposition whose
// removal leaves components of at most half the total vertex weight —
// Lemma 1 with vertex weights.
func WeightedCenterBag(g *graph.Graph, weights []float64, h treedecomp.Heuristic) ([]int, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if weights != nil && len(weights) != g.N() {
		return nil, fmt.Errorf("core: %d weights for %d vertices", len(weights), g.N())
	}
	d := treedecomp.Build(g, h)
	total := totalWeightAll(g.N(), weights)
	// Exhaustive scan (Lemma 1 guarantees success); decompositions are
	// linear in n so this is O(n * components) worst case.
	bestBag, bestW := -1, total+1
	for i := range d.Bags {
		w := maxComponentWeight(g, weights, d.Bags[i])
		if w <= total/2 {
			return d.Bags[i], nil
		}
		if w < bestW {
			bestBag, bestW = i, w
		}
	}
	if bestBag < 0 {
		return nil, fmt.Errorf("core: no bags")
	}
	return nil, fmt.Errorf("core: no weighted center bag (best leaves %.3g of %.3g)", bestW, total)
}

func totalWeightAll(n int, weights []float64) float64 {
	if weights == nil {
		return float64(n)
	}
	var s float64
	for _, w := range weights {
		if w > 0 {
			s += w
		}
	}
	return s
}

// WeightedGreedy computes a phased path separator that halves the total
// vertex weight: each phase removes, from the heaviest remaining
// component, the shortest path from a root to the WEIGHTED centroid of
// its shortest-path tree.
func WeightedGreedy(g *graph.Graph, weights []float64, maxPaths int) (*Separator, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("core: %d weights for %d vertices", len(weights), n)
	}
	if n == 1 {
		return singleVertexSeparator(0), nil
	}
	if maxPaths <= 0 {
		maxPaths = 4*isqrt(n) + 16
	}
	total := totalWeightAll(n, weights)
	sep := &Separator{}
	removed := make([]int, 0, 16)
	for len(sep.Phases) < maxPaths {
		comps := graph.ComponentsAfterRemoval(g, removed)
		heaviest, heaviestW := -1, 0.0
		for i, comp := range comps {
			if w := totalWeight(comp, weights); w > heaviestW {
				heaviest, heaviestW = i, w
			}
		}
		if heaviest < 0 || heaviestW <= total/2 {
			if len(sep.Phases) == 0 {
				// Definition 1 requires removing something even when the
				// graph is already balanced by weight.
				return singleVertexSeparator(0), nil
			}
			return sep, nil
		}
		sub := graph.Induced(g, comps[heaviest])
		var subWeights []float64
		if weights != nil {
			subWeights = make([]float64, len(sub.Orig))
			for i, ov := range sub.Orig {
				subWeights[i] = weights[ov]
			}
		}
		path := weightedCentroidPath(sub, subWeights)
		lifted := make([]int, len(path))
		for i, v := range path {
			lifted[i] = sub.Orig[v]
		}
		sep.Phases = append(sep.Phases, Phase{Paths: []Path{{Vertices: lifted}}})
		removed = append(removed, lifted...)
	}
	return nil, fmt.Errorf("core: weighted greedy exceeded %d paths", maxPaths)
}

// weightedCentroidPath is centroidPath with subtree weights.
func weightedCentroidPath(sub *graph.Sub, weights []float64) []int {
	j := sub.G
	if j.N() == 1 {
		return []int{0}
	}
	root := maxDegreeVertex(j)
	t := shortest.Dijkstra(j, root)
	c := weightedSPTCentroid(j.N(), t.Parent, weights)
	return t.PathTo(c)
}

func weightedSPTCentroid(n int, parent []int, weights []float64) int {
	wOf := func(v int) float64 {
		if weights == nil {
			return 1
		}
		if weights[v] < 0 {
			return 0
		}
		return weights[v]
	}
	total := 0.0
	for v := 0; v < n; v++ {
		total += wOf(v)
	}
	sub := make([]float64, n)
	childCount := make([]int, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			childCount[parent[v]]++
		}
	}
	pending := make([]int, n)
	copy(pending, childCount)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		sub[v] += wOf(v)
		if p := parent[v]; p >= 0 {
			sub[p] += sub[v]
			pending[p]--
			if pending[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	root := 0
	for v := 0; v < n; v++ {
		if parent[v] < 0 {
			root = v
			break
		}
	}
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	v := root
	for {
		next := -1
		for _, c := range children[v] {
			if sub[c] > total/2 {
				next = c
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// CertifyWeighted verifies a separator against the weighted Definition 1
// variant: phases of shortest paths in their residual graphs, and
// remaining components of at most half the total vertex weight.
func CertifyWeighted(g *graph.Graph, weights []float64, sep *Separator) error {
	if sep == nil || len(sep.Phases) == 0 {
		return fmt.Errorf("core: empty separator")
	}
	if weights != nil && len(weights) != g.N() {
		return fmt.Errorf("core: %d weights for %d vertices", len(weights), g.N())
	}
	// Path/phase conditions are identical to the unweighted certificate.
	n := g.N()
	removed := make(map[int]bool)
	for i, ph := range sep.Phases {
		keep := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if !removed[v] {
				keep = append(keep, v)
			}
		}
		sub := graph.Induced(g, keep)
		toSub := make(map[int]int, len(sub.Orig))
		for sv, ov := range sub.Orig {
			toSub[ov] = sv
		}
		for j, p := range ph.Paths {
			local := make([]int, len(p.Vertices))
			for x, v := range p.Vertices {
				sv, ok := toSub[v]
				if !ok {
					return fmt.Errorf("core: phase %d path %d vertex removed earlier", i, j)
				}
				local[x] = sv
			}
			if !shortest.IsShortestPath(sub.G, local) {
				return fmt.Errorf("core: phase %d path %d not shortest in residual", i, j)
			}
		}
		for _, p := range ph.Paths {
			for _, v := range p.Vertices {
				removed[v] = true
			}
		}
	}
	all := make([]int, 0, len(removed))
	for v := range removed {
		all = append(all, v)
	}
	sort.Ints(all)
	total := totalWeightAll(n, weights)
	if got := maxComponentWeight(g, weights, all); got > total/2 {
		return fmt.Errorf("core: component weight %.6g > half of %.6g", got, total)
	}
	return nil
}
