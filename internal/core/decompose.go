package core

import (
	"fmt"
	"time"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/par"
	"pathsep/internal/treedecomp"
)

// Node is one node of the decomposition tree (Section 4): a subgraph H of
// the root graph, its k-path separator S(H), and the child components of
// H minus S(H).
type Node struct {
	// ID is the node's index in Tree.Nodes.
	ID int
	// Parent is the parent node ID, -1 for the root.
	Parent int
	// Depth is the distance from the root.
	Depth int
	// Sub is the subgraph H with its mapping to root-graph vertex IDs.
	Sub *graph.Sub
	// Sep is the separator of H in LOCAL (Sub.G) vertex IDs; nil only for a
	// disconnected virtual root.
	Sep *Separator
	// Children are the node IDs of the components of H minus S(H).
	Children []int
	// StrategyName records which strategy separated this node.
	StrategyName string
	// SepNanos is the wall-clock time spent computing this node's
	// separator.
	SepNanos int64
}

// Tree is the decomposition tree of a graph: the root is the whole graph;
// each node's children are the connected components left by its separator.
// Every vertex of the graph is removed by the separator of exactly one
// node, its "home".
type Tree struct {
	G     *graph.Graph
	Nodes []*Node
	// Home[v] is the node ID whose separator removed root vertex v.
	Home []int
	// MaxK is the largest NumPaths over all node separators.
	MaxK int
	// TotalPaths is the sum of NumPaths over all nodes.
	TotalPaths int
	// Depth is the height of the tree.
	Depth int
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.Nodes[0] }

// HomePath returns the node IDs from the root down to Home[v], the nodes
// H_1(v), ..., H_r(v) of Section 4.
func (t *Tree) HomePath(v int) []int {
	var rev []int
	for id := t.Home[v]; id >= 0; id = t.Nodes[id].Parent {
		rev = append(rev, id)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Options configures Decompose.
type Options struct {
	// Strategy separates each node; Auto{} if nil.
	Strategy Strategy
	// Rot is an optional planar embedding of the root graph.
	Rot *embed.Rotation
	// Certify re-verifies every separator against Definition 1 (slow;
	// for tests and audits).
	Certify bool
	// MaxDepth caps recursion depth as a loop guard; 0 means
	// 2*ceil(log2 n) + 8.
	MaxDepth int
	// MinComponent stops recursing into components at or below this size,
	// separating them exhaustively vertex-by-vertex instead. 0 means 1.
	MinComponent int
	// Metrics, when non-nil, receives per-node and per-recursion-level
	// timings, path counts and subgraph size histograms under "core.*",
	// and is forwarded to strategies for their Dijkstra accounting.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one node per decomposition node (IDs
	// match Tree.Nodes) with its strategy, size, k and duration — the
	// decomposition trace tree.
	Trace *obs.Trace
	// Workers bounds the construction worker pool. The recursion is
	// processed level by level: every node of a level computes its
	// separator (and its child components) as an independent task, and
	// the results are merged in a fixed order, so the tree is
	// bit-identical for every worker count. 0 means runtime.GOMAXPROCS(0);
	// 1 forces the serial reference build.
	Workers int
}

// item is one pending decomposition node: a subgraph awaiting its
// separator, linked to its (already numbered) parent.
type item struct {
	sub    *graph.Sub
	rot    *embed.Rotation
	parent int
	depth  int
}

// sepOut is the result of one node's parallel task: its separator plus the
// fully built child items (components of the subgraph minus the
// separator), or the first error encountered.
type sepOut struct {
	sep          *Separator
	strategyName string
	nanos        int64
	children     []item
	err          error
}

// Decompose builds the decomposition tree of g. If g is disconnected, the
// root gets an empty separator with one child per component.
//
// The recursion is processed level by level. Within a level every node is
// an independent task on a bounded worker pool (Options.Workers): the task
// computes the separator, optionally certifies it, and builds the child
// subgraphs. A serial merge pass then numbers the nodes in the exact order
// the serial breadth-first build would, assigns homes, and emits metrics
// and trace nodes — so the resulting Tree (IDs, children order, Home,
// depth) is bit-identical for every worker count.
func Decompose(g *graph.Graph, opt Options) (*Tree, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	span := opt.Metrics.StartSpan("core.decompose")
	defer span.End()
	strat := opt.Strategy
	if strat == nil {
		strat = Auto{}
	}
	maxDepth := opt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 2*log2Ceil(g.N()) + 8
	}
	pool := par.New(opt.Workers, opt.Metrics)
	defer pool.Finish()
	t := &Tree{G: g, Home: make([]int, g.N())}
	for i := range t.Home {
		t.Home[i] = -1
	}

	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	rootSub := graph.Induced(g, all)

	var level []item
	if graph.IsConnected(g) {
		level = append(level, item{sub: rootSub, rot: opt.Rot, parent: -1, depth: 0})
	} else {
		// Virtual root with empty separator.
		root := &Node{ID: 0, Parent: -1, Sub: rootSub, StrategyName: "virtual-root"}
		t.Nodes = append(t.Nodes, root)
		if id := opt.Trace.Add(-1, "virtual-root"); id >= 0 {
			opt.Trace.SetAttr(id, "n", int64(g.N()))
			opt.Trace.SetAttr(id, "m", int64(g.M()))
		}
		for _, comp := range graph.ConnectedComponents(g) {
			sub := graph.Induced(g, comp)
			var rot *embed.Rotation
			if opt.Rot != nil {
				rot = opt.Rot.Restrict(sub)
			}
			level = append(level, item{sub: sub, rot: rot, parent: 0, depth: 1})
		}
	}

	// separate runs inside a worker task: everything that touches no
	// shared tree state. id is the node ID the merge pass will assign —
	// IDs are breadth-first, so they are known before the level runs.
	separate := func(it item, id int) sepOut {
		out := sepOut{}
		j := it.sub.G
		sepStart := time.Now()
		if j.N() <= max(1, opt.MinComponent) {
			// Exhaust tiny components: every vertex its own trivial path.
			phase := Phase{}
			for v := 0; v < j.N(); v++ {
				phase.Paths = append(phase.Paths, Path{Vertices: []int{v}})
			}
			out.sep = &Separator{Phases: []Phase{phase}}
			out.strategyName = "exhaust"
		} else {
			sep, err := strat.Separate(Input{G: j, Rot: it.rot, Metrics: opt.Metrics})
			if err != nil {
				out.err = fmt.Errorf("core: node %d (n=%d, depth=%d): %w", id, j.N(), it.depth, err)
				return out
			}
			out.sep = sep
			out.strategyName = strat.Name()
		}
		out.nanos = time.Since(sepStart).Nanoseconds()
		if opt.Certify {
			if err := Certify(j, out.sep); err != nil {
				out.err = fmt.Errorf("core: node %d: %w", id, err)
				return out
			}
		}
		locals := out.sep.Vertices()
		if len(locals) == 0 {
			out.err = fmt.Errorf("core: node %d: separator removed nothing", id)
			return out
		}
		for _, comp := range graph.ComponentsAfterRemoval(j, locals) {
			childSub := graph.Induced(j, comp)
			// Compose origin maps so children map straight to root IDs.
			for i, lv := range childSub.Orig {
				childSub.Orig[i] = it.sub.Orig[lv]
			}
			lifted := graph.Induced(g, childSub.Orig)
			var childRot *embed.Rotation
			if it.rot != nil {
				childRot = it.rot.Restrict(graph.Induced(j, comp))
			}
			out.children = append(out.children, item{sub: lifted, rot: childRot, parent: id, depth: it.depth + 1})
		}
		return out
	}

	for len(level) > 0 {
		if level[0].depth > maxDepth {
			return nil, fmt.Errorf("core: decomposition exceeded max depth %d", maxDepth)
		}
		base := len(t.Nodes)
		results := make([]sepOut, len(level))
		pool.ForEach(len(level), func(i int) {
			results[i] = separate(level[i], base+i)
		})

		// Serial merge in level order: numbering, homes, metrics, trace.
		var next []item
		for i, it := range level {
			res := results[i]
			if res.err != nil {
				return nil, res.err
			}
			node := &Node{
				ID:           base + i,
				Parent:       it.parent,
				Depth:        it.depth,
				Sub:          it.sub,
				Sep:          res.sep,
				StrategyName: res.strategyName,
				SepNanos:     res.nanos,
			}
			t.Nodes = append(t.Nodes, node)
			if it.parent >= 0 {
				t.Nodes[it.parent].Children = append(t.Nodes[it.parent].Children, node.ID)
			}
			if it.depth > t.Depth {
				t.Depth = it.depth
			}
			j := it.sub.G
			sep := res.sep
			if k := sep.NumPaths(); k > t.MaxK {
				t.MaxK = k
			}
			t.TotalPaths += sep.NumPaths()

			locals := sep.Vertices()
			if m := opt.Metrics; m != nil {
				m.Counter("core.nodes").Inc()
				m.Counter("core.separator_paths").Add(int64(sep.NumPaths()))
				m.Counter("core.separator_vertices").Add(int64(len(locals)))
				m.Counter(fmt.Sprintf("core.level.%02d.separate_ns", it.depth)).Add(node.SepNanos)
				m.Counter(fmt.Sprintf("core.level.%02d.nodes", it.depth)).Inc()
				m.Histogram("core.subgraph_n").Observe(float64(j.N()))
				m.Histogram("core.separate_ns").Observe(float64(node.SepNanos))
				m.Gauge("core.max_k").SetMax(int64(sep.NumPaths()))
			}
			if id := opt.Trace.Add(it.parent, node.StrategyName); id >= 0 {
				opt.Trace.SetNanos(id, node.SepNanos)
				opt.Trace.SetAttr(id, "n", int64(j.N()))
				opt.Trace.SetAttr(id, "m", int64(j.M()))
				opt.Trace.SetAttr(id, "k", int64(sep.NumPaths()))
				opt.Trace.SetAttr(id, "phases", int64(sep.NumPhases()))
				opt.Trace.SetAttr(id, "sepverts", int64(len(locals)))
			}
			for _, lv := range locals {
				ov := it.sub.Orig[lv]
				if t.Home[ov] >= 0 {
					return nil, fmt.Errorf("core: vertex %d separated twice", ov)
				}
				t.Home[ov] = node.ID
			}
			next = append(next, res.children...)
		}
		level = next
	}
	for v, h := range t.Home {
		if h < 0 {
			return nil, fmt.Errorf("core: vertex %d never separated", v)
		}
	}
	if m := opt.Metrics; m != nil {
		m.Gauge("core.depth").Set(int64(t.Depth))
		m.Gauge("core.total_paths").Set(int64(t.TotalPaths))
	}
	return t, nil
}

// SepInRootIDs returns the node's separator with vertices translated to
// root-graph IDs.
func (n *Node) SepInRootIDs() *Separator {
	if n.Sep == nil {
		return nil
	}
	out := &Separator{Phases: make([]Phase, len(n.Sep.Phases))}
	for i, ph := range n.Sep.Phases {
		out.Phases[i].Paths = make([]Path, len(ph.Paths))
		for j, p := range ph.Paths {
			vs := make([]int, len(p.Vertices))
			for x, v := range p.Vertices {
				vs[x] = n.Sub.Orig[v]
			}
			out.Phases[i].Paths[j] = Path{Vertices: vs}
		}
	}
	return out
}

// Auto dispatches per node: trees get the centroid strategy; embedded
// graphs the planar strategy (falling back to Greedy on failure); when no
// embedding is supplied but the graph passes the planar edge bound and is
// not too large, one is computed with the DMP algorithm; graphs whose
// min-degree decomposition is narrow get the center bag; everything else
// Greedy.
type Auto struct {
	// BagWidthLimit is the largest heuristic width for which the center-bag
	// strategy is used (default 16).
	BagWidthLimit int
	// PlanarizeLimit caps the vertex count for attempting a DMP embedding
	// when none is provided (default 4096; DMP is O(n·m)).
	PlanarizeLimit int
}

// Name implements Strategy.
func (Auto) Name() string { return "auto" }

// Separate implements Strategy.
func (a Auto) Separate(in Input) (*Separator, error) {
	if IsTree(in.G) {
		return TreeCentroid{}.Separate(in)
	}
	if in.Rot != nil {
		sep, err := (Planar{}).Separate(in)
		if err == nil {
			return sep, nil
		}
	}
	planarizeLimit := a.PlanarizeLimit
	if planarizeLimit <= 0 {
		planarizeLimit = 4096
	}
	if in.Rot == nil && in.G.N() >= 3 && in.G.N() <= planarizeLimit && in.G.M() <= 3*in.G.N()-6 {
		if rot, err := embed.Planarize(in.G); err == nil {
			if sep, err := (Planar{}).Separate(Input{G: in.G, Rot: rot, Metrics: in.Metrics}); err == nil {
				return sep, nil
			}
		}
	}
	limit := a.BagWidthLimit
	if limit <= 0 {
		limit = 16
	}
	if sep, err := (WidthBounded{Limit: limit}).Separate(in); err == nil {
		return sep, nil
	}
	return Greedy{}.Separate(in)
}

// WidthBounded applies CenterBag only when the heuristic decomposition is
// narrow; it fails otherwise so callers can fall back.
type WidthBounded struct {
	Limit     int
	Heuristic treedecomp.Heuristic
}

// Name implements Strategy.
func (WidthBounded) Name() string { return "center-bag-bounded" }

// Separate implements Strategy.
func (w WidthBounded) Separate(in Input) (*Separator, error) {
	d := treedecomp.Build(in.G, w.Heuristic)
	if width := d.Width(); width > w.Limit {
		return nil, fmt.Errorf("core: heuristic width %d exceeds limit %d", width, w.Limit)
	}
	c := d.CenterBag(in.G)
	if c < 0 {
		return nil, fmt.Errorf("core: no center bag")
	}
	bag := d.Bags[c]
	if got := balanceOf(in.G, bag); got > in.G.N()/2 {
		return nil, fmt.Errorf("core: center bag unbalanced")
	}
	paths := make([]Path, 0, len(bag))
	for _, v := range bag {
		paths = append(paths, Path{Vertices: []int{v}})
	}
	return &Separator{Phases: []Phase{{Paths: paths}}}, nil
}
