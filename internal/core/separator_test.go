package core

import (
	"math/rand"
	"testing"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

func TestTreeCentroidPathGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Path(9, graph.UnitWeights(), rng)
	sep, err := (TreeCentroid{}).Separate(Input{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if sep.NumPaths() != 1 {
		t.Fatalf("paths = %d", sep.NumPaths())
	}
	if err := Certify(g, sep); err != nil {
		t.Fatal(err)
	}
	// Centroid of a 9-path is the middle vertex.
	if v := sep.Phases[0].Paths[0].Vertices[0]; v != 4 {
		t.Errorf("centroid = %d, want 4", v)
	}
}

func TestTreeCentroidRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(1+rng.Intn(200), graph.UniformWeights(1, 3), rng)
		sep, err := (TreeCentroid{}).Separate(Input{G: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := Certify(g, sep); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTreeCentroidRejectsNonTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Cycle(5, graph.UnitWeights(), rng)
	if _, err := (TreeCentroid{}).Separate(Input{G: g}); err == nil {
		t.Fatal("cycle accepted as tree")
	}
}

func TestCenterBagKTree(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(int64(k)))
		g := graph.KTree(80, k, graph.UniformWeights(1, 2), rng)
		sep, err := (CenterBag{}).Separate(Input{G: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := Certify(g, sep); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Theorem 7: strongly (k+1)-path separable. The min-degree heuristic
		// recovers width k on k-trees, so the bag has exactly k+1 vertices.
		if sep.NumPhases() != 1 {
			t.Errorf("k=%d: phases = %d, want 1 (strong)", k, sep.NumPhases())
		}
		if got := sep.NumPaths(); got > k+1 {
			t.Errorf("k=%d: paths = %d, want <= %d", k, got, k+1)
		}
	}
}

func TestGreedyOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(120, 300, graph.UniformWeights(0.5, 2), rng)
		sep, err := (Greedy{}).Separate(Input{G: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := Certify(g, sep); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGreedyOnMesh3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Mesh3D(6, 6, 6, graph.UnitWeights(), rng)
	sep, err := (Greedy{}).Separate(Input{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := Certify(g, sep); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarStrategyGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range [][2]int{{4, 4}, {8, 8}, {5, 12}} {
		r := embed.Grid(dim[0], dim[1], graph.UniformWeights(1, 2), rng)
		sep, err := (Planar{}).Separate(Input{G: r.G, Rot: r})
		if err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		if err := Certify(r.G, sep); err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		// At most two LT phases of at most two paths each.
		if sep.NumPaths() > 4 {
			t.Errorf("grid %v: %d paths, want <= 4", dim, sep.NumPaths())
		}
	}
}

func TestPlanarStrategyApollonian(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := embed.Apollonian(100+rng.Intn(100), graph.UniformWeights(1, 4), rng)
		sep, err := (Planar{}).Separate(Input{G: r.G, Rot: r})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Certify(r.G, sep); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sep.NumPaths() > 4 {
			t.Errorf("seed %d: %d paths", seed, sep.NumPaths())
		}
	}
}

func TestPlanarStrategyOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := embed.Outerplanar(60, 40, graph.UniformWeights(1, 2), rng)
	sep, err := (Planar{}).Separate(Input{G: r.G, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	if err := Certify(r.G, sep); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarBalanceTwoThirds(t *testing.T) {
	// The first phase alone must leave components <= 2n/3 (Lipton–Tarjan).
	rng := rand.New(rand.NewSource(6))
	r := embed.Grid(10, 10, graph.UnitWeights(), rng)
	sep, err := (Planar{}).Separate(Input{G: r.G, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	var first []int
	for _, p := range sep.Phases[0].Paths {
		first = append(first, p.Vertices...)
	}
	if got := balanceOf(r.G, first); got > 2*r.G.N()/3 {
		t.Fatalf("first phase leaves component of %d > 2n/3 = %d", got, 2*r.G.N()/3)
	}
}

func TestCertifyRejectsBadSeparators(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Cycle(8, graph.UnitWeights(), rng)
	// Not a path at all (0 and 4 are not adjacent).
	bad := &Separator{Phases: []Phase{{Paths: []Path{{Vertices: []int{0, 4}}}}}}
	if err := Certify(g, bad); err == nil {
		t.Fatal("non-path accepted")
	}
	// A real path but unbalanced: removing one vertex of C8 leaves 7 > 4.
	unbalanced := &Separator{Phases: []Phase{{Paths: []Path{{Vertices: []int{0}}}}}}
	if err := Certify(g, unbalanced); err == nil {
		t.Fatal("unbalanced separator accepted")
	}
	// Not a shortest path: 0-1-2-3-4-5 in C8 (the other way is shorter).
	long := &Separator{Phases: []Phase{{Paths: []Path{{Vertices: []int{0, 1, 2, 3, 4, 5}}}}}}
	if err := Certify(g, long); err == nil {
		t.Fatal("non-shortest path accepted")
	}
	// Valid: the path 0-1 plus path 4-5 halves C8.
	good := &Separator{Phases: []Phase{{Paths: []Path{
		{Vertices: []int{0, 1}}, {Vertices: []int{4, 5}},
	}}}}
	if err := Certify(g, good); err != nil {
		t.Fatal(err)
	}
	// Duplicate vertex across phases rejected.
	dup := &Separator{Phases: []Phase{
		{Paths: []Path{{Vertices: []int{0, 1}}}},
		{Paths: []Path{{Vertices: []int{1, 2}}}},
	}}
	if err := Certify(g, dup); err == nil {
		t.Fatal("phase overlap accepted")
	}
}

func TestCertifyPhaseSemantics(t *testing.T) {
	// A path that is shortest only AFTER an earlier phase removes a
	// shortcut: C6 with a chord. Removing the chord endpoints first makes
	// the long way a shortest path in the residual.
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6, 1)
	}
	b.AddEdge(0, 3, 1) // chord
	g := b.Build()
	// 1-2-3 is shortest in G only if... d(1,3)=2 both ways; path {1,2,3}
	// length 2 = d -> fine in G. Use a sharper case: path {5,4,3}: d(5,3)
	// via 0-3 chord is 1+1+... 5-0-3 = 2 = len(5,4,3). Still shortest.
	// Phase semantics direct test: phase 0 removes {0}, phase 1 removes
	// {2,3} — valid in residual.
	sep := &Separator{Phases: []Phase{
		{Paths: []Path{{Vertices: []int{0}}}},
		{Paths: []Path{{Vertices: []int{2, 3}}}},
	}}
	if err := Certify(g, sep); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorAccessors(t *testing.T) {
	s := &Separator{Phases: []Phase{
		{Paths: []Path{{Vertices: []int{1, 2, 3}}, {Vertices: []int{3, 4}}}},
		{Paths: []Path{{Vertices: []int{7}}}},
	}}
	if s.NumPaths() != 3 || s.NumPhases() != 2 {
		t.Fatalf("NumPaths=%d NumPhases=%d", s.NumPaths(), s.NumPhases())
	}
	vs := s.Vertices()
	if len(vs) != 5 { // 1,2,3,4,7 with the repeated 3 deduplicated
		t.Fatalf("Vertices = %v", vs)
	}
}
