package core

import (
	"fmt"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
	"pathsep/internal/treedecomp"
)

// CenterBag separates a graph with the center bag of a heuristic tree
// decomposition: every vertex of the bag is a trivial (one-vertex)
// shortest path, so the separator is strong — a single phase of at most
// width+1 paths (Theorem 7: treewidth-r graphs are strongly
// (r+1)-path separable).
type CenterBag struct {
	// Heuristic selects the elimination ordering; MinDegree by default.
	Heuristic treedecomp.Heuristic
}

// Name implements Strategy.
func (s CenterBag) Name() string { return "center-bag" }

// Separate implements Strategy.
func (s CenterBag) Separate(in Input) (*Separator, error) {
	g := in.G
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if g.N() == 1 {
		return singleVertexSeparator(0), nil
	}
	d := treedecomp.Build(g, s.Heuristic)
	c := d.CenterBag(g)
	if c < 0 {
		return nil, fmt.Errorf("core: no center bag found")
	}
	bag := d.Bags[c]
	paths := make([]Path, 0, len(bag))
	for _, v := range bag {
		paths = append(paths, Path{Vertices: []int{v}})
	}
	sep := &Separator{Phases: []Phase{{Paths: paths}}}
	if got := balanceOf(g, bag); got > g.N()/2 {
		return nil, fmt.Errorf("core: center bag left a component of %d > n/2", got)
	}
	return sep, nil
}

// Greedy separates arbitrary connected graphs with shortest-path-tree
// centroid paths: each phase removes, from the largest remaining
// component, the shortest path from a root to the centroid of the
// shortest-path tree. Every phase's path is a shortest path in the
// residual graph, so the output satisfies Definition 1; the number of
// phases used is the measured k.
type Greedy struct {
	// MaxPaths caps the number of paths before giving up (0 = 4*sqrt(n)+16).
	MaxPaths int
}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy-sptree" }

// Separate implements Strategy.
func (s Greedy) Separate(in Input) (*Separator, error) {
	g := in.G
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if n == 1 {
		return singleVertexSeparator(0), nil
	}
	maxPaths := s.MaxPaths
	if maxPaths <= 0 {
		maxPaths = 4*isqrt(n) + 16
	}
	col := shortest.NewCollector(in.Metrics)
	sep := &Separator{}
	removed := make([]int, 0, 16)
	for len(sep.Phases) < maxPaths {
		comps := graph.ComponentsAfterRemoval(g, removed)
		if len(comps) == 0 || len(comps[0]) <= n/2 {
			return sep, nil
		}
		sub := graph.Induced(g, comps[0])
		path := centroidPath(sub, col)
		lifted := make([]int, len(path))
		for i, v := range path {
			lifted[i] = sub.Orig[v]
		}
		sep.Phases = append(sep.Phases, Phase{Paths: []Path{{Vertices: lifted}}})
		removed = append(removed, lifted...)
	}
	return nil, fmt.Errorf("core: greedy exceeded %d paths without halving (n=%d)", maxPaths, n)
}

// centroidPath returns, in sub-local IDs, the shortest path from a root to
// the centroid of the shortest-path tree of the (connected) subgraph.
func centroidPath(sub *graph.Sub, col *shortest.Collector) []int {
	j := sub.G
	if j.N() == 1 {
		return []int{0}
	}
	root := maxDegreeVertex(j)
	t := shortest.Dijkstra(j, root)
	col.Record(t)
	c := sptCentroid(j.N(), t.Parent)
	return t.PathTo(c)
}

func maxDegreeVertex(g *graph.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > bestDeg {
			best, bestDeg = v, g.Degree(v)
		}
	}
	return best
}

// sptCentroid computes the centroid of the tree given by parent pointers
// (root has parent -1): the vertex whose removal from the TREE leaves
// subtrees of at most n/2 vertices. Removing the root-to-centroid path
// leaves tree components of at most n/2 vertices (graph components may
// still merge across non-tree edges, which is why Greedy iterates).
func sptCentroid(n int, parent []int) int {
	size := make([]int, n)
	childCount := make([]int, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			childCount[parent[v]]++
		}
	}
	// Kahn-style leaf peeling to get sizes without recursion.
	pending := make([]int, n)
	copy(pending, childCount)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		size[v]++
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
			pending[p]--
			if pending[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	root := 0
	for v := 0; v < n; v++ {
		if parent[v] < 0 {
			root = v
			break
		}
	}
	// children lists for the descent.
	childHead := make([][]int, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			childHead[p] = append(childHead[p], v)
		}
	}
	v := root
	for {
		next := -1
		for _, c := range childHead[v] {
			if size[c] > n/2 {
				next = c
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
