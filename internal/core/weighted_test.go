package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/graph"
	"pathsep/internal/treedecomp"
)

func TestWeightedTreeCentroidSkew(t *testing.T) {
	// Path 0-1-2-3-4 with all weight on vertex 0: the weighted centroid
	// must be at (or adjacent to) vertex 0.
	rng := rand.New(rand.NewSource(1))
	g := graph.Path(5, graph.UnitWeights(), rng)
	w := []float64{100, 1, 1, 1, 1}
	c, err := WeightedTreeCentroid(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxComponentWeight(g, w, []int{c}); got > 104.0/2 {
		t.Fatalf("centroid %d leaves weight %v > half", c, got)
	}
	if c != 0 {
		t.Errorf("centroid = %d, want 0 for the heavy endpoint", c)
	}
}

func TestWeightedTreeCentroidNilWeightsMatchesUnweighted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(60, graph.UnitWeights(), rng)
		c, err := WeightedTreeCentroid(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxComponentWeight(g, nil, []int{c}); got > 30 {
			t.Fatalf("seed %d: component %v > n/2", seed, got)
		}
	}
}

func TestWeightedTreeCentroidRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := WeightedTreeCentroid(graph.Cycle(5, graph.UnitWeights(), rng), nil); err == nil {
		t.Fatal("cycle accepted")
	}
	g := graph.Path(4, graph.UnitWeights(), rng)
	if _, err := WeightedTreeCentroid(g, []float64{1, 2}); err == nil {
		t.Fatal("wrong weight count accepted")
	}
}

func TestWeightedCenterBag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.KTree(60, 3, graph.UnitWeights(), rng)
	// Concentrate weight on a few vertices.
	w := make([]float64, 60)
	for i := range w {
		w[i] = 1
	}
	w[7], w[42] = 50, 50
	bag, err := WeightedCenterBag(g, w, treedecomp.MinDegree)
	if err != nil {
		t.Fatal(err)
	}
	total := totalWeightAll(60, w)
	if got := maxComponentWeight(g, w, bag); got > total/2 {
		t.Fatalf("bag leaves weight %v > %v/2", got, total)
	}
}

func TestWeightedGreedyHalvesWeight(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(80, 200, graph.UniformWeights(1, 3), rng)
		w := make([]float64, 80)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		sep, err := WeightedGreedy(g, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := CertifyWeighted(g, w, sep); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The weighted certificate implies the paths are valid for the
		// unweighted Definition 1 too (paths shortest in residuals).
	}
}

func TestWeightedGreedySingleHeavyVertex(t *testing.T) {
	// One vertex holds nearly all the weight: the separator must remove it.
	rng := rand.New(rand.NewSource(4))
	g := graph.Cycle(12, graph.UnitWeights(), rng)
	w := make([]float64, 12)
	for i := range w {
		w[i] = 0.1
	}
	w[5] = 1000
	sep, err := WeightedGreedy(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range sep.Vertices() {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("heavy vertex not in separator")
	}
	if err := CertifyWeighted(g, w, sep); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyWeightedRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Cycle(8, graph.UnitWeights(), rng)
	w := []float64{10, 1, 1, 1, 1, 1, 1, 1}
	// {0,1},{4,5} halves the COUNT but vertex 0's weight... removing it
	// means remaining weight is fine; craft a failing one: remove {2,3}
	// and {6,7}: leaves {0,1} (weight 11) and {4,5} (weight 2); total 17,
	// half 8.5 < 11 -> must fail.
	bad := &Separator{Phases: []Phase{{Paths: []Path{
		{Vertices: []int{2, 3}}, {Vertices: []int{6, 7}},
	}}}}
	if err := CertifyWeighted(g, w, bad); err == nil {
		t.Fatal("overweight component accepted")
	}
	// Removing {0,1} and {4,5} leaves weight-2 components: fine.
	good := &Separator{Phases: []Phase{{Paths: []Path{
		{Vertices: []int{0, 1}}, {Vertices: []int{4, 5}},
	}}}}
	if err := CertifyWeighted(g, w, good); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightedGreedyAlwaysCertifies(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(n, 3*n, graph.UniformWeights(1, 2), rng)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 5
		}
		sep, err := WeightedGreedy(g, w, 0)
		if err != nil {
			return false
		}
		return CertifyWeighted(g, w, sep) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
