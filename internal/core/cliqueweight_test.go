package core

import (
	"math/rand"
	"testing"

	"pathsep/internal/graph"
	"pathsep/internal/treedecomp"
)

// centerOf returns a center bag of g (Lemma 1), the premise Lemma 5
// builds on.
func centerOf(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	d := treedecomp.Build(g, treedecomp.MinDegree)
	c := d.CenterBag(g)
	if c < 0 {
		t.Fatal("no center bag")
	}
	return d.Bags[c]
}

func TestLemma5WeightAccountsWholeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ConnectedGNM(60, 140, graph.UnitWeights(), rng)
	center := centerOf(t, g)
	cw, _, err := Lemma5Weight(g, center)
	if err != nil {
		t.Fatal(err)
	}
	// Total weight = |C| + sum of attached component sizes. For a
	// connected graph every component attaches, so total = n.
	if got := cw.Total(); got != float64(g.N()) {
		t.Fatalf("total clique weight %v, want %d", got, g.N())
	}
}

func TestTorsoGraphCompletesAttachments(t *testing.T) {
	// Star-of-cliques: center bag is the hub; each leaf component attaches
	// to two hub vertices, which must become adjacent in the torso.
	b := graph.NewBuilder(8)
	// Hub: 0-1-2-3 path.
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	// Component {4,5} attached to 0 and 3.
	b.AddEdge(4, 0, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 3, 1)
	// Component {6,7} attached to 1 and 3.
	b.AddEdge(6, 1, 1)
	b.AddEdge(6, 7, 1)
	b.AddEdge(7, 3, 1)
	g := b.Build()
	center := []int{0, 1, 2, 3}
	cw, fill, err := Lemma5Weight(g, center)
	if err != nil {
		t.Fatal(err)
	}
	torso := TorsoGraph(g, center, fill)
	// {0,3} and {1,3} must be filled in.
	toSub := map[int]int{}
	for sv, ov := range torso.Orig {
		toSub[ov] = sv
	}
	if !torso.G.HasEdge(toSub[0], toSub[3]) {
		t.Fatal("fill-in {0,3} missing")
	}
	if !torso.G.HasEdge(toSub[1], toSub[3]) {
		t.Fatal("fill-in {1,3} missing")
	}
	// Weight: 4 singletons + two components of size 2 = 8 = n.
	if cw.Total() != 8 {
		t.Fatalf("total = %v", cw.Total())
	}
}

func TestLemma5HoldsOnRandomGraphs(t *testing.T) {
	// Property check of the lemma: for random center bags and ALL small
	// candidate separators of the torso, the implication "torso halved by
	// clique-weight => g halved by vertex count" must hold.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(24, 50, graph.UnitWeights(), rng)
		center := centerOf(t, g)
		cw, fill, err := Lemma5Weight(g, center)
		if err != nil {
			t.Fatal(err)
		}
		torso := TorsoGraph(g, center, fill)
		nT := torso.G.N()
		// All singleton and pair separators of the torso.
		for a := 0; a < nT; a++ {
			if err := Lemma5Check(g, center, torso, cw, []int{a}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for b := a + 1; b < nT; b++ {
				if err := Lemma5Check(g, center, torso, cw, []int{a, b}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
		// And the whole center (trivially halves both).
		all := make([]int, nT)
		for i := range all {
			all[i] = i
		}
		if err := Lemma5Check(g, center, torso, cw, all); err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
	}
}

func TestWeightOf(t *testing.T) {
	cw := &CliqueWeight{
		Cliques: [][]int{{0}, {1, 2}, {2, 3}},
		Omega:   []float64{1, 5, 7},
	}
	if got := cw.WeightOf([]int{0}); got != 1 {
		t.Fatalf("f({0}) = %v", got)
	}
	if got := cw.WeightOf([]int{2}); got != 12 {
		t.Fatalf("f({2}) = %v", got)
	}
	if got := cw.WeightOf([]int{1, 3}); got != 12 {
		t.Fatalf("f({1,3}) = %v", got)
	}
	if got := cw.WeightOf(nil); got != 0 {
		t.Fatalf("f(empty) = %v", got)
	}
	// Key non-additivity the paper points out: f(A)+f(B) can exceed f(G).
	if cw.WeightOf([]int{1})+cw.WeightOf([]int{2}) <= cw.Total() {
		t.Log("note: these sets do not exhibit the non-additivity; construction-dependent")
	}
}
