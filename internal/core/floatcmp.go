// Float comparison helpers — the only place in the library where raw ==
// and != on float64 are permitted (enforced by the floatcmp analyzer in
// internal/analyzers; see DESIGN.md, "Static analysis").
//
// Distances in this library are sums of edge weights accumulated along
// different computation paths, so mathematical equality does not imply
// bit equality, and the oracle/routing guarantees are only (1+ε). Forcing
// every comparison through a named helper makes the intended semantics —
// exact same-provenance identity vs. epsilon tolerance — explicit at the
// call site.

package core

import "math"

// SameDist reports exact (bit-level, modulo -0 == 0) equality of two
// distances. Use it only when both values have the same provenance — one
// was copied from the other, or both were produced by the very same
// computation — so that exact equality is meaningful. For values from
// different computations use ApproxDistEq.
func SameDist(a, b float64) bool { return a == b }

// IsZeroDist reports whether d is exactly zero, the "same vertex /
// degenerate" sentinel used by distance code. Edge weights are clamped
// non-negative, so a zero sum means every hop was exactly zero.
func IsZeroDist(d float64) bool { return d == 0 }

// ApproxDistEq reports |a-b| <= eps * max(1, |a|, |b|): equality up to a
// relative tolerance eps, with an absolute floor of eps near zero.
// Infinities of the same sign compare equal.
func ApproxDistEq(a, b, eps float64) bool {
	if a == b {
		return true // covers equal infinities and exact hits
	}
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= eps*m
}

// WithinFactor reports a <= factor*b, the one-sided (1+ε)-style bound used
// to audit approximation guarantees. NaNs never satisfy it.
func WithinFactor(a, b, factor float64) bool { return a <= factor*b }
