package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	q := New(10)
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for i, k := range keys {
		q.Push(i, k)
	}
	prev := -1.0
	for q.Len() > 0 {
		_, k := q.Pop()
		if k < prev {
			t.Fatalf("pop out of order: %v after %v", k, prev)
		}
		prev = k
	}
}

func TestDecreaseKey(t *testing.T) {
	q := New(3)
	q.Push(0, 10)
	q.Push(1, 20)
	q.Push(2, 30)
	q.DecreaseKey(2, 5)
	item, k := q.Pop()
	if item != 2 || k != 5 {
		t.Fatalf("got %d,%v want 2,5", item, k)
	}
	// Increase via DecreaseKey is a no-op.
	q.DecreaseKey(1, 50)
	item, k = q.Pop()
	if item != 0 || k != 10 {
		t.Fatalf("got %d,%v want 0,10", item, k)
	}
}

func TestPushUpdatesKey(t *testing.T) {
	q := New(2)
	q.Push(0, 10)
	q.Push(1, 5)
	q.Push(0, 1) // update down
	item, _ := q.Pop()
	if item != 0 {
		t.Fatalf("got %d want 0", item)
	}
	q.Push(1, 99) // update up while present
	item, k := q.Pop()
	if item != 1 || k != 99 {
		t.Fatalf("got %d,%v", item, k)
	}
}

func TestContainsAndReset(t *testing.T) {
	q := New(4)
	q.Push(1, 1)
	q.Push(3, 3)
	if !q.Contains(1) || !q.Contains(3) || q.Contains(0) {
		t.Fatal("Contains wrong")
	}
	q.Reset()
	if q.Len() != 0 || q.Contains(1) || q.Contains(3) {
		t.Fatal("Reset incomplete")
	}
	q.Push(1, 7)
	if v, k := q.Pop(); v != 1 || k != 7 {
		t.Fatal("reuse after Reset broken")
	}
}

func TestQuickHeapSortsLikeSort(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		q := New(n)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
			q.Push(i, keys[i])
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			_, k := q.Pop()
			if k != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomOps(t *testing.T) {
	// Random interleaving of push/decrease/pop preserves heap order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		q := New(n)
		current := make(map[int]float64)
		for step := 0; step < 300; step++ {
			switch rng.Intn(3) {
			case 0:
				it := rng.Intn(n)
				k := rng.Float64() * 100
				q.Push(it, k)
				current[it] = k
			case 1:
				it := rng.Intn(n)
				if q.Contains(it) {
					k := current[it] / 2
					q.DecreaseKey(it, k)
					if k < current[it] {
						current[it] = k
					}
				}
			case 2:
				if q.Len() > 0 {
					it, k := q.Pop()
					want, ok := current[it]
					if !ok || k != want {
						return false
					}
					// k must be the global min.
					for other, ok2 := range current {
						if q.Contains(other) && ok2 < k {
							return false
						}
					}
					delete(current, it)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
