// Package pqueue implements an indexed binary min-heap keyed by float64
// priorities, the workhorse of every Dijkstra run in this library.
//
// Items are dense integer IDs in [0, capacity). DecreaseKey is O(log n) via
// an index table. The zero value is not usable; call New.
package pqueue

// PQ is an indexed min-heap over integer items with float64 keys.
type PQ struct {
	heap []int     // heap[i] = item at heap position i
	pos  []int     // pos[item] = heap position, or -1 if absent
	key  []float64 // key[item] = current priority
}

// New returns a heap able to hold items 0..capacity-1.
func New(capacity int) *PQ {
	pos := make([]int, capacity)
	for i := range pos {
		pos[i] = -1
	}
	return &PQ{
		heap: make([]int, 0, capacity),
		pos:  pos,
		key:  make([]float64, capacity),
	}
}

// Len returns the number of items currently in the heap.
func (q *PQ) Len() int { return len(q.heap) }

// Contains reports whether the item is currently in the heap.
func (q *PQ) Contains(item int) bool { return q.pos[item] >= 0 }

// Key returns the last priority set for item (meaningful only if the item
// was pushed at least once).
func (q *PQ) Key(item int) float64 { return q.key[item] }

// Push inserts item with the given priority. If the item is already
// present, its key is updated (both decrease and increase are handled).
func (q *PQ) Push(item int, key float64) {
	if q.pos[item] >= 0 {
		q.update(item, key)
		return
	}
	q.key[item] = key
	q.pos[item] = len(q.heap)
	q.heap = append(q.heap, item)
	q.up(len(q.heap) - 1)
}

// DecreaseKey lowers the item's priority. It is a no-op if the new key is
// not lower or the item is absent.
func (q *PQ) DecreaseKey(item int, key float64) {
	if q.pos[item] < 0 || key >= q.key[item] {
		return
	}
	q.key[item] = key
	q.up(q.pos[item])
}

func (q *PQ) update(item int, key float64) {
	old := q.key[item]
	q.key[item] = key
	switch {
	case key < old:
		q.up(q.pos[item])
	case key > old:
		q.down(q.pos[item])
	}
}

// Pop removes and returns the item with the minimum key.
// It panics on an empty heap; check Len first.
func (q *PQ) Pop() (item int, key float64) {
	item = q.heap[0]
	key = q.key[item]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap = q.heap[:last]
	q.pos[item] = -1
	if last > 0 {
		q.down(0)
	}
	return item, key
}

// Reset empties the heap so it can be reused without reallocation.
func (q *PQ) Reset() {
	for _, it := range q.heap {
		q.pos[it] = -1
	}
	q.heap = q.heap[:0]
}

func (q *PQ) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.key[q.heap[i]] >= q.key[q.heap[parent]] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *PQ) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.key[q.heap[l]] < q.key[q.heap[smallest]] {
			smallest = l
		}
		if r < n && q.key[q.heap[r]] < q.key[q.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *PQ) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}
