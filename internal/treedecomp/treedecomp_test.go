package treedecomp

import (
	"math/rand"
	"testing"

	"pathsep/internal/graph"
)

func TestBuildValidOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(30, 70, graph.UnitWeights(), rng)
		for _, h := range []Heuristic{MinDegree, MinFill} {
			d := Build(g, h)
			if err := d.Validate(g); err != nil {
				t.Fatalf("seed %d heuristic %d: %v", seed, h, err)
			}
		}
	}
}

func TestWidthOnKnownGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Tree: width 1.
	tree := graph.RandomTree(50, graph.UnitWeights(), rng)
	if w := Build(tree, MinDegree).Width(); w != 1 {
		t.Errorf("tree width = %d, want 1", w)
	}
	// Cycle: width 2.
	cyc := graph.Cycle(20, graph.UnitWeights(), rng)
	if w := Build(cyc, MinDegree).Width(); w != 2 {
		t.Errorf("cycle width = %d, want 2", w)
	}
	// Complete graph K6: width 5.
	k6 := graph.Complete(6, graph.UnitWeights(), rng)
	if w := Build(k6, MinDegree).Width(); w != 5 {
		t.Errorf("K6 width = %d, want 5", w)
	}
}

func TestWidthOnKTrees(t *testing.T) {
	// Min-degree recovers the exact width of k-trees.
	for _, k := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(k)))
		g := graph.KTree(60, k, graph.UnitWeights(), rng)
		d := Build(g, MinDegree)
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		if w := d.Width(); w != k {
			t.Errorf("k=%d: width = %d", k, w)
		}
	}
}

func TestMinFillNotWorseOnSmallGraphs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(20, 40, graph.UnitWeights(), rng)
		wd := Build(g, MinDegree).Width()
		wf := Build(g, MinFill).Width()
		// Heuristics differ; both must at least be valid. Record a soft
		// expectation: min-fill within 2x of min-degree.
		if wf > 2*wd+2 {
			t.Errorf("seed %d: minfill %d much worse than mindeg %d", seed, wf, wd)
		}
	}
}

func TestCenterBagHalves(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(31, graph.UnitWeights(), rand.New(rand.NewSource(1))),
		graph.RandomTree(64, graph.UnitWeights(), rand.New(rand.NewSource(2))),
		graph.KTree(50, 3, graph.UnitWeights(), rand.New(rand.NewSource(3))),
		graph.Cycle(40, graph.UnitWeights(), rand.New(rand.NewSource(4))),
		graph.ConnectedGNM(40, 90, graph.UnitWeights(), rand.New(rand.NewSource(5))),
	}
	for i, g := range cases {
		d := Build(g, MinDegree)
		c := d.CenterBag(g)
		if c < 0 {
			t.Fatalf("case %d: no center bag", i)
		}
		comps := graph.ComponentsAfterRemoval(g, d.Bags[c])
		if len(comps) > 0 && len(comps[0]) > g.N()/2 {
			t.Errorf("case %d: component %d > n/2 = %d", i, len(comps[0]), g.N()/2)
		}
	}
}

func TestValidateCatchesMissingVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Path(5, graph.UnitWeights(), rng)
	d := Build(g, MinDegree)
	// Corrupt: drop vertex 0 from all bags.
	for i, b := range d.Bags {
		out := b[:0]
		for _, v := range b {
			if v != 0 {
				out = append(out, v)
			}
		}
		d.Bags[i] = out
	}
	if err := d.Validate(g); err == nil {
		t.Fatal("validation passed with vertex missing")
	}
}

func TestValidateCatchesBrokenSubtree(t *testing.T) {
	// Hand-built invalid decomposition: vertex 0 in two disconnected bags.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	d := &Decomposition{
		Bags: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Tree: [][]int{{1}, {0, 2}, {1}},
	}
	if err := d.Validate(g); err == nil {
		t.Fatal("vertex 0 appears in bags 0 and 2 which are not adjacent")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	d := Build(g, MinDegree)
	if d.NumBags() != 0 {
		t.Fatal("empty graph should have no bags")
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(4, 5, 1)
	g := b.Build()
	d := Build(g, MinDegree)
	// All conditions except global tree-ness apply; Validate handles
	// disconnected graphs by skipping the edge-count check.
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}
