package treedecomp

import (
	"fmt"
	"math/bits"

	"pathsep/internal/graph"
)

// ExactTreewidth computes the exact treewidth of g by dynamic programming
// over subsets of the elimination game (Bodlaender–Fomin–Koster–Kratsch–
// Thilikos style): f(S) is the best possible maximum elimination degree
// over orderings that eliminate exactly the set S first, where the cost of
// eliminating v after S is the number of vertices outside S∪{v} reachable
// from v through S. Exponential: intended for n <= ~16 (tests and
// heuristic calibration).
func ExactTreewidth(g *graph.Graph) (int, error) {
	n := g.N()
	if n == 0 {
		return -1, nil
	}
	if n > 20 {
		return 0, fmt.Errorf("treedecomp: exact treewidth limited to 20 vertices, got %d", n)
	}
	if g.M() == 0 {
		return 0, nil
	}
	// Adjacency bitmasks.
	adj := make([]uint32, n)
	g.Edges(func(u, v int, _ float64) {
		adj[u] |= 1 << v
		adj[v] |= 1 << u
	})
	full := uint32(1)<<n - 1

	// cost(S, v): neighbors of v outside S∪{v}, where "neighbors" includes
	// vertices reachable from v through S (the fill-in effect).
	cost := func(S uint32, v int) int {
		// BFS from v through S.
		seen := uint32(1) << v
		frontier := adj[v]
		reach := uint32(0)
		for frontier != 0 {
			next := uint32(0)
			for f := frontier &^ seen; f != 0; {
				u := bits.TrailingZeros32(f)
				f &= f - 1
				seen |= 1 << u
				if S&(1<<u) != 0 {
					next |= adj[u]
				} else {
					reach |= 1 << u
				}
			}
			frontier = next
		}
		return bits.OnesCount32(reach)
	}

	const inf = 1 << 30
	f := make([]int32, 1<<n)
	for i := range f {
		f[i] = inf
	}
	f[0] = 0
	// Iterate subsets in increasing popcount order implicitly: any order
	// where S∖{v} < S numerically works since removing a bit decreases
	// the value.
	for S := uint32(1); S <= full; S++ {
		best := int32(inf)
		for T := S; T != 0; {
			v := bits.TrailingZeros32(T)
			T &= T - 1
			prev := S &^ (1 << v)
			c := int32(cost(prev, v))
			m := f[prev]
			if c > m {
				m = c
			}
			if m < best {
				best = m
			}
		}
		f[S] = best
	}
	return int(f[full]), nil
}
