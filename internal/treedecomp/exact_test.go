package treedecomp

import (
	"math/rand"
	"testing"

	"pathsep/internal/graph"
)

func TestExactTreewidthKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty-ish", graph.New(3), 0},
		{"edge", graph.Path(2, graph.UnitWeights(), rng), 1},
		{"path", graph.Path(8, graph.UnitWeights(), rng), 1},
		{"tree", graph.RandomTree(10, graph.UnitWeights(), rng), 1},
		{"cycle", graph.Cycle(9, graph.UnitWeights(), rng), 2},
		{"K4", graph.Complete(4, graph.UnitWeights(), rng), 3},
		{"K6", graph.Complete(6, graph.UnitWeights(), rng), 5},
		{"K23", graph.CompleteBipartite(2, 3, graph.UnitWeights(), rng), 2},
		{"K33", graph.CompleteBipartite(3, 3, graph.UnitWeights(), rng), 3},
		{"grid3x3", graph.Mesh3D(3, 3, 1, graph.UnitWeights(), rng), 3},
		{"grid4x4", graph.Mesh3D(4, 4, 1, graph.UnitWeights(), rng), 4},
		{"2tree", graph.KTree(12, 2, graph.UnitWeights(), rng), 2},
		{"3tree", graph.KTree(12, 3, graph.UnitWeights(), rng), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ExactTreewidth(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("treewidth = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestExactTreewidthRejectsLarge(t *testing.T) {
	g := graph.New(25)
	if _, err := ExactTreewidth(g); err == nil {
		t.Fatal("large graph accepted")
	}
}

func TestHeuristicsNeverBeatExact(t *testing.T) {
	// Calibration: heuristic width >= exact width, always.
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(5)
		g := graph.ConnectedGNM(n, n+rng.Intn(2*n), graph.UnitWeights(), rng)
		exact, err := ExactTreewidth(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{MinDegree, MinFill} {
			if w := Build(g, h).Width(); w < exact {
				t.Fatalf("seed %d heuristic %d: width %d below exact %d", seed, h, w, exact)
			}
		}
		// Min-fill on tiny graphs is usually exact; tolerate +2.
		if w := Build(g, MinFill).Width(); w > exact+2 {
			t.Errorf("seed %d: min-fill %d far above exact %d", seed, w, exact)
		}
	}
}
