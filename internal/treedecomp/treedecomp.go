// Package treedecomp computes tree decompositions of graphs via
// elimination-ordering heuristics (min-degree, min-fill), validates them,
// and finds center bags (Lemma 1 of the paper): a bag whose removal leaves
// connected components of at most half the vertices. Center bags are the
// engine of the strong (w+1)-path separator for treewidth-w graphs
// (Theorem 7).
package treedecomp

import (
	"fmt"
	"sort"

	"pathsep/internal/graph"
	"pathsep/internal/pqueue"
)

// Decomposition is a tree decomposition: Bags[i] is a vertex set; Tree is
// the adjacency list of the decomposition tree over bag indices.
type Decomposition struct {
	Bags [][]int
	Tree [][]int
}

// NumBags returns the number of bags.
func (d *Decomposition) NumBags() int { return len(d.Bags) }

// Width returns the width: max bag size minus one.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Heuristic selects the elimination-ordering rule.
type Heuristic int

const (
	// MinDegree eliminates a vertex of minimum current degree at each step.
	// Fast; good widths on sparse graphs.
	MinDegree Heuristic = iota
	// MinFill eliminates the vertex whose elimination adds the fewest fill
	// edges. Slower; usually tighter widths.
	MinFill
)

// Build computes a tree decomposition of g with the given heuristic, using
// the standard elimination-game construction: the bag of an eliminated
// vertex is the vertex plus its current neighborhood, attached to the bag
// of its earliest-eliminated neighbor.
func Build(g *graph.Graph, h Heuristic) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{}
	}
	// Working adjacency as sets.
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool, g.Degree(v))
		for _, hh := range g.Neighbors(v) {
			adj[v][hh.To] = true
		}
	}
	eliminated := make([]bool, n)
	elimPos := make([]int, n)
	bagOf := make([]int, n) // vertex -> its bag index
	d := &Decomposition{}

	// Min-degree selection via an indexed heap keyed by current degree;
	// keys are refreshed whenever a neighborhood changes.
	degHeap := pqueue.New(n)
	for v := 0; v < n; v++ {
		degHeap.Push(v, float64(len(adj[v])))
	}
	pickMinDegree := func() int {
		for degHeap.Len() > 0 {
			v, key := degHeap.Pop()
			if eliminated[v] {
				continue
			}
			if int(key) != len(adj[v]) {
				degHeap.Push(v, float64(len(adj[v])))
				continue
			}
			return v
		}
		return -1
	}
	fillCount := func(v int) int {
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		fill := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !adj[nbrs[i]][nbrs[j]] {
					fill++
				}
			}
		}
		return fill
	}
	pickMinFill := func() int {
		best, bestFill := -1, 1<<62
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			f := fillCount(v)
			if f < bestFill {
				best, bestFill = v, f
				if f == 0 {
					break
				}
			}
		}
		return best
	}

	order := make([]int, 0, n)
	for step := 0; step < n; step++ {
		var v int
		if h == MinFill {
			v = pickMinFill()
		} else {
			v = pickMinDegree()
		}
		// Bag: v + current neighborhood.
		bag := make([]int, 0, len(adj[v])+1)
		bag = append(bag, v)
		for u := range adj[v] {
			bag = append(bag, u)
		}
		sort.Ints(bag[1:])
		bagIdx := len(d.Bags)
		d.Bags = append(d.Bags, bag)
		d.Tree = append(d.Tree, nil)
		bagOf[v] = bagIdx
		eliminated[v] = true
		elimPos[v] = step
		order = append(order, v)
		// Fill in the clique among neighbors and remove v.
		nbrs := bag[1:]
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		adj[v] = nil
		for _, u := range nbrs {
			degHeap.Push(u, float64(len(adj[u])))
		}
	}
	// Attach each bag to the bag of its earliest-eliminated strict
	// neighbor (neighbors in the bag are eliminated after v by
	// construction; attach to the one eliminated first among them).
	for idx, bag := range d.Bags {
		v := bag[0]
		nbrs := bag[1:]
		if len(nbrs) == 0 {
			// Last vertex of a component: attach to any later bag to keep
			// the tree connected; attach to previous bag if one exists.
			if idx+1 < len(d.Bags) {
				d.link(idx, idx+1)
			}
			continue
		}
		earliest := nbrs[0]
		for _, u := range nbrs {
			if elimPos[u] < elimPos[earliest] {
				earliest = u
			}
		}
		d.link(idx, bagOf[earliest])
		_ = v
	}
	return d
}

func (d *Decomposition) link(a, b int) {
	if a == b {
		return
	}
	d.Tree[a] = append(d.Tree[a], b)
	d.Tree[b] = append(d.Tree[b], a)
}

// Validate checks the three tree-decomposition conditions against g and
// that Tree is actually a tree (connected, acyclic) when g is connected.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := g.N()
	if n == 0 {
		return nil
	}
	inBag := make([]bool, n)
	for _, b := range d.Bags {
		for _, v := range b {
			if v < 0 || v >= n {
				return fmt.Errorf("treedecomp: bag vertex %d out of range", v)
			}
			inBag[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !inBag[v] {
			return fmt.Errorf("treedecomp: vertex %d in no bag", v)
		}
	}
	// Edge coverage.
	var bad error
	g.Edges(func(u, v int, _ float64) {
		if bad != nil {
			return
		}
		for _, b := range d.Bags {
			hasU, hasV := false, false
			for _, x := range b {
				if x == u {
					hasU = true
				}
				if x == v {
					hasV = true
				}
			}
			if hasU && hasV {
				return
			}
		}
		bad = fmt.Errorf("treedecomp: edge {%d,%d} in no bag", u, v)
	})
	if bad != nil {
		return bad
	}
	// Connected-subtree condition: the bags containing each vertex induce a
	// connected subgraph of Tree.
	for v := 0; v < n; v++ {
		var with []int
		has := make(map[int]bool)
		for i, b := range d.Bags {
			for _, x := range b {
				if x == v {
					with = append(with, i)
					has[i] = true
					break
				}
			}
		}
		if len(with) <= 1 {
			continue
		}
		// BFS within `has`.
		seen := map[int]bool{with[0]: true}
		queue := []int{with[0]}
		for len(queue) > 0 {
			b := queue[0]
			queue = queue[1:]
			for _, nb := range d.Tree[b] {
				if has[nb] && !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(seen) != len(with) {
			return fmt.Errorf("treedecomp: bags of vertex %d not connected in tree", v)
		}
	}
	// Tree-ness: edges == bags-1 per decomposition-tree component, and the
	// whole structure connected when g is.
	edges := 0
	for _, nbrs := range d.Tree {
		edges += len(nbrs)
	}
	edges /= 2
	if graph.IsConnected(g) && len(d.Bags) > 0 {
		if edges != len(d.Bags)-1 {
			return fmt.Errorf("treedecomp: tree has %d edges for %d bags", edges, len(d.Bags))
		}
	}
	return nil
}

// CenterBag returns the index of a bag C such that every connected
// component of g minus C has at most n/2 vertices (Lemma 1 of the paper).
// It walks from an arbitrary bag toward the large component until the
// halving condition holds.
func (d *Decomposition) CenterBag(g *graph.Graph) int {
	n := g.N()
	if len(d.Bags) == 0 {
		return -1
	}
	cur := 0
	visitedBags := make([]bool, len(d.Bags))
	for iter := 0; iter <= len(d.Bags); iter++ {
		visitedBags[cur] = true
		comps := graph.ComponentsAfterRemoval(g, d.Bags[cur])
		if len(comps) == 0 || len(comps[0]) <= n/2 {
			return cur
		}
		// Move toward the neighbor bag sharing most with the big component.
		big := make(map[int]bool, len(comps[0]))
		for _, v := range comps[0] {
			big[v] = true
		}
		next := -1
		bestOverlap := -1
		for _, nb := range d.Tree[cur] {
			if visitedBags[nb] {
				continue
			}
			overlap := 0
			for _, v := range d.Bags[nb] {
				if big[v] {
					overlap++
				}
			}
			if overlap > bestOverlap {
				bestOverlap = overlap
				next = nb
			}
		}
		if next < 0 {
			// No unvisited neighbor: fall back to exhaustive search.
			break
		}
		cur = next
	}
	// Exhaustive fallback (correct albeit slow; Lemma 1 guarantees success).
	bestBag, bestSize := 0, n+1
	for i := range d.Bags {
		comps := graph.ComponentsAfterRemoval(g, d.Bags[i])
		size := 0
		if len(comps) > 0 {
			size = len(comps[0])
		}
		if size < bestSize {
			bestBag, bestSize = i, size
		}
		if size <= n/2 {
			return i
		}
	}
	return bestBag
}
