package smallworld

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

func decomposeGrid(t *testing.T, side int, w graph.WeightFn, seed int64) *core.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := embed.Grid(side, side, w, rng)
	tree, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestAugmentModels(t *testing.T) {
	tree := decomposeGrid(t, 8, graph.UnitWeights(), 1)
	rng := rand.New(rand.NewSource(2))
	for _, m := range []Model{ModelPathSeparator, ModelClosestSeparator, ModelUniform, ModelNone} {
		a, err := Augment(tree, m, rng)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(a.Long) != tree.G.N() {
			t.Fatalf("%v: Long has %d entries", m, len(a.Long))
		}
		linked := 0
		for v, l := range a.Long {
			if l >= tree.G.N() {
				t.Fatalf("%v: contact %d out of range", m, l)
			}
			if l >= 0 && l != v {
				linked++
			}
		}
		if m == ModelNone && linked != 0 {
			t.Fatalf("ModelNone added %d links", linked)
		}
		if m != ModelNone && linked < tree.G.N()/2 {
			t.Fatalf("%v: only %d/%d vertices linked", m, linked, tree.G.N())
		}
	}
}

func TestLandmarksClaimOne(t *testing.T) {
	// Claim 1: for every x on the path there is a landmark l with
	// d_Q(l, x) <= (3/4) d_J(v, x). We check the path-metric form: with
	// d = d_J(v, x_c), for all x: min over l of |pos[l]-pos[x]| <=
	// (3/4) * max(d, |pos[x]-pos[x_c]| - d) is implied; here we verify the
	// exact inequality using d_J(v,x) >= max(d, d_Q(x_c,x) - d) (triangle
	// inequality through x_c, as Q is a shortest path).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(60)
		pos := make([]float64, n)
		for i := 1; i < n; i++ {
			pos[i] = pos[i-1] + 0.25 + rng.Float64()*3
		}
		c := rng.Intn(n)
		d := rng.Float64() * 10
		delta := pos[n-1] + d + 1
		lm := Landmarks(pos, c, d, delta)
		if len(lm) == 0 {
			t.Fatal("no landmarks")
		}
		dv := func(x int) float64 {
			// Lower bound on d_J(v,x): both d and d_Q(c,x)-d are valid.
			lb := d
			if alt := math.Abs(pos[x]-pos[c]) - d; alt > lb {
				lb = alt
			}
			return lb
		}
		for x := 0; x < n; x++ {
			lbound := dv(x)
			best := math.Inf(1)
			for _, l := range lm {
				if dq := math.Abs(pos[l] - pos[x]); dq < best {
					best = dq
				}
			}
			// Claim 1 promises coverage <= (3/4) d_J(v,x); our check uses
			// the lower bound on d_J(v,x), which makes the test strictly
			// harder only when the bound is tight. Use the paper's 3/4
			// with slack for the d<=0-normalization corner.
			if lbound > 1 && best > 0.751*lbound+d/2 {
				t.Fatalf("trial %d: x=%d best=%v bound=%v d=%v", trial, x, best, lbound, d)
			}
		}
	}
}

func TestLandmarkCountLogarithmic(t *testing.T) {
	// |L| = O(min(t, log Δ)).
	n := 4096
	pos := make([]float64, n)
	for i := 1; i < n; i++ {
		pos[i] = float64(i)
	}
	lm := Landmarks(pos, n/2, 8, float64(n))
	if len(lm) > 4*(12+11) {
		t.Fatalf("landmark set too big: %d", len(lm))
	}
}

func TestGreedyRouteDelivers(t *testing.T) {
	tree := decomposeGrid(t, 10, graph.UnitWeights(), 4)
	rng := rand.New(rand.NewSource(5))
	a, err := Augment(tree, ModelPathSeparator, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.G
	for trial := 0; trial < 30; trial++ {
		s, tgt := rng.Intn(g.N()), rng.Intn(g.N())
		distT := shortest.Dijkstra(g, tgt).Dist
		hops, ok := GreedyRoute(a, s, tgt, distT, 10*g.N())
		if !ok {
			t.Fatalf("trial %d: undelivered from %d to %d", trial, s, tgt)
		}
		if hops > g.N() {
			t.Fatalf("trial %d: %d hops", trial, hops)
		}
	}
}

func TestGreedyNoLinksStillDelivers(t *testing.T) {
	// Pure greedy on the base graph follows shortest paths.
	tree := decomposeGrid(t, 6, graph.UnitWeights(), 6)
	rng := rand.New(rand.NewSource(7))
	a, _ := Augment(tree, ModelNone, rng)
	distT := shortest.Dijkstra(tree.G, 35).Dist
	hops, ok := GreedyRoute(a, 0, 35, distT, 1000)
	if !ok || hops != 10 {
		t.Fatalf("hops = %d ok=%v, want 10 (Manhattan)", hops, ok)
	}
}

func TestExperimentStats(t *testing.T) {
	tree := decomposeGrid(t, 8, graph.UnitWeights(), 8)
	rng := rand.New(rand.NewSource(9))
	a, _ := Augment(tree, ModelPathSeparator, rng)
	st := Experiment(a, 25, rng, nil)
	if st.Trials != 25 || st.Delivered != 25 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanHops <= 0 || st.MaxHops < int(st.MeanHops) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSeparatorBeatsNoLinksOnLargeGrid(t *testing.T) {
	// On a 24x24 grid the separator augmentation should cut mean greedy
	// hops well below the plain-grid Manhattan average (~side*2/3 = 16).
	tree := decomposeGrid(t, 24, graph.UnitWeights(), 10)
	rng := rand.New(rand.NewSource(11))
	aSep, err := Augment(tree, ModelPathSeparator, rng)
	if err != nil {
		t.Fatal(err)
	}
	aNone, _ := Augment(tree, ModelNone, rng)
	sSep := Experiment(aSep, 60, rand.New(rand.NewSource(12)), nil)
	sNone := Experiment(aNone, 60, rand.New(rand.NewSource(12)), nil)
	if sSep.MeanHops >= sNone.MeanHops {
		t.Fatalf("separator links did not help: %v vs %v", sSep.MeanHops, sNone.MeanHops)
	}
}

func TestAugmentKleinbergGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := embed.Grid(8, 8, graph.UnitWeights(), rng)
	a := AugmentKleinbergGrid(r.G, 8, 8, rng)
	for v, l := range a.Long {
		if l < 0 || l >= r.G.N() || l == v {
			t.Fatalf("vertex %d contact %d", v, l)
		}
	}
	st := Experiment(a, 20, rng, nil)
	if st.Delivered != 20 {
		t.Fatalf("kleinberg delivery: %+v", st)
	}
}

func TestExperimentRedraw(t *testing.T) {
	tree := decomposeGrid(t, 8, graph.UnitWeights(), 30)
	rng := rand.New(rand.NewSource(31))
	st, err := ExperimentRedraw(tree, ModelPathSeparator, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 15 {
		t.Fatalf("stats: %+v", st)
	}
}
