// Package smallworld implements Section 4 of the paper: augmenting a
// k-path separable graph with one long-range edge per vertex, drawn from
// the separator-landmark distribution, so that greedy routing takes
// O(k^2 log^2 n log^2 Δ) expected hops (Theorem 3), plus the Note 1/2
// variants and the Kleinberg and uniform baselines.
package smallworld

import (
	"fmt"
	"math"
	"math/rand"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/shortest"
)

// Model selects the long-range edge distribution.
type Model int

const (
	// ModelPathSeparator is the paper's Theorem 3 distribution: a uniform
	// level of the decomposition tree, a uniform separator path, then a
	// uniform landmark from the Claim 1 landmark set.
	ModelPathSeparator Model = iota
	// ModelClosestSeparator is the Note 2 variant: the contact is the
	// closest vertex of the chosen level's separator.
	ModelClosestSeparator
	// ModelUniform links each vertex to a uniform random vertex (baseline).
	ModelUniform
	// ModelNone adds no long-range edges (baseline).
	ModelNone
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelPathSeparator:
		return "path-separator"
	case ModelClosestSeparator:
		return "closest-separator"
	case ModelUniform:
		return "uniform"
	case ModelNone:
		return "none"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Augmented is a graph plus one directed long-range contact per vertex
// (Definition 4; -1 for no contact).
type Augmented struct {
	G    *graph.Graph
	Long []int
}

// Augment draws one long-range contact per vertex according to the model.
// The aspect ratio Δ is estimated from the graph to size the landmark
// scales.
func Augment(t *core.Tree, model Model, rng *rand.Rand) (*Augmented, error) {
	g := t.G
	a := &Augmented{G: g, Long: make([]int, g.N())}
	for i := range a.Long {
		a.Long[i] = -1
	}
	switch model {
	case ModelNone:
		return a, nil
	case ModelUniform:
		for v := 0; v < g.N(); v++ {
			a.Long[v] = rng.Intn(g.N())
		}
		return a, nil
	case ModelClosestSeparator:
		return augmentClosest(t, a, rng)
	case ModelPathSeparator:
		return augmentLandmarks(t, a, rng)
	default:
		return nil, fmt.Errorf("smallworld: unknown model %d", int(model))
	}
}

// pathData is the per-(node,phase,path) precomputation: positions along
// the path and, for every vertex of the residual graph, its distance to
// the path and closest path index.
type pathData struct {
	node     int
	phase    int
	pathIdx  int
	verts    []int     // root IDs of path vertices
	pos      []float64 // prefix weights
	distRoot map[int]float64
	closest  map[int]int // root vertex -> index into verts
}

// collectPathData runs one multi-source Dijkstra per separator path.
func collectPathData(t *core.Tree) ([][]pathData, error) {
	perNode := make([][]pathData, len(t.Nodes))
	for _, node := range t.Nodes {
		if node.Sep == nil {
			continue
		}
		local := node.Sub.G
		removed := make(map[int]bool)
		for phaseIdx, phase := range node.Sep.Phases {
			keep := make([]int, 0, local.N())
			for v := 0; v < local.N(); v++ {
				if !removed[v] {
					keep = append(keep, v)
				}
			}
			sub := graph.Induced(local, keep)
			j := sub.G
			toJ := make(map[int]int, len(sub.Orig))
			for jv, lv := range sub.Orig {
				toJ[lv] = jv
			}
			for pi, p := range phase.Paths {
				pd := pathData{
					node:     node.ID,
					phase:    phaseIdx,
					pathIdx:  pi,
					verts:    make([]int, len(p.Vertices)),
					pos:      make([]float64, len(p.Vertices)),
					distRoot: make(map[int]float64, j.N()),
					closest:  make(map[int]int, j.N()),
				}
				jPath := make([]int, len(p.Vertices))
				idxOf := make(map[int]int, len(p.Vertices))
				for x, lv := range p.Vertices {
					jv, ok := toJ[lv]
					if !ok {
						return nil, fmt.Errorf("smallworld: node %d phase %d: path vertex removed earlier", node.ID, phaseIdx)
					}
					jPath[x] = jv
					idxOf[jv] = x
					pd.verts[x] = node.Sub.Orig[lv]
					if x > 0 {
						w, ok := j.EdgeWeight(jPath[x-1], jv)
						if !ok {
							return nil, fmt.Errorf("smallworld: node %d phase %d: non-edge on path", node.ID, phaseIdx)
						}
						pd.pos[x] = pd.pos[x-1] + w
					}
				}
				tr := shortest.MultiSource(j, jPath)
				for w := 0; w < j.N(); w++ {
					if tr.Source[w] < 0 {
						continue
					}
					rootW := node.Sub.Orig[sub.Orig[w]]
					pd.distRoot[rootW] = tr.Dist[w]
					pd.closest[rootW] = idxOf[tr.Source[w]]
				}
				perNode[node.ID] = append(perNode[node.ID], pd)
			}
			for _, p := range phase.Paths {
				for _, lv := range p.Vertices {
					removed[lv] = true
				}
			}
		}
	}
	return perNode, nil
}

// Landmarks computes the Claim 1 landmark set for a vertex with closest
// path index c and path-distance d, over a path with the given positions:
// in each direction, the first vertex at path-distance >= (i/2)*d for
// i=0..10 and >= 2^i*d for i=0..ceil(log2 Δ). When d == 0 (the vertex is
// on the path) d is replaced by the paper's normalized minimum distance 1.
func Landmarks(pos []float64, c int, d float64, delta float64) []int {
	if d <= 0 {
		d = 1
	}
	logD := 1
	if delta > 1 {
		logD = int(math.Ceil(math.Log2(delta))) + 1
	}
	seen := make(map[int]bool)
	var out []int
	addFirstAtLeast := func(dir int, target float64) {
		// First index x in direction dir from c with |pos[x]-pos[c]| >= target.
		for x := c; x >= 0 && x < len(pos); x += dir {
			if math.Abs(pos[x]-pos[c]) >= target {
				if !seen[x] {
					seen[x] = true
					out = append(out, x)
				}
				return
			}
		}
	}
	for _, dir := range []int{-1, 1} {
		for i := 0; i <= 10; i++ {
			addFirstAtLeast(dir, float64(i)/2*d)
		}
		scale := d
		for i := 0; i < logD; i++ {
			addFirstAtLeast(dir, scale)
			scale *= 2
		}
	}
	return out
}

func augmentLandmarks(t *core.Tree, a *Augmented, rng *rand.Rand) (*Augmented, error) {
	perNode, err := collectPathData(t)
	if err != nil {
		return nil, err
	}
	delta := shortest.AspectRatio(t.G)
	for v := 0; v < t.G.N(); v++ {
		homePath := t.HomePath(v)
		if len(homePath) == 0 {
			continue
		}
		// A handful of redraws avoids useless self-contacts when v sits on
		// the sampled separator path.
		for attempt := 0; attempt < 4 && a.Long[v] < 0; attempt++ {
			nodeID := homePath[rng.Intn(len(homePath))]
			// Candidate paths: those whose residual graph still contains v.
			var candidates []*pathData
			for i := range perNode[nodeID] {
				pd := &perNode[nodeID][i]
				if _, ok := pd.distRoot[v]; ok {
					candidates = append(candidates, pd)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			pd := candidates[rng.Intn(len(candidates))]
			c := pd.closest[v]
			d := pd.distRoot[v]
			lm := Landmarks(pd.pos, c, d, delta)
			// Filter out v itself.
			filtered := lm[:0]
			for _, x := range lm {
				if pd.verts[x] != v {
					filtered = append(filtered, x)
				}
			}
			if len(filtered) == 0 {
				continue
			}
			a.Long[v] = pd.verts[filtered[rng.Intn(len(filtered))]]
		}
	}
	return a, nil
}

func augmentClosest(t *core.Tree, a *Augmented, rng *rand.Rand) (*Augmented, error) {
	// Per node: multi-source Dijkstra from all separator vertices within H.
	closest := make([]map[int]int, len(t.Nodes)) // node -> root vertex -> root contact
	for _, node := range t.Nodes {
		if node.Sep == nil {
			continue
		}
		local := node.Sub.G
		var srcs []int
		for _, lv := range node.Sep.Vertices() {
			srcs = append(srcs, lv)
		}
		tr := shortest.MultiSource(local, srcs)
		m := make(map[int]int, local.N())
		for w := 0; w < local.N(); w++ {
			if tr.Source[w] >= 0 {
				m[node.Sub.Orig[w]] = node.Sub.Orig[tr.Source[w]]
			}
		}
		closest[node.ID] = m
	}
	for v := 0; v < t.G.N(); v++ {
		homePath := t.HomePath(v)
		if len(homePath) == 0 {
			continue
		}
		for attempt := 0; attempt < 4 && a.Long[v] < 0; attempt++ {
			nodeID := homePath[rng.Intn(len(homePath))]
			if m := closest[nodeID]; m != nil {
				if c, ok := m[v]; ok && c != v {
					a.Long[v] = c
				}
			}
		}
	}
	return a, nil
}

// AugmentKleinbergGrid draws, for each vertex of a rows x cols grid, a
// long-range contact with probability proportional to (lattice
// distance)^-2 — Kleinberg's harmonic distribution, the classical
// baseline.
func AugmentKleinbergGrid(g *graph.Graph, rows, cols int, rng *rand.Rand) *Augmented {
	a := &Augmented{G: g, Long: make([]int, g.N())}
	for v := range a.Long {
		a.Long[v] = -1
	}
	latDist := func(u, v int) int {
		ux, uy := u%cols, u/cols
		vx, vy := v%cols, v/cols
		return abs(ux-vx) + abs(uy-vy)
	}
	n := rows * cols
	for v := 0; v < n; v++ {
		// Rejection-free sampling: cumulative weights over all vertices.
		total := 0.0
		for u := 0; u < n; u++ {
			if u != v {
				total += 1 / float64(latDist(u, v)*latDist(u, v))
			}
		}
		r := rng.Float64() * total
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			r -= 1 / float64(latDist(u, v)*latDist(u, v))
			if r <= 0 {
				a.Long[v] = u
				break
			}
		}
		if a.Long[v] < 0 {
			a.Long[v] = (v + 1) % n
		}
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// GreedyRoute walks greedily from s to t: at each step move to the
// neighbor (grid edges plus the long-range contact) closest to t in the
// base-graph metric. distT must be the Dijkstra distances to t.
// It returns the hop count and whether t was reached within maxHops.
func GreedyRoute(a *Augmented, s, t int, distT []float64, maxHops int) (int, bool) {
	cur := s
	for hops := 0; hops <= maxHops; hops++ {
		if cur == t {
			return hops, true
		}
		best, bestD := -1, distT[cur]
		for _, h := range a.G.Neighbors(cur) {
			if distT[h.To] < bestD {
				best, bestD = h.To, distT[h.To]
			}
		}
		if l := a.Long[cur]; l >= 0 && distT[l] < bestD {
			best, bestD = l, distT[l]
		}
		if best < 0 {
			return hops, false // local minimum (cannot happen on connected base graphs)
		}
		cur = best
	}
	return maxHops, false
}

// Stats summarizes greedy-routing trials.
type Stats struct {
	Trials    int
	Delivered int
	MeanHops  float64
	MaxHops   int
}

// Experiment runs `trials` greedy routings between uniform random pairs
// and aggregates hop counts. Each trial redraws the augmentation if
// redraw is non-nil (matching the expectation over <G,D> in Definition 4).
func Experiment(a *Augmented, trials int, rng *rand.Rand, redraw func() *Augmented) Stats {
	return ExperimentObserved(a, trials, rng, redraw, nil)
}

// ExperimentObserved is Experiment with per-trial observability: when reg
// is non-nil, every delivered trial's hop count lands in the
// "smallworld.greedy_hops" histogram and failures increment
// "smallworld.undelivered" (Theorem 3's measured quantity as a
// distribution, not just a mean).
func ExperimentObserved(a *Augmented, trials int, rng *rand.Rand, redraw func() *Augmented, reg *obs.Registry) Stats {
	hopsHist := reg.Histogram("smallworld.greedy_hops") // nil-safe handles
	undelivered := reg.Counter("smallworld.undelivered")
	g := a.G
	st := Stats{Trials: trials}
	totalHops := 0
	maxHops := 64 * (bitsLen(g.N()) + 1) * (bitsLen(g.N()) + 1)
	for i := 0; i < trials; i++ {
		if redraw != nil {
			a = redraw()
		}
		s := rng.Intn(g.N())
		t := rng.Intn(g.N())
		distT := shortest.Dijkstra(g, t).Dist
		if math.IsInf(distT[s], 1) {
			continue
		}
		hops, ok := GreedyRoute(a, s, t, distT, maxHops)
		if ok {
			st.Delivered++
			totalHops += hops
			if hops > st.MaxHops {
				st.MaxHops = hops
			}
			hopsHist.Observe(float64(hops))
		} else {
			undelivered.Inc()
		}
	}
	if st.Delivered > 0 {
		st.MeanHops = float64(totalHops) / float64(st.Delivered)
	}
	return st
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// ExperimentRedraw is Experiment with the augmentation redrawn before
// every trial, matching the expectation over <G, D> of Definition 4
// exactly (one sampled graph per routing attempt).
func ExperimentRedraw(t *core.Tree, model Model, trials int, rng *rand.Rand) (Stats, error) {
	a, err := Augment(t, model, rng)
	if err != nil {
		return Stats{}, err
	}
	redraw := func() *Augmented {
		na, err := Augment(t, model, rng)
		if err != nil {
			return a
		}
		return na
	}
	return Experiment(a, trials, rng, redraw), nil
}
