package routing

import (
	"bytes"
	"testing"

	"pathsep/internal/oracle"
)

// fuzzSeedAddr covers the format's branches: attach present and absent,
// empty and non-empty port lists, negative DFS sentinel.
func fuzzSeedAddr() *Addr {
	return &Addr{Entries: []AddrEntry{
		{
			Key: oracle.Key{Node: 5, Phase: 0, Path: 1}, HasAttach: true,
			AttDist: 1.5, AttPos: 0.25, AttDFS: 7,
			Ports: []AddrPort{{Idx: 0, Dist: 2.5, DFS: 3}, {Idx: 2, Dist: 0, DFS: -1}},
		},
		{Key: oracle.Key{Node: 1, Phase: 2, Path: 0}},
	}}
}

// FuzzDecodeAddr feeds arbitrary bytes to DecodeAddr. Inputs that parse
// must reach an Encode/Decode fixed point.
func FuzzDecodeAddr(f *testing.F) {
	f.Add(fuzzSeedAddr().Encode())
	f.Add((&Addr{}).Encode())
	buf := fuzzSeedAddr().Encode()
	f.Add(buf[:len(buf)/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // absurd entry count

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAddr(data)
		if err != nil {
			return
		}
		canon := a.Encode()
		a2, err := DecodeAddr(canon)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(canon, a2.Encode()) {
			t.Fatal("Encode/Decode is not a fixed point")
		}
	})
}
