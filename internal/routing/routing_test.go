package routing

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

func buildRouter(t *testing.T, g *graph.Graph, rot *embed.Rotation, eps float64) *Router {
	t.Helper()
	tree, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: rot})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(tree, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// auditRouting routes between sampled pairs and verifies delivery, that
// the reported path is a real walk in g, and records the worst stretch.
func auditRouting(t *testing.T, r *Router, pairs int, rng *rand.Rand) float64 {
	t.Helper()
	g := r.G
	worst := 1.0
	maxHops := 50*g.N() + 100
	for trial := 0; trial < pairs; trial++ {
		s := rng.Intn(g.N())
		tgt := rng.Intn(g.N())
		d := shortest.Dijkstra(g, s).Dist[tgt]
		if math.IsInf(d, 1) {
			continue
		}
		path, ok := r.Route(s, tgt, maxHops)
		if !ok {
			t.Fatalf("trial %d: no delivery from %d to %d (path %v)", trial, s, tgt, path)
		}
		if path[0] != s || path[len(path)-1] != tgt {
			t.Fatalf("trial %d: path endpoints %v", trial, path)
		}
		// Consecutive hops must be edges.
		w := r.RouteWeight(path)
		if math.IsInf(w, 1) {
			t.Fatalf("trial %d: route is not a walk: %v", trial, path)
		}
		if s != tgt && d > 0 {
			if ratio := w / d; ratio > worst {
				worst = ratio
			}
		}
	}
	return worst
}

func TestRouteGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := embed.Grid(8, 8, graph.UniformWeights(1, 3), rng)
	router := buildRouter(t, r.G, r, 0.25)
	worst := auditRouting(t, router, 150, rng)
	if worst > 2.0 {
		t.Errorf("worst routing stretch %v too large", worst)
	}
}

func TestRouteTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomTree(60, graph.UniformWeights(1, 4), rng)
	router := buildRouter(t, g, nil, 0.25)
	worst := auditRouting(t, router, 150, rng)
	// Tree routing should be exact: there is only one path.
	if worst > 1+1e-9 {
		t.Errorf("tree routing stretch %v, want 1", worst)
	}
}

func TestRouteKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.KTree(70, 2, graph.UniformWeights(1, 3), rng)
	router := buildRouter(t, g, nil, 0.25)
	worst := auditRouting(t, router, 150, rng)
	if worst > 2.0 {
		t.Errorf("worst routing stretch %v", worst)
	}
}

func TestRouteApollonian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := embed.Apollonian(80, graph.UniformWeights(1, 2), rng)
	router := buildRouter(t, r.G, r, 0.25)
	worst := auditRouting(t, router, 150, rng)
	if worst > 2.0 {
		t.Errorf("worst routing stretch %v", worst)
	}
}

func TestRouteAllPairsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := embed.Grid(5, 5, graph.UnitWeights(), rng)
	router := buildRouter(t, r.G, r, 0.2)
	n := r.G.N()
	for s := 0; s < n; s++ {
		for tgt := 0; tgt < n; tgt++ {
			path, ok := router.Route(s, tgt, 50*n)
			if !ok {
				t.Fatalf("no route %d -> %d", s, tgt)
			}
			if path[len(path)-1] != tgt {
				t.Fatalf("route %d -> %d ends at %d", s, tgt, path[len(path)-1])
			}
		}
	}
}

func TestTableSizesPolylog(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rs := embed.Grid(6, 6, graph.UnitWeights(), rng)
	small := buildRouter(t, rs.G, rs, 0.5)
	rb := embed.Grid(18, 18, graph.UnitWeights(), rng)
	big := buildRouter(t, rb.G, rb, 0.5)
	// n grew 9x; max table size should grow far slower.
	if big.MaxTableWords() > 5*small.MaxTableWords() {
		t.Errorf("table growth: %d -> %d for 9x vertices", small.MaxTableWords(), big.MaxTableWords())
	}
	if small.SpaceWords() <= 0 || small.MaxAddrWords() <= 0 {
		t.Fatal("space accounting")
	}
}

func TestEstimateMatchesRealizedLength(t *testing.T) {
	// Every plan estimate is exactly realizable: the route weight must
	// equal the chosen estimate.
	rng := rand.New(rand.NewSource(8))
	r := embed.Grid(7, 7, graph.UniformWeights(1, 3), rng)
	router := buildRouter(t, r.G, r, 0.25)
	for trial := 0; trial < 100; trial++ {
		s, tgt := rng.Intn(49), rng.Intn(49)
		if s == tgt {
			continue
		}
		est, path, ok := router.EstimateAndRoute(s, tgt, 10*49)
		if !ok {
			t.Fatalf("no route %d->%d", s, tgt)
		}
		if w := router.RouteWeight(path); math.Abs(w-est) > 1e-9 {
			t.Fatalf("route weight %v != estimate %v (%d->%d)", w, est, s, tgt)
		}
	}
}

func TestStretchCappedAtThree(t *testing.T) {
	// The attachment plan caps stretch at 3 by the first-crossing
	// argument, portal plans usually do much better.
	rng := rand.New(rand.NewSource(9))
	r := embed.Apollonian(60, graph.UniformWeights(1, 2), rng)
	router := buildRouter(t, r.G, r, 0.25)
	worst := auditRouting(t, router, 200, rng)
	if worst > 3+1e-9 {
		t.Errorf("stretch %v exceeds the 3 cap", worst)
	}
}

func TestRouteToSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Path(5, graph.UnitWeights(), rng)
	router := buildRouter(t, g, nil, 0.5)
	path, ok := router.Route(3, 3, 10)
	if !ok || len(path) != 1 || path[0] != 3 {
		t.Fatalf("self route: %v %v", path, ok)
	}
}

func TestAddrEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := embed.Grid(6, 6, graph.UniformWeights(1, 3), rng)
	router := buildRouter(t, r.G, r, 0.25)
	for v := 0; v < r.G.N(); v++ {
		buf := router.Addrs[v].Encode()
		got, err := DecodeAddr(buf)
		if err != nil {
			t.Fatalf("addr %d: %v", v, err)
		}
		if len(got.Entries) != len(router.Addrs[v].Entries) {
			t.Fatalf("addr %d: entry count", v)
		}
		for i, e := range got.Entries {
			want := router.Addrs[v].Entries[i]
			if e.Key != want.Key || e.HasAttach != want.HasAttach ||
				e.AttDist != want.AttDist || e.AttPos != want.AttPos || e.AttDFS != want.AttDFS {
				t.Fatalf("addr %d entry %d header mismatch", v, i)
			}
			if len(e.Ports) != len(want.Ports) {
				t.Fatalf("addr %d entry %d ports", v, i)
			}
			for j := range e.Ports {
				if e.Ports[j] != want.Ports[j] {
					t.Fatalf("addr %d entry %d port %d", v, i, j)
				}
			}
		}
		if router.Addrs[v].Bits() != 8*len(buf) {
			t.Fatalf("Bits() inconsistent")
		}
	}
}

func TestDecodeAddrRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := embed.Grid(4, 4, graph.UnitWeights(), rng)
	router := buildRouter(t, r.G, r, 0.5)
	buf := router.Addrs[3].Encode()
	if _, err := DecodeAddr(buf[:len(buf)/3]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := DecodeAddr(append(append([]byte{}, buf...), 1)); err == nil {
		t.Fatal("trailing accepted")
	}
	if _, err := DecodeAddr(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestAddrBitsPolylog(t *testing.T) {
	// The routing address (label) should stay poly-logarithmic in bits.
	rng := rand.New(rand.NewSource(12))
	rs := embed.Grid(6, 6, graph.UnitWeights(), rng)
	small := buildRouter(t, rs.G, rs, 0.5)
	rb := embed.Grid(18, 18, graph.UnitWeights(), rng)
	big := buildRouter(t, rb.G, rb, 0.5)
	maxBits := func(r *Router) int {
		best := 0
		for v := range r.Addrs {
			if b := r.Addrs[v].Bits(); b > best {
				best = b
			}
		}
		return best
	}
	if maxBits(big) > 5*maxBits(small) {
		t.Errorf("address bits grew too fast: %d -> %d for 9x vertices", maxBits(small), maxBits(big))
	}
}
