// Package routing implements the labeled compact routing scheme of the
// paper (abstract, item 3) on top of the k-path separator decomposition.
//
// For every separator path Q (at node H, phase i of its separator) a
// small set of evenly spaced "global" portals is chosen. Each portal p
// carries a shortest-path tree of the residual graph J = H minus earlier
// phases; every vertex of J stores, per portal, its exact distance, its
// parent hop toward p, and DFS intervals for its tree children, so a
// packet can travel up to p and then down to any DFS number — classic
// interval routing on the portal tree. The attachment forest (the
// multi-source shortest-path forest from Q) is stored the same way, plus
// path-neighbor hops for walking along Q.
//
// The target's address holds, per (H, i, Q), its distance and DFS number
// under every portal tree and under the attachment forest. A route picks
// the plan minimizing the estimated length over all shared keys:
//
//	tree plan:   d(u,p) + d(p,t)                      (up, then down)
//	attach plan: d(u,Q) + d_Q(c(u),c(t)) + d(t,Q)     (up, creep, down)
//
// Every plan's estimate is exactly realizable, so delivery is guaranteed
// and the route length equals the chosen estimate. By the first-crossing
// argument the attach plan caps stretch at 3 while portal granularity
// takes it toward 1+ε — the portals-per-path knob trades table size for
// stretch, which experiment E6 measures.
package routing

import (
	"fmt"
	"math"
	"sort"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
	"pathsep/internal/shortest"
)

// ChildIv is a downward-routing interval: forward to Next when the target
// DFS number lies in [Lo, Hi].
type ChildIv struct {
	Next   int32
	Lo, Hi int32
}

// PortState is a vertex's routing state for one global portal.
type PortState struct {
	Idx      int16   // portal index on the path
	Dist     float64 // exact distance to the portal in J
	Up       int32   // next hop toward the portal; -1 at the portal itself
	Children []ChildIv
}

// AttachState is a vertex's routing state for the attachment forest of
// one separator path.
type AttachState struct {
	Dist     float64 // d(v, Q)
	Pos      float64 // position of the closest path vertex c(v)
	Up       int32   // next hop toward c(v); -1 on the path
	Children []ChildIv
	OnPath   bool
	// PrevHop/NextHop walk along the path (valid when OnPath).
	PrevHop, NextHop int32
	PrevPos, NextPos float64
}

// Entry is one vertex's routing state for one separator path.
type Entry struct {
	Key    oracle.Key
	Ports  []PortState
	Attach AttachState
	HasAtt bool
}

// Table is one vertex's complete routing table.
type Table struct {
	Entries []Entry
}

// NumWords estimates the table size in machine words.
func (t *Table) NumWords() int {
	total := 0
	for _, e := range t.Entries {
		total += 3 // key + attach header
		total += 6
		total += 3 * len(e.Attach.Children)
		for _, p := range e.Ports {
			total += 3 + 3*len(p.Children)
		}
	}
	return total
}

// AddrPort is the target-side state for one portal: distance and DFS
// number in the portal tree.
type AddrPort struct {
	Idx  int16
	Dist float64
	DFS  int32
}

// AddrEntry is the target-side state for one separator path.
type AddrEntry struct {
	Key       oracle.Key
	Ports     []AddrPort
	AttDist   float64
	AttPos    float64
	AttDFS    int32
	HasAttach bool
}

// Addr is a vertex's routing address (its "label").
type Addr struct {
	Entries []AddrEntry
}

// NumWords estimates the address size in machine words.
func (a *Addr) NumWords() int {
	total := 0
	for _, e := range a.Entries {
		total += 6 + 3*len(e.Ports)
	}
	return total
}

// Router holds all tables and addresses.
type Router struct {
	G      *graph.Graph
	Tables []Table
	Addrs  []Addr
	// Route-time instruments, cached so the hot path costs one nil check
	// when metrics are disabled. Set via SetMetrics / Options.Metrics.
	rHops   *obs.Histogram
	rHeader *obs.Histogram
	rFailed *obs.Counter
}

// SetMetrics attaches (or, with nil, detaches) route-time metrics:
// "routing.hops" observes the hop count of each delivered route,
// "routing.header_bytes" the size of the target address consulted, and
// "routing.undelivered" counts failed routes.
func (r *Router) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		r.rHops, r.rHeader, r.rFailed = nil, nil, nil
		return
	}
	r.rHops = reg.Histogram("routing.hops")
	r.rHeader = reg.Histogram("routing.header_bytes")
	r.rFailed = reg.Counter("routing.undelivered")
}

// Options configures Build.
type Options struct {
	// Epsilon sizes the portal count per path: ceil(4/ε) when
	// PortalsPerPath is 0.
	Epsilon float64
	// PortalsPerPath overrides the portal count.
	PortalsPerPath int
	// Metrics, when non-nil, receives build-time accounting under
	// "routing.*" and "shortest.*" and attaches route-time histograms to
	// the router (equivalent to calling SetMetrics).
	Metrics *obs.Registry
}

// Build constructs routing tables and addresses from a decomposition tree.
func Build(t *core.Tree, opt Options) (*Router, error) {
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.25
	}
	portals := opt.PortalsPerPath
	if portals <= 0 {
		portals = int(math.Ceil(4 / opt.Epsilon))
	}
	span := opt.Metrics.StartSpan("routing.build")
	defer span.End()
	col := shortest.NewCollector(opt.Metrics)
	r := &Router{
		G:      t.G,
		Tables: make([]Table, t.G.N()),
		Addrs:  make([]Addr, t.G.N()),
	}
	for _, node := range t.Nodes {
		if node.Sep == nil {
			continue
		}
		local := node.Sub.G
		removed := make(map[int]bool)
		for phaseIdx, phase := range node.Sep.Phases {
			keep := make([]int, 0, local.N())
			for v := 0; v < local.N(); v++ {
				if !removed[v] {
					keep = append(keep, v)
				}
			}
			sub := graph.Induced(local, keep)
			j := sub.G
			toJ := make(map[int]int, len(sub.Orig))
			for jv, lv := range sub.Orig {
				toJ[lv] = jv
			}
			rootID := func(jv int) int { return node.Sub.Orig[sub.Orig[jv]] }
			for pi, p := range phase.Paths {
				k := oracle.Key{Node: int32(node.ID), Phase: int16(phaseIdx), Path: int16(pi)}
				verts := make([]int, len(p.Vertices))
				pos := make([]float64, len(p.Vertices))
				for x, lv := range p.Vertices {
					jv, ok := toJ[lv]
					if !ok {
						return nil, fmt.Errorf("routing: node %d phase %d path %d: vertex removed earlier", node.ID, phaseIdx, pi)
					}
					verts[x] = jv
					if x > 0 {
						w, ok := j.EdgeWeight(verts[x-1], jv)
						if !ok {
							return nil, fmt.Errorf("routing: node %d phase %d path %d: non-edge on path", node.ID, phaseIdx, pi)
						}
						pos[x] = pos[x-1] + w
					}
				}
				entryOf := make(map[int]*Entry, j.N()) // J-local -> table entry
				addrOf := make(map[int]*AddrEntry, j.N())
				getEntry := func(jv int) *Entry {
					if e, ok := entryOf[jv]; ok {
						return e
					}
					tb := &r.Tables[rootID(jv)]
					tb.Entries = append(tb.Entries, Entry{Key: k})
					e := &tb.Entries[len(tb.Entries)-1]
					entryOf[jv] = e
					return e
				}
				getAddr := func(jv int) *AddrEntry {
					if e, ok := addrOf[jv]; ok {
						return e
					}
					ad := &r.Addrs[rootID(jv)]
					ad.Entries = append(ad.Entries, AddrEntry{Key: k})
					e := &ad.Entries[len(ad.Entries)-1]
					addrOf[jv] = e
					return e
				}

				// Attachment forest.
				trQ := shortest.MultiSource(j, verts)
				col.Record(trQ)
				dfsA, err := dfsNumber(j.N(), trQ.Parent, trQ.Source)
				if err != nil {
					return nil, err
				}
				idxOf := make(map[int]int, len(verts))
				for x, jv := range verts {
					idxOf[jv] = x
				}
				for w := 0; w < j.N(); w++ {
					if trQ.Source[w] < 0 {
						continue
					}
					e := getEntry(w)
					a := getAddr(w)
					cIdx := idxOf[trQ.Source[w]]
					att := AttachState{
						Dist: trQ.Dist[w],
						Pos:  pos[cIdx],
						Up:   -1,
					}
					if trQ.Parent[w] >= 0 {
						att.Up = int32(rootID(trQ.Parent[w]))
					}
					att.Children = childIntervals(w, dfsA, rootID)
					if x, on := idxOf[w]; on {
						att.OnPath = true
						att.PrevHop, att.NextHop = -1, -1
						if x > 0 {
							att.PrevHop = int32(rootID(verts[x-1]))
							att.PrevPos = pos[x-1]
						}
						if x+1 < len(verts) {
							att.NextHop = int32(rootID(verts[x+1]))
							att.NextPos = pos[x+1]
						}
					}
					e.Attach = att
					e.HasAtt = true
					a.AttDist = trQ.Dist[w]
					a.AttPos = pos[cIdx]
					a.AttDFS = dfsA.in[w]
					a.HasAttach = true
				}

				// Global portal trees.
				for portIdx, x := range evenPortalIdx(pos, portals) {
					tr := shortest.Dijkstra(j, verts[x])
					col.Record(tr)
					src := make([]int, j.N())
					for w := range src {
						if math.IsInf(tr.Dist[w], 1) {
							src[w] = -1
						} else {
							src[w] = verts[x]
						}
					}
					dfsP, err := dfsNumber(j.N(), tr.Parent, src)
					if err != nil {
						return nil, err
					}
					for w := 0; w < j.N(); w++ {
						if src[w] < 0 {
							continue
						}
						e := getEntry(w)
						ps := PortState{
							Idx:  int16(portIdx),
							Dist: tr.Dist[w],
							Up:   -1,
						}
						if tr.Parent[w] >= 0 {
							ps.Up = int32(rootID(tr.Parent[w]))
						}
						ps.Children = childIntervals(w, dfsP, rootID)
						e.Ports = append(e.Ports, ps)
						a := getAddr(w)
						a.Ports = append(a.Ports, AddrPort{
							Idx:  int16(portIdx),
							Dist: tr.Dist[w],
							DFS:  dfsP.in[w],
						})
					}
				}
			}
			for _, p := range phase.Paths {
				for _, lv := range p.Vertices {
					removed[lv] = true
				}
			}
		}
	}
	for v := range r.Tables {
		sortEntries(&r.Tables[v], &r.Addrs[v])
	}
	if m := opt.Metrics; m != nil {
		tableHist := m.Histogram("routing.table_words")
		addrHist := m.Histogram("routing.addr_words")
		for v := range r.Tables {
			tableHist.Observe(float64(r.Tables[v].NumWords()))
			addrHist.Observe(float64(r.Addrs[v].NumWords()))
		}
		m.Gauge("routing.max_table_words").Set(int64(r.MaxTableWords()))
		m.Gauge("routing.max_addr_words").Set(int64(r.MaxAddrWords()))
		r.SetMetrics(m)
	}
	return r, nil
}

// dfsResult carries a DFS pre-order numbering of a forest: in[v] is the
// vertex's number, out[v] the max number in its subtree, children the
// child lists.
type dfsResult struct {
	in, out  []int32
	children [][]int
}

// dfsNumber numbers the forest given by parent pointers (roots have
// parent < 0 among vertices with src >= 0; vertices with src < 0 are
// outside the forest).
func dfsNumber(n int, parent, src []int) (*dfsResult, error) {
	d := &dfsResult{
		in:       make([]int32, n),
		out:      make([]int32, n),
		children: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		d.in[v] = -1
		if src[v] >= 0 && parent[v] >= 0 {
			d.children[parent[v]] = append(d.children[parent[v]], v)
		}
	}
	counter := int32(0)
	var stack []int
	for root := 0; root < n; root++ {
		if src[root] < 0 || parent[root] >= 0 {
			continue
		}
		// Iterative DFS with post-processing of out[].
		stack = append(stack[:0], root)
		var order []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			d.in[v] = counter
			counter++
			order = append(order, v)
			for _, c := range d.children[v] {
				stack = append(stack, c)
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			d.out[v] = d.in[v]
			for _, c := range d.children[v] {
				if d.out[c] > d.out[v] {
					d.out[v] = d.out[c]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if src[v] >= 0 && d.in[v] < 0 {
			return nil, fmt.Errorf("routing: forest numbering missed vertex %d", v)
		}
	}
	return d, nil
}

// childIntervals builds the downward-routing intervals of w.
func childIntervals(w int, d *dfsResult, rootID func(int) int) []ChildIv {
	if len(d.children[w]) == 0 {
		return nil
	}
	out := make([]ChildIv, 0, len(d.children[w]))
	for _, c := range d.children[w] {
		out = append(out, ChildIv{Next: int32(rootID(c)), Lo: d.in[c], Hi: d.out[c]})
	}
	return out
}

func evenPortalIdx(pos []float64, p int) []int {
	n := len(pos)
	if n == 0 {
		return nil
	}
	if p < 2 {
		p = 2
	}
	if n <= p {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	total := pos[n-1]
	out := []int{0}
	for i := 1; i < p-1; i++ {
		target := total * float64(i) / float64(p-1)
		x := sort.SearchFloat64s(pos, target)
		if x >= n {
			x = n - 1
		}
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

func keyLess(a, b oracle.Key) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	return a.Path < b.Path
}

func sortEntries(t *Table, a *Addr) {
	sort.Slice(t.Entries, func(i, j int) bool { return keyLess(t.Entries[i].Key, t.Entries[j].Key) })
	sort.Slice(a.Entries, func(i, j int) bool { return keyLess(a.Entries[i].Key, a.Entries[j].Key) })
}

// planKind distinguishes the two plan families.
type planKind uint8

const (
	planTree planKind = iota
	planAttach
)

type routePlan struct {
	kind      planKind
	key       oracle.Key
	est       float64
	portIdx   int16   // tree plan
	targetDFS int32   // tree plan / attach plan (attach forest DFS)
	targetPos float64 // attach plan: position of c(t)
}

// Route forwards a packet from s to target using only per-vertex tables
// and the target's address. It returns the vertex path and whether the
// target was reached. Delivery is guaranteed for connected pairs: the
// chosen plan's route is exactly realizable (up the portal tree, then
// down DFS intervals), so maxHops only guards against corrupted tables.
// Out-of-range vertex IDs fail the route (nil, false) rather than panic.
func (r *Router) Route(s, target int, maxHops int) ([]int, bool) {
	if s < 0 || target < 0 || s >= len(r.Tables) || target >= len(r.Addrs) {
		return nil, false
	}
	path, ok := r.route(s, target, maxHops)
	if r.rHops != nil {
		r.rHeader.Observe(float64(r.Addrs[target].NumWords() * 8))
		if ok {
			r.rHops.Observe(float64(len(path) - 1))
		} else {
			r.rFailed.Inc()
		}
	}
	return path, ok
}

func (r *Router) route(s, target int, maxHops int) ([]int, bool) {
	path := []int{s}
	if s == target {
		return path, true
	}
	addr := &r.Addrs[target]
	plan, ok := r.choosePlan(s, addr)
	if !ok {
		return path, false
	}
	cur := s
	stage := 0 // 0 = up, 1 = creep (attach only), 2 = down
	for hop := 0; hop < maxHops; hop++ {
		if cur == target {
			return path, true
		}
		next := r.step(cur, &plan, &stage)
		if next < 0 {
			return path, false
		}
		cur = next
		path = append(path, cur)
	}
	return path, cur == target
}

// EstimateAndRoute returns the chosen plan estimate along with the route;
// useful for auditing that realized length equals the estimate.
func (r *Router) EstimateAndRoute(s, target, maxHops int) (float64, []int, bool) {
	if s < 0 || target < 0 || s >= len(r.Tables) || target >= len(r.Addrs) {
		return math.Inf(1), nil, false
	}
	if s == target {
		return 0, []int{s}, true
	}
	plan, ok := r.choosePlan(s, &r.Addrs[target])
	if !ok {
		return math.Inf(1), []int{s}, false
	}
	path, delivered := r.Route(s, target, maxHops)
	return plan.est, path, delivered
}

// choosePlan merges the shared keys of cur's table and the address and
// returns the minimum-estimate plan.
func (r *Router) choosePlan(cur int, addr *Addr) (routePlan, bool) {
	tb := &r.Tables[cur]
	best := routePlan{est: math.Inf(1)}
	found := false
	i, j := 0, 0
	for i < len(tb.Entries) && j < len(addr.Entries) {
		a, b := tb.Entries[i], addr.Entries[j]
		switch {
		case a.Key == b.Key:
			// Tree plans: match portals by index (both lists are in
			// portal-index order by construction).
			pi, qi := 0, 0
			for pi < len(a.Ports) && qi < len(b.Ports) {
				p, q := a.Ports[pi], b.Ports[qi]
				switch {
				case p.Idx == q.Idx:
					if est := p.Dist + q.Dist; est < best.est {
						best = routePlan{kind: planTree, key: a.Key, est: est, portIdx: p.Idx, targetDFS: q.DFS}
						found = true
					}
					pi++
					qi++
				case p.Idx < q.Idx:
					pi++
				default:
					qi++
				}
			}
			if a.HasAtt && b.HasAttach {
				est := a.Attach.Dist + math.Abs(a.Attach.Pos-b.AttPos) + b.AttDist
				if est < best.est {
					best = routePlan{kind: planAttach, key: a.Key, est: est, targetDFS: b.AttDFS, targetPos: b.AttPos}
					found = true
				}
			}
			i++
			j++
		case keyLess(a.Key, b.Key):
			i++
		default:
			j++
		}
	}
	return best, found
}

// step advances one hop within the plan. stage: 0 up, 1 creep, 2 down.
func (r *Router) step(cur int, plan *routePlan, stage *int) int {
	e := r.entryFor(cur, plan.key)
	if e == nil {
		return -1
	}
	switch plan.kind {
	case planTree:
		ps := e.portState(plan.portIdx)
		if ps == nil {
			return -1
		}
		if *stage == 0 {
			if ps.Up >= 0 {
				return int(ps.Up)
			}
			*stage = 2
		}
		return downStep(ps.Children, plan.targetDFS)
	default: // planAttach
		att := &e.Attach
		if !e.HasAtt {
			return -1
		}
		if *stage == 0 {
			if att.Up >= 0 {
				return int(att.Up)
			}
			*stage = 1
		}
		if *stage == 1 {
			if !core.SameDist(att.Pos, plan.targetPos) {
				// Creep along the path toward the target attachment.
				if plan.targetPos > att.Pos && att.NextHop >= 0 {
					return int(att.NextHop)
				}
				if plan.targetPos < att.Pos && att.PrevHop >= 0 {
					return int(att.PrevHop)
				}
				return -1
			}
			*stage = 2
		}
		return downStep(att.Children, plan.targetDFS)
	}
}

func downStep(children []ChildIv, dfs int32) int {
	for _, c := range children {
		if c.Lo <= dfs && dfs <= c.Hi {
			return int(c.Next)
		}
	}
	return -1
}

func (e *Entry) portState(idx int16) *PortState {
	for i := range e.Ports {
		if e.Ports[i].Idx == idx {
			return &e.Ports[i]
		}
	}
	return nil
}

func (r *Router) entryFor(cur int, k oracle.Key) *Entry {
	tb := &r.Tables[cur]
	lo, hi := 0, len(tb.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if keyLess(tb.Entries[mid].Key, k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(tb.Entries) && tb.Entries[lo].Key == k {
		return &tb.Entries[lo]
	}
	return nil
}

// SpaceWords returns the total table size across vertices in words.
func (r *Router) SpaceWords() int {
	total := 0
	for i := range r.Tables {
		total += r.Tables[i].NumWords()
	}
	return total
}

// MaxTableWords returns the largest per-vertex table size in words.
func (r *Router) MaxTableWords() int {
	best := 0
	for i := range r.Tables {
		if w := r.Tables[i].NumWords(); w > best {
			best = w
		}
	}
	return best
}

// MaxAddrWords returns the largest address size in words.
func (r *Router) MaxAddrWords() int {
	best := 0
	for i := range r.Addrs {
		if w := r.Addrs[i].NumWords(); w > best {
			best = w
		}
	}
	return best
}

// RouteWeight returns the total weight of a vertex path in the base graph.
func (r *Router) RouteWeight(path []int) float64 {
	w, ok := shortest.PathLength(r.G, path)
	if !ok {
		return math.Inf(1)
	}
	return w
}
