package routing

import (
	"math/rand"
	"testing"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

// Failure injection: the router must degrade gracefully — bounded by
// maxHops, never panicking, never claiming delivery it did not achieve —
// when its tables are corrupted.

func TestRouteWithCorruptedUpPointer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := embed.Grid(6, 6, graph.UnitWeights(), rng)
	router := buildRouter(t, r.G, r, 0.25)
	// Redirect every Up pointer of one vertex to itself: plans through it
	// stall but must terminate via maxHops.
	victim := 14
	for e := range router.Tables[victim].Entries {
		for p := range router.Tables[victim].Entries[e].Ports {
			router.Tables[victim].Entries[e].Ports[p].Up = int32(victim)
		}
		router.Tables[victim].Entries[e].Attach.Up = int32(victim)
	}
	for s := 0; s < r.G.N(); s++ {
		path, ok := router.Route(s, 35, 200)
		if ok && path[len(path)-1] != 35 {
			t.Fatalf("claimed delivery to wrong vertex: %v", path)
		}
		if len(path) > 201 {
			t.Fatalf("exceeded hop budget: %d", len(path))
		}
	}
}

func TestRouteWithTruncatedTables(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := embed.Grid(5, 5, graph.UnitWeights(), rng)
	router := buildRouter(t, r.G, r, 0.25)
	// Drop every entry of one vertex's table entirely.
	router.Tables[12].Entries = nil
	for s := 0; s < r.G.N(); s++ {
		// Must not panic; may fail to deliver routes passing through 12.
		path, ok := router.Route(s, 24, 200)
		if ok && path[len(path)-1] != 24 {
			t.Fatalf("wrong delivery: %v", path)
		}
	}
}

func TestRouteWithCorruptedDFSIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := embed.Grid(5, 5, graph.UnitWeights(), rng)
	router := buildRouter(t, r.G, r, 0.25)
	// Invert intervals at one vertex: downward routing through it dies.
	victim := 7
	for e := range router.Tables[victim].Entries {
		for p := range router.Tables[victim].Entries[e].Ports {
			for c := range router.Tables[victim].Entries[e].Ports[p].Children {
				iv := &router.Tables[victim].Entries[e].Ports[p].Children[c]
				iv.Lo, iv.Hi = iv.Hi+1, iv.Lo-1
			}
		}
	}
	delivered := 0
	for s := 0; s < r.G.N(); s++ {
		if _, ok := router.Route(s, 24, 200); ok {
			delivered++
		}
	}
	// Most routes avoid the victim; some may fail — but no panics, no
	// false deliveries (checked inside Route by construction).
	if delivered == 0 {
		t.Fatal("corrupting one vertex killed all routes")
	}
}

func TestRouteMaxHopsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Path(4, graph.UnitWeights(), rng)
	router := buildRouter(t, g, nil, 0.5)
	if _, ok := router.Route(0, 3, 0); ok {
		t.Fatal("delivered with zero hop budget")
	}
	if path, ok := router.Route(2, 2, 0); !ok || len(path) != 1 {
		t.Fatal("self route needs no hops")
	}
}
