package routing

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encode serializes the address compactly (the routing scheme's "label"):
// varint-delta keys, varint portal indices and DFS numbers, raw float64
// distances. Its byte length measures the poly-logarithmic address size
// the paper claims for labeled routing.
func (a *Addr) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(a.Entries)))
	prevNode := int64(0)
	for _, e := range a.Entries {
		buf = binary.AppendVarint(buf, int64(e.Key.Node)-prevNode)
		prevNode = int64(e.Key.Node)
		buf = binary.AppendUvarint(buf, uint64(e.Key.Phase))
		buf = binary.AppendUvarint(buf, uint64(e.Key.Path))
		flags := uint64(0)
		if e.HasAttach {
			flags = 1
		}
		buf = binary.AppendUvarint(buf, flags)
		if e.HasAttach {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.AttDist))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.AttPos))
			buf = binary.AppendVarint(buf, int64(e.AttDFS))
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Ports)))
		for _, p := range e.Ports {
			buf = binary.AppendUvarint(buf, uint64(p.Idx))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Dist))
			buf = binary.AppendVarint(buf, int64(p.DFS))
		}
	}
	return buf
}

// DecodeAddr parses an address produced by Encode.
func DecodeAddr(buf []byte) (*Addr, error) {
	a := &Addr{}
	ne, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("routing: truncated address header")
	}
	buf = buf[n:]
	// Each entry takes at least 5 bytes (node, phase, path, flags, port
	// count: one varint byte each).
	if ne > uint64(len(buf))/5 {
		return nil, fmt.Errorf("routing: header claims %d entries in %d bytes", ne, len(buf))
	}
	prevNode := int64(0)
	for i := uint64(0); i < ne; i++ {
		var e AddrEntry
		dn, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("routing: truncated entry %d", i)
		}
		buf = buf[n:]
		node := prevNode + dn
		prevNode = node
		phase, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("routing: truncated entry %d phase", i)
		}
		buf = buf[n:]
		path, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("routing: truncated entry %d path", i)
		}
		buf = buf[n:]
		e.Key.Node = int32(node)
		e.Key.Phase = int16(phase)
		e.Key.Path = int16(path)
		flags, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("routing: truncated entry %d flags", i)
		}
		buf = buf[n:]
		if flags&1 != 0 {
			if len(buf) < 16 {
				return nil, fmt.Errorf("routing: truncated entry %d attach", i)
			}
			e.HasAttach = true
			e.AttDist = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			e.AttPos = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
			buf = buf[16:]
			dfs, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("routing: truncated entry %d attach dfs", i)
			}
			buf = buf[n:]
			e.AttDFS = int32(dfs)
		}
		np, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("routing: truncated entry %d port count", i)
		}
		buf = buf[n:]
		// Each port takes at least 10 bytes (idx varint, 8-byte dist, dfs
		// varint); reject absurd counts before allocating.
		if np > uint64(len(buf))/10 {
			return nil, fmt.Errorf("routing: entry %d claims %d ports in %d bytes", i, np, len(buf))
		}
		if np > 0 {
			e.Ports = make([]AddrPort, 0, np)
		}
		for j := uint64(0); j < np; j++ {
			idx, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("routing: truncated port %d/%d", i, j)
			}
			buf = buf[n:]
			if len(buf) < 8 {
				return nil, fmt.Errorf("routing: truncated port %d/%d dist", i, j)
			}
			dist := math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
			dfs, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("routing: truncated port %d/%d dfs", i, j)
			}
			buf = buf[n:]
			e.Ports = append(e.Ports, AddrPort{Idx: int16(idx), Dist: dist, DFS: int32(dfs)})
		}
		a.Entries = append(a.Entries, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("routing: %d trailing bytes", len(buf))
	}
	return a, nil
}

// Bits returns the serialized address size in bits.
func (a *Addr) Bits() int { return 8 * len(a.Encode()) }
