package labeling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

func TestExactOnPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Path(17, graph.UniformWeights(1, 3), rng)
	l, err := BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := shortest.Dijkstra(g, 0)
	for v := 0; v < g.N(); v++ {
		if math.Abs(l.Query(0, v)-tr.Dist[v]) > 1e-9 {
			t.Fatalf("Query(0,%d) = %v, want %v", v, l.Query(0, v), tr.Dist[v])
		}
	}
}

func TestExactAllPairsRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(60, graph.UniformWeights(0.5, 5), rng)
		l, err := BuildTree(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u += 4 {
			tr := shortest.Dijkstra(g, u)
			for v := 0; v < g.N(); v++ {
				if math.Abs(l.Query(u, v)-tr.Dist[v]) > 1e-9 {
					t.Fatalf("seed %d: Query(%d,%d) = %v, want %v", seed, u, v, l.Query(u, v), tr.Dist[v])
				}
			}
		}
	}
}

func TestLabelSizeLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{64, 512, 4096} {
		g := graph.RandomTree(n, graph.UnitWeights(), rng)
		l, err := BuildTree(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Log2(float64(n))) + 2
		if got := l.MaxLabelSize(); got > bound {
			t.Errorf("n=%d: max label %d > log bound %d", n, got, bound)
		}
		if l.Depth() >= l.MaxLabelSize() {
			// depth is max entries - 1.
			t.Errorf("n=%d: depth %d vs max label %d", n, l.Depth(), l.MaxLabelSize())
		}
	}
}

func TestCaterpillarAndStar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{
		graph.Star(50, graph.UniformWeights(1, 2), rng),
		graph.Caterpillar(10, 4, graph.UniformWeights(1, 2), rng),
		graph.BinaryTree(63, graph.UnitWeights(), rng),
	} {
		l, err := BuildTree(g)
		if err != nil {
			t.Fatal(err)
		}
		tr := shortest.Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			if math.Abs(l.Query(0, v)-tr.Dist[v]) > 1e-9 {
				t.Fatalf("Query(0,%d) mismatch", v)
			}
		}
	}
}

func TestRejectsNonTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := BuildTree(graph.Cycle(5, graph.UnitWeights(), rng)); err == nil {
		t.Fatal("cycle accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1) // forest, not tree
	// m = n-2: not a tree by edge count.
	if _, err := BuildTree(b.Build()); err == nil {
		t.Fatal("forest accepted")
	}
	if _, err := BuildTree(graph.New(0)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestDistributedQueryMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomTree(40, graph.UniformWeights(1, 4), rng)
	l, _ := BuildTree(g)
	for u := 0; u < 40; u += 3 {
		for v := 0; v < 40; v += 7 {
			got := QueryTreeLabels(&l.Labels[u], &l.Labels[v])
			want := l.Query(u, v)
			if got != want {
				t.Fatalf("(%d,%d): %v != %v", u, v, got, want)
			}
		}
	}
}

func TestQuickExactness(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(n, graph.UniformWeights(0.5, 3), rng)
		l, err := BuildTree(g)
		if err != nil {
			return false
		}
		u := rng.Intn(n)
		tr := shortest.Dijkstra(g, u)
		for v := 0; v < n; v++ {
			if math.Abs(l.Query(u, v)-tr.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryPathExact checks witness-path reporting on several tree
// families: for every sampled pair the reported distance is bit-identical
// to Query, the path is a real tree walk from u to v, and its edge-weight
// sum matches the exact distance.
func TestQueryPathExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, g := range map[string]*graph.Graph{
		"path":   graph.Path(21, graph.UniformWeights(1, 3), rng),
		"random": graph.RandomTree(70, graph.UniformWeights(0.5, 5), rng),
		"star":   graph.Star(30, graph.UniformWeights(1, 2), rng),
		"binary": graph.BinaryTree(63, graph.UnitWeights(), rng),
	} {
		l, err := BuildTree(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		var buf []int32
		for u := 0; u < n; u += 3 {
			for v := 0; v < n; v += 5 {
				var dist float64
				dist, buf, err = l.QueryPath(u, v, buf)
				if err != nil {
					t.Fatalf("%s: QueryPath(%d,%d): %v", name, u, v, err)
				}
				if want := l.Query(u, v); math.Float64bits(dist) != math.Float64bits(want) {
					t.Fatalf("%s: QueryPath(%d,%d) dist %v, Query %v", name, u, v, dist, want)
				}
				if len(buf) == 0 || int(buf[0]) != u || int(buf[len(buf)-1]) != v {
					t.Fatalf("%s: path(%d,%d) endpoints wrong: %v", name, u, v, buf)
				}
				w := 0.0
				for i := 1; i < len(buf); i++ {
					ew, ok := g.EdgeWeight(int(buf[i-1]), int(buf[i]))
					if !ok {
						t.Fatalf("%s: path(%d,%d) uses non-edge %d-%d: %v", name, u, v, buf[i-1], buf[i], buf)
					}
					w += ew
				}
				if math.Abs(w-dist) > 1e-9 {
					t.Fatalf("%s: path(%d,%d) weighs %v, reported %v (%v)", name, u, v, w, dist, buf)
				}
			}
		}
		// Out-of-range and self pairs follow the Query conventions.
		if d, p, err := l.QueryPath(-1, 2, buf); err != nil || !math.IsInf(d, 1) || len(p) != 0 {
			t.Fatalf("%s: out-of-range: %v %v %v", name, d, p, err)
		}
		if d, p, err := l.QueryPath(4, 4, buf); err != nil || math.Float64bits(d) != 0 || len(p) != 1 || p[0] != 4 {
			t.Fatalf("%s: self pair: %v %v %v", name, d, p, err)
		}
	}
}

// TestQueryPathRejectsCorruptHops pins the step budget: a hand-built
// labeling whose hop links cycle reports an error instead of spinning.
func TestQueryPathRejectsCorruptHops(t *testing.T) {
	bad := &TreeLabeling{
		Labels: []TreeLabel{
			{Entries: []Entry{{Centroid: 0, Hop: 1, Dist: 1}}},
			{Entries: []Entry{{Centroid: 0, Hop: 0, Dist: 1}}},
		},
		n: 2,
	}
	if _, _, err := bad.QueryPath(0, 1, nil); err == nil {
		t.Fatal("cyclic hop links accepted")
	}
}

// TestFlatTreeMatchesPointer freezes labelings of several tree families
// and checks Query bit-identity against TreeLabeling.Query for every pair,
// including self and out-of-range IDs, plus the accessor bookkeeping and
// the zero-allocation contract of the frozen form.
func TestFlatTreeMatchesPointer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, g := range map[string]*graph.Graph{
		"path":   graph.Path(33, graph.UniformWeights(1, 3), rng),
		"random": graph.RandomTree(80, graph.UniformWeights(0.5, 5), rng),
		"star":   graph.Star(40, graph.UniformWeights(1, 2), rng),
		"binary": graph.BinaryTree(63, graph.UnitWeights(), rng),
	} {
		l, err := BuildTree(g)
		if err != nil {
			t.Fatal(err)
		}
		f, err := l.Freeze()
		if err != nil {
			t.Fatalf("%s: freeze: %v", name, err)
		}
		if f.N() != g.N() || f.Depth() != l.Depth() {
			t.Fatalf("%s: N/Depth = %d/%d, want %d/%d", name, f.N(), f.Depth(), g.N(), l.Depth())
		}
		entries := 0
		for v := range l.Labels {
			entries += len(l.Labels[v].Entries)
		}
		if f.NumEntries() != entries {
			t.Fatalf("%s: NumEntries = %d, want %d", name, f.NumEntries(), entries)
		}
		n := g.N()
		for u := -1; u <= n; u++ {
			for v := -1; v <= n; v++ {
				got, want := f.Query(u, v), l.Query(u, v)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: Query(%d,%d) = %v, pointer %v", name, u, v, got, want)
				}
			}
		}
		if allocs := testing.AllocsPerRun(100, func() { f.Query(0, n-1) }); allocs != 0 {
			t.Fatalf("%s: FlatTree.Query allocated %.1f times", name, allocs)
		}
	}
}

// TestFlatTreeQueryBounds is the bounds-hardening parity regression: the
// frozen tree labeling must reject out-of-range vertex ids exactly the
// way Oracle.Query and TreeLabeling.Query do — +Inf, never a panic —
// including extreme ids whose offsets would wrap.
func TestFlatTreeQueryBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l, err := BuildTree(graph.RandomTree(25, graph.UniformWeights(1, 4), rng))
	if err != nil {
		t.Fatal(err)
	}
	f, err := l.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	n := f.N()
	for _, pair := range [][2]int{
		{-1, 0}, {0, -1}, {n, 0}, {0, n}, {n + 7, -3},
		{math.MinInt, 0}, {0, math.MaxInt}, {math.MaxInt, math.MinInt},
	} {
		if d := f.Query(pair[0], pair[1]); !math.IsInf(d, 1) {
			t.Fatalf("FlatTree.Query(%d,%d) = %v, want +Inf", pair[0], pair[1], d)
		}
	}
}

// TestFlatTreeFreezeRejectsMisorder pins the merge-join invariant: Freeze
// must refuse labels whose entries are not in increasing centroid order.
func TestFlatTreeFreezeRejectsMisorder(t *testing.T) {
	bad := &TreeLabeling{
		Labels: []TreeLabel{
			{Entries: []Entry{{Centroid: 1, Dist: 0}, {Centroid: 0, Dist: 1}}},
			{Entries: []Entry{{Centroid: 0, Dist: 1}}},
		},
		n: 2,
	}
	if _, err := bad.Freeze(); err == nil {
		t.Fatal("misordered label accepted")
	}
}
