// Package labeling implements EXACT distance labels for weighted trees —
// the base case of the paper's object-location program (its introduction
// cites tree routing/labeling [20, 32] as the class that started the
// field, and trees are the 1-path-separable base of Definition 1).
//
// The construction is the centroid-decomposition labeling: each vertex
// stores, for every centroid on its O(log n) centroid-path, the exact
// distance to that centroid. Two labels answer an exact distance query
// because the shortest path between u and v passes through their deepest
// common centroid. Labels carry O(log n) entries; queries are O(log n).
package labeling

import (
	"fmt"
	"math"

	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// Entry is one centroid record: the centroid's ID in the centroid tree
// and the exact distance from the labeled vertex. Hop is the next vertex
// (original ID) on the unique tree path from the labeled vertex toward
// that centroid, or -1 when the labeled vertex IS the centroid — the
// parent link that lets QueryPath rebuild the witness path by chasing
// hops, mirroring the portal hop records of the distance oracle.
type Entry struct {
	Centroid int32
	Hop      int32
	Dist     float64
}

// TreeLabel is a vertex's exact distance label: entries ordered from the
// root centroid down (so two labels share a prefix of centroid IDs).
type TreeLabel struct {
	Entries []Entry
}

// Size returns the number of entries.
func (l *TreeLabel) Size() int { return len(l.Entries) }

// TreeLabeling is the full labeling of a tree.
type TreeLabeling struct {
	Labels []TreeLabel
	n      int
	depth  int
}

// BuildTree computes the centroid-decomposition labeling of a weighted
// tree.
func BuildTree(g *graph.Graph) (*TreeLabeling, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("labeling: empty graph")
	}
	if g.M() != n-1 || !graph.IsConnected(g) {
		return nil, fmt.Errorf("labeling: not a tree (n=%d, m=%d)", n, g.M())
	}
	t := &TreeLabeling{Labels: make([]TreeLabel, n), n: n}
	// Recursive centroid decomposition over induced subtrees.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	type item struct {
		vertices []int
		depth    int
	}
	queue := []item{{vertices: all, depth: 0}}
	centroidSeq := int32(0)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if len(it.vertices) == 0 {
			continue
		}
		if it.depth > t.depth {
			t.depth = it.depth
		}
		sub := graph.Induced(g, it.vertices)
		c := centroidOf(sub.G)
		id := centroidSeq
		centroidSeq++
		// Exact distances from the centroid within the subtree.
		tr := shortest.Dijkstra(sub.G, c)
		for sv, ov := range sub.Orig {
			if math.IsInf(tr.Dist[sv], 1) {
				return nil, fmt.Errorf("labeling: subtree disconnected")
			}
			hop := int32(-1)
			if p := tr.Parent[sv]; p >= 0 {
				hop = int32(sub.Orig[p])
			}
			t.Labels[ov].Entries = append(t.Labels[ov].Entries, Entry{Centroid: id, Hop: hop, Dist: tr.Dist[sv]})
		}
		for _, comp := range graph.ComponentsAfterRemoval(sub.G, []int{c}) {
			lifted := make([]int, len(comp))
			for i, v := range comp {
				lifted[i] = sub.Orig[v]
			}
			queue = append(queue, item{vertices: lifted, depth: it.depth + 1})
		}
	}
	return t, nil
}

func centroidOf(g *graph.Graph) int {
	n := g.N()
	if n == 1 {
		return 0
	}
	parent := make([]int, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == -2 {
				parent[h.To] = v
				stack = append(stack, h.To)
			}
		}
	}
	size := make([]int, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if parent[v] >= 0 {
			size[parent[v]] += size[v]
		}
	}
	v := 0
	for {
		next := -1
		for _, h := range g.Neighbors(v) {
			if parent[h.To] == v && size[h.To] > n/2 {
				next = h.To
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// Query returns the exact distance between u and v from the stored
// labels: the minimum over shared centroids of the distance sums (the
// deepest shared centroid lies on the u-v path and realizes the minimum).
// Out-of-range vertex IDs report +Inf rather than panicking.
func (t *TreeLabeling) Query(u, v int) float64 {
	if u < 0 || v < 0 || u >= len(t.Labels) || v >= len(t.Labels) {
		return math.Inf(1)
	}
	if u == v {
		return 0
	}
	return QueryTreeLabels(&t.Labels[u], &t.Labels[v])
}

// QueryTreeLabels answers from two labels alone (distributed form).
// Returns +Inf when the labels share no centroid (different trees).
func QueryTreeLabels(a, b *TreeLabel) float64 {
	best := math.Inf(1)
	// Labels are root-down sequences; shared centroids form a prefix of
	// each (the centroid paths diverge once and never re-join), but scan
	// generally to stay robust.
	bByID := make(map[int32]float64, len(b.Entries))
	for _, e := range b.Entries {
		bByID[e.Centroid] = e.Dist
	}
	for _, e := range a.Entries {
		if d, ok := bByID[e.Centroid]; ok {
			if s := e.Dist + d; s < best {
				best = s
			}
		}
	}
	return best
}

// queryTreeLabelsArg is QueryTreeLabels plus the centroid realizing the
// minimum — the same fold in the same order, so the reported distance is
// bit-identical to the distance-only query.
func queryTreeLabelsArg(a, b *TreeLabel) (float64, int32) {
	best := math.Inf(1)
	bestC := int32(-1)
	bByID := make(map[int32]float64, len(b.Entries))
	for _, e := range b.Entries {
		bByID[e.Centroid] = e.Dist
	}
	for _, e := range a.Entries {
		if d, ok := bByID[e.Centroid]; ok {
			if s := e.Dist + d; s < best {
				best = s
				bestC = e.Centroid
			}
		}
	}
	return best, bestC
}

// findEntry returns the label's record for centroid c. Labels hold
// O(log n) entries, so a linear scan beats a search.
func findEntry(l *TreeLabel, c int32) (Entry, bool) {
	for _, e := range l.Entries {
		if e.Centroid == c {
			return e, true
		}
	}
	return Entry{}, false
}

// walkTo climbs from vertex x to centroid c by hop links, appending every
// vertex on the way — x first, c last. The step budget catches hand-built
// labelings whose hop links cycle.
func (t *TreeLabeling) walkTo(x int, c int32, buf []int32) ([]int32, error) {
	for steps := 0; steps < t.n; steps++ {
		buf = append(buf, int32(x))
		e, ok := findEntry(&t.Labels[x], c)
		if !ok {
			return buf, fmt.Errorf("labeling: vertex %d has no entry for centroid %d", x, c)
		}
		if e.Hop < 0 {
			return buf, nil
		}
		if int(e.Hop) >= len(t.Labels) {
			return buf, fmt.Errorf("labeling: vertex %d hop %d out of range", x, e.Hop)
		}
		x = int(e.Hop)
	}
	return buf, fmt.Errorf("labeling: hop chain to centroid %d exceeds %d steps", c, t.n)
}

// QueryPath returns the exact distance between u and v together with the
// unique u-v tree path, rebuilt by chasing hop links up to the deepest
// shared centroid from both ends. The path is appended to buf (pass nil,
// or reuse a buffer to amortize); it starts at u and ends at v, and its
// edge-weight sum telescopes to the reported distance. Out-of-range IDs
// report (+Inf, empty); u == v reports (0, [u]). The distance is
// bit-identical to Query. Errors only surface on inconsistent hop links
// (hand-built labels), never on BuildTree output.
func (t *TreeLabeling) QueryPath(u, v int, buf []int32) (float64, []int32, error) {
	buf = buf[:0]
	if u < 0 || v < 0 || u >= len(t.Labels) || v >= len(t.Labels) {
		return math.Inf(1), buf, nil
	}
	if u == v {
		return 0, append(buf, int32(u)), nil
	}
	dist, c := queryTreeLabelsArg(&t.Labels[u], &t.Labels[v])
	if math.IsInf(dist, 1) {
		return dist, buf, nil
	}
	buf, err := t.walkTo(u, c, buf)
	if err != nil {
		return dist, buf[:0], err
	}
	mark := len(buf)
	buf, err = t.walkTo(v, c, buf)
	if err != nil {
		return dist, buf[:0], err
	}
	// The second climb arrives at the centroid already placed by the
	// first: reverse it in place and drop its copy of c.
	tail := buf[mark:]
	for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
		tail[i], tail[j] = tail[j], tail[i]
	}
	copy(tail, tail[1:])
	return dist, buf[:len(buf)-1], nil
}

// FlatTree is the compiled read-only query form of a TreeLabeling: the
// same frozen struct-of-arrays layout the distance oracle uses
// (oracle.Flat). Per-vertex entries live in CSR form — vertex v owns
// entries off[v]..off[v+1] of the contiguous centroid/dist pools — and a
// query is a branch-light merge-join over two index ranges instead of a
// map build per call. Queries return bit-identical results to
// TreeLabeling.Query; a FlatTree is immutable and safe for unbounded
// concurrent use.
type FlatTree struct {
	off      []int32
	centroid []int32
	dist     []float64
	n        int
	depth    int
}

// Freeze compiles the labeling into its flat serving form. Entries of each
// label are stored (and verified) in increasing centroid-ID order — the
// order BuildTree emits them in — which the merge-join relies on.
func (t *TreeLabeling) Freeze() (*FlatTree, error) {
	total := 0
	for v := range t.Labels {
		total += len(t.Labels[v].Entries)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("labeling: freeze: %d entries exceed the int32 CSR index space", total)
	}
	f := &FlatTree{
		off:      make([]int32, t.n+1),
		centroid: make([]int32, 0, total),
		dist:     make([]float64, 0, total),
		n:        t.n,
		depth:    t.depth,
	}
	for v := range t.Labels {
		prev := int32(-1)
		for _, e := range t.Labels[v].Entries {
			if e.Centroid <= prev {
				return nil, fmt.Errorf("labeling: freeze: label %d entries not in increasing centroid order", v)
			}
			prev = e.Centroid
			f.centroid = append(f.centroid, e.Centroid)
			f.dist = append(f.dist, e.Dist)
		}
		f.off[v+1] = int32(len(f.centroid))
	}
	return f, nil
}

// N returns the number of labeled vertices.
func (f *FlatTree) N() int { return f.n }

// Depth returns the centroid-decomposition depth.
func (f *FlatTree) Depth() int { return f.depth }

// NumEntries returns the total entry count across all labels.
func (f *FlatTree) NumEntries() int { return len(f.centroid) }

// Query returns the exact tree distance between u and v, bit-identical to
// TreeLabeling.Query. Allocation-free; out-of-range IDs report +Inf.
//
//pathsep:hotpath
func (f *FlatTree) Query(u, v int) float64 {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1)
	}
	if u == v {
		return 0
	}
	best := math.Inf(1)
	i, iEnd := f.off[u], f.off[u+1]
	j, jEnd := f.off[v], f.off[v+1]
	for i < iEnd && j < jEnd {
		a, b := f.centroid[i], f.centroid[j]
		switch {
		case a == b:
			if s := f.dist[i] + f.dist[j]; s < best {
				best = s
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return best
}

// MaxLabelSize returns the largest label length — O(log n) by the
// halving of centroid decompositions.
func (t *TreeLabeling) MaxLabelSize() int {
	best := 0
	for i := range t.Labels {
		if s := t.Labels[i].Size(); s > best {
			best = s
		}
	}
	return best
}

// Depth returns the centroid-decomposition depth.
func (t *TreeLabeling) Depth() int { return t.depth }
