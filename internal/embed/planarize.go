package embed

import (
	"fmt"
	"sort"

	"pathsep/internal/graph"
)

// ErrNonPlanar is wrapped by Planarize when the input has no planar
// embedding.
var ErrNonPlanar = fmt.Errorf("embed: graph is not planar")

// Planarize computes a planar embedding (rotation system) of g, or
// reports non-planarity, using the Demoucron–Malgrange–Pertuiset
// incremental face-expansion algorithm on each biconnected block and
// merging block rotations at cut vertices. O(n·m); intended for graphs up
// to a few thousand vertices — large enough for every separator
// experiment, and it frees callers from providing rotations.
func Planarize(g *graph.Graph) (*Rotation, error) {
	n := g.N()
	order := make([][]int, n)
	for _, block := range biconnectedBlocks(g) {
		sub := graph.Induced(g, block)
		var blockOrder [][]int
		if sub.G.M() == sub.G.N()-1 {
			// A tree block (single edge or isolated chain): any rotation
			// is planar.
			blockOrder = make([][]int, sub.G.N())
			for v := 0; v < sub.G.N(); v++ {
				blockOrder[v] = sub.G.SortedNeighbors(v)
			}
		} else {
			faces, err := dmpEmbed(sub.G)
			if err != nil {
				return nil, err
			}
			r, err := FromFaces(sub.G, faces)
			if err != nil {
				return nil, fmt.Errorf("embed: internal: DMP faces invalid: %w", err)
			}
			blockOrder = r.Order
		}
		// Merge into the global rotation: blocks share only cut vertices,
		// and concatenating their cyclic orders nests the blocks in
		// consecutive corners around the cut vertex.
		for sv, ov := range sub.Orig {
			for _, sw := range blockOrder[sv] {
				order[ov] = append(order[ov], sub.Orig[sw])
			}
		}
	}
	r := &Rotation{G: g, Order: order}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("embed: merged embedding invalid: %w", err)
	}
	return r, nil
}

// biconnectedBlocks returns the vertex sets of the biconnected components
// of g (classic Hopcroft–Tarjan lowpoint algorithm, iterative). Cut
// vertices appear in several blocks. Isolated vertices become singleton
// blocks.
func biconnectedBlocks(g *graph.Graph) [][]int {
	n := g.N()
	num := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range num {
		num[i] = -1
		parent[i] = -1
	}
	var blocks [][]int
	type stackEdge struct{ u, v int }
	var edgeStack []stackEdge
	counter := 0

	popBlock := func(u, v int) {
		seen := map[int]bool{}
		var block []int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			for _, x := range []int{e.u, e.v} {
				if !seen[x] {
					seen[x] = true
					block = append(block, x)
				}
			}
			if e.u == u && e.v == v {
				break
			}
		}
		if len(block) > 0 {
			sort.Ints(block)
			blocks = append(blocks, block)
		}
	}

	for root := 0; root < n; root++ {
		if num[root] >= 0 {
			continue
		}
		if g.Degree(root) == 0 {
			blocks = append(blocks, []int{root})
			continue
		}
		// Iterative DFS with per-vertex neighbor cursor.
		type frame struct{ v, idx int }
		stack := []frame{{root, 0}}
		num[root] = counter
		low[root] = counter
		counter++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.idx < g.Degree(v) {
				h := g.Neighbors(v)[f.idx]
				f.idx++
				w := h.To
				if num[w] < 0 {
					edgeStack = append(edgeStack, stackEdge{v, w})
					parent[w] = v
					num[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, frame{w, 0})
				} else if w != parent[v] && num[w] < num[v] {
					edgeStack = append(edgeStack, stackEdge{v, w})
					if num[w] < low[v] {
						low[v] = num[w]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].v
					if low[v] < low[p] {
						low[p] = low[v]
					}
					if low[v] >= num[p] {
						popBlock(p, v)
					}
				}
			}
		}
	}
	return blocks
}

// dmpEmbed embeds a biconnected graph (local IDs 0..n-1) and returns its
// face list, or ErrNonPlanar.
func dmpEmbed(g *graph.Graph) ([][]int, error) {
	n := g.N()
	if n < 3 {
		return nil, fmt.Errorf("embed: dmp needs >= 3 vertices, got %d", n)
	}
	// Quick necessary condition.
	if g.M() > 3*n-6 {
		return nil, fmt.Errorf("%w: m=%d > 3n-6", ErrNonPlanar, g.M())
	}
	// Initial cycle via DFS back edge.
	cycle := findCycle(g)
	if cycle == nil {
		return nil, fmt.Errorf("embed: biconnected block without a cycle")
	}
	inH := make([]bool, n) // vertex embedded
	for _, v := range cycle {
		inH[v] = true
	}
	type ekey [2]int
	embedded := map[ekey]bool{}
	markEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		embedded[ekey{u, v}] = true
	}
	isEmbedded := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return embedded[ekey{u, v}]
	}
	for i := range cycle {
		markEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	// Two faces: the cycle and its reverse.
	faces := [][]int{append([]int(nil), cycle...), reversed(cycle)}
	remaining := g.M() - len(cycle)

	for remaining > 0 {
		bridges := findBridges(g, inH, isEmbedded)
		if len(bridges) == 0 {
			return nil, fmt.Errorf("embed: internal: %d edges unembedded but no bridges", remaining)
		}
		// Admissible faces per bridge; pick the bridge with the fewest.
		bestB, bestFaces := -1, []int(nil)
		for bi, br := range bridges {
			var adm []int
			for fi, f := range faces {
				if faceContainsAll(f, br.attachments) {
					adm = append(adm, fi)
				}
			}
			if len(adm) == 0 {
				return nil, fmt.Errorf("%w: bridge with attachments %v fits no face", ErrNonPlanar, br.attachments)
			}
			if bestB < 0 || len(adm) < len(bestFaces) {
				bestB, bestFaces = bi, adm
				if len(adm) == 1 {
					break
				}
			}
		}
		br := bridges[bestB]
		fi := bestFaces[0]
		path := bridgePath(g, br, inH)
		if len(path) < 2 {
			return nil, fmt.Errorf("embed: internal: degenerate bridge path %v", path)
		}
		// Split face fi along the path.
		f1, f2, err := splitFace(faces[fi], path)
		if err != nil {
			return nil, err
		}
		faces[fi] = f1
		faces = append(faces, f2)
		for i := 0; i+1 < len(path); i++ {
			markEdge(path[i], path[i+1])
			remaining--
		}
		for _, v := range path {
			inH[v] = true
		}
	}
	return faces, nil
}

// bridge is a connectivity component of G relative to the embedded
// subgraph H: either a single unembedded chord between two H-vertices, or
// a component of G−V(H) with its attachment vertices.
type bridge struct {
	attachments []int
	// members are the interior vertices of the component (nil for a
	// chord); the embedding path must stay inside them.
	members map[int]bool
	// chord endpoints when members == nil.
	u, v int
}

func findBridges(g *graph.Graph, inH []bool, isEmbedded func(u, v int) bool) []bridge {
	n := g.N()
	var out []bridge
	// Chords.
	g.Edges(func(u, v int, _ float64) {
		if inH[u] && inH[v] && !isEmbedded(u, v) {
			out = append(out, bridge{attachments: []int{u, v}, u: u, v: v})
		}
	})
	// Components of G - V(H).
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < n; s++ {
		if inH[s] || comp[s] >= 0 {
			continue
		}
		id := len(out)
		stack := []int{s}
		comp[s] = id
		members := map[int]bool{s: true}
		attach := map[int]bool{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(v) {
				if inH[h.To] {
					attach[h.To] = true
				} else if comp[h.To] < 0 {
					comp[h.To] = id
					members[h.To] = true
					stack = append(stack, h.To)
				}
			}
		}
		atts := make([]int, 0, len(attach))
		for v := range attach {
			atts = append(atts, v)
		}
		sort.Ints(atts)
		out = append(out, bridge{attachments: atts, members: members})
	}
	return out
}

// bridgePath returns a path between two distinct attachments of the
// bridge: directly for a chord, through the component interior otherwise.
func bridgePath(g *graph.Graph, br bridge, inH []bool) []int {
	if br.members == nil {
		return []int{br.u, br.v}
	}
	if len(br.attachments) == 1 {
		// Possible only in non-2-connected leftovers; embed a pendant edge
		// from the attachment into this bridge's interior.
		a := br.attachments[0]
		for _, h := range g.Neighbors(a) {
			if br.members[h.To] {
				return []int{a, h.To}
			}
		}
		return nil
	}
	a, b := br.attachments[0], br.attachments[1]
	// BFS from a strictly through THIS bridge's interior to b.
	prev := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Neighbors(v) {
			w := h.To
			if _, seen := prev[w]; seen {
				continue
			}
			if w == b {
				if v == a {
					continue // a direct chord is its own bridge; need interior
				}
				prev[w] = v
				path := []int{b}
				for x := v; x != a; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, a)
				reverse(path)
				return path
			}
			if br.members[w] {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// splitFace splits a face cycle along a path whose endpoints lie on the
// face, returning the two new face cycles.
func splitFace(face, path []int) ([]int, []int, error) {
	a, b := path[0], path[len(path)-1]
	ia, ib := -1, -1
	for i, v := range face {
		if v == a && ia < 0 {
			ia = i
		}
		if v == b && ib < 0 {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia == ib {
		return nil, nil, fmt.Errorf("embed: path endpoints %d,%d not on face %v", a, b, face)
	}
	m := len(face)
	arc := func(from, to int) []int {
		var out []int
		for i := from; ; i = (i + 1) % m {
			out = append(out, face[i])
			if i == to {
				break
			}
		}
		return out
	}
	interior := path[1 : len(path)-1]
	// Face 1: a..b along the face, then path interior reversed (b->a).
	f1 := arc(ia, ib)
	for i := len(interior) - 1; i >= 0; i-- {
		f1 = append(f1, interior[i])
	}
	// Face 2: b..a along the face, then path interior forward (a->b).
	f2 := arc(ib, ia)
	f2 = append(f2, interior...)
	return f1, f2, nil
}

func findCycle(g *graph.Graph) []int {
	n := g.N()
	parent := make([]int, n)
	state := make([]int, n) // 0 unseen, 1 active, 2 done
	for i := range parent {
		parent[i] = -1
	}
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		type frame struct{ v, idx int }
		stack := []frame{{root, 0}}
		state[root] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.idx < g.Degree(v) {
				w := g.Neighbors(v)[f.idx].To
				f.idx++
				if state[w] == 0 {
					parent[w] = v
					state[w] = 1
					stack = append(stack, frame{w, 0})
				} else if w != parent[v] && state[w] == 1 {
					// Cycle: w .. v via parents.
					cycle := []int{w}
					for x := v; x != w; x = parent[x] {
						cycle = append(cycle, x)
					}
					reverse(cycle[1:])
					return cycle
				}
			} else {
				state[v] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

func faceContainsAll(face, verts []int) bool {
	if len(verts) > len(face) {
		return false
	}
	set := make(map[int]bool, len(face))
	for _, v := range face {
		set[v] = true
	}
	for _, v := range verts {
		if !set[v] {
			return false
		}
	}
	return true
}

func reversed(s []int) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
