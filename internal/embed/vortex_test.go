package embed

import "testing"

func mkVortex(perim []int, bags [][]int) *Vortex {
	return &Vortex{Perimeter: perim, Bags: bags}
}

func TestVortexValidate(t *testing.T) {
	ok := mkVortex([]int{10, 11, 12}, [][]int{{10, 20}, {11, 20, 21}, {12, 21}})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Width() != 2 {
		t.Fatalf("width = %d", ok.Width())
	}
	// Perimeter vertex missing from its bag.
	bad1 := mkVortex([]int{10, 11}, [][]int{{10}, {12}})
	if err := bad1.Validate(); err == nil {
		t.Fatal("missing perimeter vertex accepted")
	}
	// Non-contiguous occurrences.
	bad2 := mkVortex([]int{10, 11, 12}, [][]int{{10, 20}, {11}, {12, 20}})
	if err := bad2.Validate(); err == nil {
		t.Fatal("non-contiguous bags accepted")
	}
	// Length mismatch.
	bad3 := mkVortex([]int{10}, [][]int{{10}, {11}})
	if err := bad3.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDecomposeVortexPathFigure1(t *testing.T) {
	// Recreate the Figure 1 shape: a path that crosses three vortices,
	// re-entering the first two several times between first entry and
	// last exit.
	w1 := mkVortex([]int{1, 2, 3, 4}, [][]int{{1}, {2}, {3}, {4}})
	w2 := mkVortex([]int{5, 6, 7}, [][]int{{5}, {6}, {7}})
	w3 := mkVortex([]int{8, 9}, [][]int{{8}, {9}})
	// Path: 0 -> enters W1 at 1, wanders (2, then W2's 5!, back to W1's 3,
	// leaves at 4), embedded 20, W2 again at 6..7, embedded 21, W3 8..9, 22.
	p := []int{0, 1, 2, 5, 3, 4, 20, 6, 7, 21, 8, 9, 22}
	vp, err := DecomposeVortexPath(p, []*Vortex{w1, w2, w3})
	if err != nil {
		t.Fatal(err)
	}
	if vp.NumCrossings() != 3 {
		t.Fatalf("crossings = %d, want 3", vp.NumCrossings())
	}
	// W1: entry at 1, exit at 4 (the LAST W1-perimeter vertex).
	if vp.EntryAt[0] != 1 || vp.ExitAt[0] != 4 {
		t.Fatalf("W1 entry/exit = %d/%d", vp.EntryAt[0], vp.ExitAt[0])
	}
	// W2: the occurrence at index 3 (vertex 5) was swallowed by the W1
	// span, so the crossing is entered at 6 and exited at 7.
	if vp.EntryAt[1] != 6 || vp.ExitAt[1] != 7 {
		t.Fatalf("W2 entry/exit = %d/%d", vp.EntryAt[1], vp.ExitAt[1])
	}
	if vp.EntryAt[2] != 8 || vp.ExitAt[2] != 9 {
		t.Fatalf("W3 entry/exit = %d/%d", vp.EntryAt[2], vp.ExitAt[2])
	}
	// Segments: {0,1}, {4,20,6}, {7,21,8}, {9,22}.
	wantSegs := [][]int{{0, 1}, {4, 20, 6}, {7, 21, 8}, {9, 22}}
	if len(vp.Segments) != len(wantSegs) {
		t.Fatalf("segments: %v", vp.Segments)
	}
	for i, seg := range wantSegs {
		if len(vp.Segments[i]) != len(seg) {
			t.Fatalf("segment %d = %v, want %v", i, vp.Segments[i], seg)
		}
		for j := range seg {
			if vp.Segments[i][j] != seg[j] {
				t.Fatalf("segment %d = %v, want %v", i, vp.Segments[i], seg)
			}
		}
	}
	// Projection: segments concatenated without duplicates.
	proj := vp.Projection()
	want := []int{0, 1, 4, 20, 6, 7, 21, 8, 9, 22}
	if len(proj) != len(want) {
		t.Fatalf("projection = %v", proj)
	}
	for i := range want {
		if proj[i] != want[i] {
			t.Fatalf("projection = %v, want %v", proj, want)
		}
	}
}

func TestDecomposeVortexPathNoVortices(t *testing.T) {
	p := []int{3, 1, 4, 1}
	vp, err := DecomposeVortexPath(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vp.NumCrossings() != 0 || len(vp.Segments) != 1 {
		t.Fatalf("%+v", vp)
	}
}

func TestDecomposeVortexPathRejects(t *testing.T) {
	if _, err := DecomposeVortexPath(nil, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	// Overlapping perimeters.
	w1 := mkVortex([]int{1}, [][]int{{1}})
	w2 := mkVortex([]int{1}, [][]int{{1}})
	if _, err := DecomposeVortexPath([]int{0, 1}, []*Vortex{w1, w2}); err == nil {
		t.Fatal("overlapping perimeters accepted")
	}
	// Invalid vortex propagates.
	bad := mkVortex([]int{1, 2}, [][]int{{1}})
	if _, err := DecomposeVortexPath([]int{0}, []*Vortex{bad}); err == nil {
		t.Fatal("invalid vortex accepted")
	}
}

func TestVortexPathEndsOnPerimeter(t *testing.T) {
	// A path that ends inside a crossing: exit = entry (single perimeter
	// touch at the very end).
	w := mkVortex([]int{5}, [][]int{{5, 6}})
	vp, err := DecomposeVortexPath([]int{0, 1, 5}, []*Vortex{w})
	if err != nil {
		t.Fatal(err)
	}
	if vp.NumCrossings() != 1 || vp.EntryAt[0] != 5 || vp.ExitAt[0] != 5 {
		t.Fatalf("%+v", vp)
	}
	// Trailing segment is just the exit vertex.
	last := vp.Segments[len(vp.Segments)-1]
	if len(last) != 1 || last[0] != 5 {
		t.Fatalf("trailing segment %v", last)
	}
}
