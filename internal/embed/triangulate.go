package embed

import (
	"errors"
	"fmt"
)

// Tri is a triangulation of an embedded connected graph: the original
// ("real") edges plus chord edges added so that every face is a triangle.
// Chords may be parallel to existing edges; edges are therefore tracked by
// ID rather than endpoint pair.
type Tri struct {
	N     int
	EU    []int // edge endpoints by edge ID
	EV    []int
	RealM int // edge IDs < RealM are edges of the original graph,
	// in graph.Edges enumeration order
	Faces    [][3]int // vertex triples, cyclic
	FaceEdge [][3]int // FaceEdge[f][i] joins Faces[f][i] and Faces[f][(i+1)%3]
}

// EdgeID returns the edge ID of the real edge {u,v}, or -1.
// O(RealM); intended for tests.
func (t *Tri) EdgeID(u, v int) int {
	for e := 0; e < t.RealM; e++ {
		if (t.EU[e] == u && t.EV[e] == v) || (t.EU[e] == v && t.EV[e] == u) {
			return e
		}
	}
	return -1
}

// Triangulate adds chords to every face of the embedding until all faces
// are triangles, using ear cuts on the face walks. The input graph must be
// connected with at least 3 vertices and at least 2 edges.
//
// The returned triangulation can contain parallel chord edges but no
// self-loops, and every edge ID lies on exactly two faces.
func Triangulate(r *Rotation) (*Tri, error) {
	g := r.G
	if g.N() < 3 {
		return nil, fmt.Errorf("embed: cannot triangulate %d-vertex graph", g.N())
	}
	h, err := r.buildHalfEdges()
	if err != nil {
		return nil, err
	}
	t := &Tri{N: g.N(), RealM: h.m}
	t.EU = append(t.EU, h.eu...)
	t.EV = append(t.EV, h.ev...)

	addEdge := func(u, v int) int {
		t.EU = append(t.EU, u)
		t.EV = append(t.EV, v)
		return len(t.EU) - 1
	}
	addFace := func(a, b, c, eab, ebc, eca int) {
		t.Faces = append(t.Faces, [3]int{a, b, c})
		t.FaceEdge = append(t.FaceEdge, [3]int{eab, ebc, eca})
	}

	for _, walk := range h.faceWalks() {
		// Working representation: ws[i] is a vertex, es[i] is the edge ID
		// from ws[i] to ws[(i+1)%len].
		m := len(walk)
		if m < 3 {
			return nil, fmt.Errorf("embed: face walk of length %d (graph must be connected with >2 vertices)", m)
		}
		ws := make([]int, m)
		es := make([]int, m)
		for i, he := range walk {
			ws[i] = h.tail(he)
			es[i] = he / 2
		}
		for len(ws) > 3 {
			m = len(ws)
			ear := -1
			for i := 0; i < m; i++ {
				prev := (i - 1 + m) % m
				next := (i + 1) % m
				if ws[prev] != ws[next] {
					ear = i
					break
				}
			}
			if ear < 0 {
				return nil, errors.New("embed: face walk alternates between two vertices; graph too degenerate to triangulate")
			}
			prev := (ear - 1 + m) % m
			next := (ear + 1) % m
			chord := addEdge(ws[prev], ws[next])
			addFace(ws[prev], ws[ear], ws[next], es[prev], es[ear], chord)
			// Cut the ear: ws[ear] leaves the walk; the chord now joins
			// ws[prev] to ws[next].
			es[prev] = chord
			ws = append(ws[:ear], ws[ear+1:]...)
			es = append(es[:ear], es[ear+1:]...)
		}
		addFace(ws[0], ws[1], ws[2], es[0], es[1], es[2])
	}

	// Sanity: every edge on exactly two faces.
	cnt := make([]int, len(t.EU))
	for _, fe := range t.FaceEdge {
		for _, e := range fe {
			cnt[e]++
		}
	}
	for e, c := range cnt {
		if c != 2 {
			return nil, fmt.Errorf("embed: edge %d on %d faces after triangulation", e, c)
		}
	}
	return t, nil
}

// M returns the total number of edges (real + chords).
func (t *Tri) M() int { return len(t.EU) }

// DualTree computes, for a spanning tree of the (real) graph given by
// isTreeEdge over real edge IDs, the rooted dual tree over faces linked by
// NON-tree edge IDs, rooted at face 0. It returns parent face, the edge ID
// connecting each face to its parent (-1 for the root), and a post-order
// of faces. By the interdigitating-trees property this always spans all
// faces when the primal tree spans the graph.
func (t *Tri) DualTree(isTreeEdge []bool) (parent []int, parentEdge []int, postorder []int, err error) {
	nf := len(t.Faces)
	// edge -> faces (exactly two each).
	faceOf := make([][2]int, t.M())
	fill := make([]int, t.M())
	for f, fe := range t.FaceEdge {
		for _, e := range fe {
			faceOf[e][fill[e]] = f
			fill[e]++
		}
	}
	parent = make([]int, nf)
	parentEdge = make([]int, nf)
	for i := range parent {
		parent[i] = -2 // unvisited
		parentEdge[i] = -1
	}
	parent[0] = -1
	stack := []int{0}
	postorder = make([]int, 0, nf)
	order := []int{}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, f)
		for _, e := range t.FaceEdge[f] {
			if e < t.RealM && isTreeEdge[e] {
				continue
			}
			var g int
			if faceOf[e][0] == f {
				g = faceOf[e][1]
			} else {
				g = faceOf[e][0]
			}
			if g == f {
				// Both sides of e are the same face: skip (cannot happen in
				// a triangulation where the primal tree spans).
				continue
			}
			if parent[g] == -2 {
				parent[g] = f
				parentEdge[g] = e
				stack = append(stack, g)
			}
		}
	}
	for f := 0; f < nf; f++ {
		if parent[f] == -2 {
			return nil, nil, nil, fmt.Errorf("embed: dual over non-tree edges does not span faces (face %d unreached)", f)
		}
	}
	// Reverse preorder of a DFS is a valid order for bottom-up sweeps only
	// for trees; compute a true postorder by sorting children after parents.
	// Since `order` is a DFS preorder, its reverse visits children before
	// parents.
	for i := len(order) - 1; i >= 0; i-- {
		postorder = append(postorder, order[i])
	}
	return parent, parentEdge, postorder, nil
}
