package embed

import (
	"math/rand"

	"pathsep/internal/graph"
)

// Grid returns the rows x cols grid graph together with its planar
// embedding. Vertex (x,y) has ID x + cols*y.
func Grid(rows, cols int, w graph.WeightFn, rng *rand.Rand) *Rotation {
	n := rows * cols
	id := func(x, y int) int { return x + cols*y }
	b := graph.NewBuilder(n)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := id(x, y)
			if x+1 < cols {
				b.AddEdge(v, id(x+1, y), w(v, id(x+1, y), rng))
			}
			if y+1 < rows {
				b.AddEdge(v, id(x, y+1), w(v, id(x, y+1), rng))
			}
		}
	}
	g := b.Build()
	order := make([][]int, n)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := id(x, y)
			// Counterclockwise: E, N, W, S.
			var o []int
			if x+1 < cols {
				o = append(o, id(x+1, y))
			}
			if y+1 < rows {
				o = append(o, id(x, y+1))
			}
			if x > 0 {
				o = append(o, id(x-1, y))
			}
			if y > 0 {
				o = append(o, id(x, y-1))
			}
			order[v] = o
		}
	}
	return &Rotation{G: g, Order: order}
}

// GridDiagonals returns the rows x cols grid with one uniformly random
// diagonal added in each unit cell, with its planar embedding.
func GridDiagonals(rows, cols int, w graph.WeightFn, rng *rand.Rand) *Rotation {
	n := rows * cols
	id := func(x, y int) int { return x + cols*y }
	// diag[cellIndex] = true for the / diagonal (SW-NE), false for \ (NW-SE).
	type edge struct{ u, v int }
	var edges []edge
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := id(x, y)
			if x+1 < cols {
				edges = append(edges, edge{v, id(x+1, y)})
			}
			if y+1 < rows {
				edges = append(edges, edge{v, id(x, y+1)})
			}
			if x+1 < cols && y+1 < rows {
				if rng.Intn(2) == 0 {
					edges = append(edges, edge{v, id(x+1, y+1)}) // NE from v
				} else {
					edges = append(edges, edge{id(x+1, y), id(x, y+1)}) // NW from (x+1,y)
				}
			}
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v, w(e.u, e.v, rng))
	}
	g := b.Build()
	// Rotation: neighbors sorted counterclockwise by direction.
	order := make([][]int, n)
	dirRank := func(v, u int) int {
		vx, vy := v%cols, v/cols
		ux, uy := u%cols, u/cols
		dx, dy := ux-vx, uy-vy
		switch {
		case dx == 1 && dy == 0:
			return 0 // E
		case dx == 1 && dy == 1:
			return 1 // NE
		case dx == 0 && dy == 1:
			return 2 // N
		case dx == -1 && dy == 1:
			return 3 // NW
		case dx == -1 && dy == 0:
			return 4 // W
		case dx == -1 && dy == -1:
			return 5 // SW
		case dx == 0 && dy == -1:
			return 6 // S
		default:
			return 7 // SE
		}
	}
	for v := 0; v < n; v++ {
		o := make([]int, 0, g.Degree(v))
		for _, h := range g.Neighbors(v) {
			o = append(o, h.To)
		}
		// insertion sort by direction rank
		for i := 1; i < len(o); i++ {
			for j := i; j > 0 && dirRank(v, o[j]) < dirRank(v, o[j-1]); j-- {
				o[j], o[j-1] = o[j-1], o[j]
			}
		}
		order[v] = o
	}
	return &Rotation{G: g, Order: order}
}

// Apollonian returns a random stacked triangulation (Apollonian network)
// on n >= 3 vertices with its planar embedding: starting from a triangle,
// each new vertex is inserted into a uniformly random face and joined to
// its three corners. Apollonian networks are maximal planar 3-trees.
func Apollonian(n int, w graph.WeightFn, rng *rand.Rand) *Rotation {
	if n < 3 {
		n = 3
	}
	rot := make([][]int, n)
	rot[0] = []int{1, 2}
	rot[1] = []int{2, 0}
	rot[2] = []int{0, 1}
	type face [3]int
	faces := []face{{0, 1, 2}, {1, 0, 2}}
	insertAfter := func(x, after, nv int) {
		for i, u := range rot[x] {
			if u == after {
				rot[x] = append(rot[x], 0)
				copy(rot[x][i+2:], rot[x][i+1:])
				rot[x][i+1] = nv
				return
			}
		}
	}
	type edge struct{ u, v int }
	edges := []edge{{0, 1}, {1, 2}, {2, 0}}
	for v := 3; v < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		a, b, c := f[0], f[1], f[2]
		// Insert v after the walk-predecessor at each corner.
		insertAfter(a, c, v)
		insertAfter(b, a, v)
		insertAfter(c, b, v)
		rot[v] = []int{a, c, b}
		faces[fi] = face{a, b, v}
		faces = append(faces, face{b, c, v}, face{c, a, v})
		edges = append(edges, edge{a, v}, edge{b, v}, edge{c, v})
	}
	bd := graph.NewBuilder(n)
	for _, e := range edges {
		bd.AddEdge(e.u, e.v, w(e.u, e.v, rng))
	}
	return &Rotation{G: bd.Build(), Order: rot}
}

// Outerplanar returns a random maximal-ish outerplanar graph: the n-cycle
// plus `chords` random non-crossing chords, with its planar embedding
// (vertices on a convex polygon; neighbors ordered by circular position).
func Outerplanar(n, chords int, w graph.WeightFn, rng *rand.Rand) *Rotation {
	if n < 3 {
		n = 3
	}
	type iv struct{ lo, hi int } // chordable interval of polygon positions
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, w(i, (i+1)%n, rng))
	}
	intervals := []iv{{0, n - 1}}
	added := 0
	for added < chords && len(intervals) > 0 {
		i := rng.Intn(len(intervals))
		span := intervals[i]
		if span.hi-span.lo < 2 {
			intervals[i] = intervals[len(intervals)-1]
			intervals = intervals[:len(intervals)-1]
			continue
		}
		// Pick a chord endpoint pair (lo..m, m..hi split) avoiding existing
		// polygon edges.
		m := span.lo + 1 + rng.Intn(span.hi-span.lo-1)
		u, v := span.lo, span.hi
		// chord (u,v) unless it is the closing polygon edge (0, n-1) handled:
		if !(u == 0 && v == n-1) {
			b.AddEdge(u, v, w(u, v, rng))
			added++
		}
		intervals[i] = iv{span.lo, m}
		intervals = append(intervals, iv{m, span.hi})
	}
	g := b.Build()
	order := make([][]int, n)
	for v := 0; v < n; v++ {
		o := make([]int, 0, g.Degree(v))
		for _, h := range g.Neighbors(v) {
			o = append(o, h.To)
		}
		rank := func(u int) int { return (u - v + n) % n }
		for i := 1; i < len(o); i++ {
			for j := i; j > 0 && rank(o[j]) < rank(o[j-1]); j-- {
				o[j], o[j-1] = o[j-1], o[j]
			}
		}
		order[v] = o
	}
	return &Rotation{G: g, Order: order}
}
