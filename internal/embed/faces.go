package embed

import (
	"fmt"

	"pathsep/internal/graph"
)

// FromFaces reconstructs the rotation system from a complete face list:
// every directed edge (u,v) must appear in exactly one face walk, and the
// walk relation "after entering v from u, leave toward w" defines the
// cyclic neighbor order at v. This converts the face-based output of the
// DMP planar embedding algorithm (and hand-written face lists) into the
// Rotation the separator machinery consumes.
func FromFaces(g *graph.Graph, faces [][]int) (*Rotation, error) {
	n := g.N()
	// successor[v][u] = w  means: in rot[v], the neighbor after u is w.
	succ := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		succ[v] = make(map[int]int, g.Degree(v))
	}
	seen := make(map[[2]int]bool, 2*g.M())
	for fi, f := range faces {
		if len(f) < 2 {
			return nil, fmt.Errorf("embed: face %d too short", fi)
		}
		for i := range f {
			u := f[i]
			v := f[(i+1)%len(f)]
			w := f[(i+2)%len(f)]
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("embed: face %d has out-of-range vertex", fi)
			}
			if !g.HasEdge(u, v) {
				return nil, fmt.Errorf("embed: face %d uses non-edge {%d,%d}", fi, u, v)
			}
			de := [2]int{u, v}
			if seen[de] {
				return nil, fmt.Errorf("embed: directed edge %d->%d on two faces", u, v)
			}
			seen[de] = true
			if old, ok := succ[v][u]; ok && old != w {
				return nil, fmt.Errorf("embed: conflicting successors at %d after %d", v, u)
			}
			succ[v][u] = w
		}
	}
	if len(seen) != 2*g.M() {
		return nil, fmt.Errorf("embed: %d directed edges covered, want %d", len(seen), 2*g.M())
	}
	// Rebuild each rotation by following the successor cycle.
	order := make([][]int, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		if deg == 0 {
			continue
		}
		start := g.Neighbors(v)[0].To
		cur := start
		for i := 0; i < deg; i++ {
			order[v] = append(order[v], cur)
			next, ok := succ[v][cur]
			if !ok {
				return nil, fmt.Errorf("embed: no successor of %d at %d", cur, v)
			}
			cur = next
		}
		if cur != start {
			return nil, fmt.Errorf("embed: successor relation at %d is not a single cycle", v)
		}
	}
	r := &Rotation{G: g, Order: order}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Genus returns the Euler genus of the (connected) embedding:
// 2 - V + E - F. Zero means planar.
func (r *Rotation) Genus() (int, error) {
	faces, err := r.Faces()
	if err != nil {
		return 0, err
	}
	if !graph.IsConnected(r.G) {
		return 0, fmt.Errorf("embed: genus defined per connected embedding")
	}
	return 2 - r.G.N() + r.G.M() - len(faces), nil
}

// FaceSizes returns a histogram of face walk lengths, a quick shape
// diagnostic (a triangulation reports only size 3).
func (r *Rotation) FaceSizes() (map[int]int, error) {
	faces, err := r.Faces()
	if err != nil {
		return nil, err
	}
	h := make(map[int]int)
	for _, f := range faces {
		h[len(f)]++
	}
	return h, nil
}
