package embed

import (
	"errors"
	"math/rand"
	"testing"

	"pathsep/internal/graph"
)

func TestPlanarizeGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range [][2]int{{3, 3}, {5, 7}, {10, 10}} {
		// Forget the generator's rotation; re-embed from the bare graph.
		g := Grid(dim[0], dim[1], graph.UnitWeights(), rng).G
		r, err := Planarize(g)
		if err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		if genus, err := r.Genus(); err != nil || genus != 0 {
			t.Fatalf("grid %v: genus %d err %v", dim, genus, err)
		}
	}
}

func TestPlanarizeApollonian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10, 60, 200} {
		g := Apollonian(n, graph.UnitWeights(), rng).G
		r, err := Planarize(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if genus, err := r.Genus(); err != nil || genus != 0 {
			t.Fatalf("n=%d: genus %d err %v", n, genus, err)
		}
		// Maximal planar: the re-derived embedding must be a triangulation.
		sizes, err := r.FaceSizes()
		if err != nil {
			t.Fatal(err)
		}
		for s := range sizes {
			if s != 3 {
				t.Fatalf("n=%d: face of size %d in a maximal planar graph", n, s)
			}
		}
	}
}

func TestPlanarizeTreesAndCutVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := graph.RandomTree(40, graph.UnitWeights(), rng)
	r, err := Planarize(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two cycles sharing one cut vertex.
	b := graph.NewBuilder(9)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, (i+1)%5, 1)
	}
	b.AddEdge(4, 0, 1)
	b.AddEdge(0, 5, 1)
	b.AddEdge(5, 6, 1)
	b.AddEdge(6, 7, 1)
	b.AddEdge(7, 8, 1)
	b.AddEdge(8, 0, 1)
	g := b.Build()
	r2, err := Planarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if genus, err := r2.Genus(); err != nil || genus != 0 {
		t.Fatalf("figure-eight genus %d err %v", genus, err)
	}
}

func TestPlanarizeOuterplanarAndSeriesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	op := Outerplanar(40, 30, graph.UnitWeights(), rng).G
	if _, err := Planarize(op); err != nil {
		t.Fatal(err)
	}
	sp := graph.SeriesParallel(60, graph.UnitWeights(), rng)
	r, err := Planarize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarizeRejectsNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", graph.Complete(5, graph.UnitWeights(), rng)},
		{"K33", graph.CompleteBipartite(3, 3, graph.UnitWeights(), rng)},
		{"K6", graph.Complete(6, graph.UnitWeights(), rng)},
		{"torus", graph.GridTorus(4, 4, graph.UnitWeights(), rng)},
		{"hypercube4", graph.Hypercube(4, graph.UnitWeights(), rng)},
		{"mesh3d", graph.Mesh3D(3, 3, 3, graph.UnitWeights(), rng)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Planarize(tc.g); err == nil {
				t.Fatalf("%s embedded as planar", tc.name)
			} else if !errors.Is(err, ErrNonPlanar) {
				t.Fatalf("%s: error %v does not wrap ErrNonPlanar", tc.name, err)
			}
		})
	}
}

func TestPlanarizeK5MinusEdgeIsPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := graph.Complete(5, graph.UnitWeights(), rng)
	b := graph.NewBuilder(5)
	full.Edges(func(u, v int, w float64) {
		if !(u == 0 && v == 1) {
			b.AddEdge(u, v, w)
		}
	})
	g := b.Build()
	r, err := Planarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if genus, err := r.Genus(); err != nil || genus != 0 {
		t.Fatalf("genus %d err %v", genus, err)
	}
}

func TestPlanarizeRandomPlanarSubgraphs(t *testing.T) {
	// Random subgraphs of planar graphs stay planar; the embedder must
	// handle the resulting cut vertices and small blocks.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		full := Apollonian(50, graph.UnitWeights(), rng).G
		b := graph.NewBuilder(full.N())
		full.Edges(func(u, v int, w float64) {
			if rng.Float64() < 0.7 {
				b.AddEdge(u, v, w)
			}
		})
		g := b.Build()
		r, err := Planarize(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFromFacesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := Grid(4, 6, graph.UnitWeights(), rng)
	faces, err := r.Faces()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FromFaces(r.G, faces)
	if err != nil {
		t.Fatal(err)
	}
	// Same face structure (counts by size).
	s1, _ := r.FaceSizes()
	s2, _ := r2.FaceSizes()
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("face sizes differ: %v vs %v", s1, s2)
		}
	}
}

func TestFromFacesRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Cycle(4, graph.UnitWeights(), rng)
	// Missing one face (only the inner cycle): directed edges uncovered.
	if _, err := FromFaces(g, [][]int{{0, 1, 2, 3}}); err == nil {
		t.Fatal("half-covered face set accepted")
	}
	// Non-edge in a face.
	if _, err := FromFaces(g, [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}}); err == nil {
		t.Fatal("face with non-edge accepted")
	}
	// Duplicated directed edge.
	if _, err := FromFaces(g, [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}); err == nil {
		t.Fatal("duplicate directed edges accepted")
	}
}

func TestGenusOfTorusLikeRotationIsPositive(t *testing.T) {
	// K5 with any rotation: genus must come out positive.
	rng := rand.New(rand.NewSource(9))
	g := graph.Complete(5, graph.UnitWeights(), rng)
	order := make([][]int, 5)
	for v := 0; v < 5; v++ {
		order[v] = g.SortedNeighbors(v)
	}
	r := &Rotation{G: g, Order: order}
	faces, err := r.Faces()
	if err != nil {
		t.Fatal(err)
	}
	genus := 2 - g.N() + g.M() - len(faces)
	if genus <= 0 {
		t.Fatalf("K5 rotation reports genus %d", genus)
	}
}

func TestIsPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if !IsPlanar(Grid(5, 5, graph.UnitWeights(), rng).G) {
		t.Fatal("grid is planar")
	}
	if IsPlanar(graph.Complete(5, graph.UnitWeights(), rng)) {
		t.Fatal("K5 is not planar")
	}
	if !IsPlanar(graph.RandomTree(10, graph.UnitWeights(), rng)) {
		t.Fatal("trees are planar")
	}
}
