package embed

import (
	"math/rand"
	"testing"

	"pathsep/internal/graph"
)

func TestGridEmbeddingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range [][2]int{{2, 2}, {3, 5}, {7, 7}, {1, 6}, {10, 3}} {
		r := Grid(dim[0], dim[1], graph.UnitWeights(), rng)
		if err := r.Validate(); err != nil {
			t.Errorf("grid %v: %v", dim, err)
		}
	}
}

func TestGridFaceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := Grid(4, 5, graph.UnitWeights(), rng)
	faces, err := r.Faces()
	if err != nil {
		t.Fatal(err)
	}
	// 3x4 = 12 inner square faces + 1 outer face.
	if len(faces) != 13 {
		t.Fatalf("faces = %d, want 13", len(faces))
	}
	// Exactly one face with more than 4 vertices (the outer face).
	big := 0
	for _, f := range faces {
		if len(f) > 4 {
			big++
		}
	}
	if big != 1 {
		t.Fatalf("big faces = %d, want 1", big)
	}
}

func TestGridDiagonalsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for seed := 0; seed < 5; seed++ {
		r := GridDiagonals(6, 6, graph.UnitWeights(), rng)
		if err := r.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestApollonianValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 4, 10, 50, 200} {
		r := Apollonian(n, graph.UnitWeights(), rng)
		if err := r.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Maximal planar: m = 3n - 6.
		if m := r.G.M(); m != 3*n-6 {
			t.Fatalf("n=%d: m=%d, want %d", n, m, 3*n-6)
		}
		faces, err := r.Faces()
		if err != nil {
			t.Fatal(err)
		}
		// All faces triangles in a maximal planar graph.
		for _, f := range faces {
			if len(f) != 3 {
				t.Fatalf("n=%d: face of size %d", n, len(f))
			}
		}
	}
}

func TestOuterplanarValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 8, 30, 100} {
		r := Outerplanar(n, n, graph.UnitWeights(), rng)
		if err := r.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !graph.IsConnected(r.G) {
			t.Fatalf("n=%d: disconnected", n)
		}
	}
}

func TestValidateRejectsBadRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := Grid(3, 3, graph.UnitWeights(), rng)
	// Remove an entry from one rotation.
	r.Order[4] = r.Order[4][:len(r.Order[4])-1]
	if err := r.Validate(); err == nil {
		t.Fatal("expected validation error for truncated rotation")
	}
}

func TestValidateRejectsNonPlanarOrder(t *testing.T) {
	// K5 with an arbitrary rotation cannot satisfy Euler's formula.
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(5, graph.UnitWeights(), rng)
	order := make([][]int, 5)
	for v := 0; v < 5; v++ {
		order[v] = g.SortedNeighbors(v)
	}
	r := &Rotation{G: g, Order: order}
	if err := r.Validate(); err == nil {
		t.Fatal("K5 should fail the Euler check for any rotation")
	}
}

func TestRestrictKeepsPlanarity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := Apollonian(60, graph.UnitWeights(), rng)
	// Remove 10 random vertices.
	keep := make([]int, 0, 50)
	drop := map[int]bool{}
	for len(drop) < 10 {
		drop[rng.Intn(60)] = true
	}
	for v := 0; v < 60; v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	sub := graph.Induced(r.G, keep)
	rr := r.Restrict(sub)
	if err := rr.Validate(); err != nil {
		t.Fatalf("restricted rotation invalid: %v", err)
	}
}

func TestTriangulateGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := Grid(5, 5, graph.UnitWeights(), rng)
	tri, err := Triangulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if tri.N != 25 {
		t.Fatalf("N=%d", tri.N)
	}
	if tri.RealM != r.G.M() {
		t.Fatalf("RealM=%d, want %d", tri.RealM, r.G.M())
	}
	// Triangulated planar: F = 2E/3... each edge on 2 faces, each face 3
	// edges: 3F = 2E.
	if 3*len(tri.Faces) != 2*tri.M() {
		t.Fatalf("3F=%d != 2E=%d", 3*len(tri.Faces), 2*tri.M())
	}
	// Euler: V - E + F = 2.
	if tri.N-tri.M()+len(tri.Faces) != 2 {
		t.Fatalf("Euler: %d - %d + %d != 2", tri.N, tri.M(), len(tri.Faces))
	}
}

func TestTriangulateApollonianIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := Apollonian(40, graph.UnitWeights(), rng)
	tri, err := Triangulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if tri.M() != tri.RealM {
		t.Fatalf("added %d chords to a maximal planar graph", tri.M()-tri.RealM)
	}
}

func TestTriangulatePathGraph(t *testing.T) {
	// A path is a degenerate embedded graph (single face, spurs at leaves);
	// triangulation must still succeed.
	rng := rand.New(rand.NewSource(11))
	g := graph.Path(6, graph.UnitWeights(), rng)
	order := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		order[v] = g.SortedNeighbors(v)
	}
	r := &Rotation{G: g, Order: order}
	if err := r.Validate(); err != nil {
		t.Fatalf("path embedding: %v", err)
	}
	tri, err := Triangulate(r)
	if err != nil {
		t.Fatal(err)
	}
	if tri.N-tri.M()+len(tri.Faces) != 2 {
		t.Fatalf("Euler fails: V=%d E=%d F=%d", tri.N, tri.M(), len(tri.Faces))
	}
}

func TestDualTreeSpansFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := Grid(6, 6, graph.UnitWeights(), rng)
	tri, err := Triangulate(r)
	if err != nil {
		t.Fatal(err)
	}
	// Build a BFS spanning tree of the real graph.
	isTree := make([]bool, tri.RealM)
	visited := make([]bool, tri.N)
	visited[0] = true
	queue := []int{0}
	parentEdgeOf := func(u, v int) int { return tri.EdgeID(u, v) }
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range r.G.Neighbors(v) {
			if !visited[h.To] {
				visited[h.To] = true
				isTree[parentEdgeOf(v, h.To)] = true
				queue = append(queue, h.To)
			}
		}
	}
	parent, parentEdge, post, err := tri.DualTree(isTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent) != len(tri.Faces) || len(post) != len(tri.Faces) {
		t.Fatal("dual tree size mismatch")
	}
	// Every non-root face has a parent edge that is non-tree.
	for f := 1; f < len(tri.Faces); f++ {
		e := parentEdge[f]
		if e < 0 {
			t.Fatalf("face %d has no parent edge", f)
		}
		if e < tri.RealM && isTree[e] {
			t.Fatalf("face %d parent edge %d is a tree edge", f, e)
		}
	}
	// Postorder visits children before parents.
	seen := make([]bool, len(tri.Faces))
	for _, f := range post {
		if parent[f] >= 0 && seen[parent[f]] {
			t.Fatal("postorder visited parent before child")
		}
		seen[f] = true
	}
}
