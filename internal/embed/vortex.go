package embed

import "fmt"

// This file implements the combinatorial side of Definition 2 of the
// paper: vortices and vortex-paths. In the Robertson–Seymour structure
// theorem a vortex is a bounded-pathwidth graph glued onto a face of the
// embedded part; a path of the whole graph that dives through vortices is
// replaced by its VORTEX-PATH — segments through the embedded part plus
// one (entry bag, exit bag) pair per vortex crossed — whose projection is
// a plain curve on the surface. Figure 1 of the paper:
//
//	P:      s ──Q0── x1 ~~~(inside W1)~~~ y1 ──Q1── x2 ~~(W2)~~ y2 ──Q2── t
//	V:      Q0 ∪ X1 ∪ Y1 ∪ Q1 ∪ X2 ∪ Y2 ∪ Q2
//	proj:   Q0 · e1 · Q1 · e2 · Q2      (e_i a virtual edge across W_i's face)
//
// The full separator algorithm of Section 3 needs vortex-paths only when
// the Robertson–Seymour decomposition produces vortices; this library's
// constructive strategies never do (see DESIGN.md §2), so the type exists
// to model and test the definition itself.

// Vortex is a bounded-pathwidth graph attached along a perimeter:
// Perimeter[i] is the i-th perimeter vertex, contained in Bags[i], and
// the bags form a path decomposition in order.
type Vortex struct {
	Perimeter []int
	Bags      [][]int
}

// Width returns the vortex width: max bag size minus one.
func (v *Vortex) Width() int {
	w := 0
	for _, b := range v.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks the Definition: one bag per perimeter vertex containing
// it, and bag occurrences of every vertex contiguous (path-decomposition
// condition 3).
func (v *Vortex) Validate() error {
	if len(v.Perimeter) != len(v.Bags) {
		return fmt.Errorf("embed: %d perimeter vertices, %d bags", len(v.Perimeter), len(v.Bags))
	}
	for i, u := range v.Perimeter {
		found := false
		for _, x := range v.Bags[i] {
			if x == u {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("embed: perimeter vertex %d not in bag %d", u, i)
		}
	}
	// Contiguity: for every vertex, its bag indices form an interval.
	first := map[int]int{}
	last := map[int]int{}
	for i, b := range v.Bags {
		for _, x := range b {
			if _, ok := first[x]; !ok {
				first[x] = i
			}
			last[x] = i
		}
	}
	for x, f := range first {
		for i := f; i <= last[x]; i++ {
			found := false
			for _, y := range v.Bags[i] {
				if y == x {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("embed: vertex %d has non-contiguous bags (%d..%d, missing %d)", x, f, last[x], i)
			}
		}
	}
	return nil
}

// VortexPath is the Definition 2 decomposition of a path:
// Segments[0] ∪ EntryBag[0] ∪ ExitBag[0] ∪ Segments[1] ∪ ... with one
// (entry, exit) bag pair per crossed vortex, every segment wholly in the
// embedded part.
type VortexPath struct {
	// Segments[i] is Q_i as a vertex sequence (possibly a single vertex).
	Segments [][]int
	// Vortices[i] is the index (into the input slice) of the i-th crossed
	// vortex; EntryBag/ExitBag are its X_{i+1}/Y_{i+1} bags.
	Vortices []int
	EntryBag [][]int
	ExitBag  [][]int
	// EntryAt/ExitAt are the perimeter vertices x_{i+1} and y_{i+1}.
	EntryAt []int
	ExitAt  []int
}

// DecomposeVortexPath runs the construction below Definition 2: walk
// along p; the prefix before the first perimeter vertex is Q_0; on
// reaching a perimeter vertex x of vortex W, jump to the LAST vertex of p
// on W's perimeter (that is y), record W's entry and exit bags, and
// continue. The resulting vortex-path crosses pairwise distinct vortices.
func DecomposeVortexPath(p []int, vortices []*Vortex) (*VortexPath, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("embed: empty path")
	}
	// perimeter vertex -> (vortex index, bag index). Perimeters must be
	// disjoint across vortices (they bound distinct faces).
	type hit struct{ vortex, bag int }
	perim := map[int]hit{}
	for vi, v := range vortices {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("embed: vortex %d: %w", vi, err)
		}
		for bi, u := range v.Perimeter {
			if prev, ok := perim[u]; ok && prev.vortex != vi {
				return nil, fmt.Errorf("embed: vertex %d on two vortex perimeters (%d, %d)", u, prev.vortex, vi)
			}
			perim[u] = hit{vortex: vi, bag: bi}
		}
	}
	vp := &VortexPath{}
	seg := []int{}
	i := 0
	for i < len(p) {
		v := p[i]
		h, onPerim := perim[v]
		if !onPerim {
			seg = append(seg, v)
			i++
			continue
		}
		// Close the current segment at the entry vertex.
		seg = append(seg, v)
		vp.Segments = append(vp.Segments, seg)
		// Find the last occurrence of this vortex's perimeter on p.
		lastIdx := i
		for j := i + 1; j < len(p); j++ {
			if h2, ok := perim[p[j]]; ok && h2.vortex == h.vortex {
				lastIdx = j
			}
		}
		exit := p[lastIdx]
		hExit := perim[exit]
		vp.Vortices = append(vp.Vortices, h.vortex)
		vp.EntryBag = append(vp.EntryBag, vortices[h.vortex].Bags[h.bag])
		vp.ExitBag = append(vp.ExitBag, vortices[hExit.vortex].Bags[hExit.bag])
		vp.EntryAt = append(vp.EntryAt, v)
		vp.ExitAt = append(vp.ExitAt, exit)
		// Next segment starts at the exit vertex.
		seg = []int{exit}
		i = lastIdx + 1
	}
	vp.Segments = append(vp.Segments, seg)
	// Property from the paper: crossed vortices are pairwise distinct.
	seen := map[int]bool{}
	for _, vi := range vp.Vortices {
		if seen[vi] {
			return nil, fmt.Errorf("embed: vortex %d crossed twice (construction violated)", vi)
		}
		seen[vi] = true
	}
	return vp, nil
}

// Projection returns the projected path of the vortex-path: the segment
// vertices concatenated, with each vortex crossing replaced by the
// virtual edge from its entry to its exit perimeter vertex (both of which
// already terminate the adjacent segments).
func (vp *VortexPath) Projection() []int {
	var out []int
	for _, seg := range vp.Segments {
		for _, v := range seg {
			if len(out) == 0 || out[len(out)-1] != v {
				out = append(out, v)
			}
		}
	}
	return out
}

// NumCrossings returns the number of vortices the path dives through.
func (vp *VortexPath) NumCrossings() int { return len(vp.Vortices) }
