// Package embed provides combinatorial embeddings (rotation systems) of
// planar graphs, face traversal, Euler-formula validation, restriction to
// induced subgraphs, and triangulation — the substrate for the planar
// fundamental-cycle path separator (Theorem 6(1) of the paper, after
// Thorup and Lipton–Tarjan).
//
// An embedding is carried as the cyclic order of neighbors around each
// vertex. Faces are traced with the standard half-edge "next" rule. A
// vortex-path (Definition 2 of the paper, Fig. 1) degenerates, for a graph
// embedded with no vortices, to a plain surface path; this package is the
// vortex-free instantiation the implementable graph classes need.
package embed

import (
	"errors"
	"fmt"

	"pathsep/internal/graph"
)

// Rotation is a combinatorial embedding: Order[v] lists the neighbors of v
// in cyclic (say counterclockwise) order. It must contain exactly the
// neighbor set of v in G.
type Rotation struct {
	G     *graph.Graph
	Order [][]int
}

// halfEdges builds the half-edge structures used for face traversal.
// Edge IDs follow G.Edges enumeration order; half-edge 2e is u->v (u<v),
// half-edge 2e+1 is v->u.
type halfEdges struct {
	eu, ev []int   // edge endpoints, eu < ev
	next   []int   // next half-edge on the same face
	m      int     // number of edges
	rotv   [][]int // outgoing half-edge IDs per vertex, in rotation order
}

func (r *Rotation) buildHalfEdges() (*halfEdges, error) {
	g := r.G
	h := &halfEdges{}
	// Map (u,v) -> edge id. The graph is simple, so this is unambiguous.
	type key [2]int
	idOf := make(map[key]int, g.M())
	g.Edges(func(u, v int, _ float64) {
		idOf[key{u, v}] = h.m
		h.eu = append(h.eu, u)
		h.ev = append(h.ev, v)
		h.m++
	})
	// Outgoing half-edge for v->w.
	out := func(v, w int) (int, bool) {
		if v < w {
			id, ok := idOf[key{v, w}]
			return 2 * id, ok
		}
		id, ok := idOf[key{w, v}]
		return 2*id + 1, ok
	}
	h.rotv = make([][]int, g.N())
	pos := make([]int, 2*h.m) // pos[halfedge] = index in rotv[tail]
	for v := 0; v < g.N(); v++ {
		if len(r.Order[v]) != g.Degree(v) {
			return nil, fmt.Errorf("embed: rotation at %d has %d entries, degree is %d", v, len(r.Order[v]), g.Degree(v))
		}
		seen := make(map[int]bool, len(r.Order[v]))
		h.rotv[v] = make([]int, len(r.Order[v]))
		for i, w := range r.Order[v] {
			he, ok := out(v, w)
			if !ok {
				return nil, fmt.Errorf("embed: rotation at %d lists non-neighbor %d", v, w)
			}
			if seen[w] {
				return nil, fmt.Errorf("embed: rotation at %d repeats neighbor %d", v, w)
			}
			seen[w] = true
			h.rotv[v][i] = he
			pos[he] = i
		}
	}
	// next(h): for h = u->v, take reverse(h) = v->u, and advance one step in
	// the rotation at v.
	h.next = make([]int, 2*h.m)
	for he := 0; he < 2*h.m; he++ {
		rev := he ^ 1
		v := h.tail(rev) // head of he
		i := pos[rev]
		h.next[he] = h.rotv[v][(i+1)%len(h.rotv[v])]
	}
	return h, nil
}

func (h *halfEdges) tail(he int) int {
	if he&1 == 0 {
		return h.eu[he/2]
	}
	return h.ev[he/2]
}

func (h *halfEdges) head(he int) int { return h.tail(he ^ 1) }

// Faces returns the face boundary walks of the embedding as vertex
// sequences (each closed walk listed once, starting vertex arbitrary).
func (r *Rotation) Faces() ([][]int, error) {
	h, err := r.buildHalfEdges()
	if err != nil {
		return nil, err
	}
	walks := h.faceWalks()
	out := make([][]int, len(walks))
	for i, w := range walks {
		vs := make([]int, len(w))
		for j, he := range w {
			vs[j] = h.tail(he)
		}
		out[i] = vs
	}
	return out, nil
}

// faceWalks returns faces as half-edge sequences.
func (h *halfEdges) faceWalks() [][]int {
	visited := make([]bool, 2*h.m)
	var walks [][]int
	for start := 0; start < 2*h.m; start++ {
		if visited[start] {
			continue
		}
		var walk []int
		he := start
		for !visited[he] {
			visited[he] = true
			walk = append(walk, he)
			he = h.next[he]
		}
		walks = append(walks, walk)
	}
	return walks
}

// Validate checks that the rotation is a well-formed embedding of G and
// that every connected component is planar (Euler genus 0).
func (r *Rotation) Validate() error {
	if r.G == nil {
		return errors.New("embed: nil graph")
	}
	if len(r.Order) != r.G.N() {
		return fmt.Errorf("embed: rotation has %d vertices, graph has %d", len(r.Order), r.G.N())
	}
	h, err := r.buildHalfEdges()
	if err != nil {
		return err
	}
	walks := h.faceWalks()
	// Per-component Euler check: V - E + F = 2.
	comps := graph.ConnectedComponents(r.G)
	compOf := make([]int, r.G.N())
	for ci, c := range comps {
		for _, v := range c {
			compOf[v] = ci
		}
	}
	facesPer := make([]int, len(comps))
	for _, w := range walks {
		facesPer[compOf[h.tail(w[0])]]++
	}
	edgesPer := make([]int, len(comps))
	r.G.Edges(func(u, _ int, _ float64) { edgesPer[compOf[u]]++ })
	for ci, c := range comps {
		if len(c) == 1 {
			continue // isolated vertex: trivially planar
		}
		if got := len(c) - edgesPer[ci] + facesPer[ci]; got != 2 {
			return fmt.Errorf("embed: component %d violates Euler formula: V-E+F = %d-%d+%d = %d (genus %d)",
				ci, len(c), edgesPer[ci], facesPer[ci], got, 2-got)
		}
	}
	return nil
}

// Restrict produces the rotation system of an induced subgraph: each
// vertex keeps its cyclic order filtered to surviving neighbors. The
// result embeds every component of the subgraph in the plane.
func (r *Rotation) Restrict(sub *graph.Sub) *Rotation {
	inSub := make(map[int]int, len(sub.Orig))
	for sv, ov := range sub.Orig {
		inSub[ov] = sv
	}
	order := make([][]int, len(sub.Orig))
	for sv, ov := range sub.Orig {
		for _, w := range r.Order[ov] {
			if sw, ok := inSub[w]; ok {
				order[sv] = append(order[sv], sw)
			}
		}
	}
	return &Rotation{G: sub.G, Order: order}
}

// IsPlanar reports whether g has a planar embedding, via Planarize.
func IsPlanar(g *graph.Graph) bool {
	_, err := Planarize(g)
	return err == nil
}
