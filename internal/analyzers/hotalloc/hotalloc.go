// Package hotalloc keeps the query hot paths allocation-free.
//
// Functions carrying the directive comment
//
//	//pathsep:hotpath
//
// are the per-query serving code: Oracle.queryLabels, pairMin, the Flat
// merge-join and the frozen tree-labeling query. Their zero-allocs/op
// contract is enforced dynamically by the bench-query gate, but only for
// the paths a benchmark happens to exercise; this pass enforces it
// statically for every path, flagging the constructs that allocate (or
// may allocate) inside a tagged function:
//
//   - append(...) — grows a heap backing array;
//   - make(...) — slice/map/chan allocation;
//   - map and slice composite literals;
//   - conversions of concrete values to interface types, explicit
//     (any(x), io.Reader(f)) or implicit at a call site whose parameter
//     is an interface (fmt.Sprintf's variadic ...any, for example) —
//     these box the value on the heap unless escape analysis gets lucky,
//     and hot paths must not gamble on it.
//
// Test files are exempt, as are untagged functions: the pass is an
// opt-in contract, not a style rule. Assignment- and return-position
// interface conversions are not yet detected; call sites are by far the
// common leak.
//
// Only the bare directive opts a function in. Argumented forms such as
//
//	//pathsep:hotpath writes=views
//
// address other analyzers (unsafeview's sanctioned-writer grant) and
// deliberately do NOT impose the zero-alloc contract: a sanctioned view
// writer like Flat.derive allocates the arrays it then fills.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs (append/make/map literals/interface conversions) in //pathsep:hotpath functions",
	Run:  run,
}

// directive is the magic comment that opts a function into the check.
const directive = "//pathsep:hotpath"

// isHot reports whether the function declaration carries the directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", name)
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, explicit conversions to interface
// types, and concrete arguments passed to interface parameters.
func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtins: append and make. Uses resolves through parentheses and
	// shadowing (a local `append` function would not be the builtin).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(), "append may allocate in hotpath function %s", name)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hotpath function %s", name)
			}
			return
		}
	}

	// Explicit conversion: T(x) where T is an interface and x is concrete.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && !isInterface(pass.TypesInfo.TypeOf(call.Args[0])) {
			if bt, basic := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Basic); !basic || bt.Kind() != types.UntypedNil {
				pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand in hotpath function %s", tv.Type, name)
			}
		}
		return
	}

	// Implicit conversions at the call boundary: concrete arguments bound
	// to interface parameters (including variadic ...T with interface T).
	sigType := pass.TypesInfo.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through verbatim, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := pass.TypesInfo.TypeOf(arg)
		if !isInterface(pt) || at == nil || isInterface(at) {
			continue
		}
		if bt, basic := at.Underlying().(*types.Basic); basic && bt.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument converts %s to interface %s in hotpath function %s", at, pt, name)
	}
}
