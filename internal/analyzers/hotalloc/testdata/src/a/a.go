package a

func sink(v interface{})        {}
func sinkAll(vs ...interface{}) {}
func sinkInt(v int)             {}

type stringer interface{ String() string }

type thing int

func (thing) String() string { return "thing" }

// hot is the tagged function: every allocating construct must be flagged.
//
//pathsep:hotpath
func hot(xs []int, m map[string]int, th thing) {
	xs = append(xs, 1)    // want `append may allocate in hotpath function hot`
	_ = make([]int, 4)    // want `make allocates in hotpath function hot`
	_ = make(map[int]int) // want `make allocates in hotpath function hot`
	_ = map[int]int{1: 2} // want `map literal allocates in hotpath function hot`
	_ = []int{1, 2, 3}    // want `slice literal allocates in hotpath function hot`
	sink(42)              // want `argument converts int to interface`
	sinkAll(1, "two")     // want `argument converts int to interface` `argument converts string to interface`
	_ = interface{}(xs)   // want `conversion to interface interface\{\} boxes its operand in hotpath function hot`
	_ = stringer(th)      // want `conversion to interface a.stringer boxes its operand in hotpath function hot`
	_ = xs
}

// ok is tagged but clean: index arithmetic, calls with concrete
// parameters, interface-to-interface moves and nil never allocate.
//
//pathsep:hotpath
func ok(xs []int, s stringer) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	sinkInt(total)
	sink(s)   // interface to interface: no boxing
	sink(nil) // untyped nil: no boxing
	var ss []interface{}
	sinkAll(ss...) // slice passed through verbatim
	return total
}

// cold is untagged: the same constructs pass.
func cold(xs []int) {
	xs = append(xs, 1)
	_ = make([]int, 4)
	_ = map[int]int{1: 2}
	sink(42)
	_ = xs
}

func consume(window []int32) {}

// okWindow is the two-phase merge idiom from the flat query path: a
// fixed-size stack array buffers matches and is re-sliced per flush.
// Array variables and slicing them never allocate, so the tagged
// function stays clean.
//
//pathsep:hotpath
func okWindow(keys []int32) int32 {
	var mA, mB [16]int32
	nm := 0
	best := int32(0)
	for _, k := range keys {
		if nm == len(mA) {
			consume(mA[:nm])
			consume(mB[:nm])
			nm = 0
		}
		mA[nm], mB[nm] = k, k+1
		nm++
		if k > best {
			best = k
		}
	}
	consume(mA[:nm])
	var sched [8]uint64
	scratch := sched[:]
	for x := range scratch {
		scratch[x] = uint64(best)
	}
	return best + int32(scratch[0])
}

// sanctionedWriter carries the argumented form of the directive, which
// grants unsafeview's write permission but does NOT opt into the
// zero-alloc contract — it allocates freely with no diagnostics.
//
//pathsep:hotpath writes=views
func sanctionedWriter(n int) []float64 {
	lanes := make([]float64, n)
	for i := range lanes {
		lanes[i] = float64(i)
	}
	return append(lanes, 0)
}
