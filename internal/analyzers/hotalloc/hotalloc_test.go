package hotalloc_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/hotalloc"
)

// TestHotAlloc checks that tagged functions are flagged and untagged (or
// clean) ones are not.
func TestHotAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata", hotalloc.Analyzer, "a")
}
