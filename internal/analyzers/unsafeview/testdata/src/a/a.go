// Package a exercises the unsafeview analyzer: unsafe.Slice views need
// dominating bounds and alignment validation, stay read-only outside a
// sanctioned writer, and may not outlive their backing buffer.
package a

import "unsafe"

const hostOK = true

type rec struct {
	a uint32
	b uint32
}

type img struct {
	buf  []byte
	recs []rec
	off  []int32
	lane []float64
}

func layoutTotal(n int) int { return 8 * n }

// checkLen is an in-package validator: its interprocedural summary
// records the len comparison on its parameter.
func checkLen(buf []byte, n int) bool {
	return len(buf) == layoutTotal(n)
}

// aligned8 performs the alignment probe for callers.
func aligned8(buf []byte) bool {
	return uintptr(unsafe.Pointer(&buf[0]))%8 == 0
}

// alignedFloats is an unsafe-using slice factory: its results (and any
// field they are stored into) are views.
func alignedFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	buf := make([]float64, n+7)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%64 != 0 {
		off++
	}
	return buf[off : off+n : off+n]
}

// clean: guard-style bounds check, then views inside the alignment
// branch, with the backing buffer retained alongside the views.
func decodeGood(buf []byte, n int) *img {
	if len(buf) != layoutTotal(n) {
		return nil
	}
	f := &img{}
	if hostOK && uintptr(unsafe.Pointer(&buf[0]))%8 == 0 {
		f.buf = buf
		f.recs = unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n)
	}
	return f
}

// clean: validation through in-package helpers, seen via summaries.
func decodeHelpers(buf []byte, n int) *img {
	if !checkLen(buf, n) {
		return nil
	}
	if !aligned8(buf) {
		return nil
	}
	f := &img{}
	f.buf = buf
	f.recs = unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n)
	return f
}

// missing bounds check: only alignment is proven.
func decodeNoBounds(buf []byte, n int) *img {
	f := &img{}
	if uintptr(unsafe.Pointer(&buf[0]))%8 == 0 {
		f.buf = buf
		f.recs = unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n) // want `unsafe view of buf constructed without a dominating bounds check of len\(buf\)`
	}
	return f
}

// missing alignment check: only bounds are proven.
func decodeNoAlign(buf []byte, n int) *img {
	if len(buf) != layoutTotal(n) {
		return nil
	}
	f := &img{}
	f.buf = buf
	f.recs = unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n) // want `unsafe view of buf constructed without a dominating alignment check of buf`
	return f
}

// escape asymmetry: the view is returned but buf stays local.
func sliceEscapes(buf []byte, n int) []rec {
	if len(buf) != layoutTotal(n) {
		return nil
	}
	if uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
		return nil
	}
	r := unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n) // want `unsafe view over buf escapes sliceEscapes but buf itself does not; retain the backing buffer alongside the view`
	return r
}

// clean: view and backing escape together.
func sliceEscapesWithBacking(buf []byte, n int, f *img) {
	if len(buf) != layoutTotal(n) {
		return
	}
	if uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
		return
	}
	f.buf = buf
	f.recs = unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n)
}

// write through a view local: the frozen image is read-only.
func writeViewLocal(buf []byte, n int) {
	if len(buf) != layoutTotal(n) {
		return
	}
	if uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
		return
	}
	r := unsafe.Slice((*rec)(unsafe.Pointer(&buf[0])), n)
	r[0] = rec{} // want `write through unsafe-derived view r outside a sanctioned writer`
}

// write through a view field, package-wide: recs held an unsafe view in
// the decoders above, so no function may store through it.
func writeViewField(f *img) {
	f.recs[0].a = 1 // want `write through unsafe-derived view recs outside a sanctioned writer`
}

// copy into a view is a bulk write.
func copyIntoView(f *img, src []rec) {
	copy(f.recs, src) // want `copy into unsafe-derived view recs outside a sanctioned writer`
}

// sanctioned writer: the lane derivation fills views it just built,
// before the image is published.
//
//pathsep:hotpath writes=views
func deriveLanes(f *img, n int) {
	f.lane = alignedFloats(n)
	for i := 0; i < n; i++ {
		f.lane[i] = 0
	}
}

// unsanctioned writer through the factory-derived field.
func writeLane(f *img) {
	f.lane[0] = 1 // want `write through unsafe-derived view lane outside a sanctioned writer`
}

// clean: the builder fills arrays it just made — composite-literal
// make() fields and plain make() assignments are owned, not views, even
// though the same fields hold unsafe views after a zero-copy decode.
func build(n int) *img {
	f := &img{off: make([]int32, n+1)}
	f.recs = make([]rec, n)
	for i := 0; i < n; i++ {
		f.off[i+1] = int32(i)
		f.recs[i] = rec{a: uint32(i)}
	}
	return f
}
