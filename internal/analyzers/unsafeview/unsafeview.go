// Package unsafeview polices the zero-copy image views. DecodeFlat
// reinterprets one owned byte buffer as typed section slices with
// unsafe.Slice, and the lane pool hands out cache-line-aligned float
// slices probed with unsafe.Pointer. Both are safe only under
// discipline the type system cannot see, so this pass enforces it:
//
//   - validation dominance: every unsafe.Slice view over a buffer must
//     be dominated by a bounds check of that buffer (a comparison
//     involving len(buf), directly or through an in-package helper
//     whose interprocedural summary validates the parameter) and by an
//     alignment check (a uintptr(unsafe.Pointer(...))%k test of the
//     same buffer, directly or through an in-package helper whose body
//     performs one). A view carved out of an unchecked buffer turns a
//     short or misaligned image into out-of-bounds typed reads.
//
//   - read-only views: unsafe-derived slices — results of unsafe.Slice
//     or of in-package functions that return a slice and use unsafe
//     (the aligned-lane allocator), and any struct field such a value
//     is ever assigned to — are read-only package-wide. Writing
//     through one mutates the frozen image every concurrent reader
//     trusts. The sole exception is a sanctioned writer annotated
//
//     //pathsep:hotpath writes=views
//
//     (the lane derivation, which fills the lanes it just allocated
//     before the image is published). A function that assigns the
//     field from a plain make() it performed itself is also exempt for
//     that field: it owns a fresh heap array, not a view of the mapped
//     image — this is how the builder and the copying decode fallback
//     stay clean without annotations.
//
//   - escape symmetry: if a view over a buffer escapes the
//     constructing function (returned, or stored into a field or
//     package variable), the backing buffer must escape too. A view
//     whose backing is only a local keeps memory alive invisibly at
//     best; with a future arena or mmap backing it dangles.
//
// Test files are exempt.
package unsafeview

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pathsep/internal/analyzers/ssaflow"
)

// hotpathDirective is shared with hotalloc; the writes=views argument
// turns it into unsafeview's sanctioned-writer annotation (and, being
// argumented, it no longer opts the function into hotalloc's
// zero-allocation contract).
const (
	hotpathDirective = "//pathsep:hotpath"
	writesViewsArg   = "writes=views"
)

// Analyzer is the unsafeview pass.
var Analyzer = &analysis.Analyzer{
	Name:     "unsafeview",
	Doc:      "unsafe.Slice views need dominating bounds+alignment validation, stay read-only outside the sanctioned writer, and may not outlive their backing buffer",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssaflow.Analyzer},
	Run:      run,
}

// sanctionedWriter reports whether fd carries the writes=views form of
// the hotpath directive.
func sanctionedWriter(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, hotpathDirective) {
			continue
		}
		for _, f := range strings.Fields(strings.TrimPrefix(text, hotpathDirective)) {
			if f == writesViewsArg {
				return true
			}
		}
	}
	return false
}

// usesUnsafe reports whether node references the unsafe package.
func usesUnsafe(info *types.Info, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if pn, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg && pn.Imported().Path() == "unsafe" {
				found = true
			}
		}
		return true
	})
	return found
}

// isUnsafeSlice matches calls to the unsafe.Slice builtin.
func isUnsafeSlice(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Slice" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, isPkg := info.ObjectOf(id).(*types.PkgName)
	return isPkg && pn.Imported().Path() == "unsafe"
}

// backingObject peels the pointer argument of unsafe.Slice —
// (*T)(unsafe.Pointer(&buf[off])) — down to buf.
func backingObject(info *types.Info, e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			// A conversion (unsafe.Pointer(p), (*T)(p)) forwards its operand.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.UnaryExpr:
			e = x.X
		default:
			return ssaflow.BaseObject(info, e)
		}
	}
}

// condLenChecks reports objects whose len() participates in a
// comparison inside cond.
func condLenChecks(info *types.Info, cond ast.Expr, out map[types.Object]bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !be.Op.IsOperator() {
			return true
		}
		switch be.Op.String() {
		case "==", "!=", "<", "<=", ">", ">=":
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "len" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
						if obj := ssaflow.BaseObject(info, call.Args[0]); obj != nil {
							out[obj] = true
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// condAlignChecks reports objects probed by a uintptr(...)%k test
// inside cond.
func condAlignChecks(info *types.Info, cond ast.Expr, out map[types.Object]bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "%" {
			return true
		}
		if !usesUnsafe(info, be.X) {
			return true
		}
		collectMentioned(info, be.X, out)
		return true
	})
}

// collectMentioned adds every variable mentioned in e to out.
func collectMentioned(info *types.Info, e ast.Expr, out map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := info.ObjectOf(id).(*types.Var); isVar {
				out[v] = true
			}
		}
		return true
	})
}

// terminates reports whether the statement list ends control flow.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// pkg-wide facts computed by the prepass.
type facts struct {
	pass       *analysis.Pass
	res        *ssaflow.Result
	origins    map[*types.Func]bool // in-package slice factories using unsafe
	aligners   map[*types.Func]bool // in-package funcs performing an alignment probe
	viewFields map[types.Object]bool
}

// viewOrigin reports whether e constructs (or fetches) an unsafe-derived
// view, and for direct unsafe.Slice calls returns the backing object.
func (fx *facts) viewOrigin(e ast.Expr) (backing types.Object, isView bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	info := fx.pass.TypesInfo
	if isUnsafeSlice(info, call) && len(call.Args) == 2 {
		return backingObject(info, call.Args[0]), true
	}
	if fn := ssaflow.CalleeFunc(info, call); fn != nil && fx.origins[fn] {
		return nil, true
	}
	return nil, false
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	info := pass.TypesInfo

	fx := &facts{
		pass:       pass,
		res:        res,
		origins:    map[*types.Func]bool{},
		aligners:   map[*types.Func]bool{},
		viewFields: map[types.Object]bool{},
	}

	// Prepass 1: classify in-package functions. A slice-returning
	// function whose body touches unsafe is a view factory; any function
	// containing a modulo test of an unsafe.Pointer is an alignment
	// checker usable from a caller's condition.
	for fn, s := range res.Summaries {
		if s.Decl == nil || s.Decl.Body == nil {
			continue
		}
		if !usesUnsafe(info, s.Decl.Body) {
			continue
		}
		sig := fn.Type().(*types.Signature)
		for j := 0; j < sig.Results().Len(); j++ {
			if _, isSlice := sig.Results().At(j).Type().Underlying().(*types.Slice); isSlice {
				fx.origins[fn] = true
			}
		}
		ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
			if be, ok := n.(*ast.BinaryExpr); ok && be.Op.String() == "%" && usesUnsafe(info, be.X) {
				fx.aligners[fn] = true
			}
			return true
		})
	}

	// Prepass 2: fields that ever hold a view anywhere in the package.
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			if _, isView := fx.viewOrigin(as.Rhs[i]); !isView {
				continue
			}
			if sel, ok := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr); ok {
				if obj := info.ObjectOf(sel.Sel); obj != nil {
					fx.viewFields[obj] = true
				}
			}
		}
	})

	for _, fn := range res.Funcs {
		file := pass.Fset.Position(fn.Node.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		fd, ok := fn.Node.(*ast.FuncDecl)
		if !ok {
			continue
		}
		checkFunc(fx, fd)
	}
	return nil, nil
}

// vstate tracks, along one path, which buffers have had their length
// and alignment validated.
type vstate struct {
	ln, al map[types.Object]bool
}

func (v *vstate) clone() *vstate {
	c := &vstate{ln: map[types.Object]bool{}, al: map[types.Object]bool{}}
	for k := range v.ln {
		c.ln[k] = true
	}
	for k := range v.al {
		c.al[k] = true
	}
	return c
}

// checker walks one function.
type checker struct {
	fx         *facts
	fd         *ast.FuncDecl
	sanctioned bool
	// makeOwned: fields and locals this function assigned from a plain
	// make() — writes through them are writes into fresh heap memory.
	makeOwned map[types.Object]bool
	// viewLocals: locals holding a view, mapped to the backing object
	// (nil when unknown, e.g. factory results).
	viewLocals map[types.Object]types.Object
	// escape bookkeeping for the symmetry check.
	viewBacking map[types.Object]ast.Expr // backing -> first view construction site
	viewEscaped map[types.Object]bool     // backing -> some view over it escaped
	objEscaped  map[types.Object]bool     // object itself escaped (stored/returned)
}

func checkFunc(fx *facts, fd *ast.FuncDecl) {
	c := &checker{
		fx:          fx,
		fd:          fd,
		sanctioned:  sanctionedWriter(fd),
		makeOwned:   map[types.Object]bool{},
		viewLocals:  map[types.Object]types.Object{},
		viewBacking: map[types.Object]ast.Expr{},
		viewEscaped: map[types.Object]bool{},
		objEscaped:  map[types.Object]bool{},
	}
	st := &vstate{ln: map[types.Object]bool{}, al: map[types.Object]bool{}}
	c.stmts(st, fd.Body.List)

	// Escape symmetry: some view over B escaped, but B itself did not.
	for backing, site := range c.viewBacking {
		if c.viewEscaped[backing] && !c.objEscaped[backing] {
			c.fx.pass.Reportf(site.Pos(),
				"unsafe view over %s escapes %s but %s itself does not; retain the backing buffer alongside the view",
				backing.Name(), fd.Name.Name, backing.Name())
		}
	}
}

func (c *checker) info() *types.Info { return c.fx.pass.TypesInfo }

// condValidates records what cond proves: direct len/alignment tests,
// and calls to in-package validators and alignment checkers.
func (c *checker) condValidates(cond ast.Expr, st *vstate) {
	info := c.info()
	condLenChecks(info, cond, st.ln)
	condAlignChecks(info, cond, st.al)
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.callValidates(call, st)
		return true
	})
}

// callValidates folds an in-package callee's summary into the state:
// a parameter the callee length-validates counts as a bounds check, a
// callee performing an alignment probe counts as an alignment check
// for every argument it receives.
func (c *checker) callValidates(call *ast.CallExpr, st *vstate) {
	info := c.info()
	fn := ssaflow.CalleeFunc(info, call)
	if fn == nil {
		return
	}
	s := c.fx.res.SummaryOf(fn)
	if s == nil {
		return
	}
	for i, arg := range call.Args {
		obj := ssaflow.BaseObject(info, arg)
		if obj == nil {
			continue
		}
		if s.Validates[i] {
			st.ln[obj] = true
		}
		if c.fx.aligners[fn] {
			st.al[obj] = true
		}
	}
}

// checkViews scans a non-control statement for unsafe.Slice
// constructions and validates them against st.
func (c *checker) checkViews(n ast.Node, st *vstate) {
	info := c.info()
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !isUnsafeSlice(info, call) || len(call.Args) != 2 {
			return true
		}
		backing := backingObject(info, call.Args[0])
		if backing == nil {
			return true
		}
		if _, seen := c.viewBacking[backing]; !seen {
			c.viewBacking[backing] = call
		}
		if !st.ln[backing] {
			c.fx.pass.Reportf(call.Pos(),
				"unsafe view of %s constructed without a dominating bounds check of len(%s)",
				backing.Name(), backing.Name())
			st.ln[backing] = true // once per buffer per function
		}
		if !st.al[backing] {
			c.fx.pass.Reportf(call.Pos(),
				"unsafe view of %s constructed without a dominating alignment check of %s",
				backing.Name(), backing.Name())
			st.al[backing] = true
		}
		return true
	})
}

// checkWrite resolves the base of an index write — peeling selectors
// and derefs, so f.recs[0].a = x is recognized as a write through
// f.recs — and reports it if that base is an unsafe-derived view this
// function may not mutate.
func (c *checker) checkWrite(lhs ast.Expr) {
	info := c.info()
	e := ast.Unparen(lhs)
	var ie *ast.IndexExpr
peel:
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			ie = x
			break peel
		default:
			return
		}
	}
	base := ast.Unparen(ie.X)
	var obj types.Object
	switch b := base.(type) {
	case *ast.Ident:
		obj = info.ObjectOf(b)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(b.Sel)
	default:
		return
	}
	if obj == nil || c.sanctioned || c.makeOwned[obj] {
		return
	}
	_, isViewLocal := c.viewLocals[obj]
	if !isViewLocal && !c.fx.viewFields[obj] {
		return
	}
	c.fx.pass.Reportf(lhs.Pos(),
		"write through unsafe-derived view %s outside a sanctioned writer; views of the frozen image are read-only (annotate the writer %s %s if this mutation is part of image construction)",
		obj.Name(), hotpathDirective, writesViewsArg)
}

// isMakeCall matches plain make(...) allocations.
func isMakeCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// assign tracks view/make provenance and escapes for one binding.
func (c *checker) assign(lhs, rhs ast.Expr) {
	info := c.info()
	backing, isView := c.fx.viewOrigin(rhs)

	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(l)
		if obj == nil {
			return
		}
		delete(c.makeOwned, obj)
		delete(c.viewLocals, obj)
		if isView {
			c.viewLocals[obj] = backing
		} else if isMakeCall(info, rhs) {
			c.makeOwned[obj] = true
		} else {
			c.noteCompositeMakes(rhs)
		}
	case *ast.SelectorExpr:
		// A selector lvalue may still be a write through a view one
		// level down (f.recs[0].a = x); checkWrite peels and decides.
		c.checkWrite(lhs)
		obj := info.ObjectOf(l.Sel)
		if obj == nil {
			return
		}
		if isView {
			// Storing a view into a field publishes it.
			if backing != nil {
				c.viewEscaped[backing] = true
			}
		} else if isMakeCall(info, rhs) {
			c.makeOwned[obj] = true
		}
		// The receiver/struct the field lives on escapes nothing here;
		// but a view-carrying local stored into a field escapes.
		c.noteEscapes(rhs)
	default:
		c.checkWrite(lhs)
		c.noteEscapes(rhs)
	}
}

// noteCompositeMakes credits struct-literal fields initialized with a
// plain make() as make-owned: `f := &Flat{entryOff: make(...)}`
// followed by f.entryOff[i] = x is the builder filling its own fresh
// array, not a write through an image view.
func (c *checker) noteCompositeMakes(e ast.Expr) {
	info := c.info()
	ast.Inspect(e, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isMakeCall(info, kv.Value) {
			return true
		}
		if obj := info.ObjectOf(key); obj != nil {
			c.makeOwned[obj] = true
		}
		return true
	})
}

// noteEscapes marks objects (and views over them) mentioned by e as
// escaping through a store or return.
func (c *checker) noteEscapes(e ast.Expr) {
	if e == nil {
		return
	}
	info := c.info()
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		c.objEscaped[obj] = true
		if backing, ok := c.viewLocals[obj]; ok && backing != nil {
			c.viewEscaped[backing] = true
		}
		return true
	})
}

func (c *checker) stmts(st *vstate, list []ast.Stmt) {
	for _, s := range list {
		c.stmt(st, s)
	}
}

func (c *checker) stmt(st *vstate, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(st, s.Init)
		}
		c.checkViews(s.Cond, st)
		then := st.clone()
		c.condValidates(s.Cond, then)
		c.stmts(then, s.Body.List)
		if s.Else != nil {
			els := st.clone()
			c.stmt(els, s.Else)
		}
		// Guard style: `if <fails validation> { return }` proves the
		// condition's checks for the code after the if.
		if terminates(s.Body.List) {
			c.condValidates(s.Cond, st)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(st, s.Init)
		}
		if s.Cond != nil {
			c.checkViews(s.Cond, st)
		}
		body := st.clone()
		c.stmts(body, s.Body.List)
		if s.Post != nil {
			c.stmt(body, s.Post)
		}
	case *ast.RangeStmt:
		c.checkViews(s.X, st)
		body := st.clone()
		c.stmts(body, s.Body.List)
	case *ast.BlockStmt:
		c.stmts(st, s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(st, s.Init)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				b := st.clone()
				c.stmts(b, cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				b := st.clone()
				c.stmts(b, cl.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				b := st.clone()
				if cl.Comm != nil {
					c.stmt(b, cl.Comm)
				}
				c.stmts(b, cl.Body)
			}
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.checkViews(r, st)
			ast.Inspect(r, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.callValidates(call, st)
				}
				return true
			})
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				c.assign(s.Lhs[i], s.Rhs[i])
			}
		} else {
			for _, l := range s.Lhs {
				c.checkWrite(l)
			}
		}
	case *ast.IncDecStmt:
		c.checkWrite(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							c.checkViews(vs.Values[i], st)
							c.assign(name, vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.checkViews(s.X, st)
		ast.Inspect(s.X, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.callValidates(call, st)
				c.checkCopyInto(call)
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkViews(r, st)
			c.noteEscapes(r)
		}
	case *ast.DeferStmt:
		c.checkViews(s.Call, st)
	case *ast.GoStmt:
		c.checkViews(s.Call, st)
		c.noteEscapes(s.Call)
	case *ast.SendStmt:
		c.checkViews(s.Value, st)
		c.noteEscapes(s.Value)
	case *ast.LabeledStmt:
		c.stmt(st, s.Stmt)
	}
}

// checkCopyInto flags copy(view, ...) — a bulk write through a view.
func (c *checker) checkCopyInto(call *ast.CallExpr) {
	info := c.info()
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" || len(call.Args) != 2 {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	dst := ast.Unparen(call.Args[0])
	var obj types.Object
	switch d := dst.(type) {
	case *ast.Ident:
		obj = info.ObjectOf(d)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(d.Sel)
	default:
		return
	}
	if obj == nil || c.sanctioned || c.makeOwned[obj] {
		return
	}
	_, isViewLocal := c.viewLocals[obj]
	if !isViewLocal && !c.fx.viewFields[obj] {
		return
	}
	c.fx.pass.Reportf(call.Pos(),
		"copy into unsafe-derived view %s outside a sanctioned writer; views of the frozen image are read-only",
		obj.Name())
}
