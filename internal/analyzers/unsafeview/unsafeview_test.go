package unsafeview_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/unsafeview"
)

func TestUnsafeView(t *testing.T) {
	analyzertest.Run(t, "testdata", unsafeview.Analyzer, "a")
}
