// Package ssaflow is the shared value-flow layer under the determinism
// analyzers (maporder, slotwrite, sortcmp). It plays the role
// golang.org/x/tools/go/analysis/passes/buildssa plays for SSA-based
// passes: one pass builds a per-package function index plus conservative
// def-use utilities, and the determinism analyzers consume its Result via
// Requires.
//
// The toolchain-vendored x/tools subset this repo carries (see DESIGN.md,
// "Static analysis") does not include go/ssa, so ssaflow implements the
// fragment the analyzers actually need directly on the typed AST:
//
//   - an enumeration of every function body in the package — declarations
//     and function literals alike, each analyzed as its own unit;
//   - object-level def-use queries: the base storage object of an lvalue,
//     whether an expression mentions an object (skipping len/cap, whose
//     results carry no element order), and free-variable sets of function
//     literals;
//   - a Taint store used by maporder's flow-sensitive reachability walk:
//     objects tainted at a program point, with the originating map-range
//     position retained for diagnostics.
//
// The model is deliberately conservative and intra-procedural: a taint is
// an over-approximation of "this value's content or order depends on map
// iteration order", kills happen only on whole-object reassignment or an
// explicit sort barrier, and calls are opaque (arguments flow in, nothing
// flows back out except through assignment of results).
package ssaflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer builds the per-package function index. It reports nothing
// itself; the determinism analyzers require it.
var Analyzer = &analysis.Analyzer{
	Name:       "ssaflow",
	Doc:        "build per-function value-flow summaries for the determinism analyzers",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*Result)(nil)),
	Run:        run,
}

// Result is the package-wide function index.
type Result struct {
	// Funcs lists every function body in the package: declarations first
	// in file order, then function literals in position order. Literals
	// appear both as their own Func and inside their enclosing body's AST;
	// analyzers walking statements should skip nested *ast.FuncLit nodes
	// and rely on the literal's own entry.
	Funcs []*Func
	// Summaries holds the interprocedural per-function fact records for
	// every declared function with a body (see summary.go). Clients use
	// SummaryOf / ParamFlow / ResultFlow rather than reading this map.
	Summaries map[*types.Func]*Summary
}

// Func is one analyzable function body.
type Func struct {
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Body is the function body (never nil for an indexed Func).
	Body *ast.BlockStmt
	// Name is a best-effort display name: the declared name, or "func
	// literal" for literals.
	Name string
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	res := &Result{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				res.Funcs = append(res.Funcs, &Func{Node: n, Body: n.Body, Name: n.Name.Name})
			}
		case *ast.FuncLit:
			if n.Body != nil {
				res.Funcs = append(res.Funcs, &Func{Node: n, Body: n.Body, Name: "func literal"})
			}
		}
	})
	res.Summaries = summarize(pass.TypesInfo, res.Funcs)
	return res, nil
}

// BaseObject peels an lvalue (or any expression) down to the object that
// owns its storage: x, x.f, x[i], (*x)[i].f all resolve to x. It returns
// nil for expressions not rooted at a simple identifier (calls, composite
// literals, ...).
func BaseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified package selector (pkg.Var) resolves via Sel.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					return info.ObjectOf(x.Sel)
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isLenCap reports whether call is the builtin len or cap, whose results
// carry no iteration order.
func isLenCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "len" || id.Name == "cap"
}

// Mentions reports whether e references any object satisfying pred.
// Arguments of builtin len/cap are skipped (their results are
// order-insensitive); nested function literals are included, since a
// literal capturing a value keeps the dependence alive.
func Mentions(info *types.Info, e ast.Expr, pred func(types.Object) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isLenCap(info, call) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && pred(obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// DeclaredWithin reports whether obj's declaration lies inside node's
// source extent — the "is it a local of this body?" test used for slot
// discipline and taint sources.
func DeclaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// FreeVars returns the variables a function literal uses but does not
// declare — the captured state a parallel task shares with its siblings.
func FreeVars(info *types.Info, lit *ast.FuncLit) map[*types.Var]bool {
	free := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.ObjectOf(id).(*types.Var); ok && !DeclaredWithin(v, lit) {
			free[v] = true
		}
		return true
	})
	return free
}

// IsOrderCarrying reports whether values of type t can carry an iteration
// order or an order-sensitive accumulation: slices and arrays (element
// order), strings (concatenation order), and floats (addition is not
// associative, so a map-ordered reduction is not deterministic).
func IsOrderCarrying(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0 || u.Info()&types.IsFloat != 0
	}
	return false
}

// CalleeFunc resolves the called function or method object of a call
// expression, or nil for calls through function values, builtins and
// conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Taint is the flow-sensitive tainted-object store of a reachability
// walk: object → the map-range source that tainted it.
type Taint struct {
	info *types.Info
	objs map[types.Object]*Source
}

// Source is the origin of a taint: the map-range statement and the
// accumulation site inside it. Reported is set once a diagnostic has been
// emitted for this source, so a single nondeterministic accumulation is
// flagged at its first sink only.
type Source struct {
	RangePos token.Pos
	AccPos   token.Pos
	Reported bool
}

// NewTaint returns an empty store.
func NewTaint(info *types.Info) *Taint {
	return &Taint{info: info, objs: map[types.Object]*Source{}}
}

// Add taints obj with the given source.
func (t *Taint) Add(obj types.Object, src *Source) {
	if obj != nil {
		t.objs[obj] = src
	}
}

// Kill removes obj from the store (whole-object reassignment or an
// explicit sort barrier).
func (t *Taint) Kill(obj types.Object) {
	delete(t.objs, obj)
}

// Lookup returns obj's taint source, or nil.
func (t *Taint) Lookup(obj types.Object) *Source {
	if obj == nil {
		return nil
	}
	return t.objs[obj]
}

// Empty reports whether no object is currently tainted.
func (t *Taint) Empty() bool { return len(t.objs) == 0 }

// MentionedSource returns the taint source of the first tainted object e
// mentions, or nil.
func (t *Taint) MentionedSource(e ast.Expr) *Source {
	if len(t.objs) == 0 {
		return nil
	}
	var src *Source
	Mentions(t.info, e, func(obj types.Object) bool {
		if s := t.objs[obj]; s != nil {
			src = s
			return true
		}
		return false
	})
	return src
}
