// Interprocedural layer: per-function summaries and the package call
// graph, the fragment of a bottom-up interprocedural analysis the
// analyzers need to see through wrappers.
//
// The intraprocedural walks in poolleak/maporder/ctxdone stop at call
// boundaries; every one of them used to carry its own single-level
// wrapper recognizer (poolleak's getter/putter classifier, ctxdone's
// argument-type heuristic). Summaries replace those: one pass over the
// package records, per function,
//
//   - which call sites each parameter's value can reach (ParamUses),
//     so "passes its buffer to sync.Pool.Put" or "sorts its argument"
//     is visible through any chain of in-package calls;
//   - whether a parameter escapes sideways (stored, sent, captured,
//     launched in a goroutine, passed through a function value) — the
//     ownership-transfer facts the path-sensitive walks key on;
//   - what each result can be: an alias of a parameter ("derives alias
//     of param") or the result of a call (pool.Get behind two wrapper
//     levels resolves here);
//   - whether len() of a parameter is consulted in a comparison
//     ("validates offsets" — unsafeview accepts factored-out
//     validation helpers through this bit);
//   - whether the body contains a shutdown-tie construct (ctxdone's
//     named-function case), and the body's statically resolved callees.
//
// Summaries are exported on the Result in the analysis.Fact style — a
// self-contained record per function object, memoized once per package
// and consumed by any requiring analyzer — but they live in the Result
// rather than real Facts: the vendored unitchecker would serialize
// facts fine, yet the analyzertest harness (and everything these
// analyzers check) is package-local, so package-scope summaries keep
// both drivers on one code path. ParamFlow and ResultFlow are the
// transitive resolvers: they chase summary edges across in-package
// calls (cycle-guarded, depth-capped) so clients ask "does this value
// reach X" instead of re-implementing the closure.
package ssaflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maxFlowDepth caps transitive resolution; real wrapper chains are two
// or three deep, and the cap turns call-graph cycles into conservative
// truncation instead of nontermination.
const maxFlowDepth = 16

// ParamUse is one call site that (transitively) receives data flowing
// from a parameter: the syntactic call, its resolved callee (nil for
// calls through function values) and the argument position the data
// occupies there.
type ParamUse struct {
	Call   *ast.CallExpr
	Callee *types.Func
	Arg    int
}

// ReturnSource describes one thing a function result can be: an alias
// of parameter Param (when >= 0), or result Result of Call/Callee.
type ReturnSource struct {
	Param  int // >= 0: result may alias this parameter
	Call   *ast.CallExpr
	Callee *types.Func // nil for builtins and function values
	Result int
}

// Summary is the per-function fact record. All maps are keyed by
// parameter index (receiver excluded) or result index.
type Summary struct {
	// Fn is the summarized function object; Decl its declaration.
	Fn   *types.Func
	Decl *ast.FuncDecl
	// ParamUses[i] lists the direct call sites receiving data derived
	// from parameter i. Transitive reachability is ParamFlow's job.
	ParamUses map[int][]ParamUse
	// ParamSunk[i], when non-empty, is the reason parameter i's value
	// escapes sideways: stored into a field/slot/global, sent on a
	// channel, captured by a function literal, launched in a goroutine,
	// or passed through a function value the resolver cannot follow.
	ParamSunk map[int]string
	// Returns[j] lists what result j can be (see ReturnSource).
	Returns map[int][]ReturnSource
	// Validates[i] reports that len(parameter i) is consulted in a
	// comparison — the "validates offsets" bit.
	Validates map[int]bool
	// Tied reports a shutdown-tie construct in the body (a non-timer
	// channel receive, ctx.Done, defer close, defer wg.Done).
	Tied bool
	// Callees is the set of statically resolved functions the body calls.
	Callees map[*types.Func]bool

	info   *types.Info
	params map[types.Object]int
	// locals maps each local variable to the sources its value may
	// carry, computed to a fixpoint; ArgSources resolves call-site
	// arguments against it during transitive result resolution.
	locals map[types.Object][]ReturnSource
}

// SummaryOf returns fn's summary, or nil for functions outside the
// package (or without a body).
func (r *Result) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return r.Summaries[fn]
}

// summarize builds the whole package's summary table.
func summarize(info *types.Info, funcs []*Func) map[*types.Func]*Summary {
	out := make(map[*types.Func]*Summary)
	for _, f := range funcs {
		fd, ok := f.Node.(*ast.FuncDecl)
		if !ok {
			continue // literals are analyzed inline by their enclosing body
		}
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		s := &Summary{
			Fn:        fn,
			Decl:      fd,
			ParamUses: map[int][]ParamUse{},
			ParamSunk: map[int]string{},
			Returns:   map[int][]ReturnSource{},
			Validates: map[int]bool{},
			Callees:   map[*types.Func]bool{},
			info:      info,
			params:    map[types.Object]int{},
		}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			s.params[sig.Params().At(i)] = i
		}
		s.computeLocals(fd.Body)
		s.computeFacts(fd.Body)
		out[fn] = s
	}
	return out
}

// exprSources resolves the alias-preserving sources of e: the parameters
// and calls whose value e may carry. Only shapes that preserve identity
// are followed (idents, selectors, slicing, indexing, deref, address-of,
// type assertions, calls); arithmetic produces fresh values and yields
// nothing.
func (s *Summary) exprSources(e ast.Expr) []ReturnSource {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.TypeAssertExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
			continue
		case *ast.CallExpr:
			return []ReturnSource{{Param: -1, Call: x, Callee: CalleeFunc(s.info, x)}}
		default:
			obj := BaseObject(s.info, ast.Unparen(e))
			if obj == nil {
				return nil
			}
			if i, ok := s.params[obj]; ok {
				return []ReturnSource{{Param: i}}
			}
			return s.locals[obj]
		}
	}
}

// addLocal merges srcs into obj's source set, reporting growth.
func (s *Summary) addLocal(obj types.Object, srcs []ReturnSource) bool {
	if obj == nil || len(srcs) == 0 {
		return false
	}
	if _, isParam := s.params[obj]; isParam {
		return false // a param reassigned keeps its param identity conservatively
	}
	grew := false
	for _, src := range srcs {
		dup := false
		for _, have := range s.locals[obj] {
			if have == src {
				dup = true
				break
			}
		}
		if !dup {
			if s.locals == nil {
				s.locals = map[types.Object][]ReturnSource{}
			}
			s.locals[obj] = append(s.locals[obj], src)
			grew = true
		}
	}
	return grew
}

// computeLocals iterates the body's bindings to a fixpoint, building the
// local variable → sources map (flow-insensitive union).
func (s *Summary) computeLocals(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = s.bindAssign(n) || changed
			case *ast.ValueSpec:
				for i, name := range n.Names {
					var rhs ast.Expr
					if i < len(n.Values) {
						rhs = n.Values[i]
					} else if len(n.Values) == 1 {
						rhs = n.Values[0]
					}
					if rhs != nil {
						changed = s.addLocal(s.info.ObjectOf(name), s.exprSources(rhs)) || changed
					}
				}
			case *ast.RangeStmt:
				// The value variable aliases an element of the ranged
				// container; for reference elements that keeps the
				// dependence alive.
				if n.Value != nil {
					changed = s.addLocal(BaseObject(s.info, n.Value), s.exprSources(n.X)) || changed
				}
			}
			return true
		})
	}
}

// bindAssign records one assignment's bindings.
func (s *Summary) bindAssign(as *ast.AssignStmt) bool {
	changed := false
	switch {
	case len(as.Lhs) == len(as.Rhs):
		for i := range as.Lhs {
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				changed = s.addLocal(s.info.ObjectOf(id), s.exprSources(as.Rhs[i])) || changed
			}
		}
	case len(as.Rhs) == 1:
		// Tuple binding: a multi-result call hands result i to lhs i;
		// a comma-ok form hands the value to lhs 0 only.
		srcs := s.exprSources(as.Rhs[0])
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			for _, src := range srcs {
				src := src
				if src.Call != nil {
					if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall {
						src.Result = i
					} else if i > 0 {
						continue // comma-ok: the bool carries no value
					}
				} else if i > 0 {
					continue
				}
				changed = s.addLocal(s.info.ObjectOf(id), []ReturnSource{src}) || changed
			}
		}
	}
	return changed
}

// carries reports whether e mentions parameter i or a local carrying it.
func (s *Summary) carries(e ast.Expr, i int) bool {
	return Mentions(s.info, e, func(o types.Object) bool {
		if pi, ok := s.params[o]; ok && pi == i {
			return true
		}
		for _, src := range s.locals[o] {
			if src.Param == i {
				return true
			}
		}
		return false
	})
}

// computeFacts walks the body once, recording param-flow edges, sink
// reasons, returns, validation bits, the shutdown tie, and callees.
func (s *Summary) computeFacts(body *ast.BlockStmt) {
	nparams := len(s.params)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := CalleeFunc(s.info, n); fn != nil {
				s.Callees[fn] = true
			}
			s.recordCall(n, nparams, "")
		case *ast.GoStmt:
			s.recordCall(n.Call, nparams, "launched in a goroutine")
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					obj := BaseObject(s.info, lhs)
					if _, local := s.locals[obj]; local {
						continue
					}
					if obj != nil {
						if _, isParam := s.params[obj]; isParam {
							continue
						}
						if v, isVar := obj.(*types.Var); isVar && !DeclaredWithin(v, s.Decl) {
							s.sinkMentioned(n.Rhs, "stored in a package-level variable")
						}
					}
					continue
				}
				s.sinkMentioned(n.Rhs, "stored into a field, slot or map")
			}
		case *ast.SendStmt:
			s.sinkMentioned([]ast.Expr{n.Value}, "sent on a channel")
		case *ast.FuncLit:
			for i := 0; i < nparams; i++ {
				if s.ParamSunk[i] == "" && s.carries(n, i) {
					s.ParamSunk[i] = "captured by a function literal"
				}
			}
			return false
		case *ast.ReturnStmt:
			for j, res := range n.Results {
				for _, src := range s.exprSources(res) {
					dup := false
					for _, have := range s.Returns[j] {
						if have == src {
							dup = true
							break
						}
					}
					if !dup {
						s.Returns[j] = append(s.Returns[j], src)
					}
				}
			}
			if len(n.Results) == 1 {
				// return f() of a multi-result callee spreads its results.
				if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
					if tv, ok := s.info.Types[call]; ok {
						if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() > 1 {
							callee := CalleeFunc(s.info, call)
							for j := 1; j < tup.Len(); j++ {
								s.Returns[j] = append(s.Returns[j], ReturnSource{Param: -1, Call: call, Callee: callee, Result: j})
							}
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if isComparison(n.Op) {
				for i := 0; i < nparams; i++ {
					if !s.Validates[i] && (lenOf(s, n.X, i) || lenOf(s, n.Y, i)) {
						s.Validates[i] = true
					}
				}
			}
		}
		return true
	})
	s.Tied = BodyTied(s.info, body)
}

// recordCall adds param-flow edges for one call's arguments; sunk, when
// non-empty, marks the whole call as an ownership sink (go statements).
func (s *Summary) recordCall(call *ast.CallExpr, nparams int, sunk string) {
	callee := CalleeFunc(s.info, call)
	if callee == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := s.info.Uses[id].(*types.Builtin); isBuiltin {
				return // len/cap/append/... neither sink nor propagate here
			}
		}
		if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion, not a call
		}
	}
	for argIdx, arg := range call.Args {
		for i := 0; i < nparams; i++ {
			if !s.carries(arg, i) {
				continue
			}
			switch {
			case sunk != "":
				if s.ParamSunk[i] == "" {
					s.ParamSunk[i] = sunk
				}
			case callee == nil:
				if s.ParamSunk[i] == "" {
					s.ParamSunk[i] = "passed through a function value"
				}
			default:
				s.ParamUses[i] = append(s.ParamUses[i], ParamUse{Call: call, Callee: callee, Arg: argIdx})
			}
		}
	}
}

// sinkMentioned marks every parameter mentioned by any of exprs as sunk.
func (s *Summary) sinkMentioned(exprs []ast.Expr, why string) {
	for _, pi := range s.params {
		if s.ParamSunk[pi] != "" {
			continue
		}
		for _, e := range exprs {
			if s.carries(e, pi) {
				s.ParamSunk[pi] = why
				break
			}
		}
	}
}

// ArgSources resolves argument k of a call appearing in this function's
// body to its sources (used by ResultFlow to map callee params back into
// the caller's frame).
func (s *Summary) ArgSources(call *ast.CallExpr, k int) []ReturnSource {
	if k < 0 || k >= len(call.Args) {
		return nil
	}
	return s.exprSources(call.Args[k])
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// lenOf reports whether e contains len(x) where x carries parameter i.
func lenOf(s *Summary, e ast.Expr, i int) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "len" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := s.info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if s.carries(call.Args[0], i) {
			found = true
		}
		return true
	})
	return found
}

// Flow is the transitive fate of one parameter's value: every call site
// it may reach through chains of in-package calls, plus the sideways
// escapes and validation observed anywhere along the way.
type Flow struct {
	// Uses lists every call site the value may reach, at any depth.
	// In-package callees with summaries are both listed and descended
	// into; everything else is terminal.
	Uses []ParamUse
	// Sunk, when non-empty, is the first sideways-escape reason seen.
	Sunk string
	// Returned reports that some function on the chain may return the
	// value to its caller.
	Returned bool
	// Validated reports a len() comparison on the value somewhere.
	Validated bool
}

// ParamFlow resolves the transitive fate of parameter arg of fn,
// following summary edges across in-package calls.
func (r *Result) ParamFlow(fn *types.Func, arg int) Flow {
	var fl Flow
	type key struct {
		fn  *types.Func
		arg int
	}
	seen := map[key]bool{}
	var walk func(fn *types.Func, arg, depth int)
	walk = func(fn *types.Func, arg, depth int) {
		if depth > maxFlowDepth || seen[key{fn, arg}] {
			return
		}
		seen[key{fn, arg}] = true
		s := r.SummaryOf(fn)
		if s == nil {
			return
		}
		if why, ok := s.ParamSunk[arg]; ok && fl.Sunk == "" {
			fl.Sunk = why
		}
		if s.Validates[arg] {
			fl.Validated = true
		}
		for _, srcs := range s.Returns {
			for _, src := range srcs {
				if src.Param == arg {
					fl.Returned = true
				}
			}
		}
		for _, use := range s.ParamUses[arg] {
			fl.Uses = append(fl.Uses, use)
			callee := use.Callee
			cs := r.SummaryOf(callee)
			if cs == nil {
				continue
			}
			sig := callee.Type().(*types.Signature)
			target := use.Arg
			if target >= sig.Params().Len() {
				if !sig.Variadic() || sig.Params().Len() == 0 {
					continue
				}
				target = sig.Params().Len() - 1
			}
			walk(callee, target, depth+1)
		}
	}
	walk(fn, arg, 0)
	return fl
}

// ResultFlow resolves what result res of fn can terminally be: aliases
// of fn's own parameters, and the terminal calls (out-of-package,
// builtin, or unresolvable) the value may originate from. In-package
// callee results are chased through their summaries, with callee
// parameters mapped back through the call sites into the caller frames.
func (r *Result) ResultFlow(fn *types.Func, res int) []ReturnSource {
	root := r.SummaryOf(fn)
	if root == nil {
		return nil
	}
	type frame struct {
		s      *Summary
		call   *ast.CallExpr // the call that entered s, in parent's frame
		parent *frame
	}
	var out []ReturnSource
	type ck struct {
		s   *Summary
		res int
	}
	visited := map[ck]bool{}
	var emit func(f *frame, src ReturnSource, depth int)
	emit = func(f *frame, src ReturnSource, depth int) {
		if depth > maxFlowDepth {
			return
		}
		if src.Param >= 0 {
			if f.parent == nil {
				out = append(out, src)
				return
			}
			for _, as := range f.parent.s.ArgSources(f.call, src.Param) {
				emit(f.parent, as, depth+1)
			}
			return
		}
		cs := r.SummaryOf(src.Callee)
		if cs == nil || visited[ck{cs, src.Result}] {
			out = append(out, src)
			return
		}
		visited[ck{cs, src.Result}] = true
		srcs := cs.Returns[src.Result]
		if len(srcs) == 0 {
			out = append(out, src) // callee returns fresh values; keep the call as terminal
			return
		}
		nf := &frame{s: cs, call: src.Call, parent: f}
		for _, s2 := range srcs {
			emit(nf, s2, depth+1)
		}
	}
	rootFrame := &frame{s: root}
	for _, src := range root.Returns[res] {
		emit(rootFrame, src, 0)
	}
	return out
}

// BodyTied reports whether a function body contains a shutdown-tie
// construct: a receive from a non-timer channel, a range over a channel,
// a call to a context's Done method, or a deferred completion signal
// (close(ch) / wg.Done()). This is ctxdone's tie test, shared here so
// summaries can answer it for named functions.
func BodyTied(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && IsChan(info.TypeOf(n.X)) && !isTimerChan(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if IsChan(info.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && IsContext(info.TypeOf(sel.X)) {
				found = true
			}
		case *ast.DeferStmt:
			if deferSignals(info, n.Call) {
				found = true
			}
		}
		return true
	})
	return found
}

// deferSignals reports whether call, run deferred, announces completion:
// close(ch) or wg.Done().
func deferSignals(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "close" && len(call.Args) == 1 {
			return IsChan(info.TypeOf(call.Args[0]))
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Done" && IsWaitGroup(info.TypeOf(fun.X)) {
			return true
		}
	}
	return false
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsWaitGroup reports whether t is sync.WaitGroup (or a pointer to one).
func IsWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// IsChan reports whether t's underlying type is a channel.
func IsChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isTimerChan reports whether e is a time-package call or a selector of
// a time type (After, Tick, NewTimer().C): timers are not shutdowns.
func isTimerChan(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := CalleeFunc(info, x)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time"
	case *ast.SelectorExpr:
		if t := info.TypeOf(x.X); t != nil {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "time" {
				return true
			}
		}
	}
	return false
}
