package a

import "sync/atomic"

// --- old-style atomics: plain access to a location also touched via
// sync/atomic functions ---

type counters struct {
	hits  int64
	total int64
}

func oldStyleMixed(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	c.hits++    // want `hits is accessed with sync/atomic at .*; this plain access races with it`
	x := c.hits // want `hits is accessed with sync/atomic at .*`
	c.total = 1 // total is never touched atomically: fine
	return x + atomic.LoadInt64(&c.hits)
}

var gen uint64

func oldStyleVar() uint64 {
	atomic.AddUint64(&gen, 1)
	return gen // want `gen is accessed with sync/atomic at .*`
}

func oldStyleClean(c *counters) int64 {
	atomic.StoreInt64(&c.hits, 0)
	return atomic.LoadInt64(&c.hits) // all accesses atomic: fine
}

// --- typed atomics: values must be used via methods or by address ---

type payload struct {
	n int
	m int
}

type server struct {
	inflight atomic.Int64
	img      atomic.Pointer[payload]
	buckets  [4]atomic.Uint64
}

func typedGood(s *server) int64 {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	p := &s.inflight // address-of is fine: pointee stays behind methods
	p.Load()
	for i := range s.buckets { // index-only range is fine
		s.buckets[i].Add(1)
	}
	return s.inflight.Load()
}

func typedCopy(s *server) {
	x := s.inflight // want `atomic.Int64 value s.inflight used plainly`
	_ = x.Load()
	s.inflight = atomic.Int64{}   // want `atomic.Int64 value s.inflight used plainly`
	for _, b := range s.buckets { // want `\[4\]atomic.Uint64 value s.buckets used plainly`
		_ = b // want `atomic.Uint64 value b used plainly`
	}
}

func typedPass(s *server) {
	eat(s.inflight) // want `atomic.Int64 value s.inflight used plainly`
}

func eat(v atomic.Int64) { _ = v.Load() }

// --- publish discipline: no writes through the pointee after Store/Swap ---

func publishBad(s *server) {
	c := &payload{}
	c.n = 1
	s.img.Store(c)
	c.m = 2 // want `write through c after it was published via atomic Store/Swap at .*`
}

func publishSwapBad(s *server) {
	c := new(payload)
	old := s.img.Swap(c)
	_ = old
	c.n = 3 // want `write through c after it was published`
}

func publishGood(s *server) {
	c := &payload{}
	c.n = 1
	c.m = 2
	s.img.Store(c) // fully initialized before publish: fine
	old := s.img.Load()
	_ = old.n // reading the published pointee is fine
}

func publishRebound(s *server) {
	c := &payload{}
	s.img.Store(c)
	c = &payload{} // fresh object: re-armed
	c.n = 5        // fine, this one was never published
	s.img.Store(c)
}
