// Package atomicmix keeps every piece of memory on one side of the
// atomic/plain divide. The serving plane (internal/serve's image slot,
// internal/obs's instruments, internal/par's work counters) is built on
// sync/atomic, and the Go memory model gives those operations meaning
// only when *every* access to the same location is atomic: one plain
// read racing one atomic write is still a data race, and `go test -race`
// only sees the schedules the tests happen to produce. This pass makes
// the discipline a compile-time invariant:
//
//   - Old-style atomics: a variable or struct field whose address is ever
//     passed to a sync/atomic function (atomic.LoadInt64(&s.f), ...) must
//     never be read or written plainly anywhere else in the package.
//   - Typed atomics: a value of a sync/atomic type (atomic.Int64,
//     atomic.Pointer[T], arrays of them, ...) may only be used through
//     its methods or by address. Copying one (assignment, argument,
//     return, range-by-value over an atomic array) smuggles its current
//     bits out from under the atomicity contract, and overwriting one
//     (s.f = atomic.Int64{}) is a plain write to atomic memory.
//   - Publish discipline: a pointer published through
//     atomic.Pointer.Store/Swap (or atomic.Value.Store) hands the pointee
//     to concurrent readers with release semantics — every write before
//     the Store is visible, anything after races. Within a function, a
//     write through the published pointer after the publishing call is
//     flagged: complete initialization first, then publish. (Rebinding
//     the pointer variable to a fresh object re-arms it.)
//
// The analysis is conservative and intra-procedural, like the rest of
// the ssaflow family: taking a typed atomic's address is allowed (the
// pointee is still only touchable via methods), the publish check is
// lexical within one body, and fields of types from other packages are
// their owners' concern. Struct-copy hazards (copying a whole struct
// that contains atomics) are left to go vet's copylocks.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pathsep/internal/analyzers/ssaflow"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "forbid mixing sync/atomic and plain access to the same memory, and writes through a pointee after atomic publish",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssaflow.Analyzer},
	Run:      run,
}

// isAtomicNamed reports whether t is one of sync/atomic's exported types
// (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Value, Pointer[T]).
func isAtomicNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether values of type t hold atomic state
// inline: an atomic type itself or an array of them.
func containsAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	if isAtomicNamed(t) {
		return true
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return containsAtomic(arr.Elem())
	}
	return false
}

// storageObj resolves the object whose memory &e addresses: the field
// object for &x.f, the variable for &v, the array's owner for &a[i].
func storageObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	case *ast.IndexExpr:
		return storageObj(info, x.X)
	case *ast.StarExpr:
		return storageObj(info, x.X)
	}
	return nil
}

// atomicFnTarget returns the address-argument of call when call is a
// sync/atomic package function (LoadInt64, AddUint32, StoreInt64,
// CompareAndSwapPointer, ...), or nil.
func atomicFnTarget(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := ssaflow.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil || len(call.Args) == 0 {
		return nil
	}
	if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return nil
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	info := pass.TypesInfo

	// Pass 1: objects accessed through old-style sync/atomic functions,
	// and the exact operand nodes those calls sanction.
	atomicVars := map[types.Object]token.Pos{}
	sanctioned := map[ast.Expr]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		target := atomicFnTarget(info, call)
		if target == nil {
			return
		}
		sanctioned[target] = true
		if obj := storageObj(info, target); obj != nil {
			if _, seen := atomicVars[obj]; !seen {
				atomicVars[obj] = call.Pos()
			}
		}
	})

	// Pass 2: plain uses of old-style atomic objects, and plain uses of
	// typed atomic values.
	ins.WithStack([]ast.Node{(*ast.Ident)(nil), (*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		e := n.(ast.Expr)
		checkOldStyle(pass, atomicVars, sanctioned, e, stack)
		checkTyped(pass, e, stack)
		return true
	})

	// Pass 3: publish discipline for atomic.Pointer/atomic.Value.
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	for _, fn := range res.Funcs {
		checkPublish(pass, fn)
	}
	return nil, nil
}

// checkOldStyle flags a use of an old-style atomic object outside a
// sync/atomic call.
func checkOldStyle(pass *analysis.Pass, atomicVars map[types.Object]token.Pos, sanctioned map[ast.Expr]bool, e ast.Expr, stack []ast.Node) {
	if len(atomicVars) == 0 {
		return
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if pass.TypesInfo.Defs[id] != nil {
		return // the declaration site, not an access
	}
	obj := pass.TypesInfo.ObjectOf(id)
	first, isAtomic := atomicVars[obj]
	if !isAtomic {
		return
	}
	for _, anc := range stack {
		if ae, ok := anc.(ast.Expr); ok && sanctioned[ae] {
			return // inside &x.f handed to a sync/atomic call
		}
		if _, ok := anc.(*ast.Field); ok {
			return // the declaration itself
		}
	}
	// The base of a selector (x in x.f) is not an access to f.
	if len(stack) >= 2 {
		if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel != id {
			return
		}
	}
	pass.Reportf(e.Pos(), "%s is accessed with sync/atomic at %s; this plain access races with it",
		obj.Name(), pass.Fset.Position(first))
}

// checkTyped flags plain (copying or overwriting) uses of typed atomic
// values. Allowed contexts: method access, address-of, indexing into an
// atomic array (re-checked one level up), and index-only range.
func checkTyped(pass *analysis.Pass, e ast.Expr, stack []ast.Node) {
	info := pass.TypesInfo
	if id, ok := e.(*ast.Ident); ok {
		// Selector leaves are handled at the SelectorExpr; definitions and
		// type names are not uses.
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == id {
				return
			}
		}
		if info.Defs[id] != nil {
			return
		}
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		// Qualified references (atomic.Int64 the type, atomic.AddInt64 the
		// func) are not value uses.
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				return
			}
		}
	}
	if tv, ok := info.Types[e]; !ok || tv.IsType() || !tv.IsValue() {
		return
	}
	if !containsAtomic(info.TypeOf(e)) {
		return
	}

	node := e
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			node = p
			continue
		case *ast.IndexExpr:
			if p.X == node {
				node = p // a[i] on an atomic array: keep climbing
				continue
			}
		case *ast.SelectorExpr:
			if p.X == node {
				return // method (or promoted-field) access: the sanctioned use
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return // address-of: the pointee stays behind the methods
			}
		case *ast.StarExpr:
			node = p // deref of *atomic.T, keep climbing toward the method
			continue
		case *ast.RangeStmt:
			if p.X == node && p.Value == nil {
				return // index-only range over an atomic array
			}
		}
		break
	}
	pass.Reportf(e.Pos(), "%s value %s used plainly (copied, overwritten or ranged by value); use its atomic methods or take its address",
		atomicTypeName(info.TypeOf(e)), types.ExprString(e))
}

// atomicTypeName renders the atomic type for diagnostics.
func atomicTypeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// publishCall returns the published pointer argument when call is a
// Store/Swap method on atomic.Pointer[T] or a Store on atomic.Value.
func publishCall(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if sel.Sel.Name != "Store" && sel.Sel.Name != "Swap" {
		return nil
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync/atomic" {
		return nil
	}
	if name := n.Obj().Name(); name != "Pointer" && name != "Value" {
		return nil
	}
	return call.Args[0]
}

// checkPublish flags writes through a pointer after it has been handed
// to atomic.Pointer.Store/Swap in the same function body. The check is
// lexical: a Store at position S arms the pointer object; a write
// through it at position W > S is reported unless the variable was
// rebound to a fresh value in between.
func checkPublish(pass *analysis.Pass, fn *ssaflow.Func) {
	info := pass.TypesInfo
	type event struct {
		pos   token.Pos
		store bool // true: published here; false: rebound here
	}
	events := map[types.Object][]event{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if arg := publishCall(info, n); arg != nil {
				if obj := ssaflow.BaseObject(info, arg); obj != nil && ssaflow.DeclaredWithin(obj, fn.Node) {
					events[obj] = append(events[obj], event{pos: n.Pos(), store: true})
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						events[obj] = append(events[obj], event{pos: n.Pos(), store: false})
					}
				}
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
				continue // rebinding the variable, not writing through it
			}
			obj := ssaflow.BaseObject(info, lhs)
			evs := events[obj]
			if evs == nil {
				continue
			}
			// Flag when the latest publish before this write is not
			// superseded by a rebind.
			var lastStore, lastRebind token.Pos
			for _, ev := range evs {
				if ev.pos >= as.Pos() {
					continue
				}
				if ev.store {
					if ev.pos > lastStore {
						lastStore = ev.pos
					}
				} else if ev.pos > lastRebind {
					lastRebind = ev.pos
				}
			}
			if lastStore != token.NoPos && lastStore > lastRebind {
				pass.Reportf(lhs.Pos(), "write through %s after it was published via atomic Store/Swap at %s; complete initialization before publishing",
					obj.Name(), pass.Fset.Position(lastStore))
			}
		}
		return true
	})
}
