package atomicmix_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analyzertest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
