package analyzers_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"pathsep/internal/analyzers"
)

// TestAll checks the suite is stable: the exact registered count (so a
// dropped registration fails loudly, not silently), unique names, docs
// set. Bump the count when registering a new analyzer.
func TestAll(t *testing.T) {
	all := analyzers.All()
	if len(all) != 15 {
		t.Fatalf("All() returned %d analyzers, want exactly 15", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q missing name or doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestTestdataDrift asserts every analyzer in All() ships want-coverage:
// a testdata/src tree next to its source. A new analyzer registered
// without testdata silently runs untested; this is the drift check CI's
// analyzer-testdata step leans on.
func TestTestdataDrift(t *testing.T) {
	// ssaflow is infrastructure (reports nothing), so it carries no
	// testdata; everything in All() must.
	for _, a := range analyzers.All() {
		dir := filepath.Join(a.Name, "testdata", "src")
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			t.Errorf("analyzer %q has no want-coverage: %s missing", a.Name, dir)
		}
	}
}

// TestVettoolSmoke builds cmd/pathsep-lint and runs it over the whole
// module via go vet, asserting it exits clean (no findings, no crash).
func TestVettoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping vettool build in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "pathsep-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pathsep-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	// Isolate from any GOFLAGS the environment sets.
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=vendor")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool exited non-zero: %v\n%s", err, out)
	}
}
