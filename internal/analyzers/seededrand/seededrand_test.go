package seededrand_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/seededrand"
)

func TestSeededRand(t *testing.T) {
	analyzertest.Run(t, "testdata", seededrand.Analyzer, "a")
}

func TestSeededRandSplitHome(t *testing.T) {
	// The par stub seeds sources from parent draws with no want comments:
	// the split rule must stay silent inside the sanctioned package.
	analyzertest.Run(t, "testdata", seededrand.Analyzer, "par")
}
