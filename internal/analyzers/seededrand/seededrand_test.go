package seededrand_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/seededrand"
)

func TestSeededRand(t *testing.T) {
	analyzertest.Run(t, "testdata", seededrand.Analyzer, "a")
}
