// Package a exercises the seededrand analyzer.
package a

import (
	"math/rand"
	"time"
)

// Ambient package-level randomness is forbidden.
func bad() int {
	return rand.Intn(10) // want "ambient rand"
}

func badFloat() float64 {
	return rand.Float64() // want "ambient rand"
}

// Clock-derived seeds destroy reproducibility.
func badClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the clock"
}

// Mutating the global generator is forbidden.
func badGlobalSeed() {
	rand.Seed(42) // want "rand.Seed"
}

// Methods on an injected *rand.Rand are the sanctioned pattern.
func good(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Constructing a generator from a fixed seed is fine.
func goodCtor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Ad-hoc stream splitting outside internal/par is forbidden: results then
// depend on which goroutine draws from the parent first.
func badSplit(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63())) // want "ad-hoc RNG stream split"
}

func badSplitSource(rng *rand.Rand) rand.Source {
	return rand.NewSource(rng.Int63()) // want "ad-hoc RNG stream split"
}
