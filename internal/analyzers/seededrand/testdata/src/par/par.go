// Package par stands in for pathsep/internal/par: the one package allowed
// to seed sources from another generator's draws (SplitRand draws all
// child seeds serially before any fan-out).
package par

import "math/rand"

func SplitRand(parent *rand.Rand, n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(parent.Int63()))
	}
	return out
}
