// Package seededrand enforces reproducible randomness: every experiment in
// EXPERIMENTS.md must be re-runnable bit-for-bit from a -seed flag, so
// library code may only draw random numbers from an injected *rand.Rand.
//
// The analyzer forbids
//
//   - calls to the ambient top-level functions of math/rand and
//     math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle, ...), which use
//     the process-global, unseedable-per-call-site source,
//   - the deprecated global rand.Seed, and
//   - seeding any source from the clock (a time.Now() call anywhere inside
//     the arguments of rand.NewSource / rand.New / rand.NewPCG / rand.Seed),
//     which silently breaks reproducibility even when a *rand.Rand is
//     plumbed correctly, and
//   - ad-hoc generator splitting — seeding a source from another
//     generator's draw, rand.New(rand.NewSource(rng.Int63())) — outside
//     pathsep/internal/par. Sibling streams must come from par.SplitRand,
//     which draws all child seeds serially from the parent BEFORE fanning
//     out, so results cannot depend on worker scheduling.
//
// Constructing generators with rand.New(rand.NewSource(seed)) from an
// explicit seed remains allowed everywhere, including tests and main
// packages.
package seededrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name:     "seededrand",
	Doc:      "forbid ambient math/rand functions and time-derived RNG seeds; require an injected seeded *rand.Rand",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// ctors are the math/rand functions that build a generator or source from
// an explicit seed; they are allowed (their arguments are still checked for
// clock-derived seeds).
var ctors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// isSplitHome reports whether pkgPath is the sanctioned rand-splitting
// package (the home of par.SplitRand); the bare "par" form is how the
// analyzertest harness loads its stand-in.
func isSplitHome(pkgPath string) bool {
	return pkgPath == "pathsep/internal/par" || pkgPath == "par"
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Nested ctors (rand.New(rand.NewSource(...))) would report the same
	// clock call or generator draw once per enclosing ctor; dedupe by
	// position.
	reportedClock := map[token.Pos]bool{}
	reportedSplit := map[token.Pos]bool{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
			return
		}
		// Package-level function (not a method on *rand.Rand)?
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		name := fn.Name()
		switch {
		case name == "Seed":
			pass.Reportf(call.Pos(), "global rand.Seed breaks per-call-site reproducibility; inject a seeded *rand.Rand instead")
		case ctors[name]:
			if clock := findClockCall(pass, call.Args); clock != nil && !reportedClock[clock.Pos()] {
				reportedClock[clock.Pos()] = true
				pass.Reportf(clock.Pos(), "RNG seeded from the clock is not reproducible; derive the seed from a -seed flag or test constant")
			}
			if !isSplitHome(pass.Pkg.Path()) {
				if split := findRandDraw(pass, call.Args); split != nil && !reportedSplit[split.Pos()] {
					reportedSplit[split.Pos()] = true
					pass.Reportf(split.Pos(), "ad-hoc RNG stream split (seeding a source from another generator's draw); use par.SplitRand so sibling streams stay deterministic under parallel construction")
				}
			}
		default:
			pass.Reportf(call.Pos(), "ambient %s.%s uses the process-global source; draw from an injected seeded *rand.Rand instead", fn.Pkg().Name(), name)
		}
	})
	return nil, nil
}

// findRandDraw returns the first method call on a math/rand (or v2)
// generator appearing anywhere inside args, or nil — the signature of an
// ad-hoc stream split like rand.NewSource(rng.Int63()).
func findRandDraw(pass *analysis.Pass, args []ast.Expr) ast.Node {
	var found ast.Node
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && isRandPkg(obj.Pkg().Path()) {
					found = call
					return false
				}
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}

// findClockCall returns the first time.Now (or time.Since) call appearing
// anywhere inside args, or nil.
func findClockCall(pass *analysis.Pass, args []ast.Expr) ast.Node {
	var found ast.Node
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				(fn.Name() == "Now" || fn.Name() == "Since") {
				found = call
				return false
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}
