// Package maporder flags map iteration whose order can leak into
// serialized or order-sensitive outputs — the one class of
// nondeterminism that silently breaks the repo's load-bearing guarantee
// that every build of an oracle yields a byte-identical encoding
// (TestParallelBuildDifferential, make determinism).
//
// The pass runs a conservative, flow-sensitive reachability walk over
// each function body (on the ssaflow value-flow layer, the repo's
// stand-in for go/ssa + buildssa):
//
//   - Sources: inside a `for ... range m` loop over a map, an append to a
//     slice declared outside the loop, a string concatenation, or a float
//     accumulation (+= and friends; float addition is not associative)
//     taints the accumulated object with the loop's position. Map writes
//     and slot writes indexed by the range key stay clean — their content
//     does not depend on iteration order.
//   - Propagation: assigning an expression that mentions a tainted object
//     taints the destination if its type can carry an order (slice,
//     array, string, float); len/cap results are exempt. copy() taints
//     its destination.
//   - Barriers: sort.Slice / sort.SliceStable / sort.Sort / sort.Stable /
//     sort.Ints / sort.Float64s / sort.Strings and the slices.Sort*
//     family clear the taint of the slice they sort — a canonical order
//     has been imposed.
//   - Sinks: a tainted value reaching serialization (a callee named
//     Encode*/Marshal*/Write*/Fprint*/Append*), a sort.Search* input
//     (binary search over a nondeterministically ordered slice), a
//     channel send, a return statement, or a call argument whose fate
//     the pass cannot see. For callees in the same package the
//     interprocedural ssaflow summaries decide that fate: an argument
//     that transitively reaches a sort barrier inside the callee is
//     cleansed (the wrapper IS the barrier), one that is provably inert
//     (never escapes, never reaches another call) is no finding, and
//     one that reaches serialization, escapes sideways, or is returned
//     — at any wrapper depth — is reported with the terminal sink
//     named. Only callees whose bodies are invisible (other packages,
//     function values) keep the old conservative any-call posture.
//     Calls into package testing are exempt — test-failure text may
//     cite unsorted data.
//
// Each source is reported once, at its first sink, citing the map range
// that produced it. Values returned by the function are flagged at the
// return (the caller cannot be analyzed from here), which is exactly
// the conservative posture a determinism invariant wants.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"pathsep/internal/analyzers/ssaflow"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag map-iteration order flowing into serialized or order-sensitive sinks without a sort barrier",
	Requires: []*analysis.Analyzer{ssaflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	for _, fn := range res.Funcs {
		w := &walker{pass: pass, res: res, taint: ssaflow.NewTaint(pass.TypesInfo)}
		w.stmts(fn.Body.List)
	}
	return nil, nil
}

// walker is the flow-sensitive state of one function body.
type walker struct {
	pass  *analysis.Pass
	res   *ssaflow.Result
	taint *ssaflow.Taint
}

func (w *walker) info() *types.Info { return w.pass.TypesInfo }

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// stmt interprets one statement. Branch bodies share the parent taint
// store (a taint acquired in any branch survives — conservative union);
// loop bodies run twice so taints created late in an iteration reach
// uses earlier in the next one.
func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if t := w.info().TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.mapRange(s)
				return
			}
		}
		w.calls(s.X)
		w.stmts(s.Body.List)
		w.stmts(s.Body.List)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		w.declStmt(s)
	case *ast.ExprStmt:
		w.calls(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.calls(r)
			if src := w.taint.MentionedSource(r); src != nil && !src.Reported {
				src.Reported = true
				w.pass.Reportf(s.Pos(), "map-ordered value (accumulated at %s) returned without a sort barrier",
					w.pass.Fset.Position(src.AccPos))
			}
		}
	case *ast.SendStmt:
		w.calls(s.Value)
		if src := w.taint.MentionedSource(s.Value); src != nil && !src.Reported {
			src.Reported = true
			w.pass.Reportf(s.Pos(), "map-ordered value (accumulated at %s) sent on a channel without a sort barrier",
				w.pass.Fset.Position(src.AccPos))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.calls(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.calls(s.Cond)
		}
		for pass := 0; pass < 2; pass++ {
			w.stmts(s.Body.List)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.calls(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.calls(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeferStmt:
		w.sinkCall(s.Call)
	case *ast.GoStmt:
		w.sinkCall(s.Call)
	}
}

// mapRange handles a range over a map: it seeds the taint store with the
// loop's order-carrying accumulations, then interprets the body (twice,
// so sinks inside the loop see the taint too).
func (w *walker) mapRange(s *ast.RangeStmt) {
	w.calls(s.X)
	src := &ssaflow.Source{RangePos: s.Pos()}
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			obj := ssaflow.BaseObject(w.info(), lhs)
			if obj == nil || ssaflow.DeclaredWithin(obj, s) {
				continue // per-iteration local: its lifetime ends with the iteration
			}
			// Slot writes (m2[k] = v, s[k] = v) keyed by the iteration do
			// not depend on order; only accumulations do.
			if _, isIdent := lhs.(*ast.Ident); !isIdent {
				continue
			}
			if !ssaflow.IsOrderCarrying(w.info().TypeOf(lhs)) {
				continue
			}
			if w.accumulates(as, i, obj) {
				cp := *src
				cp.AccPos = as.Pos()
				w.taint.Add(obj, &cp)
			}
		}
		return true
	})
	for pass := 0; pass < 2; pass++ {
		w.stmts(s.Body.List)
	}
}

// accumulates reports whether assignment position i of as folds the old
// value of obj into the new one: x = append(x, ...), x += ..., or
// x = x <op> ... — the shapes whose result depends on iteration order.
func (w *walker) accumulates(as *ast.AssignStmt, i int, obj types.Object) bool {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return true // compound assignment (+=, -=, ...)
	}
	if len(as.Rhs) == 0 {
		return false
	}
	rhs := as.Rhs[min(i, len(as.Rhs)-1)]
	return ssaflow.Mentions(w.info(), rhs, func(o types.Object) bool { return o == obj })
}

// declStmt treats `var x = expr` like an assignment.
func (w *walker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.calls(v)
		}
		for i, name := range vs.Names {
			obj := w.info().ObjectOf(name)
			var rhs ast.Expr
			if i < len(vs.Values) {
				rhs = vs.Values[i]
			} else if len(vs.Values) == 1 {
				rhs = vs.Values[0]
			}
			if rhs == nil {
				w.taint.Kill(obj)
				continue
			}
			if src := w.taint.MentionedSource(rhs); src != nil && ssaflow.IsOrderCarrying(w.info().TypeOf(name)) {
				w.taint.Add(obj, src)
			} else {
				w.taint.Kill(obj)
			}
		}
	}
}

// assign propagates taint through an assignment and applies strong kills
// on whole-object reassignment.
func (w *walker) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.calls(r)
	}
	for i, lhs := range s.Lhs {
		obj := ssaflow.BaseObject(w.info(), lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0] // tuple assignment: all results share the call
		}
		tainted := false
		if rhs != nil {
			if src := w.taint.MentionedSource(rhs); src != nil {
				if ssaflow.IsOrderCarrying(w.info().TypeOf(lhs)) {
					w.taint.Add(obj, src)
					tainted = true
				}
			}
		}
		// Compound assignments keep the old value live; only a plain
		// whole-identifier rebind kills.
		if !tainted && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) {
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				w.taint.Kill(obj)
			}
		}
	}
}

// calls visits every call expression inside e (outermost first, skipping
// nested function literals) and applies barrier, propagation and sink
// rules.
func (w *walker) calls(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.sinkCall(call)
		}
		return true
	})
}

// sortBarrier returns the expression a call imposes an order on, or nil:
// the first argument of the sort.* / slices.Sort* families.
func sortBarrier(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := ssaflow.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Float64s", "Strings":
			return call.Args[0]
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return call.Args[0]
		}
	}
	return nil
}

// serializationName reports whether a callee name promises to serialize
// or emit its arguments.
func serializationName(name string) bool {
	for _, prefix := range []string{"Encode", "Marshal", "Write", "Fprint", "Append"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// sinkCall applies the barrier/sink rules to one call.
func (w *walker) sinkCall(call *ast.CallExpr) {
	info := w.info()
	if target := sortBarrier(info, call); target != nil {
		if obj := ssaflow.BaseObject(info, target); obj != nil {
			w.taint.Kill(obj)
		}
		return
	}
	if w.taint.Empty() {
		return
	}
	fn := ssaflow.CalleeFunc(info, call)
	// Builtins: append/len/cap/delete never serialize; copy propagates
	// order into its destination.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "copy" && len(call.Args) == 2 {
				if src := w.taint.MentionedSource(call.Args[1]); src != nil {
					w.taint.Add(ssaflow.BaseObject(info, call.Args[0]), src)
				}
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	// Test plumbing may print unsorted data in failure messages.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "testing" {
		return
	}
	// An in-package callee with a summary is judged by what its body
	// does with the argument, not by its existence — unless its name
	// promises serialization, which stays a sink (the write typically
	// goes through an io.Writer the flow can't track).
	if fn != nil && !serializationName(fn.Name()) {
		if w.res.SummaryOf(fn) != nil {
			w.summarizedCall(call, fn)
			return
		}
	}
	kind := "a call"
	if fn != nil {
		switch {
		case serializationName(fn.Name()):
			kind = fn.Name() + " (serialization)"
		case fn.Pkg() != nil && fn.Pkg().Path() == "sort" && len(fn.Name()) > 6 && fn.Name()[:6] == "Search":
			kind = fn.Name() + " (binary search)"
		default:
			kind = fn.Name()
		}
	}
	for _, arg := range call.Args {
		src := w.taint.MentionedSource(arg)
		if src == nil || src.Reported {
			continue
		}
		src.Reported = true
		w.pass.Reportf(arg.Pos(), "map-ordered value (accumulated at %s) reaches %s without a sort barrier",
			w.pass.Fset.Position(src.AccPos), kind)
	}
}

// summarizedCall judges a call to a summarized in-package callee: each
// tainted argument is resolved through ParamFlow. A flow that reaches a
// genuine sink at any depth reports (naming the terminal); a flow whose
// only interesting edge is a sort barrier cleanses the argument; an
// inert flow is no finding.
func (w *walker) summarizedCall(call *ast.CallExpr, fn *types.Func) {
	info := w.info()
	sig := fn.Type().(*types.Signature)
	for argIdx, arg := range call.Args {
		src := w.taint.MentionedSource(arg)
		if src == nil {
			continue
		}
		pi := argIdx
		if pi >= sig.Params().Len() {
			if !sig.Variadic() || sig.Params().Len() == 0 {
				continue
			}
			pi = sig.Params().Len() - 1
		}
		fl := w.res.ParamFlow(fn, pi)
		if sink, kind := w.flowSink(fn, fl); sink {
			if !src.Reported {
				src.Reported = true
				w.pass.Reportf(arg.Pos(), "map-ordered value (accumulated at %s) reaches %s without a sort barrier",
					w.pass.Fset.Position(src.AccPos), kind)
			}
			continue
		}
		if flowBarrier(info, fl) {
			w.taint.Kill(ssaflow.BaseObject(info, arg))
		}
	}
}

// flowSink reports whether a parameter's transitive flow hits an
// order-sensitive sink, and with what description. In-package edges are
// skipped (ParamFlow already descended into them); terminal edges to
// invisible callees keep the conservative posture.
func (w *walker) flowSink(fn *types.Func, fl ssaflow.Flow) (bool, string) {
	if fl.Sunk != "" {
		return true, fn.Name() + " (" + fl.Sunk + ")"
	}
	if fl.Returned {
		return true, fn.Name() + " (returns it)"
	}
	for _, use := range fl.Uses {
		if sortBarrier(w.info(), use.Call) != nil && use.Arg == 0 {
			continue
		}
		cal := use.Callee
		if w.res.SummaryOf(cal) != nil {
			continue
		}
		if cal.Pkg() != nil && cal.Pkg().Path() == "testing" {
			continue
		}
		if serializationName(cal.Name()) {
			return true, fn.Name() + " (reaches " + cal.Name() + ", serialization)"
		}
		return true, fn.Name() + " (reaches " + cal.Name() + ")"
	}
	return false, ""
}

// flowBarrier reports whether the flow passes the value to a sort
// barrier (as the sorted operand).
func flowBarrier(info *types.Info, fl ssaflow.Flow) bool {
	for _, use := range fl.Uses {
		if sortBarrier(info, use.Call) != nil && use.Arg == 0 {
			return true
		}
	}
	return false
}
