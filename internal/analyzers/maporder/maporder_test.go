package maporder_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", maporder.Analyzer, "a")
}
