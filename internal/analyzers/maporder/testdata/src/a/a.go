// Package a exercises the maporder analyzer: accumulations inside map
// range loops must pass through a sort barrier before reaching any
// serialized or order-sensitive sink.
package a

import (
	"bytes"
	"encoding/binary"
	"sort"
)

func emit(xs []int) {}

// badReturn leaks map order through a returned key slice.
func badReturn(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys // want `map-ordered value \(accumulated at .*\) returned without a sort barrier`
}

// badCall leaks map order into a call argument.
func badCall(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	emit(keys) // want `map-ordered value \(accumulated at .*\) reaches emit without a sort barrier`
}

// badEncode leaks map order straight into a serializer.
func badEncode(m map[int]uint32, buf *bytes.Buffer) {
	var vals []uint32
	for _, v := range m {
		vals = append(vals, v)
	}
	binary.Write(buf, binary.LittleEndian, vals) // want `map-ordered value \(accumulated at .*\) reaches Write \(serialization\) without a sort barrier`
}

// badFloatSum leaks map order through a non-associative float reduction.
func badFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum // want `map-ordered value \(accumulated at .*\) returned without a sort barrier`
}

// badPropagated taints a second slice via assignment before the sink.
func badPropagated(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	view := keys[1:]
	emit(view) // want `map-ordered value \(accumulated at .*\) reaches emit without a sort barrier`
}

// badSend leaks map order over a channel.
func badSend(m map[int]string, ch chan []int) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	ch <- keys // want `map-ordered value \(accumulated at .*\) sent on a channel without a sort barrier`
}

// goodSorted imposes a canonical order before the sink: no report.
func goodSorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodSortSlice clears taint via sort.Slice too.
func goodSortSlice(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	emit(keys)
	return keys
}

// goodSlotWrite fills slots keyed by the iteration variable: content does
// not depend on iteration order.
func goodSlotWrite(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
	emit(out)
}

// goodCount accumulates into an int: counts are order-insensitive.
func goodCount(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodLen consumes only len() of the accumulated slice.
func goodLen(m map[int]string) int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}

// goodRebind kills taint on whole-object reassignment.
func goodRebind(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	keys = nil
	return keys
}
