// Package a exercises the maporder analyzer: accumulations inside map
// range loops must pass through a sort barrier before reaching any
// serialized or order-sensitive sink.
package a

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// emit forwards to a real serializer: under the interprocedural
// summaries a callee is a sink because of what its body does, not
// because it exists.
func emit(xs []int) {
	binary.Write(&bytes.Buffer{}, binary.LittleEndian, xs)
}

// swallow provably does nothing order-sensitive with its argument.
func swallow(xs []int) {
	n := 0
	for range xs {
		n++
	}
}

// sortAll is an in-package barrier wrapper: passing a slice through it
// imposes a canonical order one call level down.
func sortAll(xs []int) {
	sort.Ints(xs)
}

// relay forwards to emit: the sink is two wrapper levels deep.
func relay(xs []int) {
	emit(xs)
}

// badReturn leaks map order through a returned key slice.
func badReturn(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys // want `map-ordered value \(accumulated at .*\) returned without a sort barrier`
}

// badCall leaks map order into a call argument.
func badCall(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	emit(keys) // want `map-ordered value \(accumulated at .*\) reaches emit \(reaches Write, serialization\) without a sort barrier`
}

// badEncode leaks map order straight into a serializer.
func badEncode(m map[int]uint32, buf *bytes.Buffer) {
	var vals []uint32
	for _, v := range m {
		vals = append(vals, v)
	}
	binary.Write(buf, binary.LittleEndian, vals) // want `map-ordered value \(accumulated at .*\) reaches Write \(serialization\) without a sort barrier`
}

// badFloatSum leaks map order through a non-associative float reduction.
func badFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum // want `map-ordered value \(accumulated at .*\) returned without a sort barrier`
}

// badPropagated taints a second slice via assignment before the sink.
func badPropagated(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	view := keys[1:]
	emit(view) // want `map-ordered value \(accumulated at .*\) reaches emit \(reaches Write, serialization\) without a sort barrier`
}

// badDeep reaches the serializer through two in-package wrapper levels.
func badDeep(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	relay(keys) // want `map-ordered value \(accumulated at .*\) reaches relay \(reaches Write, serialization\) without a sort barrier`
}

// badSend leaks map order over a channel.
func badSend(m map[int]string, ch chan []int) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	ch <- keys // want `map-ordered value \(accumulated at .*\) sent on a channel without a sort barrier`
}

// goodSorted imposes a canonical order before the sink: no report.
func goodSorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodSortSlice clears taint via sort.Slice too.
func goodSortSlice(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	emit(keys)
	return keys
}

// goodSlotWrite fills slots keyed by the iteration variable: content does
// not depend on iteration order.
func goodSlotWrite(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
	emit(out)
}

// goodCount accumulates into an int: counts are order-insensitive.
func goodCount(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodLen consumes only len() of the accumulated slice.
func goodLen(m map[int]string) int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}

// goodInert passes the tainted slice to a helper the summaries prove
// harmless: no report, where the old conservative any-call rule fired.
func goodInert(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	swallow(keys)
}

// goodBarrierWrapper cleanses through an in-package sort wrapper: the
// summary shows the argument reaching sort.Ints, so the later sink and
// return are ordered.
func goodBarrierWrapper(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortAll(keys)
	emit(keys)
	return keys
}

// goodRebind kills taint on whole-object reassignment.
func goodRebind(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	keys = nil
	return keys
}
