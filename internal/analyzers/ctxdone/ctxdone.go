// Package ctxdone forbids fire-and-forget goroutines in the serving
// plane. internal/serve and internal/obs are the two packages whose
// goroutines outlive a function call — listener loops, benchmark
// workers, reload pumps — and a goroutine nothing can join is a
// goroutine Shutdown cannot drain: tests leak it, graceful restart
// races it, and the race detector only complains if it happens to
// touch something. Every `go` statement in those packages must be tied
// to a shutdown signal:
//
//   - a receive from a channel (a <-stop/<-ctx.Done() select arm, or
//     ranging over a work channel that closes on shutdown) — receives
//     from time.After/time.Tick don't count, a timer is not a shutdown;
//   - a call to a context.Context's Done method;
//   - a *deferred* completion signal: `defer close(ch)` or
//     `defer wg.Done()` — deferred, so the signal fires even when the
//     body panics; a trailing `done <- i` send is exactly the shape
//     that wedges the collector when a worker dies early, and does not
//     count;
//   - for `go namedFunc(args...)`, an argument that carries the tie: a
//     context.Context, a *sync.WaitGroup, or a channel.
//
// Truly intentional detachment is opted into, not slipped into: a
// `//pathsep:detached` comment on the go statement (same line or the
// line above) suppresses the diagnostic and documents the decision at
// the launch site. Test files are exempt.
package ctxdone

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pathsep/internal/analyzers/ssaflow"
)

// Directive marks a go statement as intentionally detached.
const Directive = "//pathsep:detached"

// Analyzer is the ctxdone pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxdone",
	Doc:      "goroutines in internal/serve and internal/obs must be tied to a shutdown signal (ctx.Done, close channel, or WaitGroup) or carry //pathsep:detached",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// inScope reports whether the package is part of the serving plane.
func inScope(path string) bool {
	return strings.Contains(path, "internal/serve") || strings.Contains(path, "internal/obs")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Lines carrying the detached directive, per file.
	detached := map[string]map[int]bool{}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		lines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, Directive) {
					lines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		detached[fname] = lines
	}

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		pos := pass.Fset.Position(gs.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if lines := detached[pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
			return
		}
		if tied(pass.TypesInfo, gs) {
			return
		}
		pass.Reportf(gs.Pos(), "fire-and-forget goroutine: tie it to a shutdown signal (a channel receive, ctx.Done, defer close, or defer wg.Done) or annotate %s", Directive)
	})
	return nil, nil
}

// tied reports whether the launched goroutine is join-able.
func tied(info *types.Info, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyTied(info, lit.Body)
	}
	// go namedFunc(args...): the tie must travel in as an argument.
	for _, arg := range gs.Call.Args {
		t := info.TypeOf(arg)
		if t == nil {
			continue
		}
		if isContext(t) || isWaitGroupPtr(t) || isChan(t) {
			return true
		}
	}
	return false
}

// bodyTied scans a goroutine body for a shutdown tie.
func bodyTied(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-ch: any channel receive except timer channels.
			if n.Op == token.ARROW && isChan(info.TypeOf(n.X)) && !isTimerChan(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			// for ... range ch: terminates when the channel closes.
			if isChan(info.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			// ctx.Done() anywhere (select arms, conditions).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isContext(info.TypeOf(sel.X)) {
				found = true
			}
		case *ast.DeferStmt:
			if deferSignals(info, n.Call) {
				found = true
			}
		}
		return true
	})
	return found
}

// deferSignals reports whether call, run deferred, announces the
// goroutine's completion: close(ch) or wg.Done().
func deferSignals(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "close" && len(call.Args) == 1 {
			return isChan(info.TypeOf(call.Args[0]))
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Done" && isWaitGroup(info.TypeOf(fun.X)) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && isWaitGroup(p.Elem())
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isTimerChan reports whether e is a call into package time (After,
// Tick, NewTimer().C is a selector, not a call — selectors of time
// types are likewise excluded).
func isTimerChan(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := ssaflow.CalleeFunc(info, x)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time"
	case *ast.SelectorExpr:
		if t := info.TypeOf(x.X); t != nil {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "time" {
				return true
			}
		}
	}
	return false
}
