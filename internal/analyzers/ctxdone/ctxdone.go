// Package ctxdone forbids fire-and-forget goroutines in the serving
// plane. internal/serve and internal/obs are the two packages whose
// goroutines outlive a function call — listener loops, benchmark
// workers, reload pumps — and a goroutine nothing can join is a
// goroutine Shutdown cannot drain: tests leak it, graceful restart
// races it, and the race detector only complains if it happens to
// touch something. Every `go` statement in those packages must be tied
// to a shutdown signal:
//
//   - a receive from a channel (a <-stop/<-ctx.Done() select arm, or
//     ranging over a work channel that closes on shutdown) — receives
//     from time.After/time.Tick don't count, a timer is not a shutdown;
//   - a call to a context.Context's Done method;
//   - a *deferred* completion signal: `defer close(ch)` or
//     `defer wg.Done()` — deferred, so the signal fires even when the
//     body panics; a trailing `done <- i` send is exactly the shape
//     that wedges the collector when a worker dies early, and does not
//     count;
//   - for `go namedFunc(args...)`, the callee's ssaflow summary must be
//     transitively tied: its body (or the body of any in-package
//     function it calls, to any depth) contains one of the constructs
//     above. Taking a context.Context argument and ignoring it does not
//     count — the tie is judged by what the body does, not by its
//     signature. Only for callees outside the package, whose bodies the
//     pass cannot see, does an argument carrying a tie type (a
//     context.Context, a *sync.WaitGroup, or a channel) stand in for
//     the body check.
//
// Truly intentional detachment is opted into, not slipped into: a
// `//pathsep:detached` comment on the go statement (same line or the
// line above) suppresses the diagnostic and documents the decision at
// the launch site. Test files are exempt.
package ctxdone

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pathsep/internal/analyzers/ssaflow"
)

// Directive marks a go statement as intentionally detached.
const Directive = "//pathsep:detached"

// Analyzer is the ctxdone pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxdone",
	Doc:      "goroutines in internal/serve and internal/obs must be tied to a shutdown signal (ctx.Done, close channel, or WaitGroup) or carry //pathsep:detached",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssaflow.Analyzer},
	Run:      run,
}

// inScope reports whether the package is part of the serving plane.
func inScope(path string) bool {
	return strings.Contains(path, "internal/serve") || strings.Contains(path, "internal/obs")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	flow := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)

	// Lines carrying the detached directive, per file.
	detached := map[string]map[int]bool{}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		lines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, Directive) {
					lines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		detached[fname] = lines
	}

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		pos := pass.Fset.Position(gs.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		if lines := detached[pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
			return
		}
		if tied(pass.TypesInfo, flow, gs) {
			return
		}
		pass.Reportf(gs.Pos(), "fire-and-forget goroutine: tie it to a shutdown signal (a channel receive, ctx.Done, defer close, or defer wg.Done) or annotate %s", Directive)
	})
	return nil, nil
}

// tied reports whether the launched goroutine is join-able.
func tied(info *types.Info, flow *ssaflow.Result, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return ssaflow.BodyTied(info, lit.Body)
	}
	// go namedFunc(args...): judge the callee by its body. The summary's
	// Tied bit covers the direct body; the callee set extends it through
	// in-package wrappers of any depth (a launcher whose helper ranges
	// over the work channel is tied, even though the launcher body shows
	// no channel operation).
	if fn := ssaflow.CalleeFunc(info, gs.Call); fn != nil {
		if s := flow.SummaryOf(fn); s != nil {
			return transitivelyTied(flow, fn, map[*types.Func]bool{})
		}
	}
	// Callee outside the package: its body is invisible, so an argument
	// carrying a tie type is the best available evidence.
	for _, arg := range gs.Call.Args {
		t := info.TypeOf(arg)
		if t == nil {
			continue
		}
		if ssaflow.IsContext(t) || isWaitGroupPtr(t) || ssaflow.IsChan(t) {
			return true
		}
	}
	return false
}

// transitivelyTied reports whether fn's body, or any in-package function
// it (transitively) calls, contains a shutdown-tie construct.
func transitivelyTied(flow *ssaflow.Result, fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	s := flow.SummaryOf(fn)
	if s == nil {
		return false
	}
	if s.Tied {
		return true
	}
	for callee := range s.Callees {
		if transitivelyTied(flow, callee, seen) {
			return true
		}
	}
	return false
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && ssaflow.IsWaitGroup(p.Elem())
}
