package ctxdone_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/ctxdone"
)

func TestCtxDone(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxdone.Analyzer, "pathsep/internal/serve")
}
