// Package serve impersonates pathsep/internal/serve: ctxdone only
// fires inside the serving plane.
package serve

import (
	"context"
	"sync"
	"time"
)

func work()          {}
func handle(job int) {}
func orphan(n int)   {}

// pump is tied by its own body: it blocks on ctx.Done.
func pump(ctx context.Context) {
	<-ctx.Done()
	work()
}

// drainWorker signals completion even on panic.
func drainWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// namedChan terminates when the work channel closes.
func namedChan(jobs chan int) {
	for j := range jobs {
		handle(j)
	}
}

// launcher is tied one wrapper level deep: its own body shows no channel
// operation, but the helper it calls ranges over the work channel. The
// interprocedural summary sees through the wrapper.
func launcher(jobs chan int) {
	runJobs(jobs)
}

func runJobs(jobs chan int) {
	for j := range jobs {
		handle(j)
	}
}

// ignoresCtx takes a context but never consults it: the signature
// promises a tie the body does not deliver.
func ignoresCtx(ctx context.Context) {
	for {
		work()
	}
}

// fire-and-forget: nothing can join this goroutine.
func badPlain() {
	go func() { // want `fire-and-forget goroutine: tie it to a shutdown signal`
		work()
	}()
}

// a trailing send is not a completion signal: if work panics, the
// collector wedges.
func badTrailingSend(done chan int, i int) {
	go func() { // want `fire-and-forget goroutine`
		work()
		done <- i
	}()
}

// a timer is not a shutdown signal.
func badTimerOnly() {
	go func() { // want `fire-and-forget goroutine`
		for {
			<-time.After(time.Second)
			work()
		}
	}()
}

// named function without a joinable argument.
func badNamed() {
	go orphan(3) // want `fire-and-forget goroutine`
}

// explicit opt-out, same line.
func detachedSameLine() {
	go func() { work() }() //pathsep:detached — deliberate: process-lifetime pump
}

// explicit opt-out, line above.
func detachedLineAbove() {
	//pathsep:detached — deliberate: process-lifetime pump
	go func() {
		work()
	}()
}

// tied via a stop-channel receive.
func goodStopChan(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// tied via ctx.Done.
func goodCtxDone(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// tied via deferred close of a done channel.
func goodDeferClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// tied via deferred WaitGroup.Done.
func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// tied by ranging over a work channel that closes on shutdown.
func goodRangeChan(jobs chan int) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// named functions whose bodies deliver the tie.
func goodNamed(ctx context.Context, wg *sync.WaitGroup, jobs chan int) {
	go pump(ctx)
	go drainWorker(wg)
	go namedChan(jobs)
}

// tied through an in-package wrapper: launcher itself has no channel
// operation, but runJobs (which it calls) does.
func goodWrapped(jobs chan int) {
	go launcher(jobs)
}

// a tie-typed argument is not enough when the body visibly ignores it.
func badIgnoredCtx(ctx context.Context) {
	go ignoresCtx(ctx) // want `fire-and-forget goroutine`
}
