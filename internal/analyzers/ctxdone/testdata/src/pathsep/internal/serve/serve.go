// Package serve impersonates pathsep/internal/serve: ctxdone only
// fires inside the serving plane.
package serve

import (
	"context"
	"sync"
	"time"
)

func work()                          {}
func handle(job int)                 {}
func pump(ctx context.Context)       {}
func drainWorker(wg *sync.WaitGroup) {}
func orphan(n int)                   {}

// fire-and-forget: nothing can join this goroutine.
func badPlain() {
	go func() { // want `fire-and-forget goroutine: tie it to a shutdown signal`
		work()
	}()
}

// a trailing send is not a completion signal: if work panics, the
// collector wedges.
func badTrailingSend(done chan int, i int) {
	go func() { // want `fire-and-forget goroutine`
		work()
		done <- i
	}()
}

// a timer is not a shutdown signal.
func badTimerOnly() {
	go func() { // want `fire-and-forget goroutine`
		for {
			<-time.After(time.Second)
			work()
		}
	}()
}

// named function without a joinable argument.
func badNamed() {
	go orphan(3) // want `fire-and-forget goroutine`
}

// explicit opt-out, same line.
func detachedSameLine() {
	go func() { work() }() //pathsep:detached — deliberate: process-lifetime pump
}

// explicit opt-out, line above.
func detachedLineAbove() {
	//pathsep:detached — deliberate: process-lifetime pump
	go func() {
		work()
	}()
}

// tied via a stop-channel receive.
func goodStopChan(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// tied via ctx.Done.
func goodCtxDone(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

// tied via deferred close of a done channel.
func goodDeferClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// tied via deferred WaitGroup.Done.
func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// tied by ranging over a work channel that closes on shutdown.
func goodRangeChan(jobs chan int) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// named functions carrying the tie as an argument.
func goodNamed(ctx context.Context, wg *sync.WaitGroup, jobs chan int) {
	go pump(ctx)
	go drainWorker(wg)
	go namedChan(jobs)
}

func namedChan(jobs chan int) {}
