package slotwrite_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/slotwrite"
)

func TestSlotWrite(t *testing.T) {
	analyzertest.Run(t, "testdata", slotwrite.Analyzer, "a")
}
