// Package a exercises the slotwrite analyzer: par tasks may write only to
// task-index-disjoint slots.
package a

import "par"

// badAppend grows a shared slice from inside tasks.
func badAppend(p *par.Pool, in []int) []int {
	var results []int
	p.ForEach(len(in), func(i int) {
		results = append(results, in[i]*2) // want `append to captured slice results inside a par task`
	})
	return results
}

// badScalar accumulates into a shared cell.
func badScalar(p *par.Pool, in []int) int {
	total := 0
	p.ForEach(len(in), func(i int) {
		total += in[i] // want `assignment to captured variable total inside a par task`
	})
	return total
}

// badIncDec is the same race spelled differently.
func badIncDec(p *par.Pool, in []int) int {
	n := 0
	p.ForEach(len(in), func(i int) {
		n++ // want `assignment to captured variable n inside a par task`
	})
	return n
}

// badMap writes a shared map concurrently.
func badMap(p *par.Pool, in []int) map[int]bool {
	seen := make(map[int]bool)
	p.ForEach(len(in), func(i int) {
		seen[in[i]] = true // want `write to captured map seen inside a par task`
	})
	return seen
}

// badDelete mutates a shared map the other way.
func badDelete(p *par.Pool, in []int, seen map[int]bool) {
	p.ForEach(len(in), func(i int) {
		delete(seen, in[i]) // want `delete from captured map seen inside a par task`
	})
}

// badFixedSlot writes a slot not derived from the task index.
func badFixedSlot(p *par.Pool, in []int) int {
	out := make([]int, 1)
	p.ForEach(len(in), func(i int) {
		out[0] = in[i] // want `write to captured out is not indexed by the task index`
	})
	return out[0]
}

// badForkShared lets two branches race on one result cell.
func badForkShared(p *par.Pool) int {
	var x int
	p.Fork(
		func() { x = 1 }, // want `captured variable x is written by 2 sibling Fork tasks`
		func() { x = 2 },
	)
	return x
}

// goodSlots is the sanctioned shape: pre-sized output, one slot per task.
func goodSlots(p *par.Pool, in []int) []int {
	out := make([]int, len(in))
	p.ForEach(len(in), func(i int) {
		out[i] = in[i] * 2
	})
	return out
}

// goodChunked derives slot indices from a task-local loop variable.
func goodChunked(p *par.Pool, in []int, chunk int) []int {
	out := make([]int, len(in))
	n := (len(in) + chunk - 1) / chunk
	p.ForEach(n, func(c int) {
		for j := c * chunk; j < len(in) && j < (c+1)*chunk; j++ {
			out[j] = in[j] * 2
		}
	})
	return out
}

// goodLocalGrowth appends to a task-local slice before a slot write.
func goodLocalGrowth(p *par.Pool, in []int) [][]int {
	out := make([][]int, len(in))
	p.ForEach(len(in), func(i int) {
		var acc []int
		acc = append(acc, in[i])
		out[i] = acc
	})
	return out
}

// goodSlotAppend grows the task's own slot: res[i] = append(res[i], ...).
func goodSlotAppend(p *par.Pool, in []int) [][]int {
	res := make([][]int, len(in))
	p.ForEach(len(in), func(i int) {
		res[i] = append(res[i], in[i])
	})
	return res
}

// goodFork gives each branch its own result cell.
func goodFork(p *par.Pool) (int, int) {
	var a, b int
	p.Fork(
		func() { a = 1 },
		func() { b = 2 },
	)
	return a, b
}

// goodScheduledScatter mirrors the flat batch scheduler: each task
// reorders its own window through a task-local schedule, then scatters
// answers back to slots derived from the task index. Visiting order is
// task-private; slot ownership still partitions by task, so the shape
// is sanctioned.
func goodScheduledScatter(p *par.Pool, in []int, chunk int) []int {
	out := make([]int, len(in))
	n := (len(in) + chunk - 1) / chunk
	p.ForEach(n, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		var sched [16]int
		s := sched[:hi-lo]
		for x := range s {
			s[x] = (x * 7) % len(s) // locality order stub
		}
		for _, rec := range s {
			i := lo + rec
			out[i] = in[i] * 2
		}
	})
	return out
}

// badCapturedOffset scatters through an offset captured from outside the
// task: nothing ties the written slot to the task index, so two tasks
// may collide.
func badCapturedOffset(p *par.Pool, in []int, off int) []int {
	out := make([]int, len(in)+1)
	p.ForEach(len(in), func(i int) {
		out[off] = in[i] // want `write to captured out is not indexed by the task index`
	})
	return out
}
