// Package par stands in for pathsep/internal/par: the bounded worker pool
// whose ForEach/Fork tasks must observe slot-write discipline.
package par

type Pool struct{ workers int }

func New(workers int) *Pool { return &Pool{workers} }

func (p *Pool) ForEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (p *Pool) Fork(fns ...func()) {
	for _, fn := range fns {
		fn()
	}
}
