// Package slotwrite enforces the internal/par merge discipline that makes
// parallel construction bit-identical to serial: a task function passed to
// (*par.Pool).ForEach or Fork may write only into pre-sized disjoint slots
// owned by its task index. Everything else a task writes is shared state
// whose final value depends on worker scheduling — a data race at worst
// and a determinism leak at best, and the class of bug -race and the
// differential tests only catch probabilistically.
//
// Rules, applied to every function literal passed to ForEach/Fork (built
// on the ssaflow free-variable layer):
//
//   - A write whose target is declared inside the literal is always fine
//     (per-task locals).
//   - A write to a captured map (m[k] = v, delete(m, k)) is flagged:
//     concurrent map writes fault, and even an index-keyed map write makes
//     the map's internal state scheduling-dependent.
//   - An assignment to a bare captured variable (x = ..., x += ..., x++)
//     is flagged for ForEach tasks: every task races on the same cell. In
//     a Fork call each captured variable may be written by at most one of
//     the sibling literals (the "one result cell per branch" idiom);
//     variables written by two or more siblings are flagged.
//   - append to a captured slice (x = append(x, ...) or a bare
//     append(x, ...)) is flagged: append reads and writes shared length.
//   - An element or field write into captured storage (s[e] = v,
//     s[e].f = v) is allowed only when the index expression mentions the
//     task index parameter or a literal-local variable derived from it;
//     s[0] = v and s[captured] = v are flagged — the slots are not
//     provably disjoint across tasks.
//
// Method calls on captured values (metrics, collectors) are not analyzed:
// goroutine safety of callees is their own contract. The pass is a static
// complement to the runtime determinism gate (make determinism), which
// shuffles task submission order and compares encodings byte for byte.
package slotwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"pathsep/internal/analyzers/ssaflow"
)

// Analyzer is the slotwrite pass.
var Analyzer = &analysis.Analyzer{
	Name:     "slotwrite",
	Doc:      "par.ForEach/Fork tasks may write only to task-index-disjoint slots; flag shared appends, map writes and captured-variable mutation",
	Requires: []*analysis.Analyzer{ssaflow.Analyzer},
	Run:      run,
}

// isParPool reports whether t is (a pointer to) par.Pool, accepting the
// bare "par" path the analyzertest harness loads its stand-in under.
func isParPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Pool" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "pathsep/internal/par" || path == "par"
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The pool's home package is sanctioned: its own tests verify inline
	// execution order on nil/serial pools through deliberately shared
	// state (the same carve-out seededrand gives par.SplitRand).
	if home := pass.Pkg.Path(); home == "pathsep/internal/par" || home == "par" {
		return nil, nil
	}
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	info := pass.TypesInfo
	seen := map[*ast.CallExpr]bool{}
	for _, fn := range res.Funcs {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || seen[call] {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			mfn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := mfn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isParPool(sig.Recv().Type()) {
				return true
			}
			seen[call] = true
			switch mfn.Name() {
			case "ForEach":
				if len(call.Args) == 2 {
					if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
						checkTask(pass, lit, indexParam(info, lit), nil)
					}
				}
			case "Fork":
				checkFork(pass, info, call)
			}
			return true
		})
	}
	return nil, nil
}

// indexParam returns the object of a ForEach task's index parameter, or
// nil when it is blank.
func indexParam(info *types.Info, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return info.ObjectOf(params.List[0].Names[0])
}

// checkFork checks each literal argument of a Fork call individually
// (with no index parameter) and then cross-checks: a captured variable
// assigned in two or more sibling literals is a shared result cell.
func checkFork(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	writtenBy := map[types.Object][]*ast.FuncLit{}
	firstWrite := map[types.Object]token.Pos{}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		wrote := checkTask(pass, lit, nil, func(obj types.Object, pos token.Pos) {
			if _, ok := firstWrite[obj]; !ok {
				firstWrite[obj] = pos
			}
		})
		for obj := range wrote {
			writtenBy[obj] = append(writtenBy[obj], lit)
		}
	}
	for obj, lits := range writtenBy {
		if len(lits) > 1 {
			pass.Reportf(firstWrite[obj], "captured variable %s is written by %d sibling Fork tasks; give each branch its own result cell", obj.Name(), len(lits))
		}
	}
}

// checkTask walks one task literal. idx is the task-index parameter for
// ForEach tasks (nil for Fork). When forkWrite is non-nil, bare
// captured-variable assignments are not flagged directly but reported to
// the caller for the cross-literal exclusivity check; the returned set
// lists the captured variables the literal assigned.
func checkTask(pass *analysis.Pass, lit *ast.FuncLit, idx types.Object, forkWrite func(types.Object, token.Pos)) map[types.Object]bool {
	info := pass.TypesInfo
	wrote := map[types.Object]bool{}
	reported := map[token.Pos]bool{}

	// localIndexed reports whether some index expression inside lv
	// mentions the task index parameter or any variable declared inside
	// the literal — the "slot owned by this task" shape.
	localIndexed := func(lv ast.Expr) bool {
		ok := false
		ast.Inspect(lv, func(n ast.Node) bool {
			ie, isIdx := n.(*ast.IndexExpr)
			if !isIdx || ok {
				return !ok
			}
			ok = ssaflow.Mentions(info, ie.Index, func(o types.Object) bool {
				return o == idx || ssaflow.DeclaredWithin(o, lit)
			})
			return !ok
		})
		return ok
	}

	// mapWrite reports whether lv writes an element of a map.
	mapWrite := func(lv ast.Expr) bool {
		ie, ok := ast.Unparen(lv).(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := info.TypeOf(ie.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	}

	checkWrite := func(lv ast.Expr, pos token.Pos) {
		obj := ssaflow.BaseObject(info, lv)
		if obj == nil || obj.Name() == "_" || ssaflow.DeclaredWithin(obj, lit) {
			return
		}
		switch {
		case mapWrite(lv):
			pass.Reportf(pos, "write to captured map %s inside a par task; merge into per-task slots instead", obj.Name())
		case isBareIdent(lv):
			if forkWrite != nil {
				wrote[obj] = true
				forkWrite(obj, pos)
				return
			}
			pass.Reportf(pos, "assignment to captured variable %s inside a par task; write to a pre-sized slot indexed by the task index", obj.Name())
		case !localIndexed(lv):
			pass.Reportf(pos, "write to captured %s is not indexed by the task index; slots must be disjoint per task", obj.Name())
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lv := range n.Lhs {
				// x = append(x, ...) on a captured slice reads shared
				// length: report as an append, once.
				if i < len(n.Rhs) || len(n.Rhs) == 1 {
					rhs := n.Rhs[min(i, len(n.Rhs)-1)]
					if capturedAppend(info, lit, rhs) && !reported[n.Pos()] {
						obj := ssaflow.BaseObject(info, lv)
						if obj != nil && !ssaflow.DeclaredWithin(obj, lit) {
							reported[n.Pos()] = true
							pass.Reportf(n.Pos(), "append to captured slice %s inside a par task; tasks must fill pre-sized disjoint slots", obj.Name())
							continue
						}
					}
				}
				checkWrite(lv, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n.Pos())
		case *ast.CallExpr:
			// delete(m, k) on a captured map; bare append(x, ...) whose
			// result is discarded still reads shared state.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "delete":
						if len(n.Args) == 2 {
							if obj := ssaflow.BaseObject(info, n.Args[0]); obj != nil && !ssaflow.DeclaredWithin(obj, lit) {
								pass.Reportf(n.Pos(), "delete from captured map %s inside a par task", obj.Name())
							}
						}
					}
				}
			}
		}
		return true
	})
	return wrote
}

func isBareIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// capturedAppend reports whether e is append(x, ...) with x captured
// (not literal-local) and not a task-indexed slot expression.
func capturedAppend(info *types.Info, lit *ast.FuncLit, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if _, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); !isIdent {
		return false // append into an indexed slot (res[i] = append(res[i], ...)) is the slot's own growth
	}
	obj := ssaflow.BaseObject(info, call.Args[0])
	return obj != nil && !ssaflow.DeclaredWithin(obj, lit)
}
