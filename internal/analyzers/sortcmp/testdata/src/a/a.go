// Package a exercises the sortcmp analyzer: less-functions must be strict
// weak orderings and compare floats through the core helpers.
package a

import (
	"sort"

	"core"
)

type entry struct {
	dist float64
	id   int
}

// badFloatLess compares float distances raw: SameDist-equal keys order
// nondeterministically.
func badFloatLess(xs []entry) {
	sort.Slice(xs, func(i, j int) bool {
		return xs[i].dist < xs[j].dist // want `less-function compares floats with < directly`
	})
}

// badNonStrict is not a strict weak ordering.
func badNonStrict(xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		return xs[i] <= xs[j] // want `less-function uses <=: not a strict weak ordering`
	})
}

// badNonStrictStable loses SliceStable's stability guarantee too.
func badNonStrictStable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool {
		return xs[j] >= xs[i] // want `less-function uses >=: not a strict weak ordering`
	})
}

// goodGuarded is the sanctioned idiom: float compare guarded by SameDist
// with a discrete tie-break.
func goodGuarded(xs []entry) {
	sort.Slice(xs, func(i, j int) bool {
		if !core.SameDist(xs[i].dist, xs[j].dist) {
			return xs[i].dist < xs[j].dist
		}
		return xs[i].id < xs[j].id
	})
}

// goodInts orders discrete keys strictly: nothing to flag.
func goodInts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// goodUnrelatedLeq compares a parameter against a bound, not the two
// elements against each other: <= is fine there.
func goodUnrelatedLeq(xs []int, cut int) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i] <= cut {
			return true
		}
		return xs[i] < xs[j]
	})
}
