// Package core stands in for pathsep/internal/core's floatcmp helpers —
// the sanctioned way to compare float distances in a less-function.
package core

func SameDist(a, b float64) bool     { return a == b }
func ApproxDistEq(a, b float64) bool { return a == b }
func IsZeroDist(d float64) bool      { return d == 0 }

func WithinFactor(a, b, f float64) bool { return a <= b*f }
