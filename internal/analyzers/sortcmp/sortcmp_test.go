package sortcmp_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/sortcmp"
)

func TestSortCmp(t *testing.T) {
	analyzertest.Run(t, "testdata", sortcmp.Analyzer, "a")
}
