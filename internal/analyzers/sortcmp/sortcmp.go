// Package sortcmp checks the less-functions handed to sort.Slice and
// friends — the comparators that define every canonical order the encoder
// and the flat serving form depend on.
//
// Two classes of bug are flagged:
//
//   - Non-strict comparisons: a less-function using <= or >= across its
//     two index parameters is not a strict weak ordering. sort.Slice is
//     not stable, so "less or equal" lets equal elements land in
//     scheduling- or input-order-dependent positions, and sort.SliceStable
//     silently loses its stability guarantee. The canonical key order
//     (keyLess) must be strict.
//
//   - Raw float comparisons: distances in this codebase are floats whose
//     low bits differ across algebraically equal computations, so a less
//     function comparing floats with < directly can order two
//     SameDist-equal keys differently from build to build. Float key
//     material must be compared through internal/core's floatcmp helpers
//     (SameDist, ApproxDistEq, IsZeroDist, WithinFactor) so ties are
//     broken on exact discrete fields instead. A less-function that
//     mentions one of the helpers anywhere is trusted — the usual shape
//     guards the float compare behind a SameDist tie-break.
//
// Checked call sites: sort.Slice, sort.SliceStable, slices.SortFunc,
// slices.SortStableFunc with an inline function literal comparator.
package sortcmp

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"pathsep/internal/analyzers/ssaflow"
)

// Analyzer is the sortcmp pass.
var Analyzer = &analysis.Analyzer{
	Name:     "sortcmp",
	Doc:      "sort.Slice less-functions must be strict weak orderings and compare floats via core/floatcmp helpers",
	Requires: []*analysis.Analyzer{ssaflow.Analyzer},
	Run:      run,
}

// comparatorArg returns the index of the comparator argument for the
// supported sort entry points, or -1.
func comparatorArg(fn *types.Func) int {
	if fn == nil || fn.Pkg() == nil {
		return -1
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable":
			return 1
		}
	case "slices":
		switch fn.Name() {
		case "SortFunc", "SortStableFunc":
			return 1
		}
	}
	return -1
}

// floatcmpHelpers are the sanctioned comparison helpers from
// internal/core (re-exported on the pathsep facade, and provided by the
// "core" stand-in package in analyzer testdata).
var floatcmpHelpers = map[string]bool{
	"SameDist":     true,
	"ApproxDistEq": true,
	"IsZeroDist":   true,
	"WithinFactor": true,
}

func isFloatcmpHome(path string) bool {
	switch path {
	case "pathsep/internal/core", "pathsep", "core":
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	info := pass.TypesInfo
	for _, fn := range res.Funcs {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx := comparatorArg(ssaflow.CalleeFunc(info, call))
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[idx]).(*ast.FuncLit); ok {
				checkLess(pass, lit)
			}
			return true
		})
	}
	return nil, nil
}

// params returns the comparator's two parameter objects (index params for
// sort.Slice, element params for slices.SortFunc), or nil.
func params(info *types.Info, lit *ast.FuncLit) (a, b types.Object) {
	var objs []types.Object
	if lit.Type.Params == nil {
		return nil, nil
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			objs = append(objs, info.ObjectOf(name))
		}
	}
	if len(objs) != 2 {
		return nil, nil
	}
	return objs[0], objs[1]
}

func checkLess(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	pa, pb := params(info, lit)

	// A less-function that consults a floatcmp helper anywhere is doing
	// the guarded-compare idiom; trust it for the float rule.
	usesHelper := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ssaflow.CalleeFunc(info, call)
		if callee != nil && callee.Pkg() != nil &&
			isFloatcmpHome(callee.Pkg().Path()) && floatcmpHelpers[callee.Name()] {
			usesHelper = true
			return false
		}
		return true
	})

	mentionsParam := func(e ast.Expr, p types.Object) bool {
		if p == nil {
			return false
		}
		return ssaflow.Mentions(info, e, func(o types.Object) bool { return o == p })
	}
	// spansParams reports whether the comparison actually compares the two
	// elements being ordered: one operand derives from one parameter, the
	// other from the other.
	spansParams := func(be *ast.BinaryExpr) bool {
		if pa == nil || pb == nil {
			return false
		}
		return (mentionsParam(be.X, pa) && mentionsParam(be.Y, pb)) ||
			(mentionsParam(be.X, pb) && mentionsParam(be.Y, pa))
	}
	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", ">", "<=", ">=":
		default:
			return true
		}
		if !spansParams(be) {
			return true
		}
		if be.Op.String() == "<=" || be.Op.String() == ">=" {
			pass.Reportf(be.OpPos, "less-function uses %s: not a strict weak ordering; equal elements get nondeterministic positions", be.Op)
			return true
		}
		if (isFloat(be.X) || isFloat(be.Y)) && !usesHelper {
			pass.Reportf(be.OpPos, "less-function compares floats with %s directly; guard with a core floatcmp helper (SameDist) and break ties on discrete fields", be.Op)
		}
		return true
	})
}
