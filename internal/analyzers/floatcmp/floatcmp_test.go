package floatcmp_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/floatcmp"
)

// TestFloatCmp checks diagnostics in an ordinary package.
func TestFloatCmp(t *testing.T) {
	analyzertest.Run(t, "testdata", floatcmp.Analyzer, "a")
}

// TestHelperFileExempt checks that internal/core/floatcmp.go is exempt
// while sibling files in the same package are not.
func TestHelperFileExempt(t *testing.T) {
	analyzertest.Run(t, "testdata", floatcmp.Analyzer, "pathsep/internal/core")
}
