// Package a exercises the floatcmp analyzer outside the helper packages.
package a

func bad(a, b float64) bool {
	return a == b // want "raw == on float"
}

func badNeq(a float64) bool {
	return a != 0 // want "raw != on float"
}

func badSwitch(x float64) int {
	switch x { // want "switch on a float"
	case 1:
		return 1
	}
	return 0
}

func badFloat32(a, b float32) bool {
	return a == b // want "raw == on float"
}

// Ordering comparisons are fine: only exact equality is brittle.
func goodLess(a, b float64) bool { return a < b }

// Integer equality is fine.
func goodInt(a, b int) bool { return a == b }
