// Stub mirroring the real helper home: exact comparisons are allowed
// here and nowhere else in the package.
package core

// SameDist lives in internal/core/floatcmp.go, the designated helper
// file, so its exact comparison is exempt.
func SameDist(a, b float64) bool { return a == b }

// IsZeroDist is exempt for the same reason.
func IsZeroDist(d float64) bool { return d == 0 }
