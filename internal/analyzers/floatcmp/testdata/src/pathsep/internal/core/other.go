package core

// The exemption is per-file, not per-package: other files in
// internal/core are still checked.
func leaky(a, b float64) bool {
	return a == b // want "raw == on float"
}
