// Package floatcmp forbids raw ==, != and switch comparisons on floating
// point values in non-test code.
//
// Distances in this library are sums of float64 edge weights computed along
// different paths; two mathematically equal distances are routinely not
// bit-equal, and the (1+ε) guarantees of the oracle and routing layers are
// stated up to epsilon. A raw equality test is either a latent bug or an
// exact-provenance assertion that deserves a name. All comparisons must go
// through the epsilon helpers in internal/core/floatcmp.go (SameDist,
// ApproxDistEq, WithinFactor, ...) or the math predicates (math.IsInf,
// math.IsNaN), which the analyzer does not flag because they are calls, not
// operators.
//
// The helper functions themselves are exempt: functions declared in a file
// named floatcmp.go inside a package whose import path ends in
// "internal/core" or "internal/shortest" may use the raw operators. Further
// exceptional functions can be granted with
//
//	-floatcmp.allow=pkg/path/suffix.FuncName,...
//
// but the intent is that the allowlist stays empty and call sites migrate
// to helpers instead.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!=/switch on floating point values outside the epsilon helpers in internal/core",
	Run:  run,
}

var allowFlag string

func init() {
	Analyzer.Flags.StringVar(&allowFlag, "allow", "",
		"comma-separated pkg/path/suffix.FuncName entries exempt from the check")
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// helperPkg reports whether path is one of the packages allowed to host
// raw-comparison helpers.
func helperPkg(path string) bool {
	for _, suf := range []string{"internal/core", "internal/shortest"} {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	allowed := make(map[string]bool)
	for _, entry := range strings.Split(allowFlag, ",") {
		if entry = strings.TrimSpace(entry); entry != "" {
			allowed[entry] = true
		}
	}

	exemptFn := func(fd *ast.FuncDecl) bool {
		if fd == nil {
			return false
		}
		pos := pass.Fset.Position(fd.Pos())
		if helperPkg(pass.Pkg.Path()) && filepath.Base(pos.Filename) == "floatcmp.go" {
			return true
		}
		return allowed[pass.Pkg.Path()+"."+fd.Name.Name]
	}

	enclosingFunc := func(file *ast.File, pos token.Pos) *ast.FuncDecl {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
				return fd
			}
		}
		return nil
	}

	for _, file := range pass.Files {
		pos := pass.Fset.Position(file.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				tx, ty := pass.TypesInfo.TypeOf(n.X), pass.TypesInfo.TypeOf(n.Y)
				if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
					return true
				}
				if exemptFn(enclosingFunc(file, n.Pos())) {
					return true
				}
				pass.Reportf(n.OpPos, "raw %s on float values; use an epsilon helper from internal/core (SameDist, ApproxDistEq, ...) or math.IsInf/IsNaN", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := pass.TypesInfo.TypeOf(n.Tag); t != nil && isFloat(t) {
					if exemptFn(enclosingFunc(file, n.Pos())) {
						return true
					}
					pass.Reportf(n.Switch, "switch on a float value compares with raw ==; use explicit epsilon-helper comparisons")
				}
			}
			return true
		})
	}
	return nil, nil
}
