// Package offwire cross-checks the two halves of the flat wire format.
// The encoder and decoder are written against one layout struct of
// section offsets (flatSections), but nothing in the type system ties
// a PutUint32 at s.entryOff+4*i in Encode to the Uint32 read (or the
// unsafe.Slice view of *int32) at the same offset in DecodeFlat — a
// section widened, added, or renumbered on one side silently corrupts
// every image decoded by the other.
//
// The pass recognizes layout structs structurally: structs whose
// fields are all integer offsets (or embedded layout structs), used as
// the base of buffer indexing in binary.ByteOrder put and read calls.
// For every such section field, once the package contains both an
// encoder and a decoder for the struct, it enforces:
//
//   - coverage symmetry: a section written is decoded, and a section
//     decoded is written;
//   - record symmetry: the per-record stride (the k in s.X+k*i) and
//     the multiset of (offset, width) accesses within a record match
//     between the put side and the copying-read side;
//   - view symmetry: a zero-copy unsafe.Slice over a section has an
//     element type whose size equals the encoder's record stride, and
//     its element count expression is the same one the copying
//     fallback passes to make — the two decode paths must agree on the
//     section's shape;
//   - validated reads: a decoded section must be element-validated
//     somewhere — an indexed or ranged check of the same-named field
//     in a function whose name contains "validate". A len() check
//     alone accepts any garbage the records happen to contain.
//
// Test files are exempt.
package offwire

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the offwire pass.
var Analyzer = &analysis.Analyzer{
	Name:     "offwire",
	Doc:      "encode/decode symmetry for wire layout structs: section coverage, record stride and widths, zero-copy view shape, and element-validated reads",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// isLayoutStruct reports whether t is a struct of integer offsets
// (embedded layout structs allowed) — the shape of a wire layout.
func isLayoutStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok || st.NumFields() < 2 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			continue
		}
		if f.Embedded() && isLayoutStruct(f.Type()) {
			continue
		}
		return false
	}
	return true
}

// access is one put or read event against a section.
type access struct {
	addend int64 // byte offset within the record
	width  int64 // bytes moved
	stride int64 // record stride (0 when the section has no per-record loop)
	pos    token.Pos
}

// view is one zero-copy unsafe.Slice construction over a section.
type view struct {
	elemSize int64
	count    string
	pos      token.Pos
}

// section aggregates everything the package does to one layout field.
type section struct {
	field *types.Var
	puts  []access
	reads []access
	views []view
}

// offset is a resolved buffer-offset expression: base field plus a
// constant addend plus an optional k*i stride term.
type offset struct {
	field  *types.Var
	addend int64
	stride int64
	ok     bool
}

// collector walks one package.
type collector struct {
	pass     *analysis.Pass
	sections map[*types.Var]*section
	// viewCounts / makeCounts record, per assigned field name, the
	// element-count expression of zero-copy and copying decodes.
	viewCounts map[string]view
	makeCounts map[string]string
	// checked holds field names element-validated in validate functions.
	checked map[string]bool
	// locals maps offset-carrying locals (at := s.X + 8*i) per function.
	locals map[types.Object]offset
}

func (c *collector) sectionOf(f *types.Var) *section {
	s, ok := c.sections[f]
	if !ok {
		s = &section{field: f}
		c.sections[f] = s
	}
	return s
}

// flattenSum splits e into its + terms.
func flattenSum(e ast.Expr, terms *[]ast.Expr) {
	e = ast.Unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		flattenSum(be.X, terms)
		flattenSum(be.Y, terms)
		return
	}
	*terms = append(*terms, e)
}

// resolveOffset interprets a buffer index expression of the grammar
// s.X [+ const] [+ k*i], possibly through a local bound to a prefix of
// it.
func (c *collector) resolveOffset(e ast.Expr) offset {
	info := c.pass.TypesInfo
	var terms []ast.Expr
	flattenSum(e, &terms)
	var out offset
	for _, t := range terms {
		t = ast.Unparen(t)
		if tv, ok := info.Types[t]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			v, _ := constant.Int64Val(tv.Value)
			out.addend += v
			continue
		}
		switch x := t.(type) {
		case *ast.SelectorExpr:
			obj, ok := info.ObjectOf(x.Sel).(*types.Var)
			if !ok || !obj.IsField() || !isLayoutStruct(info.TypeOf(x.X)) || out.field != nil {
				return offset{}
			}
			out.field = obj
		case *ast.Ident:
			if loc, ok := c.locals[info.ObjectOf(x)]; ok && out.field == nil {
				out.field = loc.field
				out.addend += loc.addend
				out.stride = loc.stride
				continue
			}
			return offset{}
		case *ast.BinaryExpr:
			if x.Op != token.MUL {
				return offset{}
			}
			k := int64(0)
			found := false
			for _, side := range []ast.Expr{x.X, x.Y} {
				if tv, ok := info.Types[side]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					k, _ = constant.Int64Val(tv.Value)
					found = true
				}
			}
			if !found || out.stride != 0 {
				return offset{}
			}
			out.stride = k
		default:
			return offset{}
		}
	}
	out.ok = out.field != nil
	return out
}

// binaryAccess classifies le.PutUintN / le.UintN calls from
// encoding/binary, returning the moved width and direction.
func binaryAccess(info *types.Info, call *ast.CallExpr) (width int64, isPut, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	fn, isFn := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return 0, false, false
	}
	switch sel.Sel.Name {
	case "PutUint16":
		return 2, true, true
	case "PutUint32":
		return 4, true, true
	case "PutUint64":
		return 8, true, true
	case "Uint16":
		return 2, false, true
	case "Uint32":
		return 4, false, true
	case "Uint64":
		return 8, false, true
	}
	return 0, false, false
}

// bufOffsetExpr extracts the offset expression from the buffer operand
// buf[off:] (or buf[off:hi]) of a binary access.
func bufOffsetExpr(arg ast.Expr) (ast.Expr, bool) {
	se, ok := ast.Unparen(arg).(*ast.SliceExpr)
	if !ok || se.Low == nil {
		return nil, false
	}
	return se.Low, true
}

// isUnsafeSlice matches unsafe.Slice calls.
func isUnsafeSlice(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Slice" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, isPkg := info.ObjectOf(id).(*types.PkgName)
	return isPkg && pn.Imported().Path() == "unsafe"
}

// viewOffsetExpr digs the buffer index out of a view's pointer
// argument: (*T)(unsafe.Pointer(&buf[s.X])) yields s.X.
func viewOffsetExpr(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil, false
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			return x.Index, true
		default:
			return nil, false
		}
	}
}

// collectLocals records offset-carrying locals of one function body.
func (c *collector) collectLocals(body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if off := c.resolveOffset(as.Rhs[0]); off.ok {
			c.locals[info.ObjectOf(id)] = off
		}
		return true
	})
}

// collectAccesses records every put, read, view, and count in body.
func (c *collector) collectAccesses(body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if w, isPut, ok := binaryAccess(info, n); ok && len(n.Args) > 0 {
				low, ok := bufOffsetExpr(n.Args[0])
				if !ok {
					return true
				}
				off := c.resolveOffset(low)
				if !off.ok {
					return true
				}
				s := c.sectionOf(off.field)
				a := access{addend: off.addend, width: w, stride: off.stride, pos: n.Pos()}
				if isPut {
					s.puts = append(s.puts, a)
				} else {
					s.reads = append(s.reads, a)
				}
				return true
			}
			if isUnsafeSlice(info, n) && len(n.Args) == 2 {
				idx, ok := viewOffsetExpr(info, n.Args[0])
				if !ok {
					return true
				}
				off := c.resolveOffset(idx)
				if !off.ok {
					return true
				}
				size := int64(0)
				if pt, isPtr := info.TypeOf(n.Args[0]).Underlying().(*types.Pointer); isPtr {
					size = c.pass.TypesSizes.Sizeof(pt.Elem())
				}
				s := c.sectionOf(off.field)
				s.views = append(s.views, view{
					elemSize: size,
					count:    types.ExprString(n.Args[1]),
					pos:      n.Pos(),
				})
			}
		case *ast.AssignStmt:
			// Pair up the two decode paths by assigned field name:
			// f.X = unsafe.Slice(...) vs f.X = make([]T, count).
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				name := sel.Sel.Name
				if isUnsafeSlice(info, call) && len(call.Args) == 2 {
					size := int64(0)
					if pt, isPtr := info.TypeOf(call.Args[0]).Underlying().(*types.Pointer); isPtr {
						size = c.pass.TypesSizes.Sizeof(pt.Elem())
					}
					c.viewCounts[name] = view{elemSize: size, count: types.ExprString(call.Args[1]), pos: call.Pos()}
				} else if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "make" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 {
						c.makeCounts[name] = types.ExprString(call.Args[1])
					}
				}
			}
		}
		return true
	})
}

// collectValidated records element-level checks in validate functions.
func (c *collector) collectValidated(fd *ast.FuncDecl) {
	if !strings.Contains(strings.ToLower(fd.Name.Name), "validate") {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			switch b := ast.Unparen(n.X).(type) {
			case *ast.SelectorExpr:
				c.checked[b.Sel.Name] = true
			case *ast.Ident:
				c.checked[b.Name] = true
			}
		case *ast.RangeStmt:
			if b, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && (n.Key != nil || n.Value != nil) {
				c.checked[b.Sel.Name] = true
			}
		}
		return true
	})
}

// accessProfile formats a record's access multiset, e.g. "4B@+0 2B@+4".
func accessProfile(as []access) string {
	type slot struct{ addend, width int64 }
	seen := map[slot]bool{}
	var slots []slot
	for _, a := range as {
		s := slot{a.addend, a.width}
		if !seen[s] {
			seen[s] = true
			slots = append(slots, s)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].addend < slots[j].addend })
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = fmt.Sprintf("%dB@+%d", s.width, s.addend)
	}
	return strings.Join(parts, " ")
}

// strideOf picks the section's record stride from its accesses.
func strideOf(as []access) int64 {
	for _, a := range as {
		if a.stride != 0 {
			return a.stride
		}
	}
	return 0
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &collector{
		pass:       pass,
		sections:   map[*types.Var]*section{},
		viewCounts: map[string]view{},
		makeCounts: map[string]string{},
		checked:    map[string]bool{},
		locals:     map[types.Object]offset{},
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		c.collectLocals(fd.Body)
		c.collectAccesses(fd.Body)
		c.collectValidated(fd)
	})

	// The symmetry rules only make sense once this package contains
	// both halves of a codec: a pure encoder (or pure decoder) package
	// owes nothing to a counterpart it does not contain.
	hasPuts, hasReads := map[string]bool{}, map[string]bool{}
	for _, s := range c.sections {
		key := s.field.Pkg().Path()
		if len(s.puts) > 0 {
			hasPuts[key] = true
		}
		if len(s.reads) > 0 || len(s.views) > 0 {
			hasReads[key] = true
		}
	}

	for _, s := range c.sections {
		key := s.field.Pkg().Path()
		if !hasPuts[key] || !hasReads[key] {
			continue
		}
		name := s.field.Name()
		decoded := len(s.reads) > 0 || len(s.views) > 0

		// Coverage symmetry.
		if len(s.puts) > 0 && !decoded {
			pass.Reportf(s.puts[0].pos,
				"wire section %s is written by the encoder but never decoded", name)
			continue
		}
		if decoded && len(s.puts) == 0 {
			pos := token.NoPos
			if len(s.reads) > 0 {
				pos = s.reads[0].pos
			} else {
				pos = s.views[0].pos
			}
			pass.Reportf(pos,
				"wire section %s is decoded but never written by the encoder", name)
			continue
		}

		// Record symmetry against the copying-read path.
		putStride := strideOf(s.puts)
		if len(s.reads) > 0 {
			readStride := strideOf(s.reads)
			if putStride != 0 && readStride != 0 && putStride != readStride {
				pass.Reportf(s.reads[0].pos,
					"wire section %s: encoder writes %d-byte records but decoder reads %d-byte records",
					name, putStride, readStride)
			} else if pp, rp := accessProfile(s.puts), accessProfile(s.reads); pp != rp {
				pass.Reportf(s.reads[0].pos,
					"wire section %s: encoder writes [%s] per record but decoder reads [%s]",
					name, pp, rp)
			}
		}

		// View symmetry against the zero-copy path.
		for _, v := range s.views {
			if putStride != 0 && v.elemSize != 0 && v.elemSize != putStride {
				pass.Reportf(v.pos,
					"wire section %s: zero-copy view elements are %d bytes but encoder writes %d-byte records",
					name, v.elemSize, putStride)
			}
		}

		// Validated reads.
		if decoded && !c.checked[name] {
			pos := token.NoPos
			if len(s.reads) > 0 {
				pos = s.reads[0].pos
			} else {
				pos = s.views[0].pos
			}
			pass.Reportf(pos,
				"wire section %s is decoded but never element-validated; add an indexed or ranged check of %s in a validate function",
				name, name)
		}
	}

	// Count symmetry between the two decode paths, by assigned field.
	for name, v := range c.viewCounts {
		mk, ok := c.makeCounts[name]
		if !ok || mk == v.count {
			continue
		}
		pass.Reportf(v.pos,
			"wire section %s: zero-copy element count %s does not match the copying fallback's %s",
			name, v.count, mk)
	}
	return nil, nil
}
