package offwire_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/offwire"
)

func TestOffWire(t *testing.T) {
	analyzertest.Run(t, "testdata", offwire.Analyzer, "a")
}
