// Package a exercises the offwire analyzer: sections written by the
// encoder must be decoded with the same record stride, widths, and
// counts, and every decoded section needs an element-level check in a
// validate function.
package a

import (
	"encoding/binary"
	"unsafe"
)

// sections is a wire layout struct: all-integer offsets.
type sections struct {
	recs    int
	offs    int
	extra   int
	gone    int
	phantom int
	wid     int
	cnt     int
	fat     int
	total   int
}

type rec struct {
	a uint32
	b uint16
	c uint16
}

type blob struct {
	recs  []rec
	offs  []int32
	extra []int32
	wid   []int32
	cnt   []int32
	fat   []int64
}

func layout(nRecs, nOffs int) sections {
	var s sections
	s.recs = 64
	s.offs = s.recs + 8*nRecs
	s.extra = s.offs + 4*nOffs
	s.gone = s.extra + 4*nOffs
	s.phantom = s.gone + 4
	s.wid = s.phantom + 4
	s.cnt = s.wid + 4*nOffs
	s.fat = s.cnt + 4*nOffs
	s.total = s.fat + 4*nOffs
	return s
}

func encode(b *blob, nRecs, nOffs int) []byte {
	s := layout(nRecs, nOffs)
	buf := make([]byte, s.total)
	le := binary.LittleEndian
	for i, r := range b.recs {
		at := s.recs + 8*i
		le.PutUint32(buf[at:], r.a)
		le.PutUint16(buf[at+4:], r.b)
		le.PutUint16(buf[at+6:], r.c)
	}
	for i, v := range b.offs {
		le.PutUint32(buf[s.offs+4*i:], uint32(v))
	}
	for i, v := range b.extra {
		le.PutUint32(buf[s.extra+4*i:], uint32(v))
	}
	le.PutUint32(buf[s.gone:], 7) // want `wire section gone is written by the encoder but never decoded`
	for i, v := range b.wid {
		le.PutUint32(buf[s.wid+4*i:], uint32(v))
	}
	for i, v := range b.cnt {
		le.PutUint32(buf[s.cnt+4*i:], uint32(v))
	}
	for i, v := range b.fat {
		le.PutUint32(buf[s.fat+4*i:], uint32(v))
	}
	return buf
}

func decode(buf []byte, nRecs, nOffs int) *blob {
	s := layout(nRecs, nOffs)
	le := binary.LittleEndian
	b := &blob{}
	// recs round-trips exactly, but validate below never element-checks
	// it — only a len() test — so its first read site reports.
	b.recs = make([]rec, nRecs)
	for i := range b.recs {
		at := s.recs + 8*i
		b.recs[i] = rec{
			a: le.Uint32(buf[at:]), // want `wire section recs is decoded but never element-validated; add an indexed or ranged check of recs in a validate function`
			b: le.Uint16(buf[at+4:]),
			c: le.Uint16(buf[at+6:]),
		}
	}
	b.offs = make([]int32, nOffs)
	for i := range b.offs {
		b.offs[i] = int32(le.Uint32(buf[s.offs+4*i:]))
	}
	// extra: decoder reads 8-byte records where the encoder wrote 4-byte
	// ones.
	b.extra = make([]int32, nOffs)
	for i := range b.extra {
		b.extra[i] = int32(le.Uint64(buf[s.extra+8*i:])) // want `wire section extra: encoder writes 4-byte records but decoder reads 8-byte records`
	}
	// phantom: never written by the encoder.
	_ = le.Uint32(buf[s.phantom:]) // want `wire section phantom is decoded but never written by the encoder`
	// wid: same stride, but the decoder splits the word differently.
	b.wid = make([]int32, nOffs)
	for i := range b.wid {
		lo := le.Uint16(buf[s.wid+4*i:]) // want `wire section wid: encoder writes \[4B@\+0\] per record but decoder reads \[2B@\+0 2B@\+2\]`
		hi := le.Uint16(buf[s.wid+4*i+2:])
		b.wid[i] = int32(uint32(lo) | uint32(hi)<<16)
	}
	return b
}

// decodeZero is the zero-copy path: views over the same sections.
func decodeZero(buf []byte, nRecs, nOffs int) *blob {
	s := layout(nRecs, nOffs)
	b := &blob{}
	b.offs = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s.offs])), nOffs)
	// cnt: the two decode paths disagree on the element count.
	b.cnt = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s.cnt])), nOffs+1) // want `wire section cnt: zero-copy element count nOffs \+ 1 does not match the copying fallback's nOffs`
	// fat: the view element type is wider than the encoded records.
	b.fat = unsafe.Slice((*int64)(unsafe.Pointer(&buf[s.fat])), nOffs/2) // want `wire section fat: zero-copy view elements are 8 bytes but encoder writes 4-byte records`
	return b
}

// decodeCopyCnt is the copying fallback paired with decodeZero's views.
func decodeCopyCnt(buf []byte, nOffs int) *blob {
	s := layout(0, nOffs)
	le := binary.LittleEndian
	b := &blob{}
	b.cnt = make([]int32, nOffs)
	for i := range b.cnt {
		b.cnt[i] = int32(le.Uint32(buf[s.cnt+4*i:]))
	}
	b.fat = make([]int64, nOffs/2)
	for i := range b.fat {
		b.fat[i] = int64(le.Uint32(buf[s.fat+4*i:]))
	}
	return b
}

// validate element-checks every section except recs, which gets only a
// len() test.
func validate(b *blob) bool {
	if len(b.recs) == 0 {
		return false
	}
	for i := range b.offs {
		if b.offs[i] < 0 {
			return false
		}
	}
	for i := range b.extra {
		if b.extra[i] < 0 {
			return false
		}
	}
	if len(b.wid) > 0 && b.wid[0] < 0 {
		return false
	}
	for i := range b.cnt {
		if b.cnt[i] < 0 {
			return false
		}
	}
	for i := range b.fat {
		if b.fat[i] < 0 {
			return false
		}
	}
	return true
}
