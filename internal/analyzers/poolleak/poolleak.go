// Package poolleak enforces the repo's sync.Pool discipline: a buffer
// taken from a pool must go back. The serving hot path (internal/serve's
// pair/dist/byte pools) recycles request buffers on every batch; one
// early-return that skips the Put doesn't crash anything — it just
// quietly converts the pool into a per-request allocator, which is
// exactly the regression the 0-alloc gates exist to prevent, and one
// Put too early hands the same backing array to two concurrent
// requests.
//
// The pass runs a path-sensitive walk over each function body (on the
// ssaflow function index):
//
//   - Sources: a direct `pool.Get()` call, or a call to a *getter
//     wrapper* — a function in this package whose result transitively
//     derives from a Get, resolved through the interprocedural ssaflow
//     summaries (ResultFlow), so the serve getPairs/getDists shape is
//     recognized through any depth of in-package wrapping rather than
//     by a hand-listed single-level scan. The assigned variable becomes
//     an open buffer tied to the pool the terminal Get names.
//   - Sinks: a direct `pool.Put(v)` or a call to a *putter wrapper* — a
//     function one of whose parameters transitively reaches a Put
//     (ParamFlow), again through any wrapper depth. A deferred Put
//     closes the buffer on every path out, including panics, and
//     permits later uses (defers run last). A plain Put closes it from
//     that point on: any later mention of the buffer is a use-after-Put
//     — the pool may already have handed it to another goroutine.
//   - Ownership transfer: returning the buffer, storing it into a
//     field/slice/map, sending it on a channel, or capturing it in a
//     goroutine/function literal moves the obligation elsewhere; the
//     walk stops tracking it. Passing it as a plain call argument does
//     not (the caller of Get still owns it).
//   - Aliasing: rebinding through a self-slice (v = v[:n]) or
//     self-append keeps the buffer; rebinding to a different backing
//     array (v = make(...), v = append(w, v...), v = w[i:j]) and then
//     Putting it poisons the pool with a foreign array and is flagged,
//     as is a Put to a different pool than the one Get came from.
//
// Branches merge conservatively: a buffer is open after a branch if any
// surviving path left it open, and counts as Put only if every
// surviving path Put it. Terminating paths (return, panic) are checked
// at their exit. Getter/putter wrappers themselves are exempt from the
// walk — dropping a too-small buffer on the floor inside a getter is
// the intended resize policy, not a leak. Test files are skipped.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"pathsep/internal/analyzers/ssaflow"
)

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name:     "poolleak",
	Doc:      "every sync.Pool Get must reach a Put on all paths, with no use after Put and no foreign or cross-pool Put",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssaflow.Analyzer},
	Run:      run,
}

// poolObj resolves the pool identity of the receiver expression in
// pool.Get()/pool.Put(): the field object for s.pairBufs, the variable
// for a package-level pool.
func poolObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	case *ast.IndexExpr:
		return poolObj(info, x.X)
	case *ast.StarExpr:
		return poolObj(info, x.X)
	}
	return nil
}

// poolCall matches a direct sync.Pool method call, returning the pool
// identity and the method name ("Get" or "Put").
func poolCall(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Put" {
		return nil, ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" || n.Obj().Name() != "Pool" {
		return nil, ""
	}
	return poolObj(info, sel.X), name
}

// wrappers is the package's getter/putter classification.
type wrappers struct {
	getters map[*types.Func]types.Object // wrapper -> pool it Gets from
	putters map[*types.Func]putter       // wrapper -> pool + which param it Puts
	exempt  map[ast.Node]bool            // wrapper bodies, skipped by the walk
}

type putter struct {
	pool types.Object
	arg  int
}

// classify finds the package's pool wrappers from the interprocedural
// summaries: a getter is any function one of whose results transitively
// derives from a pool Get (ResultFlow resolves through in-package
// wrappers of any depth); a putter is any function one of whose
// parameters transitively reaches a pool Put (ParamFlow likewise).
// There is no hand-listed single-level scan left — a wrapper around a
// wrapper classifies exactly like the wrapper itself.
func classify(pass *analysis.Pass, res *ssaflow.Result) *wrappers {
	info := pass.TypesInfo
	w := &wrappers{
		getters: map[*types.Func]types.Object{},
		putters: map[*types.Func]putter{},
		exempt:  map[ast.Node]bool{},
	}
	for fn := range res.Summaries {
		s := res.Summaries[fn]
		sig := fn.Type().(*types.Signature)
		for j := 0; j < sig.Results().Len(); j++ {
			for _, src := range res.ResultFlow(fn, j) {
				if src.Call == nil {
					continue
				}
				if pool, method := poolCall(info, src.Call); method == "Get" && pool != nil {
					w.getters[fn] = pool
					w.exempt[s.Decl] = true
				}
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			fl := res.ParamFlow(fn, i)
			for _, use := range fl.Uses {
				if pool, method := poolCall(info, use.Call); method == "Put" && pool != nil {
					w.putters[fn] = putter{pool: pool, arg: i}
					w.exempt[s.Decl] = true
				}
			}
		}
	}
	return w
}

func run(pass *analysis.Pass) (interface{}, error) {
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	wr := classify(pass, res)
	for _, fn := range res.Funcs {
		if wr.exempt[fn.Node] {
			continue
		}
		file := pass.Fset.Position(fn.Node.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		w := &walker{pass: pass, wr: wr, fn: fn}
		st := &state{open: map[types.Object]*got{}, done: map[types.Object]token.Pos{}}
		w.stmts(st, fn.Body.List)
		if !st.dead {
			w.leaks(st, fn.Body.End(), "falls off the end of "+fn.Name)
		}
	}
	return nil, nil
}

// got is one open buffer: where it was opened, which pool owns it, and
// whether a rebind replaced its backing array since.
type got struct {
	pos     token.Pos
	pool    types.Object
	foreign token.Pos // position of the backing-array-replacing rebind
}

// state is the abstract store along one path.
type state struct {
	open map[types.Object]*got
	done map[types.Object]token.Pos
	dead bool
}

func (st *state) clone() *state {
	c := &state{
		open: make(map[types.Object]*got, len(st.open)),
		done: make(map[types.Object]token.Pos, len(st.done)),
		dead: st.dead,
	}
	for k, v := range st.open {
		cp := *v
		c.open[k] = &cp
	}
	for k, v := range st.done {
		c.done[k] = v
	}
	return c
}

// merge folds branch outcomes back into st: open if open on any
// surviving path, done only if done on every surviving path.
func (st *state) merge(branches []*state) {
	live := branches[:0]
	for _, b := range branches {
		if !b.dead {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		st.dead = true
		return
	}
	open := map[types.Object]*got{}
	for _, b := range live {
		for k, v := range b.open {
			if _, ok := open[k]; !ok {
				open[k] = v
			}
		}
	}
	done := map[types.Object]token.Pos{}
	for k, v := range live[0].done {
		onAll := true
		for _, b := range live[1:] {
			if _, ok := b.done[k]; !ok {
				onAll = false
				break
			}
		}
		if onAll {
			done[k] = v
		}
	}
	// A buffer put on some paths but still open on another stays open:
	// the remaining path still owes the Put.
	for k := range open {
		delete(done, k)
	}
	st.open, st.done = open, done
}

// walker interprets one function body.
type walker struct {
	pass *analysis.Pass
	wr   *wrappers
	fn   *ssaflow.Func
}

func (w *walker) info() *types.Info { return w.pass.TypesInfo }

func (w *walker) leaks(st *state, pos token.Pos, how string) {
	for obj, g := range st.open {
		w.pass.Reportf(pos, "pool buffer %s (Get from %s at %s) leaks: control %s without a Put",
			obj.Name(), g.pool.Name(), w.pass.Fset.Position(g.pos), how)
	}
	st.open = map[types.Object]*got{}
}

func (w *walker) stmts(st *state, list []ast.Stmt) {
	for _, s := range list {
		if st.dead {
			return
		}
		w.stmt(st, s)
	}
}

// useCheck reports mentions of already-Put buffers inside e and scrubs
// them to avoid cascades. skip, when non-nil, is an expression whose
// own mention does not count (the Put argument itself).
func (w *walker) useCheck(st *state, e ast.Expr, skip ast.Expr) {
	if e == nil || len(st.done) == 0 {
		return
	}
	for obj, putPos := range st.done {
		if skip != nil && ssaflow.BaseObject(w.info(), skip) == obj {
			continue
		}
		if ssaflow.Mentions(w.info(), e, func(o types.Object) bool { return o == obj }) {
			w.pass.Reportf(e.Pos(), "pool buffer %s used after Put at %s; the pool may have handed it to another goroutine",
				obj.Name(), w.pass.Fset.Position(putPos))
			delete(st.done, obj)
		}
	}
}

// escapes removes from open every buffer mentioned by e: ownership has
// moved into a structure, channel, or closure the walk can't follow.
func (w *walker) escapes(st *state, e ast.Expr) {
	if e == nil || len(st.open) == 0 {
		return
	}
	for obj := range st.open {
		if ssaflow.Mentions(w.info(), e, func(o types.Object) bool { return o == obj }) {
			delete(st.open, obj)
		}
	}
}

// getterCall matches a Get source: a direct pool.Get() (possibly behind
// a type assertion) or a getter-wrapper call. Returns the pool.
func (w *walker) getterCall(e ast.Expr) (types.Object, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if pool, method := poolCall(w.info(), call); method == "Get" {
		return pool, true
	}
	if fn := ssaflow.CalleeFunc(w.info(), call); fn != nil {
		if pool, ok := w.wr.getters[fn]; ok {
			return pool, true
		}
	}
	return nil, false
}

// putterCall matches a Put sink: a direct pool.Put(v) (possibly &v) or
// a putter-wrapper call. Returns the pool and the buffer expression.
func (w *walker) putterCall(call *ast.CallExpr) (types.Object, ast.Expr, bool) {
	if pool, method := poolCall(w.info(), call); method == "Put" && len(call.Args) == 1 {
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = ast.Unparen(u.X)
		}
		return pool, arg, true
	}
	if fn := ssaflow.CalleeFunc(w.info(), call); fn != nil {
		if p, ok := w.wr.putters[fn]; ok && p.arg < len(call.Args) {
			return p.pool, ast.Unparen(call.Args[p.arg]), true
		}
	}
	return nil, nil, false
}

// put closes the buffer named by arg against pool.
func (w *walker) put(st *state, pool types.Object, arg ast.Expr, deferred bool, pos token.Pos) {
	obj := ssaflow.BaseObject(w.info(), arg)
	if obj == nil {
		return
	}
	g, ok := st.open[obj]
	if !ok {
		return // unknown origin (parameter, fresh buffer seeding the pool)
	}
	if g.pool != pool {
		w.pass.Reportf(pos, "pool buffer %s from %s is Put into %s; buffers must return to their own pool",
			obj.Name(), g.pool.Name(), pool.Name())
	}
	if g.foreign != token.NoPos {
		w.pass.Reportf(pos, "pool buffer %s was rebound to a different backing array at %s; Putting the alias poisons %s",
			obj.Name(), w.pass.Fset.Position(g.foreign), pool.Name())
	}
	delete(st.open, obj)
	if !deferred {
		// A deferred Put runs after every later use; a plain Put makes
		// later mentions races.
		st.done[obj] = pos
	}
}

// foreignRebind reports whether rhs rebinds obj to a (possibly)
// different backing array: slicing or appending another object, or any
// other aliasing shape that isn't v = v[...], v = append(v, ...).
func (w *walker) foreignRebind(obj types.Object, rhs ast.Expr) bool {
	switch r := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		return ssaflow.BaseObject(w.info(), r.X) != obj
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
			if _, isBuiltin := w.info().Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(r.Args) > 0 {
				return ssaflow.BaseObject(w.info(), r.Args[0]) != obj
			}
		}
	}
	return false
}

// assign interprets one assignment (or value-decl binding).
func (w *walker) assign(st *state, lhs, rhs ast.Expr, pos token.Pos) {
	info := w.info()
	w.useCheck(st, rhs, nil)

	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		// Storing into a field, slot, or map transfers ownership of any
		// open buffer the RHS mentions.
		w.useCheck(st, lhs, nil)
		w.escapes(st, rhs)
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return
	}

	pool, isGet := (types.Object)(nil), false
	if rhs != nil {
		pool, isGet = w.getterCall(rhs)
	}

	if g, open := st.open[obj]; open {
		switch {
		case rhs == nil || !ssaflow.Mentions(info, rhs, func(o types.Object) bool { return o == obj }):
			// Rebound to something unrelated: the old buffer is gone.
			w.pass.Reportf(pos, "pool buffer %s (Get from %s at %s) is overwritten without a Put",
				obj.Name(), g.pool.Name(), w.pass.Fset.Position(g.pos))
			delete(st.open, obj)
		case w.foreignRebind(obj, rhs):
			g.foreign = pos
		}
	}
	delete(st.done, obj) // rebinding after Put starts a fresh value

	if isGet {
		st.open[obj] = &got{pos: pos, pool: pool}
	}
	// v = f(..., v, ...) (the QueryBatchWorkers dst convention) and
	// v = v[:n] keep v open via the Mentions branch above; only Get
	// results are ever tracked, so other rebinds need no bookkeeping.
}

// call interprets a call in statement position.
func (w *walker) call(st *state, call *ast.CallExpr, deferred bool) {
	if pool, arg, ok := w.putterCall(call); ok {
		w.useCheck(st, call, arg)
		w.put(st, pool, arg, deferred, call.Pos())
		return
	}
	w.useCheck(st, call, nil)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := w.info().Uses[id].(*types.Builtin); isBuiltin {
			// Open buffers at a panic leak unless a deferred Put covers
			// them — and deferred Puts already removed themselves.
			w.leaks(st, call.Pos(), "panics")
			st.dead = true
			return
		}
	}
	// Closures receiving the buffer take the obligation with them.
	for _, arg := range call.Args {
		if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.escapes(st, arg)
		}
	}
}

// exprEvents walks non-statement expressions for use-after-Put and
// closure captures.
func (w *walker) exprEvents(st *state, e ast.Expr) {
	if e == nil {
		return
	}
	w.useCheck(st, e, nil)
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.escapes(st, lit)
			return false
		}
		return true
	})
}

func (w *walker) stmt(st *state, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ast.Inspect(r, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.escapes(st, lit)
					return false
				}
				return true
			})
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				w.assign(st, s.Lhs[i], s.Rhs[i], s.Pos())
			}
		} else if len(s.Rhs) == 1 {
			for _, lhs := range s.Lhs {
				w.assign(st, lhs, s.Rhs[0], s.Pos())
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						w.assign(st, name, rhs, s.Pos())
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.call(st, call, false)
		} else {
			w.exprEvents(st, s.X)
		}
	case *ast.DeferStmt:
		w.call(st, s.Call, true)
	case *ast.GoStmt:
		w.useCheck(st, s.Call, nil)
		w.escapes(st, s.Call)
	case *ast.SendStmt:
		w.useCheck(st, s.Value, nil)
		w.escapes(st, s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.useCheck(st, r, nil)
			w.escapes(st, r)
		}
		w.leaks(st, s.Pos(), "returns")
		st.dead = true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(st, s.Init)
		}
		w.exprEvents(st, s.Cond)
		then := st.clone()
		w.stmts(then, s.Body.List)
		els := st.clone()
		if s.Else != nil {
			w.stmt(els, s.Else)
		}
		st.merge([]*state{then, els})
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(st, s.Init)
		}
		if s.Cond != nil {
			w.exprEvents(st, s.Cond)
		}
		body := st.clone()
		w.stmts(body, s.Body.List)
		if s.Post != nil && !body.dead {
			w.stmt(body, s.Post)
		}
		body.dead = false // breaking out rejoins the fall-through path
		st.merge([]*state{st.clone(), body})
	case *ast.RangeStmt:
		w.exprEvents(st, s.X)
		body := st.clone()
		w.stmts(body, s.Body.List)
		body.dead = false
		st.merge([]*state{st.clone(), body})
	case *ast.BlockStmt:
		w.stmts(st, s.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				w.exprEvents(st, sw.Tag)
			}
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
		}
		if init != nil {
			w.stmt(st, init)
		}
		var branches []*state
		hasDefault := false
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if cc.List == nil {
					hasDefault = true
				}
				b := st.clone()
				w.stmts(b, cc.Body)
				branches = append(branches, b)
			}
		}
		if !hasDefault {
			branches = append(branches, st.clone())
		}
		if len(branches) > 0 {
			st.merge(branches)
		}
	case *ast.SelectStmt:
		var branches []*state
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				b := st.clone()
				if cc.Comm != nil {
					w.stmt(b, cc.Comm)
				}
				w.stmts(b, cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			st.merge(branches)
		}
	case *ast.LabeledStmt:
		w.stmt(st, s.Stmt)
	case *ast.IncDecStmt:
		w.exprEvents(st, s.X)
	case *ast.BranchStmt:
		// break/continue/goto end this path as far as the straight-line
		// walk can see; open buffers rejoin via the loop merge.
		st.dead = true
	}
}
