package a

import "sync"

type server struct {
	bufs  sync.Pool // *[]byte
	dists sync.Pool // *[]float64
}

// getBuf and putBuf are wrapper functions: exempt from the walk, and
// calls to them count as Get/Put events.
func (s *server) getBuf(n int) []byte {
	if p, ok := s.bufs.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func (s *server) putBuf(p []byte) { s.bufs.Put(&p) }

func (s *server) getDists(n int) []float64 {
	if p, ok := s.dists.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func (s *server) putDists(p []float64) { s.dists.Put(&p) }

func use(b []byte)         {}
func fill(b []byte) []byte { return b }
func bad() bool            { return false }

// clean: Get, use, Put on the single path.
func straight(s *server) {
	b := s.getBuf(8)
	use(b)
	s.putBuf(b)
}

// clean: early error return happens before the Get.
func earlyBefore(s *server, fail bool) error {
	if fail {
		return errFail
	}
	b := s.getBuf(8)
	use(b)
	s.putBuf(b)
	return nil
}

var errFail error

// leak: the error path exits without a Put.
func earlyReturnLeak(s *server, fail bool) error {
	b := s.getBuf(8)
	if fail {
		return errFail // want `pool buffer b \(Get from bufs at .*\) leaks: control returns without a Put`
	}
	s.putBuf(b)
	return nil
}

// clean: the deferred Put covers every exit, including the early return
// and a panic, and permits uses after the defer statement.
func deferredPut(s *server, fail bool) error {
	b := s.getBuf(8)
	defer s.putBuf(b)
	if fail {
		return errFail
	}
	use(b)
	return nil
}

// leak: falls off the end of the function without a Put.
func fallOffLeak(s *server) {
	b := s.getBuf(8)
	use(b)
} // want `pool buffer b \(Get from bufs at .*\) leaks: control falls off the end of fallOffLeak without a Put`

// leak: a panic escapes before the (non-deferred) Put.
func panicLeak(s *server, n int) {
	b := s.getBuf(8)
	if n < 0 {
		panic("negative") // want `pool buffer b \(Get from bufs at .*\) leaks: control panics without a Put`
	}
	use(b)
	s.putBuf(b)
}

// use-after-Put: the pool may already have handed b to someone else.
func useAfterPut(s *server) {
	b := s.getBuf(8)
	s.putBuf(b)
	use(b) // want `pool buffer b used after Put at .*; the pool may have handed it to another goroutine`
}

// overwrite: rebinding b to a fresh buffer drops the pooled one.
func overwriteLeak(s *server) {
	b := s.getBuf(8)
	b = make([]byte, 16) // want `pool buffer b \(Get from bufs at .*\) is overwritten without a Put`
	use(b)
	s.putBuf(b)
}

// clean: self-slicing and self-append keep the same tracked buffer, and
// the v = f(v) dst convention keeps ownership with the caller.
func selfRebind(s *server) {
	b := s.getBuf(8)
	b = b[:4]
	b = append(b, 1, 2)
	b = fill(b)
	s.putBuf(b)
}

// foreign backing array: b no longer points at the pooled allocation.
func foreignPut(s *server, other []byte) {
	b := s.getBuf(8)
	b = append(other, b...)
	s.putBuf(b) // want `pool buffer b was rebound to a different backing array at .*; Putting the alias poisons bufs`
}

// cross-pool Put: the []byte pool fed a buffer from the dists pool.
func crossPool(s *server) {
	d := s.getDists(8)
	s.bufs.Put(&d) // want `pool buffer d from dists is Put into bufs; buffers must return to their own pool`
}

// clean: both branches Put.
func branchesBothPut(s *server, which bool) {
	b := s.getBuf(8)
	if which {
		use(b)
		s.putBuf(b)
	} else {
		s.putBuf(b)
	}
}

// clean: returning the buffer transfers ownership to the caller.
func transferReturn(s *server) []byte {
	b := s.getBuf(8)
	use(b)
	return b
}

// clean: storing into a field transfers ownership.
type holder struct{ buf []byte }

func transferStore(s *server, h *holder) {
	b := s.getBuf(8)
	h.buf = b
}

// clean: handing the buffer to a goroutine transfers ownership.
func transferGo(s *server) {
	b := s.getBuf(8)
	go func() {
		use(b)
		s.putBuf(b)
	}()
}

// Wrapper-of-wrapper shapes: getScratch wraps getBuf wraps bufs.Get, and
// putScratch wraps putBuf wraps bufs.Put. The interprocedural summaries
// classify both through the extra level — there is no single-level
// recognizer to fall off of.
func (s *server) getScratch(n int) []byte {
	b := s.getBuf(n)
	return b
}

func (s *server) putScratch(b []byte) {
	s.putBuf(b[:0])
}

// clean: deep-wrapper Get paired with a deep-wrapper Put.
func deepStraight(s *server) {
	b := s.getScratch(8)
	use(b)
	s.putScratch(b)
}

// leak: a buffer from the two-level getter still owes a Put.
func deepLeak(s *server, fail bool) error {
	b := s.getScratch(8)
	if fail {
		return errFail // want `pool buffer b \(Get from bufs at .*\) leaks: control returns without a Put`
	}
	s.putScratch(b)
	return nil
}

// use-after-Put through the deep putter: the release is a release no
// matter how many wrappers deep the Put is.
func deepUseAfterPut(s *server) {
	b := s.getScratch(8)
	s.putScratch(b)
	use(b) // want `pool buffer b used after Put at .*; the pool may have handed it to another goroutine`
}
