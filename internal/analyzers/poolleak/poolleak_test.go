package poolleak_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/poolleak"
)

func TestPoolLeak(t *testing.T) {
	analyzertest.Run(t, "testdata", poolleak.Analyzer, "a")
}
