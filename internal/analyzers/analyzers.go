// Package analyzers collects the repo-specific go/analysis passes that
// enforce pathsep's correctness invariants — the rules the compiler cannot
// see but the theorems and the observability layer depend on:
//
//   - obsnilguard: obs handles stay nil-safe and are never copied by value
//   - seededrand:  randomness is injected and reproducible, never ambient
//   - floatcmp:    float64 distances are compared through epsilon helpers
//   - subgraphmut: shared adjacency storage is never mutated downstream
//   - errctx:      errors are wrapped with %w and never silently dropped
//   - hotalloc:    //pathsep:hotpath query functions stay allocation-free
//   - maporder:    map-range results never reach encoders or other
//     order-sensitive sinks without a sort barrier
//   - slotwrite:   par.ForEach/Fork tasks write only task-index-disjoint
//     slots, never shared appends/maps/scalars
//   - sortcmp:     sort.Slice less-functions are strict weak orderings and
//     compare floats via core/floatcmp
//   - atomicmix:   memory touched through sync/atomic is never accessed
//     plainly, and atomic.Pointer pointees are initialized before publish
//   - poolleak:    sync.Pool buffers reach a Put on every path, with no
//     use-after-Put and no foreign or cross-pool Put
//   - ctxdone:     serving-plane goroutines are tied to a shutdown signal
//     or carry an explicit //pathsep:detached
//   - leasepair:   //pathsep:lease acquire/release pairs close on every
//     path, with no use-after-release, one generation per response, and
//     no raw atomic access to the leased pointer
//   - unsafeview:  unsafe.Slice image views are validation-dominated,
//     read-only outside the sanctioned writer, and never outlive their
//     backing buffer
//   - offwire:     encoder and decoder agree on every wire section's
//     stride, widths, and counts, and decoded sections are
//     element-validated
//
// The determinism trio (maporder, slotwrite, sortcmp) shares the ssaflow
// value-flow layer and is backed at runtime by `make determinism`, which
// rebuilds the oracle under shuffled schedules and byte-compares encodings.
// The concurrency trio (atomicmix, poolleak, ctxdone) guards the serving
// plane's lock-free image swap, buffer pools, and graceful drain; its
// runtime backstop is the -race swap/drain tests in internal/serve. The
// image-integrity trio (leasepair, unsafeview, offwire) rides the
// interprocedural ssaflow summaries to guard the zero-copy image plane:
// the reader lease around the atomic swap, the unsafe section views, and
// the encode/decode wire contract.
//
// The suite runs as `go vet -vettool=bin/pathsep-lint` (see cmd/pathsep-lint
// and `make lint`), and each analyzer carries analysistest-style coverage
// under its testdata/src tree.
package analyzers

import (
	"golang.org/x/tools/go/analysis"

	"pathsep/internal/analyzers/atomicmix"
	"pathsep/internal/analyzers/ctxdone"
	"pathsep/internal/analyzers/errctx"
	"pathsep/internal/analyzers/floatcmp"
	"pathsep/internal/analyzers/hotalloc"
	"pathsep/internal/analyzers/leasepair"
	"pathsep/internal/analyzers/maporder"
	"pathsep/internal/analyzers/obsnilguard"
	"pathsep/internal/analyzers/offwire"
	"pathsep/internal/analyzers/poolleak"
	"pathsep/internal/analyzers/seededrand"
	"pathsep/internal/analyzers/slotwrite"
	"pathsep/internal/analyzers/sortcmp"
	"pathsep/internal/analyzers/subgraphmut"
	"pathsep/internal/analyzers/unsafeview"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxdone.Analyzer,
		errctx.Analyzer,
		floatcmp.Analyzer,
		hotalloc.Analyzer,
		leasepair.Analyzer,
		maporder.Analyzer,
		obsnilguard.Analyzer,
		offwire.Analyzer,
		poolleak.Analyzer,
		seededrand.Analyzer,
		slotwrite.Analyzer,
		sortcmp.Analyzer,
		subgraphmut.Analyzer,
		unsafeview.Analyzer,
	}
}
