// Package analyzers collects the repo-specific go/analysis passes that
// enforce pathsep's correctness invariants — the rules the compiler cannot
// see but the theorems and the observability layer depend on:
//
//   - obsnilguard: obs handles stay nil-safe and are never copied by value
//   - seededrand:  randomness is injected and reproducible, never ambient
//   - floatcmp:    float64 distances are compared through epsilon helpers
//   - subgraphmut: shared adjacency storage is never mutated downstream
//   - errctx:      errors are wrapped with %w and never silently dropped
//   - hotalloc:    //pathsep:hotpath query functions stay allocation-free
//
// The suite runs as `go vet -vettool=bin/pathsep-lint` (see cmd/pathsep-lint
// and `make lint`), and each analyzer carries analysistest-style coverage
// under its testdata/src tree.
package analyzers

import (
	"golang.org/x/tools/go/analysis"

	"pathsep/internal/analyzers/errctx"
	"pathsep/internal/analyzers/floatcmp"
	"pathsep/internal/analyzers/hotalloc"
	"pathsep/internal/analyzers/obsnilguard"
	"pathsep/internal/analyzers/seededrand"
	"pathsep/internal/analyzers/subgraphmut"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errctx.Analyzer,
		floatcmp.Analyzer,
		hotalloc.Analyzer,
		obsnilguard.Analyzer,
		seededrand.Analyzer,
		subgraphmut.Analyzer,
	}
}
