package errctx_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/errctx"
)

func TestErrCtx(t *testing.T) {
	analyzertest.Run(t, "testdata", errctx.Analyzer, "a")
}
