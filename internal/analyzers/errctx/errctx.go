// Package errctx enforces the library's error-handling contract in
// non-test, non-main code:
//
//   - fmt.Errorf with an error operand must wrap it with %w, so callers can
//     errors.Is/As through decomposition, oracle and routing layers instead
//     of string-matching;
//   - an error result must never be silently dropped: a call whose last
//     result is an error may not stand alone as a statement (or be spawned
//     via go/defer) without consuming the error. Writes to *strings.Builder
//     and *bytes.Buffer (and fmt.Fprint* into them) are exempt because they
//     are documented never to fail. A deliberate discard must be spelled
//     `_ = f()`, which stays visible in review.
package errctx

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the errctx pass.
var Analyzer = &analysis.Analyzer{
	Name:     "errctx",
	Doc:      "require %w wrapping of error operands in fmt.Errorf and forbid silently discarded errors in library code",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	inTestFile := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	nodeTypes := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.ExprStmt)(nil),
		(*ast.DeferStmt)(nil),
		(*ast.GoStmt)(nil),
	}
	ins.Preorder(nodeTypes, func(n ast.Node) {
		if inTestFile(n) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDiscard(pass, call, "")
			}
		case *ast.DeferStmt:
			checkDiscard(pass, n.Call, "deferred ")
		case *ast.GoStmt:
			checkDiscard(pass, n.Call, "goroutine ")
		}
	})
	return nil, nil
}

// checkErrorf flags fmt.Errorf calls that format an error operand without
// %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if countWrapVerbs(format) > 0 {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType) {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error operand without %%w; wrap it so callers can errors.Is/As through this layer")
			return
		}
	}
}

// countWrapVerbs counts %w verbs in a format string, skipping %%.
func countWrapVerbs(format string) int {
	count := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		// Skip flags, width, precision between % and the verb.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) {
			if format[j] == 'w' {
				count++
			}
			i = j
		}
	}
	return count
}

// checkDiscard flags statement-position calls whose final result is an
// error.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	if last == nil || !types.Implements(last, errorType) {
		return
	}
	if neverFails(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%serror result discarded; handle it or assign it to _ explicitly", kind)
}

// neverFails exempts calls documented never to return a non-nil error:
// methods on *strings.Builder / *bytes.Buffer, and fmt.Fprint* whose writer
// is one of those types.
func neverFails(pass *analysis.Pass, call *ast.CallExpr) bool {
	infallibleWriter := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return false
		}
		full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
		return full == "strings.Builder" || full == "bytes.Buffer"
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if infallibleWriter(s.Recv()) {
				return true
			}
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil && infallibleWriter(t) {
				return true
			}
		}
	}
	return false
}
