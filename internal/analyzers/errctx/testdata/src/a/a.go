// Package a exercises the errctx analyzer in a library (non-main,
// non-test) package.
package a

import (
	"fmt"
	"os"
	"strings"
)

// Formatting an error operand without %w hides it from errors.Is/As.
func wrapV(err error) error {
	return fmt.Errorf("loading config: %v", err) // want "without %w"
}

func wrapS(err error) error {
	return fmt.Errorf("loading config: %s", err) // want "without %w"
}

// %w is the sanctioned wrapping verb.
func wrapOK(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

// No error operand: nothing to wrap.
func plain(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// Statement-position calls must not drop their error result.
func discard() {
	os.Remove("x") // want "error result discarded"
}

func discardDefer(f *os.File) {
	defer f.Close() // want "deferred error result discarded"
}

// Explicit discard with _ documents intent and is allowed.
func explicit() {
	_, _ = fmt.Println("ok")
}

// strings.Builder writes never fail and are exempt.
func build() string {
	var b strings.Builder
	b.WriteString("hi")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}
