// Package a exercises the subgraphmut analyzer from a consumer package.
package a

import (
	"sort"

	"pathsep/internal/graph"
)

func bad(g *graph.Graph) {
	ns := g.Neighbors(0)
	ns[0].W = 2.5          // want "mutation of shared graph adjacency"
	ns[1] = graph.Half{}   // want "mutation of shared graph adjacency"
	ns[0].To++             // want "mutation of shared graph adjacency"
	g.Adj()[1] = nil       // want "mutation of shared graph adjacency"
	sort.Slice(ns, func(i, j int) bool { // want "mutation of shared graph adjacency"
		return ns[i].W < ns[j].W
	})
}

// Reading adjacency is fine.
func good(g *graph.Graph) float64 {
	total := 0.0
	for _, h := range g.Neighbors(0) {
		total += h.W
	}
	return total
}

// Building fresh Half values (rather than writing into an existing
// slice) is fine; the analyzer has no ownership tracking by design, so
// owned mutable copies must be built inside internal/graph.
func goodBuild(g *graph.Graph) []graph.Half {
	var own []graph.Half
	for _, h := range g.Neighbors(0) {
		own = append(own, graph.Half{To: h.To, W: h.W * 2})
	}
	return own
}
