// Stub of the real pathsep/internal/graph package: just the Half type and
// a Graph exposing shared adjacency, enough for subgraphmut tests.
package graph

// Half is a half-edge: destination and weight.
type Half struct {
	To int
	W  float64
}

// Graph owns shared adjacency storage that subgraph views alias.
type Graph struct{ adj [][]Half }

// Neighbors returns the shared adjacency slice for v.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// Adj returns the whole adjacency structure.
func (g *Graph) Adj() [][]Half { return g.adj }

// reweight mutates adjacency but lives inside internal/graph, where
// ownership is established — never flagged.
func (g *Graph) reweight(v int, w float64) {
	for i := range g.adj[v] {
		g.adj[v][i].W = w
	}
}
