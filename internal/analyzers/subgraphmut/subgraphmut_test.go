package subgraphmut_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/subgraphmut"
)

// TestConsumerMutations checks diagnostics in a package that aliases
// graph adjacency.
func TestConsumerMutations(t *testing.T) {
	analyzertest.Run(t, "testdata", subgraphmut.Analyzer, "a")
}

// TestGraphPackageExempt checks that internal/graph itself, which owns
// the storage, is never flagged.
func TestGraphPackageExempt(t *testing.T) {
	analyzertest.Run(t, "testdata", subgraphmut.Analyzer, "pathsep/internal/graph")
}
