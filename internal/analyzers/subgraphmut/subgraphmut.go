// Package subgraphmut protects the shared-view invariant of the graph
// package: Graph.Neighbors returns the adjacency slice itself, and
// graph.Induced subgraph views alias the same backing arrays, so the
// decomposition pipeline (core.Decompose and everything above it) may read
// but never write adjacency storage. A single write corrupts every view of
// the graph at once — including ones held by a concurrent query.
//
// The analyzer flags, in every package except internal/graph itself:
//
//   - assignments and ++/-- through an element of a []graph.Half (or a
//     replacement of a whole row in a [][]graph.Half),
//   - writes to fields of a graph.Half lvalue (h.W = ..., h.To = ...)
//     when the Half is addressed through shared storage, and
//   - in-place reordering of a []graph.Half via sort.Slice, sort.Stable,
//     slices.Sort* or slices.Reverse.
//
// Code that needs a mutable copy must build one explicitly (Reweighted, a
// Builder, or an owned []Half copied element by element from ints/floats).
package subgraphmut

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the subgraphmut pass.
var Analyzer = &analysis.Analyzer{
	Name:     "subgraphmut",
	Doc:      "forbid mutation of shared graph adjacency storage ([]graph.Half) outside internal/graph",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

const graphSuffix = "internal/graph"

func isGraphPkg(path string) bool {
	return path == graphSuffix || strings.HasSuffix(path, "/"+graphSuffix)
}

// isHalf reports whether t is the named type Half from internal/graph.
func isHalf(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Half" && obj.Pkg() != nil && isGraphPkg(obj.Pkg().Path())
}

// isHalfSlice reports whether t is []Half, and halfMatrix whether it is
// [][]Half.
func isHalfSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isHalf(s.Elem())
}

func isHalfMatrix(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isHalfSlice(s.Elem())
}

func run(pass *analysis.Pass) (interface{}, error) {
	if isGraphPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// sharedWrite reports whether assigning through lhs mutates adjacency
	// storage.
	sharedWrite := func(lhs ast.Expr) bool {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			t := pass.TypesInfo.TypeOf(e.X)
			return t != nil && (isHalfSlice(t) || isHalfMatrix(t))
		case *ast.SelectorExpr:
			// Field write h.W / h.To where h is a Half (or *Half) element.
			t := pass.TypesInfo.TypeOf(e.X)
			if t == nil {
				return false
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			return isHalf(t)
		case *ast.StarExpr:
			t := pass.TypesInfo.TypeOf(e)
			return t != nil && (isHalf(t) || isHalfSlice(t))
		}
		return false
	}

	report := func(n ast.Node) {
		pass.Reportf(n.Pos(), "mutation of shared graph adjacency storage outside internal/graph; subgraph views alias the base graph — build an owned copy (Reweighted, Builder) instead")
	}

	nodeTypes := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
		(*ast.CallExpr)(nil),
	}
	ins.Preorder(nodeTypes, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sharedWrite(lhs) {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			if sharedWrite(n.X) {
				report(n.X)
			}
		case *ast.CallExpr:
			fn, ok := typeutilCallee(pass, n)
			if !ok {
				return
			}
			full := fn.Pkg().Path() + "." + fn.Name()
			switch full {
			case "sort.Slice", "sort.SliceStable", "sort.Stable", "sort.Sort",
				"slices.Sort", "slices.SortFunc", "slices.SortStableFunc", "slices.Reverse":
				if len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil && isHalfSlice(t) {
						report(n)
					}
				}
			}
		}
	})
	return nil, nil
}

// typeutilCallee resolves the package-level function called by call, if any.
func typeutilCallee(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, false
	}
	return fn, true
}
