// Package analyzertest is a self-contained re-implementation of the core of
// golang.org/x/tools/go/analysis/analysistest, built only on the standard
// library and the vendored go/analysis API.
//
// The real analysistest depends on go/packages, which is not part of the
// toolchain-vendored x/tools subset this repo vendors (see DESIGN.md,
// "Static analysis"). This harness supports exactly what the repo's
// analyzers need and keeps the familiar layout and assertion syntax:
//
//   - test packages live under testdata/src/<import/path>/*.go (GOPATH
//     style), so stub packages can impersonate real import paths such as
//     pathsep/internal/obs;
//   - imports of other testdata packages resolve recursively, everything
//     else resolves from the standard library via the source importer;
//   - expected diagnostics are written as `// want "regexp"` comments on
//     the offending line, with multiple space-separated quoted patterns
//     allowed; every diagnostic must be matched and every pattern must
//     fire, or the test fails;
//   - analyzer dependencies are run first (the inspect pass in practice);
//     fact-using analyzers are not supported.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run loads testdata/src/<pkgPath> beneath dir, applies a, and checks the
// reported diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := newLoader(dir)
	tp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	diags, err := runAnalyzer(a, l.fset, tp)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	checkWants(t, l.fset, tp.files, diags)
}

// testPkg is one type-checked testdata package.
type testPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves testdata packages first and the standard library second.
type loader struct {
	root   string
	fset   *token.FileSet
	cache  map[string]*testPkg
	stdlib types.ImporterFrom
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   dir,
		fset:   fset,
		cache:  make(map[string]*testPkg),
		stdlib: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (l *loader) load(path string) (*testPkg, error) {
	if tp, ok := l.cache[path]; ok {
		return tp, nil
	}
	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzertest: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzertest: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzertest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzertest: type-checking %s: %w", path, err)
	}
	tp := &testPkg{pkg: pkg, files: files, info: info}
	l.cache[path] = tp
	return tp, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.root, "src", filepath.FromSlash(path))); err == nil && fi.IsDir() {
		tp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return tp.pkg, nil
	}
	return l.stdlib.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runAnalyzer executes a (and its Requires closure) over tp and returns the
// diagnostics reported by a itself.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, tp *testPkg) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]interface{})
	var diags []analysis.Diagnostic

	var exec func(an *analysis.Analyzer, capture bool) error
	exec = func(an *analysis.Analyzer, capture bool) error {
		if _, done := results[an]; done {
			return nil
		}
		if len(an.FactTypes) > 0 {
			return fmt.Errorf("analyzer %s uses facts, unsupported by analyzertest", an.Name)
		}
		for _, dep := range an.Requires {
			if err := exec(dep, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      tp.files,
			Pkg:        tp.pkg,
			TypesInfo:  tp.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if capture {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		// The inspect pass is the only dependency the suite uses; give it a
		// fresh inspector rather than relying on its Run, to stay
		// independent of its internals.
		if an == inspect.Analyzer {
			results[an] = inspector.New(tp.files)
			return nil
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := exec(a, true); err != nil {
		return nil, err
	}
	return diags, nil
}

// want is one expected-diagnostic pattern.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// checkWants cross-matches diagnostics against `// want` comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, pat := range parseWant(t, pos, c.Text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the quoted patterns from a `// want "..." "..."`
// comment, returning nil when the comment is not a want comment.
func parseWant(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var pats []string
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s: malformed want comment near %q", pos, rest)
		}
		quote := rest[0]
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' && quote == '"' {
				i++
				continue
			}
			if rest[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern in %q", pos, rest)
		}
		pat, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, rest[:end+1], err)
		}
		pats = append(pats, pat)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return pats
}
