// Package obsnilguard enforces the zero-cost-when-disabled contract of the
// obs package: every handle handed out by a nil *Registry is itself nil, and
// the whole instrumentation layer stays a no-op only if
//
//  1. every exported pointer-receiver method on a handle type either begins
//     with a nil-receiver guard or touches the receiver exclusively through
//     other (nil-safe) methods of the same handle, and
//  2. no call site ever copies a handle struct by value — handles embed
//     atomics and mutexes, and a copy both tears the state and silently
//     stops reporting into the registry.
//
// Handle types are discovered, not hardcoded: every named struct type in a
// package whose import path ends in "internal/obs" that declares at least
// one exported pointer-receiver method is a handle (Counter, Gauge,
// Histogram, Registry, Trace today). Value types like Span, whose methods
// use value receivers by design, are exempt automatically.
package obsnilguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer is the obsnilguard pass.
var Analyzer = &analysis.Analyzer{
	Name:     "obsnilguard",
	Doc:      "check that obs handle methods are nil-safe and handles are never copied by value",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

const obsSuffix = "internal/obs"

func isObsPkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	return p.Path() == obsSuffix || strings.HasSuffix(p.Path(), "/"+obsSuffix)
}

// handleTypes returns the named handle struct types declared in p.
func handleTypes(p *types.Package) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	scope := p.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if !m.Exported() {
				continue
			}
			if recv := m.Type().(*types.Signature).Recv(); recv != nil {
				if _, ptr := recv.Type().(*types.Pointer); ptr {
					out[named] = true
					break
				}
			}
		}
	}
	return out
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Collect handle types from this package (if it is obs) and from every
	// imported obs package.
	handles := make(map[*types.Named]bool)
	if isObsPkg(pass.Pkg) {
		for n := range handleTypes(pass.Pkg) {
			handles[n] = true
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		if isObsPkg(imp) {
			for n := range handleTypes(imp) {
				handles[n] = true
			}
		}
	}
	if len(handles) == 0 {
		return nil, nil
	}

	isHandle := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && handles[n]
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	if isObsPkg(pass.Pkg) {
		checkMethods(pass, ins, isHandle)
	}
	checkCopies(pass, ins, isHandle)
	return nil, nil
}

// checkMethods enforces rule 1 on exported pointer-receiver methods of
// handle types declared in the obs package itself.
func checkMethods(pass *analysis.Pass, ins *inspector.Inspector, isHandle func(types.Type) bool) {
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			return
		}
		if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
			return
		}
		recvIdent := fd.Recv.List[0].Names[0]
		recvObj := pass.TypesInfo.Defs[recvIdent]
		if recvObj == nil {
			return
		}
		ptr, ok := recvObj.Type().(*types.Pointer)
		if !ok || !isHandle(ptr.Elem()) {
			return
		}
		if firstStmtIsNilGuard(pass, fd.Body, recvObj) {
			return
		}
		// No leading guard: every receiver use must be a nil-safe one — a
		// method call on the receiver or a comparison against nil.
		if bad := firstUnsafeUse(pass, fd, recvObj); bad != nil {
			pass.Reportf(bad.Pos(),
				"exported obs handle method %s.%s must begin with a nil-receiver guard (receiver %s is dereferenced without one)",
				ptr.Elem().(*types.Named).Obj().Name(), fd.Name.Name, recvIdent.Name)
		}
	})
}

// firstStmtIsNilGuard reports whether the body's first statement is
// `if recv == nil { ... }`, possibly with further || disjuncts
// (`if t == nil || id < 0 { return }`).
func firstStmtIsNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	var hasNilDisjunct func(e ast.Expr) bool
	hasNilDisjunct = func(e ast.Expr) bool {
		bin, ok := e.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.LOR:
			return hasNilDisjunct(bin.X) || hasNilDisjunct(bin.Y)
		case token.EQL:
			return isRecvNilCmp(pass, bin, recv)
		}
		return false
	}
	return hasNilDisjunct(ifs.Cond)
}

func isRecvNilCmp(pass *analysis.Pass, bin *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

// firstUnsafeUse returns the first use of recv in fd's body that is not a
// method call on recv and not a comparison of recv against nil.
func firstUnsafeUse(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) ast.Node {
	var bad ast.Node
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv && bad == nil {
			if !safeUse(pass, stack) {
				bad = id
			}
		}
		return true
	})
	return bad
}

// safeUse decides whether the receiver use on top of the ancestor stack is
// nil-safe: `recv.Method(...)` or `recv ==/!= nil`.
func safeUse(pass *analysis.Pass, stack []ast.Node) bool {
	// stack[len-1] is the receiver ident.
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[parent]
		if sel == nil || sel.Kind() != types.MethodVal {
			return false // field access
		}
		// The selector must be immediately called, not bound.
		if len(stack) < 3 {
			return false
		}
		call, ok := stack[len(stack)-3].(*ast.CallExpr)
		return ok && call.Fun == parent
	case *ast.BinaryExpr:
		if parent.Op != token.EQL && parent.Op != token.NEQ {
			return false
		}
		other := parent.X
		if other == stack[len(stack)-1] {
			other = parent.Y
		}
		id, ok := other.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return false
}

// checkCopies enforces rule 2: no by-value declarations or dereferences of
// handle types anywhere.
func checkCopies(pass *analysis.Pass, ins *inspector.Inspector, isHandle func(types.Type) bool) {
	// containsHandle reports whether t embeds a handle by value (so that a
	// copy of t copies the handle).
	var containsHandle func(t types.Type, depth int) bool
	containsHandle = func(t types.Type, depth int) bool {
		if depth > 8 {
			return false
		}
		if isHandle(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			return containsHandle(u.Elem(), depth+1)
		case *types.Array:
			return containsHandle(u.Elem(), depth+1)
		case *types.Map:
			return containsHandle(u.Elem(), depth+1) || containsHandle(u.Key(), depth+1)
		case *types.Chan:
			return containsHandle(u.Elem(), depth+1)
		}
		return false
	}

	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies obs handle type %s by value; obs handles must be passed as pointers (a copy tears atomics and detaches from the registry)", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}

	nodeTypes := []ast.Node{
		(*ast.StarExpr)(nil),
		(*ast.Field)(nil),
		(*ast.ValueSpec)(nil),
	}
	ins.Preorder(nodeTypes, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.StarExpr:
			// Dereference producing a handle value. Skip type expressions
			// (*obs.Counter as a type is a StarExpr too).
			tv, ok := pass.TypesInfo.Types[n]
			if ok && tv.IsValue() && isHandle(tv.Type) {
				report(n.Pos(), "dereference", tv.Type)
			}
		case *ast.Field:
			if n.Type == nil {
				return
			}
			if t := pass.TypesInfo.TypeOf(n.Type); t != nil && containsHandle(t, 0) {
				report(n.Type.Pos(), "declaration", t)
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				return
			}
			if t := pass.TypesInfo.TypeOf(n.Type); t != nil && containsHandle(t, 0) {
				report(n.Type.Pos(), "declaration", t)
			}
		}
	})
}
