package obsnilguard_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/obsnilguard"
)

// TestObsPackageMethods checks the nil-guard rule inside the (stubbed)
// obs package itself.
func TestObsPackageMethods(t *testing.T) {
	analyzertest.Run(t, "testdata", obsnilguard.Analyzer, "pathsep/internal/obs")
}

// TestHandleCopies checks the no-value-copies rule from a consumer
// package.
func TestHandleCopies(t *testing.T) {
	analyzertest.Run(t, "testdata", obsnilguard.Analyzer, "a")
}
