// Package a exercises the handle-copy rule of obsnilguard from a consumer
// package.
package a

import "pathsep/internal/obs"

// Pointer declarations and method calls are fine.
func good(c *obs.Counter) {
	c.Add(1)
	c.Inc()
}

type okHolder struct {
	c *obs.Counter
}

// Value declarations copy the handle.
var global obs.Counter // want "copies obs handle type"

type badHolder struct {
	c obs.Counter // want "copies obs handle type"
}

type badSlice struct {
	cs []obs.Counter // want "copies obs handle type"
}

// Value parameters and results copy the handle.
func badParam(c obs.Counter) {} // want "copies obs handle type"

// Dereferencing a handle pointer copies it.
func badDeref(c *obs.Counter) {
	x := *c // want "dereference copies obs handle type"
	_ = x
}
