// Stub of the real pathsep/internal/obs package: same import path, same
// handle shape, no atomics — just enough surface for obsnilguard tests.
package obs

// Counter is a handle type (exported pointer-receiver methods).
type Counter struct{ v int64 }

// Add is nil-safe: leading guard.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc is nil-safe by delegation: the receiver is only used to call
// another method.
func (c *Counter) Inc() { c.Add(1) }

// Value uses a compound guard condition, still leading.
func (c *Counter) Value() int64 {
	if c == nil || false {
		return 0
	}
	return c.v
}

// Bad dereferences the receiver without any guard.
func (c *Counter) Bad() int64 {
	return c.v // want "must begin with a nil-receiver guard"
}

// BadLateGuard guards only after touching a field.
func (c *Counter) BadLateGuard() int64 {
	v := c.v // want "must begin with a nil-receiver guard"
	if c == nil {
		return 0
	}
	return v
}

// Registry is a handle type too.
type Registry struct{ counters map[string]*Counter }

// Counter is nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[name]
}

// Span is a value type by design (value receivers only) — not a handle,
// so it is never flagged.
type Span struct{ h *Counter }

// End is a value-receiver method on a non-handle type.
func (s Span) End() { s.h.Add(1) }

// private methods are not checked.
func (c *Counter) peek() int64 { return c.v }
