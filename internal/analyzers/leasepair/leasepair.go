// Package leasepair generalizes poolleak's acquire/release discipline
// to the serving plane's image lease. internal/serve hands out the
// current oracle image through an acquire/release pair around an
// atomic.Pointer: acquire pins a generation (so a concurrent reload
// cannot unmap the flat image mid-query), release unpins it, and the
// reload path swaps only after draining readers. Every handler must
// pair the two on all paths — a missed release on an early return
// wedges reload drains forever, a use after release races the swap, and
// a second acquire in one response can observe two different
// generations and mix their results.
//
// The leased type is declared, not hard-coded: a
//
//	//pathsep:lease acquire=<name> release=<name>
//
// directive in the doc comment of a type declaration names the
// package's acquire and release functions. The pass then enforces, in
// every function of that package (acquire/release themselves and test
// files excepted):
//
//   - all-paths release: a value obtained from the acquire function (or
//     any wrapper whose result transitively derives from it — resolved
//     through the interprocedural ssaflow summaries, like poolleak's
//     getters) must reach the release function (or a wrapper one of
//     whose parameters transitively reaches it) on every path out:
//     early returns, falls-off-the-end, and panics. A deferred release
//     covers every exit including panics and permits later uses.
//   - no use-after-release: after a non-deferred release, any mention
//     of the leased value races the reload swap.
//   - one generation per response: acquiring a second lease while one
//     is open mixes generations; release the first or restructure.
//   - no raw pointer access: calling Load/Store/Swap/CompareAndSwap on
//     an atomic.Pointer[T] of the leased type anywhere outside the
//     acquire/release bodies bypasses the reader count. Deliberate
//     bypasses (the reload swap, which is serialized by its own mutex)
//     are annotated at the call site with
//     `//pathsep:lease-bypass <reason>` on the same line or the line
//     above, keeping the justification in the diff.
//
// Ownership transfer mirrors poolleak: returning the lease, storing it
// into a field/slice/map, sending it on a channel, or capturing it in a
// goroutine/closure moves the obligation elsewhere and the walk stops
// tracking it.
package leasepair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pathsep/internal/analyzers/ssaflow"
)

// Directive declares a leased type; BypassDirective sanctions one raw
// pointer access.
const (
	Directive       = "//pathsep:lease"
	BypassDirective = "//pathsep:lease-bypass"
)

// Analyzer is the leasepair pass.
var Analyzer = &analysis.Analyzer{
	Name:     "leasepair",
	Doc:      "acquire/release pairing for //pathsep:lease types: all paths release, no use-after-release, one generation per response, no raw atomic access",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssaflow.Analyzer},
	Run:      run,
}

// lease is one declared lease discipline.
type lease struct {
	typ         *types.Named // the leased type
	acquireName string
	releaseName string
	acquirers   map[*types.Func]bool // acquire fn + wrappers (result derives from it)
	releasers   map[*types.Func]int  // release fn + wrappers -> which param releases
	exempt      map[ast.Node]bool    // acquire/release bodies, skipped by the walk
}

// parseDirective extracts acquire=/release= from a directive line.
func parseDirective(text string) (acquire, release string, ok bool) {
	rest := strings.TrimPrefix(strings.TrimSpace(text), Directive)
	if rest == text || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", "", false
	}
	for _, f := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(f, "acquire="):
			acquire = f[len("acquire="):]
		case strings.HasPrefix(f, "release="):
			release = f[len("release="):]
		}
	}
	return acquire, release, acquire != "" && release != ""
}

// declaredLeases finds //pathsep:lease directives on type declarations.
func declaredLeases(pass *analysis.Pass) []*lease {
	var out []*lease
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				var lines []*ast.Comment
				if gd.Doc != nil {
					lines = append(lines, gd.Doc.List...)
				}
				if ts.Doc != nil {
					lines = append(lines, ts.Doc.List...)
				}
				for _, c := range lines {
					acq, rel, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						pass.Reportf(c.Pos(), "%s directive on %s: leased type must be a defined type", Directive, ts.Name.Name)
						continue
					}
					out = append(out, &lease{
						typ:         named,
						acquireName: acq,
						releaseName: rel,
						acquirers:   map[*types.Func]bool{},
						releasers:   map[*types.Func]int{},
						exempt:      map[ast.Node]bool{},
					})
				}
			}
		}
	}
	return out
}

// isLeasedPtr reports whether t is *T (or T) for the leased type.
func (l *lease) isLeasedPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == l.typ.Obj()
}

// classify resolves the acquire/release functions and their wrappers
// through the interprocedural summaries: any function whose result
// transitively derives from the named acquire call is itself an
// acquirer; any function one of whose parameters transitively reaches
// the named release call is a releaser.
func (l *lease) classify(pass *analysis.Pass, res *ssaflow.Result) {
	// Pass 1: the directly named functions, matched by name and by
	// touching the leased type (result for acquire, param for release).
	for fn := range res.Summaries {
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case l.acquireName:
			for j := 0; j < sig.Results().Len(); j++ {
				if l.isLeasedPtr(sig.Results().At(j).Type()) {
					l.acquirers[fn] = true
					l.exempt[res.Summaries[fn].Decl] = true
				}
			}
		case l.releaseName:
			for i := 0; i < sig.Params().Len(); i++ {
				if l.isLeasedPtr(sig.Params().At(i).Type()) {
					l.releasers[fn] = i
					l.exempt[res.Summaries[fn].Decl] = true
				}
			}
		}
	}
	// Pass 2: wrappers, to a fixpoint over the per-function summaries —
	// a function returning an acquirer's result is an acquirer, a
	// function forwarding a parameter into a releaser's release slot is
	// a releaser, however many levels deep the chain goes. (ResultFlow
	// and ParamFlow would resolve *through* the in-package acquire and
	// bottom out at its atomics, so the direct summaries are what we
	// want here.)
	for changed := true; changed; {
		changed = false
		for fn, s := range res.Summaries {
			sig := fn.Type().(*types.Signature)
			if !l.acquirers[fn] {
				for j := 0; j < sig.Results().Len(); j++ {
					if !l.isLeasedPtr(sig.Results().At(j).Type()) {
						continue
					}
					for _, src := range s.Returns[j] {
						if src.Callee != nil && l.acquirers[src.Callee] {
							l.acquirers[fn] = true
							l.exempt[s.Decl] = true
							changed = true
						}
					}
				}
			}
			if _, ok := l.releasers[fn]; !ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if !l.isLeasedPtr(sig.Params().At(i).Type()) {
						continue
					}
					for _, use := range s.ParamUses[i] {
						if ri, ok := l.releasers[use.Callee]; ok && use.Arg == ri {
							l.releasers[fn] = i
							l.exempt[s.Decl] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// bypassLines collects //pathsep:lease-bypass annotations per file.
func bypassLines(pass *analysis.Pass) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		lines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), BypassDirective) {
					lines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		out[fname] = lines
	}
	return out
}

func run(pass *analysis.Pass) (interface{}, error) {
	leases := declaredLeases(pass)
	if len(leases) == 0 {
		return nil, nil
	}
	res := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Result)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	for _, l := range leases {
		l.classify(pass, res)
	}
	bypass := bypassLines(pass)

	// Raw atomic.Pointer[T] access outside the acquire/release bodies.
	exemptPos := func(pos token.Pos) bool {
		for _, l := range leases {
			for node := range l.exempt {
				if pos >= node.Pos() && pos < node.End() {
					return true
				}
			}
		}
		return false
	}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Load", "Store", "Swap", "CompareAndSwap":
		default:
			return
		}
		for _, l := range leases {
			if !isAtomicPtrOf(pass.TypesInfo.TypeOf(sel.X), l.typ) {
				continue
			}
			pos := pass.Fset.Position(call.Pos())
			if strings.HasSuffix(pos.Filename, "_test.go") || exemptPos(call.Pos()) {
				continue
			}
			if lines := bypass[pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
				continue
			}
			pass.Reportf(call.Pos(), "raw atomic %s of leased type %s bypasses the %s/%s lease; use the lease or annotate %s",
				sel.Sel.Name, l.typ.Obj().Name(), l.acquireName, l.releaseName, BypassDirective)
		}
	})

	// Path-sensitive pairing walk over every non-exempt function body.
	for _, fn := range res.Funcs {
		file := pass.Fset.Position(fn.Node.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		skip := false
		for _, l := range leases {
			if l.exempt[fn.Node] {
				skip = true
			}
		}
		if skip {
			continue
		}
		w := &walker{pass: pass, leases: leases}
		st := &state{open: map[types.Object]*held{}, done: map[types.Object]token.Pos{}}
		w.stmts(st, fn.Body.List)
		if !st.dead {
			w.leaks(st, fn.Body.End(), "falls off the end of "+fn.Name)
		}
	}
	return nil, nil
}

// isAtomicPtrOf reports whether t is sync/atomic.Pointer[leased] (or a
// pointer to one).
func isAtomicPtrOf(t types.Type, leased *types.Named) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return false
	}
	args := n.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	arg, ok := args.At(0).(*types.Named)
	return ok && arg.Obj() == leased.Obj()
}

// held is one open lease.
type held struct {
	pos   token.Pos
	lease *lease
}

// state is the abstract store along one path.
type state struct {
	open map[types.Object]*held
	done map[types.Object]token.Pos
	dead bool
}

func (st *state) clone() *state {
	c := &state{
		open: make(map[types.Object]*held, len(st.open)),
		done: make(map[types.Object]token.Pos, len(st.done)),
		dead: st.dead,
	}
	for k, v := range st.open {
		cp := *v
		c.open[k] = &cp
	}
	for k, v := range st.done {
		c.done[k] = v
	}
	return c
}

// merge folds branch outcomes: open if open on any surviving path,
// released only if released on every surviving path.
func (st *state) merge(branches []*state) {
	live := branches[:0]
	for _, b := range branches {
		if !b.dead {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		st.dead = true
		return
	}
	open := map[types.Object]*held{}
	for _, b := range live {
		for k, v := range b.open {
			if _, ok := open[k]; !ok {
				open[k] = v
			}
		}
	}
	done := map[types.Object]token.Pos{}
	for k, v := range live[0].done {
		onAll := true
		for _, b := range live[1:] {
			if _, ok := b.done[k]; !ok {
				onAll = false
				break
			}
		}
		if onAll {
			done[k] = v
		}
	}
	for k := range open {
		delete(done, k)
	}
	st.open, st.done = open, done
}

// walker interprets one function body.
type walker struct {
	pass   *analysis.Pass
	leases []*lease
}

func (w *walker) info() *types.Info { return w.pass.TypesInfo }

func (w *walker) leaks(st *state, pos token.Pos, how string) {
	for obj, h := range st.open {
		w.pass.Reportf(pos, "lease %s (acquired at %s) is never released: control %s without a %s",
			obj.Name(), w.pass.Fset.Position(h.pos), how, h.lease.releaseName)
	}
	st.open = map[types.Object]*held{}
}

func (w *walker) stmts(st *state, list []ast.Stmt) {
	for _, s := range list {
		if st.dead {
			return
		}
		w.stmt(st, s)
	}
}

// useCheck reports mentions of already-released leases inside e. skip,
// when non-nil, is the release argument itself.
func (w *walker) useCheck(st *state, e ast.Expr, skip ast.Expr) {
	if e == nil || len(st.done) == 0 {
		return
	}
	for obj, relPos := range st.done {
		if skip != nil && ssaflow.BaseObject(w.info(), skip) == obj {
			continue
		}
		if ssaflow.Mentions(w.info(), e, func(o types.Object) bool { return o == obj }) {
			w.pass.Reportf(e.Pos(), "lease %s used after release at %s; the image may be swapped out from under it",
				obj.Name(), w.pass.Fset.Position(relPos))
			delete(st.done, obj)
		}
	}
}

// escapes stops tracking leases mentioned by e (ownership moved).
func (w *walker) escapes(st *state, e ast.Expr) {
	if e == nil || len(st.open) == 0 {
		return
	}
	for obj := range st.open {
		if ssaflow.Mentions(w.info(), e, func(o types.Object) bool { return o == obj }) {
			delete(st.open, obj)
		}
	}
}

// acquireCall matches a call to an acquirer (possibly behind a type
// assertion), returning its lease.
func (w *walker) acquireCall(e ast.Expr) (*lease, bool) {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := ssaflow.CalleeFunc(w.info(), call)
	if fn == nil {
		return nil, false
	}
	for _, l := range w.leases {
		if l.acquirers[fn] {
			return l, true
		}
	}
	return nil, false
}

// releaseCall matches a call to a releaser, returning the lease and the
// released expression.
func (w *walker) releaseCall(call *ast.CallExpr) (*lease, ast.Expr, bool) {
	fn := ssaflow.CalleeFunc(w.info(), call)
	if fn == nil {
		return nil, nil, false
	}
	for _, l := range w.leases {
		if ri, ok := l.releasers[fn]; ok && ri < len(call.Args) {
			return l, ast.Unparen(call.Args[ri]), true
		}
	}
	return nil, nil, false
}

// release closes the lease named by arg.
func (w *walker) release(st *state, l *lease, arg ast.Expr, deferred bool, pos token.Pos) {
	obj := ssaflow.BaseObject(w.info(), arg)
	if obj == nil {
		return
	}
	if _, ok := st.open[obj]; !ok {
		return // unknown origin (parameter, field) — the acquirer is elsewhere
	}
	delete(st.open, obj)
	if !deferred {
		st.done[obj] = pos
	}
}

// assign interprets one assignment or binding.
func (w *walker) assign(st *state, lhs, rhs ast.Expr, pos token.Pos) {
	info := w.info()
	w.useCheck(st, rhs, nil)

	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		w.useCheck(st, lhs, nil)
		w.escapes(st, rhs)
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return
	}
	l, isAcquire := (*lease)(nil), false
	if rhs != nil {
		l, isAcquire = w.acquireCall(rhs)
	}
	if h, open := st.open[obj]; open {
		if rhs == nil || !ssaflow.Mentions(info, rhs, func(o types.Object) bool { return o == obj }) {
			w.pass.Reportf(pos, "lease %s (acquired at %s) is overwritten without a %s",
				obj.Name(), w.pass.Fset.Position(h.pos), h.lease.releaseName)
			delete(st.open, obj)
		}
	}
	delete(st.done, obj)
	if isAcquire {
		for other, h := range st.open {
			w.pass.Reportf(pos, "second lease generation acquired while %s (acquired at %s) is still held; one generation per response",
				other.Name(), w.pass.Fset.Position(h.pos))
		}
		st.open[obj] = &held{pos: pos, lease: l}
	}
}

// call interprets a call in statement position.
func (w *walker) call(st *state, call *ast.CallExpr, deferred bool) {
	if l, arg, ok := w.releaseCall(call); ok {
		w.useCheck(st, call, arg)
		w.release(st, l, arg, deferred, call.Pos())
		return
	}
	w.useCheck(st, call, nil)
	if _, isAcquire := w.acquireCall(call); isAcquire {
		// Acquiring without binding the result leaks it immediately.
		w.pass.Reportf(call.Pos(), "lease acquired and discarded; bind the result and release it")
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := w.info().Uses[id].(*types.Builtin); isBuiltin {
			w.leaks(st, call.Pos(), "panics")
			st.dead = true
			return
		}
	}
	for _, arg := range call.Args {
		if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.escapes(st, arg)
		}
	}
}

// exprEvents walks non-statement expressions for use-after-release and
// closure captures.
func (w *walker) exprEvents(st *state, e ast.Expr) {
	if e == nil {
		return
	}
	w.useCheck(st, e, nil)
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.escapes(st, lit)
			return false
		}
		return true
	})
}

func (w *walker) stmt(st *state, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ast.Inspect(r, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.escapes(st, lit)
					return false
				}
				return true
			})
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				w.assign(st, s.Lhs[i], s.Rhs[i], s.Pos())
			}
		} else if len(s.Rhs) == 1 {
			for _, lhs := range s.Lhs {
				w.assign(st, lhs, s.Rhs[0], s.Pos())
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						w.assign(st, name, rhs, s.Pos())
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.call(st, call, false)
		} else {
			w.exprEvents(st, s.X)
		}
	case *ast.DeferStmt:
		w.call(st, s.Call, true)
	case *ast.GoStmt:
		w.useCheck(st, s.Call, nil)
		w.escapes(st, s.Call)
	case *ast.SendStmt:
		w.useCheck(st, s.Value, nil)
		w.escapes(st, s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.useCheck(st, r, nil)
			w.escapes(st, r)
		}
		w.leaks(st, s.Pos(), "returns")
		st.dead = true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(st, s.Init)
		}
		w.exprEvents(st, s.Cond)
		then := st.clone()
		w.stmts(then, s.Body.List)
		els := st.clone()
		if s.Else != nil {
			w.stmt(els, s.Else)
		}
		st.merge([]*state{then, els})
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(st, s.Init)
		}
		if s.Cond != nil {
			w.exprEvents(st, s.Cond)
		}
		body := st.clone()
		w.stmts(body, s.Body.List)
		if s.Post != nil && !body.dead {
			w.stmt(body, s.Post)
		}
		body.dead = false
		st.merge([]*state{st.clone(), body})
	case *ast.RangeStmt:
		w.exprEvents(st, s.X)
		body := st.clone()
		w.stmts(body, s.Body.List)
		body.dead = false
		st.merge([]*state{st.clone(), body})
	case *ast.BlockStmt:
		w.stmts(st, s.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				w.exprEvents(st, sw.Tag)
			}
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
		}
		if init != nil {
			w.stmt(st, init)
		}
		var branches []*state
		hasDefault := false
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if cc.List == nil {
					hasDefault = true
				}
				b := st.clone()
				w.stmts(b, cc.Body)
				branches = append(branches, b)
			}
		}
		if !hasDefault {
			branches = append(branches, st.clone())
		}
		if len(branches) > 0 {
			st.merge(branches)
		}
	case *ast.SelectStmt:
		var branches []*state
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				b := st.clone()
				if cc.Comm != nil {
					w.stmt(b, cc.Comm)
				}
				w.stmts(b, cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			st.merge(branches)
		}
	case *ast.LabeledStmt:
		w.stmt(st, s.Stmt)
	case *ast.IncDecStmt:
		w.exprEvents(st, s.X)
	case *ast.BranchStmt:
		st.dead = true
	}
}
