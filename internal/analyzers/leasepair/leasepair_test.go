package leasepair_test

import (
	"testing"

	"pathsep/internal/analyzers/analyzertest"
	"pathsep/internal/analyzers/leasepair"
)

func TestLeasePair(t *testing.T) {
	analyzertest.Run(t, "testdata", leasepair.Analyzer, "a")
}
