// Package a exercises the leasepair analyzer: values obtained from the
// declared acquire function must be released on every path, never used
// after release, never doubled up within one response, and the backing
// atomic pointer is off-limits outside the pair.
package a

import "sync/atomic"

// image is one immutable serving generation.
//
//pathsep:lease acquire=acquire release=release
type image struct {
	gen     uint64
	readers atomic.Int64
}

type server struct {
	img atomic.Pointer[image]
}

// acquire leases the current image: exempt from the walk, and calls to
// it open a lease.
func (s *server) acquire() *image {
	for {
		im := s.img.Load()
		im.readers.Add(1)
		if s.img.Load() == im {
			return im
		}
		im.readers.Add(-1)
	}
}

// release returns a lease taken by acquire.
func (s *server) release(im *image) { im.readers.Add(-1) }

// lease and unlease are one-level wrappers: the interprocedural
// summaries classify them as acquirer and releaser without any
// hand-listed names.
func (s *server) lease() *image { return s.acquire() }

func (s *server) unlease(im *image) { s.release(im) }

func use(im *image) uint64 { return im.gen }

var errFail error

// clean: acquire, use, release on the single path.
func straight(s *server) uint64 {
	im := s.acquire()
	g := use(im)
	s.release(im)
	return g
}

// clean: the deferred release covers every exit, including the early
// return and a panic, and permits uses after the defer statement.
func deferred(s *server, fail bool) (uint64, error) {
	im := s.acquire()
	defer s.release(im)
	if fail {
		return 0, errFail
	}
	return use(im), nil
}

// clean: both branches release.
func branches(s *server, which bool) {
	im := s.acquire()
	if which {
		use(im)
		s.release(im)
	} else {
		s.release(im)
	}
}

// leak: the error path exits without a release, wedging reload drains.
func earlyReturnLeak(s *server, fail bool) error {
	im := s.acquire()
	if fail {
		return errFail // want `lease im \(acquired at .*\) is never released: control returns without a release`
	}
	s.release(im)
	return nil
}

// leak: falls off the end without a release.
func fallOffLeak(s *server) {
	im := s.acquire()
	use(im)
} // want `lease im \(acquired at .*\) is never released: control falls off the end of fallOffLeak without a release`

// leak: a panic escapes before the (non-deferred) release.
func panicLeak(s *server, n int) {
	im := s.acquire()
	if n < 0 {
		panic("negative") // want `lease im \(acquired at .*\) is never released: control panics without a release`
	}
	use(im)
	s.release(im)
}

// use-after-release: the image may be swapped out from under im.
func useAfterRelease(s *server) uint64 {
	im := s.acquire()
	s.release(im)
	return use(im) // want `lease im used after release at .*; the image may be swapped out from under it`
}

// double acquire: two generations can disagree within one response.
func doubleAcquire(s *server) {
	a := s.acquire()
	b := s.acquire() // want `second lease generation acquired while a \(acquired at .*\) is still held; one generation per response`
	use(a)
	use(b)
	s.release(a)
	s.release(b)
}

// overwrite: rebinding im drops the open lease.
func overwriteLeak(s *server) {
	im := s.acquire()
	im = nil // want `lease im \(acquired at .*\) is overwritten without a release`
	_ = im
}

// discarded: acquiring without binding the result leaks immediately.
func discarded(s *server) {
	s.acquire() // want `lease acquired and discarded; bind the result and release it`
}

// Wrapper shapes: the summaries see the pair through one call level.
func deepStraight(s *server) {
	im := s.lease()
	use(im)
	s.unlease(im)
}

func deepLeak(s *server, fail bool) error {
	im := s.lease()
	if fail {
		return errFail // want `lease im \(acquired at .*\) is never released: control returns without a release`
	}
	s.unlease(im)
	return nil
}

func deepUseAfterRelease(s *server) uint64 {
	im := s.lease()
	s.unlease(im)
	return use(im) // want `lease im used after release at .*; the image may be swapped out from under it`
}

// clean: returning the lease transfers the obligation to the caller.
func transferReturn(s *server) *image {
	return s.acquire()
}

// clean: storing into a field transfers ownership.
type holder struct{ im *image }

func transferStore(s *server, h *holder) {
	im := s.acquire()
	h.im = im
}

// clean: handing the lease to a goroutine transfers ownership.
func transferGo(s *server) {
	im := s.acquire()
	go func() {
		use(im)
		s.release(im)
	}()
}

// raw access: Load outside acquire/release bypasses the reader count.
func rawLoad(s *server) uint64 {
	im := s.img.Load() // want `raw atomic Load of leased type image bypasses the acquire/release lease; use the lease or annotate //pathsep:lease-bypass`
	return im.gen
}

// sanctioned: the reload swap is serialized by its own mutex.
func rawSwapSanctioned(s *server, im *image) *image {
	//pathsep:lease-bypass reload path, serialized by reloadMu
	return s.img.Swap(im)
}

// sanctioned, same-line form.
func rawStoreSanctioned(s *server, im *image) {
	s.img.Store(im) //pathsep:lease-bypass initial publish before serving starts
}
