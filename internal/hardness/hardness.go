// Package hardness builds the lower-bound instances of Section 5 of the
// paper and the verifiers that check them:
//
//   - Theorem 5: sparse graphs with a dense bipartite core that are not
//     o(√n)-path separable;
//   - Theorem 6(3): the t×t mesh plus universal vertex, a K6-minor-free
//     family on which every STRONG k-path separator needs k ≥ t/3;
//   - Theorem 7: K_{r,n−r} needs ≥ r/2 paths.
//
// The verifiers certify strong separators, compute the counting-argument
// lower bound k ≥ min(minimum halving set, n/2) / (max shortest-path
// vertex count), and exhaustively find minimum halving sets on tiny
// instances.
package hardness

import (
	"fmt"
	"math"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// VerifyStrong checks that the given paths form a STRONG k-path separator
// of g: every path is a shortest path in g itself (a single phase), and
// removing all of them leaves components of at most n/2 vertices.
func VerifyStrong(g *graph.Graph, paths [][]int) bool {
	var all []int
	for _, p := range paths {
		if !shortest.IsShortestPath(g, p) {
			return false
		}
		all = append(all, p...)
	}
	comps := graph.ComponentsAfterRemoval(g, all)
	return len(comps) == 0 || len(comps[0]) <= g.N()/2
}

// MaxShortestPathVertices returns the largest number of vertices on any
// shortest path of g — for an unweighted graph, the (hop) diameter plus
// one. Any union of k shortest paths covers at most k times this many
// vertices, the heart of the Theorem 6(3) and Theorem 7 counting
// arguments.
func MaxShortestPathVertices(g *graph.Graph) int {
	best := 1
	for v := 0; v < g.N(); v++ {
		tr := shortest.Dijkstra(g, v)
		for u := 0; u < g.N(); u++ {
			if !math.IsInf(tr.Dist[u], 1) && tr.Hops[u]+1 > best {
				best = tr.Hops[u] + 1
			}
		}
	}
	return best
}

// MinHalvingSet exhaustively searches for a smallest vertex set of size
// at most maxSize whose removal leaves components of at most n/2
// vertices. It returns the set and true, or nil and false if none exists
// within the size bound. Exponential; intended for tiny instances.
func MinHalvingSet(g *graph.Graph, maxSize int) ([]int, bool) {
	n := g.N()
	for size := 0; size <= maxSize; size++ {
		set := make([]int, size)
		if found := searchHalving(g, set, 0, 0, n); found != nil {
			return found, true
		}
	}
	return nil, false
}

func searchHalving(g *graph.Graph, set []int, idx, from, n int) []int {
	if idx == len(set) {
		comps := graph.ComponentsAfterRemoval(g, set)
		if len(comps) == 0 || len(comps[0]) <= n/2 {
			out := make([]int, len(set))
			copy(out, set)
			return out
		}
		return nil
	}
	for v := from; v < n; v++ {
		set[idx] = v
		if found := searchHalving(g, set, idx+1, v+1, n); found != nil {
			return found
		}
	}
	return nil
}

// StrongLowerBound returns the counting-argument lower bound on the
// number of paths in any strong path separator of g:
// ceil(h / maxSPV) where h is a lower bound on the halving-set size and
// maxSPV the maximum vertices on a shortest path. h is determined
// exhaustively up to hCap; if no halving set of size <= hCap exists the
// bound uses hCap+1.
func StrongLowerBound(g *graph.Graph, hCap int) int {
	maxSPV := MaxShortestPathVertices(g)
	h := hCap + 1
	if set, ok := MinHalvingSet(g, hCap); ok {
		h = len(set)
	}
	return (h + maxSPV - 1) / maxSPV
}

// BipartiteStrongLB returns the Theorem 7 analytic bound for K_{r,s} with
// s >= r: at least ceil(r/2) shortest paths are needed, because any
// shortest path visits at most 2 vertices of each side and the whole
// r-side must go.
func BipartiteStrongLB(r int) int { return (r + 1) / 2 }

// MeshUniversalStrongLB returns the Theorem 6(3) analytic bound for the
// t×t mesh plus universal vertex: k >= t/3, because the graph has
// diameter 2 (so |V(S)| <= 3k) while fewer than t removed mesh vertices
// leave a component larger than n/2.
func MeshUniversalStrongLB(t int) int { return (t + 2) / 3 }

// SparseHard builds the Theorem 5 family: a K_{r,r} core (r ≈ √(n/2))
// padded with pendant paths so the graph has n vertices and O(n) edges,
// yet is not o(√n/log²n)-path separable.
func SparseHard(n int) *graph.Graph {
	r := int(math.Sqrt(float64(n) / 2))
	if r < 2 {
		r = 2
	}
	b := graph.NewBuilder(0)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			b.AddEdge(i, r+j, 1)
		}
	}
	next := 2 * r
	// Pendant paths distributed round-robin over core vertices.
	attach := 0
	for next < n {
		prev := attach % (2 * r)
		// Grow a short path from the core vertex.
		for L := 0; L < 4 && next < n; L++ {
			b.AddEdge(prev, next, 1)
			prev = next
			next++
		}
		attach++
	}
	return b.Build()
}

// MeshUniversalPhasedK builds a PHASED (Definition 1) separator for the
// t×t mesh plus universal vertex and returns its certified path count:
// phase 0 removes the universal vertex (a trivial shortest path), after
// which the remaining grid is planar and the fundamental-cycle strategy
// halves it with at most four more paths. This realizes Theorem 1's
// O(1) bound on the very family whose STRONG separators need Ω(√n)
// paths (Theorem 6(3)).
func MeshUniversalPhasedK(t int) (int, error) {
	g := graph.MeshUniversal(t)
	u := t * t
	sep := &core.Separator{Phases: []core.Phase{
		{Paths: []core.Path{{Vertices: []int{u}}}},
	}}
	// The residual is exactly the t×t grid; separate it with the planar
	// strategy and lift (grid vertex IDs coincide in g).
	rot := embedGrid(t)
	gridSep, err := (core.Planar{}).Separate(core.Input{G: rot.G, Rot: rot})
	if err != nil {
		return 0, err
	}
	sep.Phases = append(sep.Phases, gridSep.Phases...)
	if err := core.Certify(g, sep); err != nil {
		return 0, err
	}
	return sep.NumPaths(), nil
}

func embedGrid(t int) *embed.Rotation {
	return embed.Grid(t, t, graph.UnitWeights(), nil)
}

// MeasureGreedyK runs the Greedy strategy on g and reports the number of
// paths it used for one (top-level) separator, the empirical counterpart
// of the lower bounds above.
func MeasureGreedyK(g *graph.Graph) (int, error) {
	sep, err := (core.Greedy{MaxPaths: 16*isqrt(g.N()) + 64}).Separate(core.Input{G: g})
	if err != nil {
		return 0, err
	}
	return sep.NumPaths(), nil
}

// DistinctDistanceRows returns the number of distinct rows of the exact
// distance matrix; log2 of it lower-bounds the bits any EXACT distance
// label must carry. Used as a tiny-scale illustration of the Theorem 5
// label lower bound.
func DistinctDistanceRows(g *graph.Graph) int {
	n := g.N()
	rows := make(map[string]bool, n)
	for v := 0; v < n; v++ {
		tr := shortest.Dijkstra(g, v)
		key := make([]byte, 0, 8*n)
		for _, d := range tr.Dist {
			bits := math.Float64bits(d)
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(bits>>s))
			}
		}
		rows[string(key)] = true
	}
	return len(rows)
}

func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := int(math.Sqrt(float64(n)))
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// StrongSqrtUpper demonstrates Theorem 6(2): every H-minor-free graph is
// strongly O(sqrt n)-path separable via a width-O(sqrt n) tree
// decomposition. It returns the certified size of a STRONG (single
// phase, single-vertex paths) separator from a heuristic center bag.
func StrongSqrtUpper(g *graph.Graph) (int, error) {
	sep, err := (core.CenterBag{}).Separate(core.Input{G: g})
	if err != nil {
		return 0, err
	}
	if err := core.Certify(g, sep); err != nil {
		return 0, err
	}
	if sep.NumPhases() != 1 {
		return 0, errNotStrong
	}
	return sep.NumPaths(), nil
}

var errNotStrong = fmt.Errorf("hardness: separator is not strong (multiple phases)")
