package hardness

import (
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

func TestVerifyStrong(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Cycle(8, graph.UnitWeights(), rng)
	if !VerifyStrong(g, [][]int{{0, 1}, {4, 5}}) {
		t.Fatal("valid strong separator rejected")
	}
	if VerifyStrong(g, [][]int{{0}}) {
		t.Fatal("unbalanced separator accepted")
	}
	if VerifyStrong(g, [][]int{{0, 1, 2, 3, 4, 5}}) {
		t.Fatal("non-shortest path accepted")
	}
}

func TestMaxShortestPathVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := graph.Path(7, graph.UnitWeights(), rng)
	if got := MaxShortestPathVertices(p); got != 7 {
		t.Fatalf("path: %d", got)
	}
	// Diameter-2 graphs: at most 3 vertices per shortest path.
	mu := graph.MeshUniversal(4)
	if got := MaxShortestPathVertices(mu); got != 3 {
		t.Fatalf("mesh+universal: %d, want 3", got)
	}
	kb := graph.CompleteBipartite(3, 5, graph.UnitWeights(), rng)
	if got := MaxShortestPathVertices(kb); got != 3 {
		t.Fatalf("K_{3,5}: %d, want 3", got)
	}
}

func TestMinHalvingSetCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Cycle(8, graph.UnitWeights(), rng)
	set, ok := MinHalvingSet(g, 3)
	if !ok || len(set) != 2 {
		t.Fatalf("C8 halving set: %v %v (want size 2)", set, ok)
	}
}

func TestMinHalvingSetClique(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Complete(6, graph.UnitWeights(), rng)
	// K6: must remove 3 vertices to get components <= 3.
	set, ok := MinHalvingSet(g, 4)
	if !ok || len(set) != 3 {
		t.Fatalf("K6 halving: %v %v", set, ok)
	}
}

func TestStrongLowerBoundBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// K_{4,9}: halving needs >= 4 removals (otherwise the graph stays
	// connected with > n/2 vertices), each path covers <= 3 vertices.
	g := graph.CompleteBipartite(4, 9, graph.UnitWeights(), rng)
	lb := StrongLowerBound(g, 5)
	if lb < 2 {
		t.Fatalf("K_{4,9} strong LB = %d, want >= 2 = r/2", lb)
	}
	if want := BipartiteStrongLB(4); want != 2 {
		t.Fatalf("analytic bound = %d", want)
	}
}

func TestMeshUniversalLB(t *testing.T) {
	// t=4: n=17. The universal vertex must be removed (else its component
	// is everything), and then the 4x4 mesh must be halved.
	g := graph.MeshUniversal(4)
	set, ok := MinHalvingSet(g, 5)
	if !ok {
		t.Fatal("no halving set of size <= 5 found for t=4")
	}
	// Universal vertex (16) must be in the set.
	hasU := false
	for _, v := range set {
		if v == 16 {
			hasU = true
		}
	}
	if !hasU {
		t.Fatalf("halving set %v omits the universal vertex", set)
	}
	if MeshUniversalStrongLB(4) != 2 {
		t.Fatalf("analytic: %d", MeshUniversalStrongLB(4))
	}
	if MeshUniversalStrongLB(9) != 3 {
		t.Fatalf("analytic t=9: %d", MeshUniversalStrongLB(9))
	}
}

func TestSparseHardShape(t *testing.T) {
	for _, n := range []int{50, 200, 800} {
		g := SparseHard(n)
		if g.N() != n {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		// Sparse: m = O(n) (core r^2 ~ n/2 plus pendant edges).
		if g.M() > 3*n {
			t.Fatalf("n=%d: m=%d not sparse", n, g.M())
		}
		if !graph.IsConnected(g) {
			t.Fatalf("n=%d: disconnected", n)
		}
	}
}

func TestMeasureGreedyKGrowsOnHardFamily(t *testing.T) {
	kSmall, err := MeasureGreedyK(SparseHard(64))
	if err != nil {
		t.Fatal(err)
	}
	kBig, err := MeasureGreedyK(SparseHard(1024))
	if err != nil {
		t.Fatal(err)
	}
	// The dense core forces the path count to grow with sqrt(n): 16x the
	// vertices should need clearly more paths.
	if kBig <= kSmall {
		t.Errorf("greedy k did not grow: %d (n=64) vs %d (n=1024)", kSmall, kBig)
	}
}

func TestPlanarKConstantVsHardGrowth(t *testing.T) {
	// Contrast for E3/E10: the planar strategy proves k <= 4 on grids of
	// any size, while on the dense-core family the measured greedy k
	// grows with n (no strategy can keep it constant, by Theorem 5).
	rng := rand.New(rand.NewSource(6))
	for _, side := range []int{8, 16} {
		r := embed.Grid(side, side, graph.UnitWeights(), rng)
		sep, err := (core.Planar{}).Separate(core.Input{G: r.G, Rot: r})
		if err != nil {
			t.Fatal(err)
		}
		if sep.NumPaths() > 4 {
			t.Errorf("grid %d: planar k = %d > 4", side, sep.NumPaths())
		}
	}
	kSmall, err := MeasureGreedyK(SparseHard(128))
	if err != nil {
		t.Fatal(err)
	}
	kBig, err := MeasureGreedyK(SparseHard(2048))
	if err != nil {
		t.Fatal(err)
	}
	if kBig <= kSmall {
		t.Errorf("hard family k did not grow: %d -> %d", kSmall, kBig)
	}
}

func TestDistinctDistanceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := graph.Path(10, graph.UnitWeights(), rng)
	if got := DistinctDistanceRows(p); got != 10 {
		t.Fatalf("path rows = %d", got)
	}
	// Complete graph: every row is a permutation pattern but all distinct
	// (the 0 moves); still n rows.
	k := graph.Complete(5, graph.UnitWeights(), rng)
	if got := DistinctDistanceRows(k); got != 5 {
		t.Fatalf("K5 rows = %d", got)
	}
}

func TestStrongSqrtUpperOnGrids(t *testing.T) {
	// Theorem 6(2): grids get strong separators of O(sqrt n) single-vertex
	// paths via the center bag.
	for _, side := range []int{6, 10, 14} {
		g := graph.Mesh3D(side, side, 1, graph.UnitWeights(), nil)
		k, err := StrongSqrtUpper(g)
		if err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		if k > 3*side {
			t.Errorf("side %d: strong k = %d, want O(side)", side, k)
		}
		if k < 2 {
			t.Errorf("side %d: suspiciously small strong separator %d", side, k)
		}
	}
}

func TestPathPlusStableIsOnePathSeparable(t *testing.T) {
	// Section 5.2, first paragraph: the path-plus-stable graph contains a
	// K_{n/2,n/2} minor yet is 1-path separable — the whole weight-1 path
	// is a single shortest path whose removal isolates the stable set.
	g := graph.PathPlusStable(20)
	h := 10
	pathVerts := make([]int, h)
	for i := range pathVerts {
		pathVerts[i] = i
	}
	sep := &core.Separator{Phases: []core.Phase{
		{Paths: []core.Path{{Vertices: pathVerts}}},
	}}
	if err := core.Certify(g, sep); err != nil {
		t.Fatalf("Section 5.2 example not certified: %v", err)
	}
	if sep.NumPaths() != 1 {
		t.Fatalf("k = %d, want 1", sep.NumPaths())
	}
}
