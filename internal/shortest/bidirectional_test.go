package shortest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/graph"
)

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(60, 150, graph.UniformWeights(0.5, 5), rng)
		tr := Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			got := Bidirectional(g, 0, v)
			if math.Abs(got-tr.Dist[v]) > 1e-9 {
				t.Fatalf("seed %d: Bidirectional(0,%d) = %v, want %v", seed, v, got, tr.Dist[v])
			}
		}
	}
}

func TestBidirectionalDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if got := Bidirectional(g, 0, 3); !math.IsInf(got, 1) {
		t.Fatalf("got %v, want +Inf", got)
	}
	if got := Bidirectional(g, 1, 1); got != 0 {
		t.Fatalf("self distance %v", got)
	}
}

func TestAStarZeroHeuristicIsDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ConnectedGNM(50, 120, graph.UniformWeights(1, 3), rng)
	tr := Dijkstra(g, 3)
	for v := 0; v < g.N(); v += 3 {
		got, _ := AStar(g, 3, v, nil)
		if math.Abs(got-tr.Dist[v]) > 1e-9 {
			t.Fatalf("AStar(3,%d) = %v, want %v", v, got, tr.Dist[v])
		}
	}
}

func TestAStarWithPerfectHeuristicSettlesLess(t *testing.T) {
	// On a path graph, the exact distance-to-target heuristic should make
	// A* walk straight to the target.
	rng := rand.New(rand.NewSource(2))
	g := graph.Path(200, graph.UnitWeights(), rng)
	h := func(v int) float64 { return float64(199 - v) }
	d, settled := AStar(g, 0, 199, h)
	if d != 199 {
		t.Fatalf("d = %v", d)
	}
	if settled > 205 {
		t.Fatalf("perfect heuristic settled %d vertices", settled)
	}
	_, settledBlind := AStar(g, 0, 199, nil)
	if settled > settledBlind {
		t.Fatalf("heuristic hurt: %d > %d", settled, settledBlind)
	}
}

func TestBidirectionalSettlesNoMoreThanDijkstra(t *testing.T) {
	// Regression for the stale-heap-entry bug: entries popped after the
	// stopping rule's best is already proven must not relax neighbors, so
	// the bidirectional settled count can never exceed a unidirectional
	// run (which settles every reachable vertex).
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(80, 240, graph.UniformWeights(0.5, 5), rng)
		tr := Dijkstra(g, 0)
		reachable := 0
		for v := 0; v < g.N(); v++ {
			if !math.IsInf(tr.Dist[v], 1) {
				reachable++
			}
		}
		for v := 1; v < g.N(); v += 7 {
			d, settled := BidirectionalStats(g, 0, v)
			if math.Abs(d-tr.Dist[v]) > 1e-9 {
				t.Fatalf("seed %d: dist(0,%d) = %v, want %v", seed, v, d, tr.Dist[v])
			}
			if settled > reachable {
				t.Fatalf("seed %d: settled %d > unidirectional %d", seed, v, settled)
			}
		}
	}
}

func TestBidirectionalStaleEntriesNotExpanded(t *testing.T) {
	// A cycle where s and t are adjacent via a weight-1 edge but the heap
	// also holds entries for the long way round: once best=1 is found,
	// every remaining entry has dv >= best and must be retired without
	// relaxation, keeping the settled count tiny.
	b := graph.NewBuilder(64)
	for i := 0; i < 63; i++ {
		b.AddEdge(i, i+1, 1)
	}
	b.AddEdge(63, 0, 1)
	g := b.Build()
	d, settled := BidirectionalStats(g, 0, 63)
	if d != 1 {
		t.Fatalf("d = %v, want 1", d)
	}
	if settled > 4 {
		t.Fatalf("settled %d vertices on an adjacent pair, want <= 4", settled)
	}
}

func TestQuickBidirectionalAgainstDijkstra(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(n, 3*n, graph.UniformWeights(0.5, 4), rng)
		s, tt := rng.Intn(n), rng.Intn(n)
		want := Dijkstra(g, s).Dist[tt]
		got := Bidirectional(g, s, tt)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
