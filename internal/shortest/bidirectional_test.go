package shortest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/graph"
)

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(60, 150, graph.UniformWeights(0.5, 5), rng)
		tr := Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			got := Bidirectional(g, 0, v)
			if math.Abs(got-tr.Dist[v]) > 1e-9 {
				t.Fatalf("seed %d: Bidirectional(0,%d) = %v, want %v", seed, v, got, tr.Dist[v])
			}
		}
	}
}

func TestBidirectionalDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if got := Bidirectional(g, 0, 3); !math.IsInf(got, 1) {
		t.Fatalf("got %v, want +Inf", got)
	}
	if got := Bidirectional(g, 1, 1); got != 0 {
		t.Fatalf("self distance %v", got)
	}
}

func TestAStarZeroHeuristicIsDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ConnectedGNM(50, 120, graph.UniformWeights(1, 3), rng)
	tr := Dijkstra(g, 3)
	for v := 0; v < g.N(); v += 3 {
		got, _ := AStar(g, 3, v, nil)
		if math.Abs(got-tr.Dist[v]) > 1e-9 {
			t.Fatalf("AStar(3,%d) = %v, want %v", v, got, tr.Dist[v])
		}
	}
}

func TestAStarWithPerfectHeuristicSettlesLess(t *testing.T) {
	// On a path graph, the exact distance-to-target heuristic should make
	// A* walk straight to the target.
	rng := rand.New(rand.NewSource(2))
	g := graph.Path(200, graph.UnitWeights(), rng)
	h := func(v int) float64 { return float64(199 - v) }
	d, settled := AStar(g, 0, 199, h)
	if d != 199 {
		t.Fatalf("d = %v", d)
	}
	if settled > 205 {
		t.Fatalf("perfect heuristic settled %d vertices", settled)
	}
	_, settledBlind := AStar(g, 0, 199, nil)
	if settled > settledBlind {
		t.Fatalf("heuristic hurt: %d > %d", settled, settledBlind)
	}
}

func TestQuickBidirectionalAgainstDijkstra(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(n, 3*n, graph.UniformWeights(0.5, 4), rng)
		s, tt := rng.Intn(n), rng.Intn(n)
		want := Dijkstra(g, s).Dist[tt]
		got := Bidirectional(g, s, tt)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
