// Package shortest provides single-source and multi-source Dijkstra
// shortest paths, shortest-path trees, and path utilities over
// internal/graph graphs with non-negative weights.
package shortest

import (
	"math"

	"pathsep/internal/graph"
	"pathsep/internal/pqueue"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Stats counts the work one Dijkstra run performed. The counts are
// always collected (plain local increments, no atomics) so callers with
// an obs.Registry can aggregate them after the fact via Collector.
type Stats struct {
	// HeapPushes counts priority-queue pushes (including decrease-keys).
	HeapPushes int64
	// HeapPops counts priority-queue pops, settled or stale.
	HeapPops int64
	// Settled counts vertices settled (finalized).
	Settled int64
	// EdgesScanned counts neighbor edges examined.
	EdgesScanned int64
	// Relaxations counts tentative-distance improvements.
	Relaxations int64
}

// Tree is a shortest-path tree from one or more sources.
type Tree struct {
	// Dist[v] is the distance from the nearest source, Inf if unreachable.
	Dist []float64
	// Parent[v] is the predecessor on a shortest path, -1 for sources and
	// unreachable vertices.
	Parent []int
	// Source[v] is the source vertex v was reached from (v itself for
	// sources), -1 if unreachable.
	Source []int
	// Order lists vertices in the order they were settled.
	Order []int
	// Hops[v] is the number of edges on the tree path from the source.
	Hops []int
	// Stats is the work accounting of the run that built this tree.
	Stats Stats
}

// Dijkstra computes the shortest-path tree of g from src.
func Dijkstra(g *graph.Graph, src int) *Tree {
	return MultiSourceOffsets(g, []int{src}, nil)
}

// MultiSource computes shortest paths from the nearest of several sources.
func MultiSource(g *graph.Graph, sources []int) *Tree {
	return MultiSourceOffsets(g, sources, nil)
}

// MultiSourceOffsets computes shortest paths from several sources where
// source i starts with initial distance offsets[i] (all zero when offsets
// is nil). This implements distance to a path with positions along it.
func MultiSourceOffsets(g *graph.Graph, sources []int, offsets []float64) *Tree {
	n := g.N()
	t := &Tree{
		Dist:   make([]float64, n),
		Parent: make([]int, n),
		Source: make([]int, n),
		Order:  make([]int, 0, n),
		Hops:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
		t.Parent[i] = -1
		t.Source[i] = -1
	}
	pq := pqueue.New(n)
	var pushes, pops, scanned, relaxed int64
	for i, s := range sources {
		d := 0.0
		if offsets != nil {
			d = offsets[i]
		}
		if d < t.Dist[s] {
			t.Dist[s] = d
			t.Source[s] = s
			pq.Push(s, d)
			pushes++
		}
	}
	done := make([]bool, n)
	for pq.Len() > 0 {
		v, dv := pq.Pop()
		pops++
		if done[v] {
			continue
		}
		done[v] = true
		t.Order = append(t.Order, v)
		for _, h := range g.Neighbors(v) {
			scanned++
			nd := dv + h.W
			if nd < t.Dist[h.To] {
				t.Dist[h.To] = nd
				t.Parent[h.To] = v
				t.Source[h.To] = t.Source[v]
				t.Hops[h.To] = t.Hops[v] + 1
				pq.Push(h.To, nd)
				pushes++
				relaxed++
			}
		}
	}
	t.Stats = Stats{
		HeapPushes:   pushes,
		HeapPops:     pops,
		Settled:      int64(len(t.Order)),
		EdgesScanned: scanned,
		Relaxations:  relaxed,
	}
	return t
}

// PathTo returns the vertex sequence of the tree path from the source of v
// to v, or nil if v is unreachable.
func (t *Tree) PathTo(v int) []int {
	if t.Source[v] < 0 {
		return nil
	}
	var rev []int
	for u := v; u >= 0; u = t.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TreePath returns the vertex sequence of the tree path between u and an
// ancestor a of u (inclusive, from a to u). It returns nil if a is not an
// ancestor of u.
func (t *Tree) TreePath(a, u int) []int {
	var rev []int
	for x := u; x >= 0; x = t.Parent[x] {
		rev = append(rev, x)
		if x == a {
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
	}
	return nil
}

// Distance computes the shortest-path distance between u and v (a full
// Dijkstra; use an oracle for repeated queries).
func Distance(g *graph.Graph, u, v int) float64 {
	return Dijkstra(g, u).Dist[v]
}

// PathLength returns the total weight of the given vertex path in g and
// whether every consecutive pair is an edge.
func PathLength(g *graph.Graph, path []int) (float64, bool) {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.EdgeWeight(path[i], path[i+1])
		if !ok {
			return 0, false
		}
		total += w
	}
	return total, true
}

// IsShortestPath verifies that path is a shortest path in g between its
// endpoints (within a tiny floating-point tolerance). A single-vertex path
// is trivially shortest.
func IsShortestPath(g *graph.Graph, path []int) bool {
	if len(path) == 0 {
		return false
	}
	if len(path) == 1 {
		return true
	}
	length, ok := PathLength(g, path)
	if !ok {
		return false
	}
	d := Distance(g, path[0], path[len(path)-1])
	const tol = 1e-9
	return length <= d*(1+tol)+tol
}

// Eccentricity returns the maximum finite distance from v, and the farthest
// vertex attaining it.
func Eccentricity(g *graph.Graph, v int) (float64, int) {
	t := Dijkstra(g, v)
	best, arg := 0.0, v
	for u, d := range t.Dist {
		if !math.IsInf(d, 1) && d > best {
			best, arg = d, u
		}
	}
	return best, arg
}

// DiameterApprox estimates the weighted diameter by a double sweep from v0.
func DiameterApprox(g *graph.Graph, v0 int) float64 {
	if g.N() == 0 {
		return 0
	}
	_, far := Eccentricity(g, v0)
	d, _ := Eccentricity(g, far)
	return d
}

// AspectRatio estimates the aspect ratio Delta = max dist / min dist of a
// connected graph via a double sweep (the paper normalizes min dist to 1).
func AspectRatio(g *graph.Graph) float64 {
	if g.N() < 2 {
		return 1
	}
	diam := DiameterApprox(g, 0)
	minW, ok := g.MinEdgeWeight()
	if !ok || minW <= 0 {
		return diam
	}
	return diam / minW
}
