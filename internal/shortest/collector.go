package shortest

import "pathsep/internal/obs"

// Collector aggregates per-run Dijkstra Stats into a registry under the
// "shortest.*" names. NewCollector on a nil registry returns nil, and
// the nil Collector's Record is a no-op, so instrumented builders create
// one unconditionally and record every tree they compute:
//
//	col := shortest.NewCollector(reg) // nil when metrics are off
//	tr := shortest.Dijkstra(g, v)
//	col.Record(tr)
type Collector struct {
	runs    *obs.Counter
	pushes  *obs.Counter
	pops    *obs.Counter
	settled *obs.Counter
	scanned *obs.Counter
	relaxed *obs.Counter
}

// NewCollector returns a collector bound to reg, or nil when reg is nil.
func NewCollector(reg *obs.Registry) *Collector {
	if reg == nil {
		return nil
	}
	return &Collector{
		runs:    reg.Counter("shortest.runs"),
		pushes:  reg.Counter("shortest.heap_pushes"),
		pops:    reg.Counter("shortest.heap_pops"),
		settled: reg.Counter("shortest.settled"),
		scanned: reg.Counter("shortest.edges_scanned"),
		relaxed: reg.Counter("shortest.relaxations"),
	}
}

// Record adds one tree's stats to the registry. No-op on nil.
func (c *Collector) Record(t *Tree) {
	if c == nil || t == nil {
		return
	}
	c.runs.Inc()
	c.pushes.Add(t.Stats.HeapPushes)
	c.pops.Add(t.Stats.HeapPops)
	c.settled.Add(t.Stats.Settled)
	c.scanned.Add(t.Stats.EdgesScanned)
	c.relaxed.Add(t.Stats.Relaxations)
}
