package shortest

import (
	"math"

	"pathsep/internal/graph"
	"pathsep/internal/pqueue"
)

// Bidirectional computes the shortest-path distance between s and t by
// alternating Dijkstra expansions from both ends, settling roughly half
// the vertices a unidirectional run would. Returns +Inf if disconnected.
func Bidirectional(g *graph.Graph, s, t int) float64 {
	d, _ := BidirectionalStats(g, s, t)
	return d
}

// BidirectionalStats is Bidirectional plus the number of vertices settled
// (relaxed), for regression tests asserting the search does not expand
// stale heap entries whose tentative distance already meets or exceeds
// the best known s-t meeting distance.
func BidirectionalStats(g *graph.Graph, s, t int) (float64, int) {
	if s == t {
		return 0, 0
	}
	n := g.N()
	distF := make([]float64, n)
	distB := make([]float64, n)
	for i := 0; i < n; i++ {
		distF[i] = math.Inf(1)
		distB[i] = math.Inf(1)
	}
	distF[s], distB[t] = 0, 0
	pqF, pqB := pqueue.New(n), pqueue.New(n)
	pqF.Push(s, 0)
	pqB.Push(t, 0)
	doneF := make([]bool, n)
	doneB := make([]bool, n)
	best := math.Inf(1)
	settled := 0

	expand := func(pq *pqueue.PQ, dist, other []float64, done []bool) bool {
		if pq.Len() == 0 {
			return false
		}
		v, dv := pq.Pop()
		if done[v] {
			return true
		}
		// Any s-t path through v is at least dv >= best, so relaxing its
		// neighbors cannot improve the answer: retire the stale entry
		// without the (formerly wasted) neighbor scan.
		if dv >= best {
			done[v] = true
			return true
		}
		done[v] = true
		settled++
		if !math.IsInf(other[v], 1) && dv+other[v] < best {
			best = dv + other[v]
		}
		for _, h := range g.Neighbors(v) {
			nd := dv + h.W
			if nd >= best {
				// A path through h.To at distance nd cannot beat best;
				// don't enqueue work that the stopping rule will discard.
				continue
			}
			if nd < dist[h.To] {
				dist[h.To] = nd
				pq.Push(h.To, nd)
				if !math.IsInf(other[h.To], 1) && nd+other[h.To] < best {
					best = nd + other[h.To]
				}
			}
		}
		return true
	}

	for pqF.Len() > 0 || pqB.Len() > 0 {
		// Standard stopping rule: stop when the sum of the two frontier
		// minima reaches the best meeting distance.
		topF, topB := math.Inf(1), math.Inf(1)
		if pqF.Len() > 0 {
			_, topF = peek(pqF)
		}
		if pqB.Len() > 0 {
			_, topB = peek(pqB)
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			expand(pqF, distF, distB, doneF)
		} else {
			expand(pqB, distB, distF, doneB)
		}
	}
	return best, settled
}

// BidirectionalPath is Bidirectional plus the witness: it returns the
// shortest s-t distance and one shortest path realizing it (s first, t
// last). s == t yields (0, [s]); a disconnected pair yields (+Inf, nil).
// It is the ground truth the path-reporting differential tests compare
// oracle-reported walks against.
func BidirectionalPath(g *graph.Graph, s, t int) (float64, []int) {
	if s == t {
		return 0, []int{s}
	}
	n := g.N()
	distF := make([]float64, n)
	distB := make([]float64, n)
	parentF := make([]int, n)
	parentB := make([]int, n)
	for i := 0; i < n; i++ {
		distF[i] = math.Inf(1)
		distB[i] = math.Inf(1)
		parentF[i] = -1
		parentB[i] = -1
	}
	distF[s], distB[t] = 0, 0
	pqF, pqB := pqueue.New(n), pqueue.New(n)
	pqF.Push(s, 0)
	pqB.Push(t, 0)
	doneF := make([]bool, n)
	doneB := make([]bool, n)
	best := math.Inf(1)
	meet := -1

	expand := func(pq *pqueue.PQ, dist, other []float64, parent []int, done []bool) {
		v, dv := pq.Pop()
		if done[v] {
			return
		}
		if dv >= best {
			done[v] = true
			return
		}
		done[v] = true
		if !math.IsInf(other[v], 1) && dv+other[v] < best {
			best = dv + other[v]
			meet = v
		}
		for _, h := range g.Neighbors(v) {
			nd := dv + h.W
			if nd >= best {
				continue
			}
			if nd < dist[h.To] {
				dist[h.To] = nd
				parent[h.To] = v
				pq.Push(h.To, nd)
				if !math.IsInf(other[h.To], 1) && nd+other[h.To] < best {
					best = nd + other[h.To]
					meet = h.To
				}
			}
		}
	}

	for pqF.Len() > 0 || pqB.Len() > 0 {
		topF, topB := math.Inf(1), math.Inf(1)
		if pqF.Len() > 0 {
			_, topF = peek(pqF)
		}
		if pqB.Len() > 0 {
			_, topB = peek(pqB)
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			expand(pqF, distF, distB, parentF, doneF)
		} else {
			expand(pqB, distB, distF, parentB, doneB)
		}
	}
	if meet < 0 {
		return math.Inf(1), nil
	}
	// Forward half s..meet (built backwards, then reversed), then the
	// backward half meet..t straight off parentB.
	var path []int
	for v := meet; v >= 0; v = parentF[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	for v := parentB[meet]; v >= 0; v = parentB[v] {
		path = append(path, v)
	}
	return best, path
}

// peek returns the minimum item without removing it.
func peek(pq *pqueue.PQ) (int, float64) {
	item, key := pq.Pop()
	pq.Push(item, key)
	return item, key
}

// AStar computes the shortest-path distance from s to t guided by an
// admissible heuristic h (h(v) must lower-bound d(v,t); h(t) should be
// 0). With h == nil it degenerates to Dijkstra. It returns the distance
// and the number of vertices settled (the work saved by the heuristic).
func AStar(g *graph.Graph, s, t int, h func(int) float64) (float64, int) {
	if s == t {
		return 0, 0
	}
	if h == nil {
		h = func(int) float64 { return 0 }
	}
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	pq := pqueue.New(n)
	pq.Push(s, h(s))
	done := make([]bool, n)
	settled := 0
	for pq.Len() > 0 {
		v, _ := pq.Pop()
		if done[v] {
			continue
		}
		done[v] = true
		settled++
		if v == t {
			return dist[t], settled
		}
		for _, e := range g.Neighbors(v) {
			nd := dist[v] + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				pq.Push(e.To, nd+h(e.To))
			}
		}
	}
	return math.Inf(1), settled
}
