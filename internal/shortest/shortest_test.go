package shortest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/graph"
)

// bellmanFord is an independent reference implementation for cross-checking
// Dijkstra.
func bellmanFord(g *graph.Graph, src int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < g.N(); iter++ {
		changed := false
		g.Edges(func(u, v int, w float64) {
			if dist[u]+w < dist[v] {
				dist[v] = dist[u] + w
				changed = true
			}
			if dist[v]+w < dist[u] {
				dist[u] = dist[v] + w
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Path(5, graph.UnitWeights(), rng)
	tr := Dijkstra(g, 0)
	for v := 0; v < 5; v++ {
		if tr.Dist[v] != float64(v) {
			t.Errorf("dist[%d] = %v", v, tr.Dist[v])
		}
		if tr.Hops[v] != v {
			t.Errorf("hops[%d] = %d", v, tr.Hops[v])
		}
	}
	p := tr.PathTo(4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path %v", p)
		}
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(40, 100, graph.UniformWeights(0.1, 5), rng)
		tr := Dijkstra(g, 0)
		ref := bellmanFord(g, 0)
		for v := 0; v < g.N(); v++ {
			if math.Abs(tr.Dist[v]-ref[v]) > 1e-9 {
				t.Fatalf("seed %d: dist[%d] = %v, ref %v", seed, v, tr.Dist[v], ref[v])
			}
		}
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	tr := Dijkstra(g, 0)
	if !math.IsInf(tr.Dist[2], 1) || tr.Source[2] != -1 {
		t.Fatal("vertex 2 should be unreachable")
	}
	if tr.PathTo(3) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
}

func TestMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Path(10, graph.UnitWeights(), rng)
	tr := MultiSource(g, []int{0, 9})
	if tr.Dist[4] != 4 || tr.Dist[5] != 4 {
		t.Fatalf("multi-source dist: %v %v", tr.Dist[4], tr.Dist[5])
	}
	if tr.Source[1] != 0 || tr.Source[8] != 9 {
		t.Fatalf("sources: %d %d", tr.Source[1], tr.Source[8])
	}
}

func TestMultiSourceOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Path(6, graph.UnitWeights(), rng)
	// Source 0 with offset 10, source 5 with offset 0: everything should be
	// reached from 5.
	tr := MultiSourceOffsets(g, []int{0, 5}, []float64{10, 0})
	for v := 0; v < 6; v++ {
		if v >= 3 && tr.Source[v] != 5 {
			t.Errorf("source[%d] = %d", v, tr.Source[v])
		}
	}
	if tr.Dist[0] != 5 { // min(10, 0+5)
		t.Errorf("dist[0] = %v", tr.Dist[0])
	}
}

func TestTreePath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.BinaryTree(15, graph.UnitWeights(), rng)
	tr := Dijkstra(g, 0)
	p := tr.TreePath(0, 14) // root to leaf
	if p == nil || p[0] != 0 || p[len(p)-1] != 14 {
		t.Fatalf("TreePath = %v", p)
	}
	if tr.TreePath(14, 13) != nil {
		t.Fatal("non-ancestor TreePath should be nil")
	}
}

func TestPathLengthAndIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Cycle(6, graph.UnitWeights(), rng)
	l, ok := PathLength(g, []int{0, 1, 2, 3})
	if !ok || l != 3 {
		t.Fatalf("PathLength = %v %v", l, ok)
	}
	if _, ok := PathLength(g, []int{0, 2}); ok {
		t.Fatal("non-edge path accepted")
	}
	if !IsShortestPath(g, []int{0, 1, 2}) {
		t.Fatal("0-1-2 is shortest in C6")
	}
	if IsShortestPath(g, []int{0, 1, 2, 3, 4}) {
		t.Fatal("0..4 the long way is not shortest in C6")
	}
	if !IsShortestPath(g, []int{3}) {
		t.Fatal("single vertex is trivially shortest")
	}
	if IsShortestPath(g, nil) {
		t.Fatal("empty path is not a path")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Path(10, graph.UnitWeights(), rng)
	ecc, far := Eccentricity(g, 0)
	if ecc != 9 || far != 9 {
		t.Fatalf("ecc = %v far = %d", ecc, far)
	}
	if d := DiameterApprox(g, 5); d != 9 {
		t.Fatalf("diameter = %v", d)
	}
}

func TestAspectRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Path(5, graph.UnitWeights(), rng)
	if ar := AspectRatio(g); ar != 4 {
		t.Fatalf("aspect ratio = %v", ar)
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges
// (relaxation fixpoint) and PathTo lengths equal Dist.
func TestQuickDijkstraFixpoint(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(n, 3*n, graph.UniformWeights(0.5, 4), rng)
		tr := Dijkstra(g, 0)
		okAll := true
		g.Edges(func(u, v int, w float64) {
			if tr.Dist[v] > tr.Dist[u]+w+1e-9 || tr.Dist[u] > tr.Dist[v]+w+1e-9 {
				okAll = false
			}
		})
		for v := 0; v < n && okAll; v++ {
			p := tr.PathTo(v)
			l, ok := PathLength(g, p)
			if !ok || math.Abs(l-tr.Dist[v]) > 1e-9 {
				okAll = false
			}
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every SP-tree path is itself a shortest path (subpath
// optimality), the key fact Definition 1 and the oracle rely on.
func TestQuickSubpathOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(25, 60, graph.UniformWeights(1, 3), rng)
		tr := Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			p := tr.PathTo(v)
			if len(p) > 2 {
				mid := p[len(p)/2:]
				if !IsShortestPath(g, mid) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
