package obs

import "runtime"

// CollectRuntime samples the Go runtime into gauges on r, so a /metrics
// scrape reports GC, heap and scheduler state next to the library's own
// instruments ("go.goroutines", "go.heap_alloc_bytes", ...). It reads
// runtime.MemStats, which briefly stops the world; call it at scrape
// time, not on a hot path. No-op on a nil registry.
func CollectRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go.gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
	r.Gauge("go.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go.heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("go.heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go.stack_sys_bytes").Set(int64(ms.StackSys))
	r.Gauge("go.next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("go.gc_cycles").Set(int64(ms.NumGC))
	r.Gauge("go.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	r.Gauge("go.total_alloc_bytes").Set(int64(ms.TotalAlloc))
}
