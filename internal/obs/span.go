package obs

import "time"

// Span measures the wall-clock duration of one phase of work. It is a
// value type: StartSpan performs no allocation, and the zero Span (from a
// nil registry) is a no-op.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a span whose duration, in nanoseconds, is recorded
// into the histogram named name + ".ns" when End is called. On a nil
// registry it returns the zero Span and records nothing — the disabled
// call site costs one nil check and does not read the clock.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name + ".ns"), start: time.Now()}
}

// End records the span's duration. No-op on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(float64(time.Since(s.start)))
}
