package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// QueryExemplar is one retained slow-query sample: the query endpoints,
// the distance it answered and the observed latency in nanoseconds.
type QueryExemplar struct {
	U    int32   `json:"u"`
	V    int32   `json:"v"`
	Dist float64 `json:"dist"`
	Ns   int64   `json:"ns"`
}

// SlowQuerySampler retains the N slowest query exemplars seen, so an
// operator can ask a running oracle "which queries hurt" without tracing
// every request. It is a bounded min-heap on latency behind a mutex, with
// an atomic admission bar in front: once the reservoir is full, a query
// faster than the slowest retained exemplar costs one atomic load and one
// atomic add — no lock, no allocation — which is what lets the hook sit
// on the per-query serving path. The nil sampler discards everything, so
// call sites need no conditional (same contract as the other obs handles).
type SlowQuerySampler struct {
	floor atomic.Int64 // admission bar: Ns of the fastest retained exemplar once full
	seen  atomic.Int64 // queries offered, admitted or not

	mu   sync.Mutex
	heap []QueryExemplar // min-heap on Ns over a fixed backing array
	capN int
}

// NewSlowQuerySampler returns a sampler retaining the n slowest
// exemplars; n below 1 is treated as 1.
func NewSlowQuerySampler(n int) *SlowQuerySampler {
	if n < 1 {
		n = 1
	}
	return &SlowQuerySampler{heap: make([]QueryExemplar, 0, n), capN: n}
}

// Observe offers one query to the reservoir. No-op on nil. It never
// allocates: the reservoir's backing array is fixed at construction.
func (s *SlowQuerySampler) Observe(u, v int32, dist float64, ns int64) {
	if s == nil {
		return
	}
	s.seen.Add(1)
	if ns <= s.floor.Load() {
		return
	}
	s.mu.Lock()
	switch {
	case len(s.heap) < s.capN:
		s.heap = append(s.heap, QueryExemplar{U: u, V: v, Dist: dist, Ns: ns})
		s.siftUp(len(s.heap) - 1)
		if len(s.heap) == s.capN {
			s.floor.Store(s.heap[0].Ns)
		}
	case ns > s.heap[0].Ns:
		s.heap[0] = QueryExemplar{U: u, V: v, Dist: dist, Ns: ns}
		s.siftDown(0)
		s.floor.Store(s.heap[0].Ns)
	}
	s.mu.Unlock()
}

// siftUp restores the min-heap property after appending at index i.
func (s *SlowQuerySampler) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Ns <= s.heap[i].Ns {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

// siftDown restores the min-heap property after replacing index i.
func (s *SlowQuerySampler) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.heap[l].Ns < s.heap[min].Ns {
			min = l
		}
		if r < n && s.heap[r].Ns < s.heap[min].Ns {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// Snapshot returns a copy of the retained exemplars, slowest first (ties
// broken by vertex IDs so the order is deterministic). Nil on a nil
// sampler.
func (s *SlowQuerySampler) Snapshot() []QueryExemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]QueryExemplar, len(s.heap))
	copy(out, s.heap)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns > out[j].Ns
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Seen returns how many queries have been offered; 0 on nil.
func (s *SlowQuerySampler) Seen() int64 {
	if s == nil {
		return 0
	}
	return s.seen.Load()
}

// Cap returns the reservoir capacity; 0 on nil.
func (s *SlowQuerySampler) Cap() int {
	if s == nil {
		return 0
	}
	return s.capN
}

// Len returns the number of retained exemplars; 0 on nil.
func (s *SlowQuerySampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}
