package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promTestRegistry builds a registry with one instrument of every family
// plus the awkward cases the exposition must handle: a name needing
// sanitization (and HELP escaping), an empty histogram, and an
// observation in the overflow bucket.
func promTestRegistry() *Registry {
	r := New()
	r.Counter("oracle.queries").Add(42)
	r.Counter(`weird.name"with\stuff`).Inc()
	r.Gauge("build.workers_busy").Set(3)
	h := r.Histogram("oracle.query_ns")
	h.Observe(1)
	h.Observe(3)
	h.Observe(1000)
	h.Observe(math.Inf(1)) // overflow bucket: must fold into +Inf
	// The per-query portal-work histogram the flat oracle observes; the
	// golden pins its exposed name and bucket series.
	p := r.Histogram("oracle.query_portals")
	p.Observe(0)
	p.Observe(68)
	p.Observe(68)
	r.Histogram("oracle.empty_hist")
	return r
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// sorted output, # HELP/# TYPE lines, cumulative histogram buckets with
// the mandatory +Inf bucket, name sanitization and HELP escaping.
// Regenerate with PROM_GOLDEN_UPDATE=1 go test ./internal/obs -run Golden.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("PROM_GOLDEN_UPDATE") == "1" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestWritePrometheusStable asserts two writes of an idle registry are
// byte-identical (the sort is total, not map-order-dependent).
func TestWritePrometheusStable(t *testing.T) {
	r := promTestRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("consecutive writes differ:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}
}

// TestWritePrometheusCumulative checks the bucket conversion directly:
// per-bucket counts become running totals and the +Inf bucket equals
// _count even when the overflow bucket is occupied.
func TestWritePrometheusCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	h.Observe(1) // le=1
	h.Observe(3) // le=4
	h.Observe(3) // le=4
	h.Observe(math.Inf(1))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`pathsep_h_bucket{le="1"} 1`,
		`pathsep_h_bucket{le="4"} 3`,
		`pathsep_h_bucket{le="+Inf"} 4`,
		`pathsep_h_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "5.6294995342131e") || strings.Contains(out, "e+14") {
		t.Errorf("overflow bucket leaked a finite le into:\n%s", out)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"oracle.query_ns":       "pathsep_oracle_query_ns",
		`weird.name"with\stuff`: "pathsep_weird_name_with_stuff",
		"a-b/c d":               "pathsep_a_b_c_d",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusHandler checks the scrape endpoint: content type, the
// runtime gauges sampled at scrape time, and that the body parses as
// exposition lines.
func TestPrometheusHandler(t *testing.T) {
	r := New()
	r.Counter("oracle.queries").Add(7)
	rec := httptest.NewRecorder()
	PrometheusHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"pathsep_oracle_queries 7\n",
		"# TYPE pathsep_go_goroutines gauge\n",
		"# TYPE pathsep_go_heap_alloc_bytes gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}
