package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter handle not cached by name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax(11) = %d, want 11", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for _, v := range []float64{0.5, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-1006.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1006.5", h.Sum())
	}
	s := h.snapshot()
	if s.Min != 0.5 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v, want 0.5/1000", s.Min, s.Max)
	}
	// 0.5 and 1 land in bucket le=1; 2 in le=2; 3 in le=4; 1000 in le=1024.
	want := []Bucket{{Le: 1, Count: 2}, {Le: 2, Count: 1}, {Le: 4, Count: 1}, {Le: 1024, Count: 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.01, 2},
		{math.NaN(), 0}, {math.Inf(1), histBuckets - 1}, {1e300, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestConcurrentUpdates exercises counters, gauges, histograms, and spans
// from many goroutines; run under -race it checks the atomics hold up.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(float64(i))
				sp := r.StartSpan("shared.span")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("shared.gauge").Value(); got != workers*per-1 {
		t.Fatalf("gauge = %d, want %d", got, workers*per-1)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("shared.span.ns").Count(); got != workers*per {
		t.Fatalf("span count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a.count").Add(3)
	r.Gauge("a.max").Set(9)
	h := r.Histogram("a.hist")
	h.Observe(1)
	h.Observe(100)
	sp := r.StartSpan("a.phase")
	time.Sleep(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(back, r.Snapshot()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, r.Snapshot())
	}
	if back.Histograms["a.phase.ns"].Count != 1 {
		t.Fatalf("span histogram missing from snapshot: %+v", back.Histograms)
	}
}

// TestDisabledPathZeroAllocs asserts that a nil registry makes every
// instrumented call site allocation-free.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	tr := (*Trace)(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(5)
		g.SetMax(9)
		h.Observe(3.5)
		sp := r.StartSpan("x")
		sp.End()
		id := tr.Add(-1, "node")
		tr.SetNanos(id, 10)
		tr.SetAttr(id, "n", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v times per run, want 0", allocs)
	}
}

// TestEnabledPathZeroAllocs asserts the steady-state enabled path (handles
// already fetched) is allocation-free too, so metrics never distort what
// they measure.
func TestEnabledPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled path allocated %v times per run, want 0", allocs)
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace()
	root := tr.Add(-1, "auto")
	tr.SetAttr(root, "n", 100)
	tr.SetNanos(root, int64(3*time.Millisecond))
	child := tr.Add(root, "greedy-sptree")
	tr.SetAttr(child, "n", 40)
	grand := tr.Add(child, "exhaust")
	tr.SetNanos(grand, 500)
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteIndented(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "[0] auto n=100") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  [1] greedy-sptree") {
		t.Errorf("child line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    [2] exhaust") {
		t.Errorf("grandchild line = %q", lines[2])
	}
}
