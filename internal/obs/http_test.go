package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeLifecycle starts a debug server on an ephemeral port, scrapes
// it, and shuts it down: the satellite contract that Serve is no longer a
// fire-and-forget ListenAndServe on the default mux.
func TestServeLifecycle(t *testing.T) {
	r := New()
	r.Counter("oracle.queries").Add(5)
	srv, done, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "pathsep_oracle_queries 5") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"pathsep", "memstats", "cmdline"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q (have %d keys)", key, len(vars))
		}
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["pathsep"], &snap); err != nil {
		t.Fatalf("pathsep var is not a Snapshot: %v", err)
	}
	if snap.Counters["oracle.queries"] != 5 {
		t.Errorf("snapshot counter = %d, want 5", snap.Counters["oracle.queries"])
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-done:
		// serve goroutine joined
	case <-time.After(5 * time.Second):
		t.Fatal("serve goroutine did not exit after Shutdown")
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

// TestServeBadAddr asserts bind failures surface synchronously.
func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.256.256.256:0", New()); err == nil {
		t.Fatal("want a bind error for an unusable address")
	}
}

// TestPublishRepeatIsError pins the satellite fix: the first registry
// wins the expvar name, re-publishing it is idempotent, and a different
// registry is an explicit error instead of a silent ignore.
func TestPublishRepeatIsError(t *testing.T) {
	a, b := New(), New()
	if err := Publish(a); err != nil {
		t.Fatalf("first Publish: %v", err)
	}
	if err := Publish(a); err != nil {
		t.Fatalf("re-Publish of the same registry: %v", err)
	}
	if err := Publish(b); err == nil {
		t.Fatal("Publish of a second registry must be an explicit error")
	}
}
