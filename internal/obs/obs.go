// Package obs is the zero-dependency observability layer of the library:
// atomic counters, gauges, and fixed-bucket histograms behind a Registry,
// a cheap span API for phase timings, and a decomposition trace tree.
//
// Every instrument is safe to use through a nil receiver: a nil *Registry
// hands out nil *Counter / *Gauge / *Histogram handles and zero Spans,
// whose methods are no-ops. Hot paths therefore fetch their handles once
// (at build time or at the top of an operation) and call them
// unconditionally — the disabled path is a nil check per call and
// performs no allocation, which BenchmarkObsOverhead verifies.
//
// Instruments are identified by flat dotted names ("oracle.query_ns");
// Registry.Snapshot serializes everything to a stable JSON document.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value (or max-value) instrument. The nil Gauge
// discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger. No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of histogram buckets: bucket 0 counts values
// <= 1, bucket i counts values in (2^(i-1), 2^i], and the last bucket is
// the overflow. 2^48 ns is about three days, 2^48 is also far beyond any
// count-valued observation this library records.
const histBuckets = 50

// Histogram is a fixed-bucket base-2 exponential histogram with atomic
// count, sum, min and max. The nil Histogram discards all observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
	minBits atomic.Uint64 // float64 bits; +Inf when empty
	maxBits atomic.Uint64 // float64 bits; -Inf when empty
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex returns the bucket for v: 0 for v <= 1, otherwise
// ceil(log2(v)) clamped to the overflow bucket.
func bucketIndex(v float64) int {
	if v <= 1 || math.IsNaN(v) {
		return 0
	}
	e := math.Ilogb(v)
	if math.Ldexp(1, e) < v {
		e++
	}
	if e >= histBuckets {
		return histBuckets - 1
	}
	return e
}

// Observe records one value. No-op on nil. Allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds named instruments. The nil Registry hands out nil
// handles, making every instrumented call site a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
