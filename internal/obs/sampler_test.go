package obs

import (
	"sync"
	"testing"
)

func TestSlowQuerySamplerKeepsSlowest(t *testing.T) {
	s := NewSlowQuerySampler(3)
	// Offer latencies 1..10 in an order that exercises both heap paths.
	for _, ns := range []int64{5, 1, 9, 2, 7, 10, 3, 8, 4, 6} {
		s.Observe(int32(ns), int32(ns*2), float64(ns)/2, ns)
	}
	got := s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d exemplars, want 3", len(got))
	}
	for i, wantNs := range []int64{10, 9, 8} {
		if got[i].Ns != wantNs {
			t.Errorf("exemplar %d: ns=%d, want %d (snapshot %+v)", i, got[i].Ns, wantNs, got)
		}
	}
	if got[0].U != 10 || got[0].V != 20 || got[0].Dist != 5 {
		t.Errorf("slowest exemplar carries wrong tuple: %+v", got[0])
	}
	if s.Seen() != 10 {
		t.Errorf("seen = %d, want 10", s.Seen())
	}
	if s.Len() != 3 || s.Cap() != 3 {
		t.Errorf("len/cap = %d/%d, want 3/3", s.Len(), s.Cap())
	}
}

// TestSlowQuerySamplerAdmissionBar checks the lock-free fast path: once
// the reservoir is full, faster queries are rejected by the atomic floor
// without disturbing the retained set.
func TestSlowQuerySamplerAdmissionBar(t *testing.T) {
	s := NewSlowQuerySampler(2)
	s.Observe(1, 1, 0, 100)
	s.Observe(2, 2, 0, 200)
	if got := s.floor.Load(); got != 100 {
		t.Fatalf("floor after fill = %d, want 100", got)
	}
	s.Observe(3, 3, 0, 50) // below the bar: dropped on the fast path
	got := s.Snapshot()
	if len(got) != 2 || got[0].Ns != 200 || got[1].Ns != 100 {
		t.Fatalf("reservoir disturbed by fast-path reject: %+v", got)
	}
	s.Observe(4, 4, 0, 150) // evicts the 100ns exemplar
	if got := s.floor.Load(); got != 150 {
		t.Fatalf("floor after eviction = %d, want 150", got)
	}
}

func TestSlowQuerySamplerNil(t *testing.T) {
	var s *SlowQuerySampler
	s.Observe(1, 2, 3, 4) // must not panic
	if s.Snapshot() != nil || s.Seen() != 0 || s.Len() != 0 || s.Cap() != 0 {
		t.Fatal("nil sampler must report empty state")
	}
}

// TestSlowQuerySamplerZeroAllocs pins the Observe contract on both
// paths: the fast reject and the locked insert never allocate.
func TestSlowQuerySamplerZeroAllocs(t *testing.T) {
	s := NewSlowQuerySampler(8)
	ns := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ns++
		s.Observe(int32(ns), int32(ns), 1.5, ns) // always admitted: heap churn
		s.Observe(int32(ns), int32(ns), 1.5, 0)  // always rejected: fast path
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per run, want 0", allocs)
	}
}

// TestSlowQuerySamplerConcurrent hammers the sampler from many
// goroutines; under -race this checks the atomic/mutex split.
func TestSlowQuerySamplerConcurrent(t *testing.T) {
	s := NewSlowQuerySampler(16)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(int32(w), int32(i), 1, int64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if s.Seen() != workers*per {
		t.Fatalf("seen = %d, want %d", s.Seen(), workers*per)
	}
	got := s.Snapshot()
	if len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
	// The global slowest observation must always survive.
	if got[0].Ns != workers*per-1 {
		t.Fatalf("slowest retained = %d, want %d", got[0].Ns, workers*per-1)
	}
}
