package obs

import (
	"expvar"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

var publishOnce sync.Once

// Serve exposes the registry snapshot at /debug/vars (via expvar, under
// the "pathsep" key) and the standard net/http/pprof profiling endpoints
// at /debug/pprof on addr. It blocks, so callers run it in a goroutine:
//
//	go obs.Serve("localhost:6060", reg)
//
// Only the first registry passed across all calls is published; expvar
// names are process-global.
func Serve(addr string, r *Registry) error {
	publishOnce.Do(func() {
		expvar.Publish("pathsep", expvar.Func(func() any { return r.Snapshot() }))
	})
	return http.ListenAndServe(addr, nil)
}
