package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// RegisterDebug mounts the observability endpoints for r on mux:
//
//	/metrics       Prometheus text format (runtime gauges sampled per scrape)
//	/debug/vars    expvar-style JSON: process globals + r under "pathsep"
//	/debug/pprof/  the standard net/http/pprof profile handlers
//
// The mux is the caller's, so several servers with distinct registries can
// coexist in one process — nothing here touches process-global state.
func RegisterDebug(mux *http.ServeMux, r *Registry) {
	mux.Handle("/metrics", PrometheusHandler(r))
	mux.Handle("/debug/vars", VarsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// PrometheusHandler serves r in the Prometheus text exposition format
// (version 0.0.4), refreshing the "go.*" runtime gauges on every scrape.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		CollectRuntime(r)
		w.Header().Set("Content-Type", promContentType)
		var buf bytes.Buffer
		// A bytes.Buffer write cannot fail; errors surface only from the
		// ResponseWriter, where there is no one left to report them to.
		_ = r.WritePrometheus(&buf)
		_, _ = w.Write(buf.Bytes())
	})
}

// VarsHandler serves the expvar-style JSON document: every process-global
// expvar (memstats, cmdline, anything the application published) plus r's
// snapshot under the "pathsep" key. A globally Published "pathsep" var is
// shadowed by r, so each server reports its own registry.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var buf bytes.Buffer
		buf.WriteString("{\n")
		expvar.Do(func(kv expvar.KeyValue) {
			if kv.Key == publishKey {
				return
			}
			fmt.Fprintf(&buf, "%q: %s,\n", kv.Key, kv.Value.String())
		})
		snap, err := json.Marshal(r.Snapshot())
		if err != nil {
			snap = []byte("{}")
		}
		fmt.Fprintf(&buf, "%q: %s\n}\n", publishKey, snap)
		_, _ = w.Write(buf.Bytes())
	})
}

// publishKey is the expvar name the registry snapshot is published under.
const publishKey = "pathsep"

var (
	publishMu sync.Mutex
	published *Registry
)

// Publish exposes r's snapshot as the process-global expvar "pathsep", so
// it appears in /debug/vars documents served off the default mux too.
// expvar names are process-global and permanent: the first registry wins
// the name, publishing the same registry again is a no-op, and publishing
// a different one is an explicit error (not a silent ignore).
func Publish(r *Registry) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	switch {
	case published == nil:
		published = r
		reg := r // capture: published itself is guarded by publishMu
		expvar.Publish(publishKey, expvar.Func(func() any { return reg.Snapshot() }))
		return nil
	case published == r:
		return nil
	default:
		return fmt.Errorf("obs: expvar key %q already publishes a different registry", publishKey)
	}
}

// Serve binds addr and serves RegisterDebug's endpoints for r on a
// private mux in a background goroutine. It returns once the listener is
// bound — a bad address fails here, not asynchronously — and the caller
// owns the returned server's lifetime:
//
//	srv, done, err := obs.Serve("localhost:6060", reg)
//	...
//	srv.Shutdown(ctx) // graceful: in-flight scrapes complete
//	<-done            // the serve goroutine has exited
//
// The done channel closes when the serve goroutine exits (after
// Shutdown/Close, or if the listener dies), so the goroutine is
// join-able rather than fire-and-forget. srv.Addr carries the bound
// address (useful with ":0").
func Serve(addr string, r *Registry) (*http.Server, <-chan struct{}, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, r)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	done := make(chan struct{})
	go func() {
		// Serve returns http.ErrServerClosed on Shutdown/Close; any other
		// error means the listener died, which Shutdown will also surface.
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return srv, done, nil
}
