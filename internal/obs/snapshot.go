package obs

import (
	"encoding/json"
	"io"
	"math"
)

// Bucket is one non-empty histogram bucket: Count observations with
// value <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a Registry, serializable to JSON
// and back. Histogram buckets with zero observations are omitted; the
// overflow bucket reports Le = +Inf encoded as JSON null-safe max float.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// snapshot copies one histogram under the registry lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		le := math.Ldexp(1, i)
		if i == 0 {
			le = 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: c})
	}
	return s
}

// Snapshot returns a copy of every instrument's current state. A nil
// registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for _, k := range sortedKeys(r.counters) {
			s.Counters[k] = r.counters[k].Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for _, k := range sortedKeys(r.gauges) {
			s.Gauges[k] = r.gauges[k].Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, k := range sortedKeys(r.hists) {
			s.Histograms[k] = r.hists[k].snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
