package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one key=value annotation of a trace node (subgraph size, path
// count, ...). Values are integral because every decomposition quantity
// the library traces is a count or a nanosecond duration.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// TraceNode is one node of a trace tree: a labeled phase of work with a
// duration and annotations, linked to its parent by ID.
type TraceNode struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"` // -1 for roots
	Label  string `json:"label"`
	Nanos  int64  `json:"ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Trace is an append-only tree of TraceNodes, used to mirror the
// decomposition recursion. The nil Trace discards everything: Add
// returns -1 and the setters are no-ops, so producers thread a Trace
// unconditionally and pay one nil check when tracing is off.
type Trace struct {
	mu    sync.Mutex
	nodes []TraceNode
}

// NewTrace returns an empty Trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends a node under parent (-1 for a root) and returns its ID.
// Returns -1 on a nil Trace.
func (t *Trace) Add(parent int, label string) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.nodes)
	t.nodes = append(t.nodes, TraceNode{ID: id, Parent: parent, Label: label})
	return id
}

// SetNanos records the duration of node id. No-op on nil or id < 0.
func (t *Trace) SetNanos(id int, ns int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[id].Nanos = ns
}

// SetAttr appends a key=value annotation to node id. No-op on nil or
// id < 0.
func (t *Trace) SetAttr(id int, key string, val int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[id].Attrs = append(t.nodes[id].Attrs, Attr{Key: key, Val: val})
}

// Len returns the number of nodes; 0 on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.nodes)
}

// Nodes returns a copy of the trace nodes in insertion order.
func (t *Trace) Nodes() []TraceNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceNode, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// WriteIndented renders the trace as an indented tree, one node per
// line: label, attributes in insertion order, and the duration.
func (t *Trace) WriteIndented(w io.Writer) error {
	nodes := t.Nodes()
	children := make([][]int, len(nodes))
	var roots []int
	for _, n := range nodes {
		if n.Parent < 0 {
			roots = append(roots, n.ID)
		} else {
			children[n.Parent] = append(children[n.Parent], n.ID)
		}
	}
	var render func(id, depth int) error
	render = func(id, depth int) error {
		n := nodes[id]
		for i := 0; i < depth; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "[%d] %s", n.ID, n.Label); err != nil {
			return err
		}
		for _, a := range n.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%d", a.Key, a.Val); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " (%v)\n", time.Duration(n.Nanos).Round(time.Microsecond)); err != nil {
			return err
		}
		for _, c := range children[id] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}
