package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition of a Registry.
//
// Every instrument is exposed under the "pathsep_" namespace with its
// dotted name flattened ("oracle.query_ns" -> "pathsep_oracle_query_ns"):
// counters as counter metrics, gauges as gauge metrics, and the
// fixed-bucket exponential histograms as histogram metrics with the
// per-bucket counts converted to Prometheus's cumulative form plus the
// mandatory +Inf bucket, _sum and _count series. Output is sorted by
// exposed metric name, so consecutive scrapes of an idle registry are
// byte-identical and the golden-file test can pin the format down.

// promContentType is the Content-Type of the text exposition format.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exposed metric.
const promPrefix = "pathsep_"

// overflowLe is the Le reported by the histogram overflow bucket; values
// at or above it are really "greater than the last finite bound", so the
// exposition folds them into the +Inf bucket.
var overflowLe = math.Ldexp(1, histBuckets-1)

// promHelp carries HELP text for the well-known instrument names. Names
// not listed here fall back to a generic line quoting the dotted name.
var promHelp = map[string]string{
	"oracle.query_ns":      "Latency of one oracle distance query in nanoseconds.",
	"oracle.query_portals": "Portal candidates scanned by one distance query.",
	"oracle.batch_qps":     "Throughput of the most recent QueryBatch call in queries per second.",
	"oracle.flat_bytes":    "Encoded size of the attached flat oracle image in bytes.",
	"serve.queries":        "Single-query HTTP requests answered.",
	"serve.batches":        "Batch HTTP requests answered (JSON and binary).",
	"serve.batch_pairs":    "Query pairs answered through the batch endpoints.",
	"serve.errors":         "HTTP requests rejected with a client or server error.",
	"serve.inflight":       "Query requests currently being served.",
	"serve.request_ns":     "Wall-clock time of one query HTTP request in nanoseconds.",
	"go.goroutines":        "Live goroutines at scrape time.",
	"go.gomaxprocs":        "GOMAXPROCS at scrape time.",
	"go.heap_alloc_bytes":  "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
	"go.heap_sys_bytes":    "Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).",
	"go.heap_objects":      "Number of allocated heap objects.",
	"go.stack_sys_bytes":   "Bytes of stack memory obtained from the OS.",
	"go.next_gc_bytes":     "Heap size target of the next GC cycle.",
	"go.gc_cycles":         "Completed GC cycles since process start.",
	"go.gc_pause_total_ns": "Cumulative GC stop-the-world pause time in nanoseconds.",
	"go.total_alloc_bytes": "Cumulative bytes allocated for heap objects since process start.",
}

// promName flattens a dotted instrument name into a valid Prometheus
// metric name: the "pathsep_" prefix followed by the name with every rune
// outside [a-zA-Z0-9_:] replaced by '_'. The prefix also keeps a leading
// digit legal.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line per the exposition format: backslash and
// newline are the only characters with escape sequences.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promKind discriminates the three instrument families in the merged,
// name-sorted exposition list.
type promKind int

const (
	promCounter promKind = iota
	promGauge
	promHistogram
)

func (k promKind) String() string {
	switch k {
	case promCounter:
		return "counter"
	case promGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promMetric is one instrument scheduled for exposition.
type promMetric struct {
	name string // exposed (sanitized) name
	orig string // dotted registry name
	kind promKind
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format, sorted by exposed metric name. A nil registry
// writes nothing. The error is the writer's.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	list := make([]promMetric, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, name := range sortedKeys(s.Counters) {
		list = append(list, promMetric{promName(name), name, promCounter})
	}
	for _, name := range sortedKeys(s.Gauges) {
		list = append(list, promMetric{promName(name), name, promGauge})
	}
	for _, name := range sortedKeys(s.Histograms) {
		list = append(list, promMetric{promName(name), name, promHistogram})
	}
	// Distinct dotted names can sanitize to the same exposed name; suffix
	// later claimants with their family so the exposition stays valid.
	used := make(map[string]bool, len(list))
	for i := range list {
		if used[list[i].name] {
			list[i].name += "_" + list[i].kind.String()
		}
		used[list[i].name] = true
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].name != list[j].name {
			return list[i].name < list[j].name
		}
		return list[i].orig < list[j].orig
	})

	var b strings.Builder
	for _, m := range list {
		help, ok := promHelp[m.orig]
		if !ok {
			help = fmt.Sprintf("pathsep %s %q.", m.kind, m.orig)
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case promCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, s.Counters[m.orig])
		case promGauge:
			fmt.Fprintf(&b, "%s %d\n", m.name, s.Gauges[m.orig])
		case promHistogram:
			h := s.Histograms[m.orig]
			cum := int64(0)
			for _, bk := range h.Buckets {
				if bk.Le >= overflowLe {
					// The overflow bucket has no finite upper bound; its
					// count is carried by the +Inf bucket below.
					continue
				}
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bk.Le), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, h.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, h.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
