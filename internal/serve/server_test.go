package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
)

// testFlat builds and freezes a small grid oracle.
func testFlat(tb testing.TB) *oracle.Flat {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	r := embed.Grid(12, 12, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		tb.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	return fl
}

// newTestServer wires a Server (with sampler) plus an httptest front end.
func newTestServer(tb testing.TB, cfg Config) (*Server, *httptest.Server, *oracle.Flat) {
	tb.Helper()
	fl := cfg.Flat
	if fl == nil {
		fl = testFlat(tb)
		cfg.Flat = fl
	}
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts, fl
}

func TestQueryEndpoint(t *testing.T) {
	_, ts, fl := newTestServer(t, Config{Slow: obs.NewSlowQuerySampler(4)})

	resp, err := http.Get(ts.URL + "/query?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got struct {
		U    int      `json:"u"`
		V    int      `json:"v"`
		Dist *float64 `json:"dist"`
		Ns   int64    `json:"ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := fl.Query(0, 17)
	if got.U != 0 || got.V != 17 || got.Dist == nil || *got.Dist != want {
		t.Fatalf("got %+v, want dist %v", got, want)
	}
	if got.Ns < 0 {
		t.Fatalf("negative latency %d", got.Ns)
	}

	// Out-of-range vertex: a 400 naming the valid range, not a silent
	// null distance.
	resp2, err := http.Get(ts.URL + "/query?u=0&v=99999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "[0, 144)") {
		t.Fatalf("out-of-range: status=%d body=%s, want 400 naming [0, 144)", resp2.StatusCode, body)
	}

	// Malformed arguments are a 400.
	resp3, err := http.Get(ts.URL + "/query?u=zero&v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad args: status=%d, want 400", resp3.StatusCode)
	}
}

func TestBatchJSONEndpoint(t *testing.T) {
	_, ts, fl := newTestServer(t, Config{})
	req := `{"pairs":[[0,5],[3,9],[7,7]]}`
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got struct {
		N     int        `json:"n"`
		Dists []*float64 `json:"dists"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || len(got.Dists) != 3 {
		t.Fatalf("n=%d len=%d, want 3/3", got.N, len(got.Dists))
	}
	for i, pair := range [][2]int{{0, 5}, {3, 9}, {7, 7}} {
		want := fl.Query(pair[0], pair[1])
		if got.Dists[i] == nil || *got.Dists[i] != want {
			t.Errorf("pair %d: got %v, want %v", i, got.Dists[i], want)
		}
	}

	// A batch with an out-of-range ID is rejected whole, with a 400
	// naming the offending index.
	for _, bad := range []string{
		`{"pairs":[[0,5],[3,9],[7,7],[0,99999]]}`,
		`{"pairs":[[0,5],[3,9],[7,7],[-2,1]]}`,
	} {
		resp, err := http.Post(ts.URL+"/query/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "pair 3") {
			t.Fatalf("out-of-range batch: status=%d body=%s, want 400 naming pair 3", resp.StatusCode, body)
		}
	}
}

func TestBatchBinEndpoint(t *testing.T) {
	_, ts, fl := newTestServer(t, Config{})
	pairs := [][2]int32{{0, 5}, {3, 9}, {143, 0}, {7, 7}, {0, 1 << 30}}
	body := make([]byte, 8*len(pairs))
	for i, p := range pairs {
		binary.LittleEndian.PutUint32(body[8*i:], uint32(p[0]))
		binary.LittleEndian.PutUint32(body[8*i+4:], uint32(p[1]))
	}
	resp, err := http.Post(ts.URL+"/query/batchbin", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out) != 8*len(pairs) {
		t.Fatalf("status=%d len=%d, want 200/%d", resp.StatusCode, len(out), 8*len(pairs))
	}
	for i, p := range pairs {
		got := math.Float64frombits(binary.LittleEndian.Uint64(out[8*i:]))
		want := fl.Query(int(p[0]), int(p[1]))
		// Bitwise: the wire carries exactly what Flat.Query answers.
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("pair %d (%d,%d): got %v, want %v", i, p[0], p[1], got, want)
		}
	}

	// A body that is not whole pairs is a 400.
	resp2, err := http.Post(ts.URL+"/query/batchbin", "application/octet-stream", bytes.NewReader(body[:13]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged body: status=%d, want 400", resp2.StatusCode)
	}
}

func TestBatchCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxBatch: 2})
	body := make([]byte, 8*3)
	resp, err := http.Post(ts.URL+"/query/batchbin", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch: status=%d, want 413", resp.StatusCode)
	}
}

func TestAdminStatus(t *testing.T) {
	s, ts, fl := newTestServer(t, Config{
		Slow:   obs.NewSlowQuerySampler(4),
		Source: "test:grid12",
	})
	// Drive some traffic first so the counters are non-trivial.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, i, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "pathsepd" || st.Image.Source != "test:grid12" {
		t.Fatalf("identity fields wrong: %+v", st)
	}
	if st.Image.N != fl.N() || st.Image.Bytes != fl.EncodedSize() || st.Image.Mode != "portal" {
		t.Fatalf("image metadata wrong: %+v", st.Image)
	}
	if st.Image.PathReporting != fl.PathReporting() {
		t.Fatalf("path_reporting = %v, image says %v", st.Image.PathReporting, fl.PathReporting())
	}
	if st.Image.PortalPoolBytes != 16*fl.NumPortals() || st.Image.SweepLaneBytes != fl.LaneBytes() {
		t.Fatalf("pool sizing wrong: %+v (want portal pool %d, lanes %d)",
			st.Image, 16*fl.NumPortals(), fl.LaneBytes())
	}
	if st.Image.LaneAligned != fl.LaneAligned() {
		t.Fatalf("lane_aligned = %v, image says %v", st.Image.LaneAligned, fl.LaneAligned())
	}
	if st.Serving.Queries != 5 {
		t.Fatalf("queries = %d, want 5", st.Serving.Queries)
	}
	if len(st.SlowQueries) == 0 || st.SlowSeen != 5 {
		t.Fatalf("slow-query exemplars missing: %+v (seen %d)", st.SlowQueries, st.SlowSeen)
	}
	if st.Metrics.Histograms["oracle.query_ns"].Count != 5 {
		t.Fatalf("obs snapshot not embedded: %+v", st.Metrics.Histograms)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight = %d after all requests done", s.Inflight())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?u=0&v=9")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE pathsep_serve_queries counter\n",
		"pathsep_serve_queries 1\n",
		"# TYPE pathsep_oracle_query_ns histogram\n",
		`pathsep_oracle_query_ns_bucket{le="+Inf"} 1` + "\n",
		"# TYPE pathsep_oracle_query_portals histogram\n",
		`pathsep_oracle_query_portals_bucket{le="+Inf"} 1` + "\n",
		"pathsep_oracle_query_portals_count 1\n",
		"# TYPE pathsep_go_goroutines gauge\n",
		"pathsep_oracle_flat_bytes ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestDrainInFlightCompletes pins graceful drain: a request already being
// served when Shutdown starts runs to completion and gets its response,
// while the listener stops accepting new work. The in-flight request is
// held open deterministically by a half-sent body (the handler blocks in
// ReadAll until the client finishes), not by sleeps.
func TestDrainInFlightCompletes(t *testing.T) {
	fl := testFlat(t)
	s, err := New(Config{Flat: fl})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// One pair, sent in two halves through a pipe.
	var pairBuf [8]byte
	binary.LittleEndian.PutUint32(pairBuf[0:], 0)
	binary.LittleEndian.PutUint32(pairBuf[4:], 17)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/query/batchbin", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = 8

	type result struct {
		resp *http.Response
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		reqDone <- result{resp, err}
	}()
	if _, err := pw.Write(pairBuf[:4]); err != nil {
		t.Fatal(err)
	}
	// The handler is now blocked reading the body; wait until the server
	// has actually accepted it before draining.
	deadline := time.Now().Add(5 * time.Second)
	for s.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()

	// New connections are refused once Shutdown has closed the listener.
	refusedDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err != nil {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatal("listener still accepting long after Shutdown began")
		}
		time.Sleep(time.Millisecond)
	}

	// Complete the in-flight body: the drained request must still answer.
	if _, err := pw.Write(pairBuf[4:]); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-reqDone
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	defer res.resp.Body.Close()
	out, err := io.ReadAll(res.resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.resp.StatusCode != http.StatusOK || len(out) != 8 {
		t.Fatalf("in-flight response: status=%d len=%d", res.resp.StatusCode, len(out))
	}
	got := math.Float64frombits(binary.LittleEndian.Uint64(out))
	if want := fl.Query(0, 17); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("drained answer %v, want %v", got, want)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestQueryValidationContract pins the status-code contract of the GET
// query endpoints: 200 only for well-formed in-range requests, 400 for
// anything non-integer, negative, or out of range — never a 500, never a
// silent null.
func TestQueryValidationContract(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}) // n = 144
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"ok", "/query?u=0&v=17", http.StatusOK},
		{"self", "/query?u=7&v=7", http.StatusOK},
		{"missing-args", "/query", http.StatusBadRequest},
		{"non-integer-u", "/query?u=zero&v=1", http.StatusBadRequest},
		{"float-v", "/query?u=1&v=1.5", http.StatusBadRequest},
		{"negative-u", "/query?u=-1&v=3", http.StatusBadRequest},
		{"negative-v", "/query?u=3&v=-2", http.StatusBadRequest},
		{"u-at-n", "/query?u=144&v=0", http.StatusBadRequest},
		{"v-past-n", "/query?u=0&v=99999", http.StatusBadRequest},
		{"path-ok", "/query/path?u=0&v=17", http.StatusOK},
		{"path-self", "/query/path?u=7&v=7", http.StatusOK},
		{"path-missing-args", "/query/path", http.StatusBadRequest},
		{"path-non-integer", "/query/path?u=x&v=1", http.StatusBadRequest},
		{"path-negative", "/query/path?u=-5&v=1", http.StatusBadRequest},
		{"path-past-n", "/query/path?u=0&v=144", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s: status=%d body=%s, want %d", tc.url, resp.StatusCode, body, tc.want)
			}
		})
	}
}

// distanceOnlyFlat rewrites fl's v2 encoding into the equivalent v1
// (distance-only) image: same header fields minus the path-vertex count,
// same keys-through-portals sections shifted down 8 bytes, path sections
// dropped. Every section keeps its alignment (the 8-byte header delta
// preserves residues mod 8), so this is a byte-exact v1 image of the
// same oracle.
func distanceOnlyFlat(tb testing.TB, fl *oracle.Flat) *oracle.Flat {
	tb.Helper()
	enc := fl.Encode()
	if enc[1] != 2 {
		tb.Fatalf("expected a v2 image, got version %d", enc[1])
	}
	le := binary.LittleEndian
	n := int(le.Uint64(enc[8:]))
	numKeys := int(le.Uint64(enc[32:]))
	numEntries := int(le.Uint64(enc[40:]))
	numPortals := int(le.Uint64(enc[48:]))
	end := 64 + 8*numKeys + 4*(n+1) + 4*numEntries + 4*(numEntries+1)
	portalsEnd := (end+7)&^7 + 16*numPortals
	v1 := make([]byte, 0, portalsEnd-8)
	v1 = append(v1, enc[:56]...)
	v1 = append(v1, enc[64:portalsEnd]...)
	v1[1] = 1
	out, err := oracle.DecodeFlat(v1)
	if err != nil {
		tb.Fatalf("synthesized v1 image does not decode: %v", err)
	}
	return out
}

func TestQueryPathEndpoint(t *testing.T) {
	_, ts, fl := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query/path?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got struct {
		U    int      `json:"u"`
		V    int      `json:"v"`
		Dist *float64 `json:"dist"`
		Len  int      `json:"len"`
		Path []int32  `json:"path"`
		Ns   int64    `json:"ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	wantDist, wantPath, err := fl.QueryPath(0, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.U != 0 || got.V != 17 || got.Dist == nil || *got.Dist != wantDist {
		t.Fatalf("got %+v, want dist %v", got, wantDist)
	}
	if got.Len != len(got.Path) || len(got.Path) != len(wantPath) {
		t.Fatalf("len=%d path=%v, want %v", got.Len, got.Path, wantPath)
	}
	for i := range wantPath {
		if got.Path[i] != wantPath[i] {
			t.Fatalf("path[%d] = %d, want %d", i, got.Path[i], wantPath[i])
		}
	}
	if got.Path[0] != 0 || got.Path[len(got.Path)-1] != 17 {
		t.Fatalf("path endpoints %v", got.Path)
	}

	// Repeat queries exercise the pooled path buffers.
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/query/path?u=3&v=140")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pooled query %d: status %d", i, resp.StatusCode)
		}
	}

	// A distance-only (v1) image answers /query/path with 409 Conflict
	// and keeps /query working.
	_, ts2, _ := newTestServer(t, Config{Flat: distanceOnlyFlat(t, fl)})
	resp2, err := http.Get(ts2.URL + "/query/path?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict || !strings.Contains(string(body), "distance-only") {
		t.Fatalf("distance-only image: status=%d body=%s, want 409", resp2.StatusCode, body)
	}
	resp3, err := http.Get(ts2.URL + "/query?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("distance query on v1 image: status %d", resp3.StatusCode)
	}
}

// TestBenchResultReloadKeysOmitted pins the JSON shape of BenchResult:
// a run without successful reloads must not write reload percentile keys
// at all, and a run with reloads must write all three.
func TestBenchResultReloadKeysOmitted(t *testing.T) {
	b, err := json.Marshal(BenchResult{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"reload_p50_ns", "reload_p99_ns", "reload_max_ns", "reloads"} {
		if strings.Contains(string(b), key) {
			t.Errorf("zero-reload result leaks %q: %s", key, b)
		}
	}
	p50, p99, max := int64(0), int64(7), int64(9)
	withReloads, err := json.Marshal(BenchResult{Reloads: 1, ReloadP50Ns: &p50, ReloadP99Ns: &p99, ReloadMaxNs: &max})
	if err != nil {
		t.Fatal(err)
	}
	// A measured 0 still serializes — absence means unmeasured, not zero.
	for _, want := range []string{`"reload_p50_ns":0`, `"reload_p99_ns":7`, `"reload_max_ns":9`} {
		if !strings.Contains(string(withReloads), want) {
			t.Errorf("reload result missing %s: %s", want, withReloads)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a Flat must fail")
	}
	if _, err := New(Config{Flat: testFlat(t), MaxBatch: -1}); err == nil {
		t.Fatal("New with negative MaxBatch must fail")
	}
}
