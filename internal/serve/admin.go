package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"pathsep/internal/obs"
)

// ImageStatus describes the currently serving flat oracle image.
type ImageStatus struct {
	Source     string  `json:"source,omitempty"`
	Generation uint64  `json:"generation"`
	LoadedAt   string  `json:"loaded_at"`
	LoadNs     int64   `json:"load_ns"`
	Readers    int64   `json:"readers"`
	N          int     `json:"n"`
	Eps        float64 `json:"eps"`
	Mode       string  `json:"mode"`
	NumKeys    int     `json:"num_keys"`
	NumEntries int     `json:"num_entries"`
	NumPortals int     `json:"num_portals"`
	Bytes      int     `json:"bytes"`
	// PortalPoolBytes is the wire-format portal pool (16 B AoS records);
	// SweepLaneBytes is the derived query-time lane pool the merge sweep
	// actually walks, and LaneAligned reports whether that pool starts on
	// a 64-byte cache-line boundary (the layout Freeze/DecodeFlat aim
	// for; false only under exotic allocator behavior).
	PortalPoolBytes int  `json:"portal_pool_bytes"`
	SweepLaneBytes  int  `json:"sweep_lane_bytes"`
	LaneAligned     bool `json:"lane_aligned"`
	// PathReporting reports whether the image answers /query/path (wire
	// format v2); distance-only v1 images serve distances only.
	PathReporting bool `json:"path_reporting"`
}

// ServingStatus is the live request-side accounting.
type ServingStatus struct {
	Inflight     int64 `json:"inflight"`
	Queries      int64 `json:"queries"`
	Batches      int64 `json:"batches"`
	BatchPairs   int64 `json:"batch_pairs"`
	Errors       int64 `json:"errors"`
	Reloads      int64 `json:"reloads"`
	ReloadErrors int64 `json:"reload_errors"`
	BatchWorkers int   `json:"batch_workers"`
	MaxBatch     int   `json:"max_batch"`
}

// SlowQuery is one exemplar rendered for the admin surface; Dist is null
// for unreachable pairs (JSON numbers cannot carry +Inf).
type SlowQuery struct {
	U    int32    `json:"u"`
	V    int32    `json:"v"`
	Dist *float64 `json:"dist"`
	Ns   int64    `json:"ns"`
}

// Status is the /admin/status document: everything an operator needs to
// know about a running pathsepd in one read.
type Status struct {
	Service     string        `json:"service"`
	PID         int           `json:"pid"`
	GoVersion   string        `json:"go_version"`
	BuildVCS    string        `json:"build_vcs,omitempty"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Goroutines  int           `json:"goroutines"`
	UptimeSec   float64       `json:"uptime_sec"`
	Image       ImageStatus   `json:"image"`
	Serving     ServingStatus `json:"serving"`
	SlowQueries []SlowQuery   `json:"slow_queries,omitempty"`
	SlowSeen    int64         `json:"slow_queries_seen,omitempty"`
	Metrics     obs.Snapshot  `json:"metrics"`
}

// status assembles the current Status document. It takes a proper lease
// on the image while reading its metadata: images are immutable after
// publish, but holding the lease keeps the generation it reports from
// draining out from under the reads mid-document.
func (s *Server) status() Status {
	im := s.acquire()
	defer s.release(im)
	st := Status{
		Service:    "pathsepd",
		PID:        os.Getpid(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: runtime.NumGoroutine(),
		UptimeSec:  time.Since(s.started).Seconds(),
		Image: ImageStatus{
			Source:          im.source,
			Generation:      im.gen,
			LoadedAt:        im.loadedAt.UTC().Format(time.RFC3339Nano),
			LoadNs:          im.loadNs,
			Readers:         im.readers.Load() - 1, // exclude status's own lease
			N:               im.flat.N(),
			Eps:             im.flat.Eps(),
			Mode:            im.flat.Mode().String(),
			NumKeys:         im.flat.NumKeys(),
			NumEntries:      im.flat.NumEntries(),
			NumPortals:      im.flat.NumPortals(),
			Bytes:           im.bytes,
			PortalPoolBytes: 16 * im.flat.NumPortals(),
			SweepLaneBytes:  im.flat.LaneBytes(),
			LaneAligned:     im.flat.LaneAligned(),
			PathReporting:   im.flat.PathReporting(),
		},
		Serving: ServingStatus{
			Inflight:     s.inflight.Load(),
			Queries:      s.queries.Value(),
			Batches:      s.batches.Value(),
			BatchPairs:   s.pairs.Value(),
			Errors:       s.errs.Value(),
			Reloads:      s.reloads.Value(),
			ReloadErrors: s.reloadErrs.Value(),
			BatchWorkers: s.workers,
			MaxBatch:     s.maxBatch,
		},
		SlowSeen: s.slow.Seen(),
		Metrics:  s.reg.Snapshot(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				st.BuildVCS = kv.Value
			}
		}
	}
	for _, e := range s.slow.Snapshot() {
		sq := SlowQuery{U: e.U, V: e.V, Ns: e.Ns}
		if !math.IsInf(e.Dist, 1) {
			d := e.Dist
			sq.Dist = &d
		}
		st.SlowQueries = append(st.SlowQueries, sq)
	}
	return st
}

// handleStatus answers GET /admin/status with the Status document.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out, err := json.MarshalIndent(s.status(), "", "  ")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "status marshal: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(out)
	_, _ = w.Write([]byte("\n"))
}
