package serve

import (
	"math"
	"testing"
)

// FuzzReloadImage throws arbitrary bytes at the reload path. The
// contract under fuzzing: ReloadImage never panics, never replaces the
// live image with an invalid one (a rejected reload leaves the
// generation untouched), and the server keeps answering queries
// correctly either way. Valid images advance the generation by one.
func FuzzReloadImage(f *testing.F) {
	fl := testFlat(f)
	valid := fl.Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("FLAT"))

	s, err := New(Config{Flat: fl})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// The server persists across iterations, so an accepted reload (a
		// mutated-but-decodable image) legitimately changes the serving
		// image; all invariants compare against the state at the top of
		// THIS iteration.
		before := s.img.Load()
		wantOnReject := before.flat.Query(0, 17)

		// ReloadImage takes ownership of its buffer (zero-copy decode
		// aliases it); the fuzzer reuses data, so hand over a copy.
		owned := append([]byte(nil), data...)
		res, err := s.ReloadImage(owned, "fuzz")
		after := s.img.Load()
		if err != nil {
			// Rejected: the live image must be untouched, same pointer,
			// same generation, same answers.
			if after != before || after.gen != before.gen {
				t.Fatalf("rejected reload replaced the image: generation %d -> %d", before.gen, after.gen)
			}
			if d := after.flat.Query(0, 17); math.Float64bits(d) != math.Float64bits(wantOnReject) {
				t.Fatalf("rejected reload changed answers: got %v, want %v", d, wantOnReject)
			}
		} else {
			if after.gen != before.gen+1 || res.Generation != after.gen {
				t.Fatalf("accepted reload: generation %d -> %d, result %+v", before.gen, after.gen, res)
			}
		}
		// Whatever image is current must answer without panicking — a
		// fuzzer-built valid image may answer anything finite-or-Inf,
		// including on out-of-range vertices.
		_ = after.flat.Query(0, 17)
		_ = after.flat.Query(-1, 1<<30)
	})
}
