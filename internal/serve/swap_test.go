package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
)

// altFlat builds a second grid image with different edge weights (a
// different seed), so it answers differently from testFlat on the same
// vertex IDs — the swap tests need two distinguishable generations.
func altFlat(tb testing.TB) *oracle.Flat {
	tb.Helper()
	rng := rand.New(rand.NewSource(29))
	r := embed.Grid(12, 12, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		tb.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	return fl
}

// postReload POSTs an image to /admin/reload and decodes the result.
func postReload(tb testing.TB, url string, image []byte) (ReloadResult, int) {
	tb.Helper()
	resp, err := http.Post(url+"/admin/reload", "application/octet-stream", bytes.NewReader(image))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var res ReloadResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			tb.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return res, resp.StatusCode
}

func TestReloadEndpoint(t *testing.T) {
	s, ts, flA := newTestServer(t, Config{Source: "test:gen1"})
	flB := altFlat(t)

	res, code := postReload(t, ts.URL, flB.Encode())
	if code != http.StatusOK {
		t.Fatalf("reload status %d, want 200", code)
	}
	if res.Generation != 2 || res.Previous != 1 {
		t.Fatalf("generation %d (prev %d), want 2 (prev 1)", res.Generation, res.Previous)
	}
	if res.N != flB.N() || res.Bytes != len(flB.Encode()) {
		t.Fatalf("reload result %+v does not describe the new image", res)
	}
	if !res.Drained {
		t.Fatalf("idle server did not drain the old image: %+v", res)
	}

	// The new image is serving: answers match flB (flA only incidentally).
	resp, err := http.Get(ts.URL + "/query?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Dist *float64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Dist == nil || *got.Dist != flB.Query(0, 17) {
		t.Fatalf("post-reload answer %v, want flB's %v (flA's was %v)",
			got.Dist, flB.Query(0, 17), flA.Query(0, 17))
	}

	// /admin/status reflects the swap.
	st := adminStatus(t, ts.URL)
	if st.Image.Generation != 2 || st.Serving.Reloads != 1 || st.Serving.ReloadErrors != 0 {
		t.Fatalf("status after reload: image=%+v serving=%+v", st.Image, st.Serving)
	}
	if st.Image.Bytes != len(flB.Encode()) || st.Image.N != flB.N() {
		t.Fatalf("status image metadata still describes the old image: %+v", st.Image)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight %d after reload", s.Inflight())
	}
}

// adminStatus fetches and decodes /admin/status.
func adminStatus(tb testing.TB, url string) Status {
	tb.Helper()
	resp, err := http.Get(url + "/admin/status")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		tb.Fatal(err)
	}
	return st
}

// TestReloadRejectsCorrupt pins the failure contract: a corrupt or
// truncated image must be rejected with 422, the generation must not
// advance, and the old image must keep serving correct answers.
func TestReloadRejectsCorrupt(t *testing.T) {
	_, ts, flA := newTestServer(t, Config{})
	valid := flA.Encode()

	bad := [][]byte{
		[]byte("not a flat oracle image"),
		valid[:len(valid)/2],           // truncated
		append([]byte{0xFF}, valid...), // corrupted header
	}
	for i, b := range bad {
		// Copy: ReloadImage takes ownership of the buffer it accepts, and
		// these slices alias `valid`.
		body := append([]byte(nil), b...)
		if _, code := postReload(t, ts.URL, body); code != http.StatusUnprocessableEntity {
			t.Fatalf("corrupt image %d: status %d, want 422", i, code)
		}
	}

	// Empty body is a 400 (malformed request, not a failed decode).
	resp, err := http.Post(ts.URL+"/admin/reload", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", resp.StatusCode)
	}

	// GET is a 405.
	resp2, err := http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: status %d, want 405", resp2.StatusCode)
	}

	st := adminStatus(t, ts.URL)
	if st.Image.Generation != 1 {
		t.Fatalf("generation advanced to %d on rejected reloads", st.Image.Generation)
	}
	if st.Serving.ReloadErrors != int64(len(bad)) || st.Serving.Reloads != 0 {
		t.Fatalf("reload accounting after rejections: %+v", st.Serving)
	}

	// The original image still answers.
	respQ, err := http.Get(ts.URL + "/query?u=0&v=17")
	if err != nil {
		t.Fatal(err)
	}
	defer respQ.Body.Close()
	var got struct {
		Dist *float64 `json:"dist"`
	}
	if err := json.NewDecoder(respQ.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Dist == nil || *got.Dist != flA.Query(0, 17) {
		t.Fatalf("old image not serving after rejected reloads: got %v, want %v",
			got.Dist, flA.Query(0, 17))
	}
}

func TestReloadImageCap(t *testing.T) {
	_, ts, fl := newTestServer(t, Config{MaxImage: 64})
	if _, code := postReload(t, ts.URL, fl.Encode()); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap image: status %d, want 413", code)
	}
}

// TestSwapHammer is the -race generation-consistency gate: four clients
// hammer /query/batchbin while the main goroutine swaps between two
// differently-built images ~40 times. Every batch response must agree
// bitwise with exactly one of the two images across ALL its pairs — a
// response mixing generations means a batch observed the swap mid-flight.
func TestSwapHammer(t *testing.T) {
	flA := testFlat(t)
	flB := altFlat(t)
	encA, encB := flA.Encode(), flB.Encode()

	// Pairs whose answers differ between the images: only these can
	// betray a torn batch. The differing set is large (different edge
	// weights), but verify rather than assume.
	type pair struct{ u, v int32 }
	var ps []pair
	var wantA, wantB []float64
	n := flA.N()
	for u := 0; u < n && len(ps) < 64; u += 3 {
		for v := 1; v < n && len(ps) < 64; v += 7 {
			dA, dB := flA.Query(u, v), flB.Query(u, v)
			if math.Float64bits(dA) != math.Float64bits(dB) {
				ps = append(ps, pair{int32(u), int32(v)})
				wantA = append(wantA, dA)
				wantB = append(wantB, dB)
			}
		}
	}
	if len(ps) < 8 {
		t.Fatalf("only %d distinguishing pairs between the two images; need a better second image", len(ps))
	}
	body := make([]byte, 8*len(ps))
	for i, p := range ps {
		binary.LittleEndian.PutUint32(body[8*i:], uint32(p.u))
		binary.LittleEndian.PutUint32(body[8*i+4:], uint32(p.v))
	}

	_, ts, _ := newTestServer(t, Config{Flat: flA})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/query/batchbin", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					t.Errorf("batchbin: %v", err)
					return
				}
				out, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || len(out) != 8*len(ps) {
					t.Errorf("batchbin: status=%d len=%d err=%v", resp.StatusCode, len(out), err)
					return
				}
				matchA, matchB := true, true
				for i := range ps {
					got := binary.LittleEndian.Uint64(out[8*i:])
					if got != math.Float64bits(wantA[i]) {
						matchA = false
					}
					if got != math.Float64bits(wantB[i]) {
						matchB = false
					}
				}
				if !matchA && !matchB {
					t.Errorf("torn batch: response matches neither image generation entirely")
					return
				}
			}
		}()
	}

	// Alternate the serving image under the load. Each body is freshly
	// copied by the server's ReadAll, so zero-copy aliasing is safe.
	const swaps = 40
	for i := 0; i < swaps; i++ {
		img := encA
		if i%2 == 0 {
			img = encB
		}
		if res, code := postReload(t, ts.URL, img); code != http.StatusOK {
			t.Fatalf("swap %d: status %d (%+v)", i, code, res)
		}
	}
	close(stop)
	wg.Wait()

	st := adminStatus(t, ts.URL)
	if st.Image.Generation != 1+swaps {
		t.Fatalf("generation %d after %d swaps, want %d", st.Image.Generation, swaps, 1+swaps)
	}
	if st.Serving.ReloadErrors != 0 {
		t.Fatalf("%d reload errors under the hammer", st.Serving.ReloadErrors)
	}
}

// TestReloadRaceHTTPAndSIGHUP races the two reload front doors — POST
// /admin/reload and the SIGHUP path (ReloadFromFile, exactly what
// cmd/pathsepd's signal handler calls) — against each other from the
// same starting generation. reloadMu must serialize them: every reload
// gets a unique, gap-free generation, Previous always names the
// generation it replaced, and the reloads counter counts each swap
// exactly once. Run under -race (make check does) this also proves the
// decode/publish/drain sequence is data-race-free across both doors.
func TestReloadRaceHTTPAndSIGHUP(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Source: "test:gen1"})
	img := altFlat(t).Encode()
	path := filepath.Join(t.TempDir(), "image.bin")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	results := make(chan ReloadResult, 2*rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, code := postReload(t, ts.URL, img)
			if code != http.StatusOK {
				t.Errorf("HTTP reload status %d, want 200", code)
				return
			}
			results <- res
		}()
		go func() {
			defer wg.Done()
			res, err := s.ReloadFromFile(path)
			if err != nil {
				t.Errorf("SIGHUP reload: %v", err)
				return
			}
			results <- res
		}()
	}
	wg.Wait()
	close(results)

	gens := map[uint64]bool{}
	for res := range results {
		if gens[res.Generation] {
			t.Errorf("generation %d issued twice", res.Generation)
		}
		gens[res.Generation] = true
		if res.Previous != res.Generation-1 {
			t.Errorf("generation %d reports previous %d, want %d",
				res.Generation, res.Previous, res.Generation-1)
		}
	}
	// Gap-free: generations 2..2*rounds+1, each exactly once.
	for g := uint64(2); g <= 2*rounds+1; g++ {
		if !gens[g] {
			t.Errorf("generation %d never issued", g)
		}
	}
	if got := s.reloads.Value(); got != 2*rounds {
		t.Errorf("reloads counter = %d, want %d (no double-counting)", got, 2*rounds)
	}
	if errs := s.reloadErrs.Value(); errs != 0 {
		t.Errorf("reload_errors = %d, want 0", errs)
	}
	if gen := s.status().Image.Generation; gen != 2*rounds+1 {
		t.Errorf("final generation %d, want %d", gen, 2*rounds+1)
	}
}
