package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"pathsep/internal/oracle"
)

// DefaultMaxImage caps the image bytes accepted by POST /admin/reload
// when Config.MaxImage is zero: 1 GiB, far above any image this repo
// builds, far below an accidental /dev/zero upload.
const DefaultMaxImage = 1 << 30

// drainTimeout bounds how long a reload waits for readers of the old
// image to finish before declaring the drain incomplete. Readers hold
// an image only across one query/batch call, so this is generous.
const drainTimeout = 5 * time.Second

// image is one immutable serving generation: a frozen flat oracle plus
// its load metadata and a live-reader count. Every field except readers
// is written before the image is published through Server.img and never
// after (the atomicmix publish rule); readers is only touched through
// its atomic methods.
//
// The leasepair analyzer enforces the acquire/release protocol on this
// type: every handler path releases its lease, no lease is used after
// release, and nothing outside the annotated bypass sites touches
// Server.img directly.
//
//pathsep:lease acquire=acquire release=release
type image struct {
	flat     *oracle.Flat
	gen      uint64
	source   string
	bytes    int
	loadedAt time.Time
	loadNs   int64 // decode+validate time
	readers  atomic.Int64
}

// acquire leases the current image for one request. The re-check makes
// the pairing with waitDrain sound: a reader that loads the pointer,
// gets descheduled across a swap, and then increments the drained old
// image would be invisible to a drain that already sampled readers==0 —
// so after incrementing, the reader verifies the image is still
// current and backs off onto the fresh one if not. Go's atomics are
// sequentially consistent, so once the swap is visible every reader
// either re-checks onto the new image or was already counted.
func (s *Server) acquire() *image {
	for {
		im := s.img.Load()
		im.readers.Add(1)
		if s.img.Load() == im {
			return im
		}
		im.readers.Add(-1) // swapped under us; retry on the fresh image
	}
}

// release returns a lease taken by acquire.
func (s *Server) release(im *image) { im.readers.Add(-1) }

// newImage wraps a decoded flat oracle with its metadata. The caller
// publishes it afterwards; nothing here escapes early.
func (s *Server) newImage(fl *oracle.Flat, gen uint64, source string, bytes int, loadNs int64) *image {
	// Attach instruments before publish: once the pointer is swapped in,
	// concurrent readers are already querying this image.
	fl.SetMetrics(s.reg)
	fl.SetSlowSampler(s.slow)
	return &image{
		flat:     fl,
		gen:      gen,
		source:   source,
		bytes:    bytes,
		loadedAt: time.Now(),
		loadNs:   loadNs,
	}
}

// ReloadResult reports one image swap, echoed as the /admin/reload
// response body.
type ReloadResult struct {
	Generation uint64 `json:"generation"`
	Previous   uint64 `json:"previous"`
	N          int    `json:"n"`
	Bytes      int    `json:"bytes"`
	LoadNs     int64  `json:"load_ns"`  // decode + validate
	TotalNs    int64  `json:"total_ns"` // load + flip + drain
	Drained    bool   `json:"drained"`  // old image's readers hit zero in time
}

// ReloadImage decodes, validates and publishes a new flat image without
// stopping service. data must be an owned buffer: DecodeFlat aliases it
// zero-copy on aligned hosts, so the caller may not reuse or pool it.
//
// The swap sequence is: decode and fully validate off to the side (a
// corrupt image never becomes current — the old image keeps serving),
// attach instruments, then atomically flip the pointer. In-flight
// readers that acquired the old image finish on it; the reload waits
// for their count to drain before returning, so when ReloadImage
// reports Drained the old image is externally unreferenced (only the
// garbage collector holds it).
func (s *Server) ReloadImage(data []byte, source string) (ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	fl, err := oracle.DecodeFlat(data)
	if err != nil {
		s.reloadErrs.Inc()
		return ReloadResult{}, fmt.Errorf("serve: reload rejected, image not swapped: %w", err)
	}
	loadNs := time.Since(start).Nanoseconds()

	// Raw pointer access is sanctioned here: reloadMu serializes all
	// swappers, and the Swap itself is the publish the lease guards.
	cur := s.img.Load() //pathsep:lease-bypass
	im := s.newImage(fl, cur.gen+1, source, len(data), loadNs)
	old := s.img.Swap(im) //pathsep:lease-bypass
	drained := waitDrain(old, drainTimeout)

	total := time.Since(start).Nanoseconds()
	s.reloads.Inc()
	s.reloadNs.Observe(float64(total))
	s.imageGen.Set(int64(im.gen))
	return ReloadResult{
		Generation: im.gen,
		Previous:   old.gen,
		N:          fl.N(),
		Bytes:      len(data),
		LoadNs:     loadNs,
		TotalNs:    total,
		Drained:    drained,
	}, nil
}

// ReloadFromFile reads path and swaps it in; the SIGHUP handler on
// cmd/pathsepd and operators with a shell both land here.
func (s *Server) ReloadFromFile(path string) (ReloadResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		s.reloadErrs.Inc()
		return ReloadResult{}, fmt.Errorf("serve: reload rejected, image not swapped: %w", err)
	}
	return s.ReloadImage(data, "file:"+path)
}

// waitDrain spins (with micro-sleeps — no goroutine, nothing to join)
// until old has no readers or the timeout passes.
func waitDrain(old *image, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for old.readers.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
	return true
}

// handleReload answers POST /admin/reload: the body is a flat image
// (oracle.Flat encoding, as written by cmd/pathsepd -save-image or
// Flat.Encode). Invalid images are rejected with 422 and the old image
// keeps serving; success echoes the ReloadResult.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// ReadAll gives an owned buffer: the zero-copy decode aliases it, so
	// it must never come from (or return to) a pool.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.maxImage)))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("image larger than the %d-byte cap or unreadable", s.maxImage))
		return
	}
	if len(body) == 0 {
		s.fail(w, http.StatusBadRequest, "empty body; POST a flat oracle image")
		return
	}
	res, err := s.ReloadImage(body, "reload:"+r.RemoteAddr)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	out, err := json.Marshal(res)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "reload result marshal: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(out)
	_, _ = w.Write([]byte("\n"))
}
