// Package serve hosts a frozen flat oracle (oracle.Flat) behind HTTP —
// the off-process serving form of the library. One Server owns one
// immutable image and exposes:
//
//	GET  /query?u=&v=      one distance query, JSON
//	GET  /query/path?u=&v= distance plus witness path, JSON (path-reporting
//	                       images; distance-only images answer 409)
//	POST /query/batch      JSON batch: {"pairs":[[u,v],...]} -> {"dists":[...]}
//	POST /query/batchbin   binary batch: LE uint32 pairs in, LE float64 out
//	GET  /admin/status     image metadata, serving stats, slow-query
//	                       exemplars, obs snapshot, build info
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text format (via internal/obs)
//	     /debug/vars, /debug/pprof/*
//
// Everything rides the stdlib net/http server, so graceful drain is
// http.Server.Shutdown: the listener closes first, in-flight queries
// complete, then Shutdown returns.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pathsep/internal/obs"
	"pathsep/internal/oracle"
)

// DefaultMaxBatch caps the pairs accepted by one batch request when
// Config.MaxBatch is zero.
const DefaultMaxBatch = 1 << 16

// Config assembles a Server.
type Config struct {
	// Flat is the image to serve. Required. New attaches serving metrics
	// (and the sampler, when given) to it.
	Flat *oracle.Flat
	// Reg receives all serving instruments; a private registry is created
	// when nil, so /metrics always has something to say.
	Reg *obs.Registry
	// Slow, when non-nil, retains the slowest queries as exemplars,
	// surfaced by /admin/status.
	Slow *obs.SlowQuerySampler
	// Workers is the QueryBatch pool width (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// MaxBatch caps pairs per batch request (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxImage caps the bytes POST /admin/reload accepts
	// (0 = DefaultMaxImage).
	MaxImage int
	// Source describes where the image came from ("file:oracle.flat",
	// "built:grid64"), echoed by /admin/status.
	Source string
}

// Server serves a flat oracle image — the *current* one: the image
// lives behind an atomic pointer so POST /admin/reload (or SIGHUP on
// cmd/pathsepd) can swap in a new generation while in-flight requests
// finish on the old one. Create with New, start with Start (or mount
// Handler on your own server), swap with ReloadImage, stop with
// Shutdown.
type Server struct {
	img      atomic.Pointer[image]
	reg      *obs.Registry
	slow     *obs.SlowQuerySampler
	workers  int
	maxBatch int
	maxImage int
	started  time.Time

	// reloadMu serializes image swaps: one decode+flip+drain at a time,
	// so generations are strictly increasing and drain waits don't
	// interleave. Readers never take it.
	reloadMu sync.Mutex

	mux       *http.ServeMux
	srv       *http.Server
	serveDone chan struct{} // closed when Start's serve goroutine exits

	inflight   atomic.Int64
	queries    *obs.Counter
	batches    *obs.Counter
	pairs      *obs.Counter
	errs       *obs.Counter
	reloads    *obs.Counter
	reloadErrs *obs.Counter
	inflightG  *obs.Gauge
	imageGen   *obs.Gauge
	reqNs      *obs.Histogram
	reloadNs   *obs.Histogram

	pairBufs sync.Pool // *[]oracle.Pair
	distBufs sync.Pool // *[]float64
	byteBufs sync.Pool // *[]byte
	pathBufs sync.Pool // *[]int32
}

// New wires a Server over cfg.Flat. The flat image gains the registry's
// query instruments and the slow-query sampler as a side effect.
func New(cfg Config) (*Server, error) {
	if cfg.Flat == nil {
		return nil, errors.New("serve: Config.Flat is required")
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: negative MaxBatch %d", cfg.MaxBatch)
	}
	if cfg.MaxImage < 0 {
		return nil, fmt.Errorf("serve: negative MaxImage %d", cfg.MaxImage)
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.New()
	}
	s := &Server{
		reg:      reg,
		slow:     cfg.Slow,
		workers:  cfg.Workers,
		maxBatch: cfg.MaxBatch,
		maxImage: cfg.MaxImage,
		started:  time.Now(),
	}
	if s.maxBatch == 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if s.maxImage == 0 {
		s.maxImage = DefaultMaxImage
	}
	s.queries = reg.Counter("serve.queries")
	s.batches = reg.Counter("serve.batches")
	s.pairs = reg.Counter("serve.batch_pairs")
	s.errs = reg.Counter("serve.errors")
	s.reloads = reg.Counter("serve.reloads")
	s.reloadErrs = reg.Counter("serve.reload_errors")
	s.inflightG = reg.Gauge("serve.inflight")
	s.imageGen = reg.Gauge("serve.image_generation")
	s.reqNs = reg.Histogram("serve.request_ns")
	s.reloadNs = reg.Histogram("serve.reload_ns")

	// Generation 1 is the image the server was born with; reloads count
	// up from here. Published before the mux exists, so no reader can
	// ever observe a nil image. Raw Store is sanctioned: this is the
	// initial publish, before any lease can exist.
	s.img.Store(s.newImage(cfg.Flat, 1, cfg.Source, cfg.Flat.EncodedSize(), 0)) //pathsep:lease-bypass
	s.imageGen.Set(1)

	s.mux = http.NewServeMux()
	s.mux.Handle("/query", s.track(http.HandlerFunc(s.handleQuery)))
	s.mux.Handle("/query/path", s.track(http.HandlerFunc(s.handleQueryPath)))
	s.mux.Handle("/query/batch", s.track(http.HandlerFunc(s.handleBatchJSON)))
	s.mux.Handle("/query/batchbin", s.track(http.HandlerFunc(s.handleBatchBin)))
	s.mux.HandleFunc("/admin/status", s.handleStatus)
	s.mux.HandleFunc("/admin/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	obs.RegisterDebug(s.mux, reg)
	s.srv = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler returns the server's mux, for mounting under httptest or an
// outer server. Requests served this way still count toward the serving
// instruments, but are not drained by Shutdown.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address; failures to bind surface
// here. The goroutine is joined by Shutdown, not abandoned.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.srv.Addr = ln.Addr().String()
	s.serveDone = make(chan struct{})
	go func() {
		// http.ErrServerClosed is the normal Shutdown result; a dying
		// listener surfaces through failing requests and Shutdown itself.
		defer close(s.serveDone)
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Shutdown drains the server: the listener closes immediately, requests
// already being served run to completion (bounded by ctx), the
// instruments keep counting until the last one finishes, and the serve
// goroutine launched by Start has exited by the time Shutdown returns
// (unless ctx expired first).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if s.serveDone != nil {
		select {
		case <-s.serveDone:
		case <-ctx.Done():
		}
	}
	return err
}

// Inflight reports the query requests currently being served.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// track wraps a query handler with the in-flight gauge and the request
// latency histogram.
func (s *Server) track(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.inflight.Add(1)
		s.inflightG.Set(n)
		start := time.Now()
		h.ServeHTTP(w, r)
		s.reqNs.Observe(float64(time.Since(start)))
		s.inflightG.Set(s.inflight.Add(-1))
	})
}

// fail rejects a request with a plain-text error and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errs.Inc()
	http.Error(w, msg, code)
}

// getPairs returns a pooled pair buffer of length n.
func (s *Server) getPairs(n int) []oracle.Pair {
	if p, ok := s.pairBufs.Get().(*[]oracle.Pair); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]oracle.Pair, n)
}

func (s *Server) putPairs(p []oracle.Pair) { s.pairBufs.Put(&p) }

// getDists returns a pooled distance buffer of length n.
func (s *Server) getDists(n int) []float64 {
	if p, ok := s.distBufs.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func (s *Server) putDists(p []float64) { s.distBufs.Put(&p) }

// getBytes returns a pooled byte buffer of length n.
func (s *Server) getBytes(n int) []byte {
	if p, ok := s.byteBufs.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func (s *Server) putBytes(p []byte) { s.byteBufs.Put(&p) }

// getPath returns a pooled path-vertex buffer (empty, any capacity —
// Flat.QueryPath appends into it).
func (s *Server) getPath() []int32 {
	if p, ok := s.pathBufs.Get().(*[]int32); ok {
		return (*p)[:0]
	}
	return nil
}

func (s *Server) putPath(p []int32) { s.pathBufs.Put(&p) }
