package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// BenchResult is one self-load measurement of a running server: a
// single-query phase (concurrent GET /query clients, per-request latency
// percentiles) and a batched phase (POST /query/batchbin throughput in
// pairs per second).
type BenchResult struct {
	URL         string  `json:"url"`
	GraphN      int     `json:"graph_n"`
	DurationSec float64 `json:"duration_sec"`
	Conc        int     `json:"conc"`

	Requests int64   `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50_ns"`
	P90Ns    int64   `json:"p90_ns"`
	P99Ns    int64   `json:"p99_ns"`
	MaxNs    int64   `json:"max_ns"`

	BatchSize     int     `json:"batch_size"`
	BatchRequests int64   `json:"batch_requests"`
	BatchPairs    int64   `json:"batch_pairs"`
	BatchQPS      float64 `json:"batch_qps"`

	Errors int64 `json:"errors"`

	// Reload fields are populated by LoadBenchReload: image swaps fired
	// mid-load, with the observed load+flip+drain latency distribution.
	// The percentiles are pointers so a run with zero successful reloads
	// omits the keys entirely instead of recording stale zeros — absent
	// means "not measured", never "measured as 0".
	Reloads      int64  `json:"reloads,omitempty"`
	ReloadErrors int64  `json:"reload_errors,omitempty"`
	ReloadP50Ns  *int64 `json:"reload_p50_ns,omitempty"`
	ReloadP99Ns  *int64 `json:"reload_p99_ns,omitempty"`
	ReloadMaxNs  *int64 `json:"reload_max_ns,omitempty"`
}

// percentile reads the q-quantile (0 <= q <= 1) of sorted latencies.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// LoadBench drives a running server at baseURL with random queries over
// vertex IDs [0, n): conc concurrent single-query clients for half of d,
// then one binary-batch client (batch pairs per POST) for the other half.
// The deterministic seed fixes the query mix, not the timing.
func LoadBench(baseURL string, n int, d time.Duration, conc, batch int, seed int64) (BenchResult, error) {
	if n < 1 {
		return BenchResult{}, fmt.Errorf("serve: bench needs a non-empty graph, got n=%d", n)
	}
	if conc < 1 {
		conc = 1
	}
	if batch < 1 {
		batch = 1
	}
	res := BenchResult{URL: baseURL, GraphN: n, DurationSec: d.Seconds(), Conc: conc, BatchSize: batch}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc + 2,
		MaxIdleConnsPerHost: conc + 2,
	}}
	half := d / 2

	// Phase 1: concurrent single queries, per-request latency recorded.
	type workerOut struct {
		lat  []int64
		errs int64
	}
	outs := make([]workerOut, conc)
	var wg sync.WaitGroup
	startSingle := time.Now()
	deadline := startSingle.Add(half)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			// Deferred, not a trailing send: a worker that dies early still
			// releases the join instead of wedging the collector.
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var o workerOut
			for time.Now().Before(deadline) {
				u, v := rng.Intn(n), rng.Intn(n)
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", baseURL, u, v))
				if err != nil {
					o.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					o.errs++
					continue
				}
				o.lat = append(o.lat, time.Since(t0).Nanoseconds())
			}
			outs[w] = o
		}(w)
	}
	wg.Wait()
	singleElapsed := time.Since(startSingle) // >= half by construction
	var lat []int64
	for _, o := range outs {
		lat = append(lat, o.lat...)
		res.Errors += o.errs
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.Requests = int64(len(lat))
	if singleElapsed > 0 {
		res.QPS = float64(len(lat)) / singleElapsed.Seconds()
	}
	res.P50Ns = percentile(lat, 0.50)
	res.P90Ns = percentile(lat, 0.90)
	res.P99Ns = percentile(lat, 0.99)
	if len(lat) > 0 {
		res.MaxNs = lat[len(lat)-1]
	}

	// Phase 2: one binary-batch client.
	rng := rand.New(rand.NewSource(seed + int64(conc)))
	body := make([]byte, 8*batch)
	deadline = time.Now().Add(half)
	startBatch := time.Now()
	for time.Now().Before(deadline) {
		for i := 0; i < batch; i++ {
			binary.LittleEndian.PutUint32(body[8*i:], uint32(rng.Intn(n)))
			binary.LittleEndian.PutUint32(body[8*i+4:], uint32(rng.Intn(n)))
		}
		resp, err := client.Post(baseURL+"/query/batchbin", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			res.Errors++
			continue
		}
		nread, _ := io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK || nread != int64(8*batch) {
			res.Errors++
			continue
		}
		res.BatchRequests++
		res.BatchPairs += int64(batch)
	}
	if el := time.Since(startBatch); el > 0 {
		res.BatchQPS = float64(res.BatchPairs) / el.Seconds()
	}
	client.CloseIdleConnections()
	if res.Requests == 0 && res.BatchRequests == 0 {
		return res, fmt.Errorf("serve: bench completed zero requests against %s (%d errors)", baseURL, res.Errors)
	}
	return res, nil
}

// LoadBenchReload is LoadBench with image swaps fired mid-load: a
// reloader posts image to /admin/reload `reloads` times, spread across
// the run, while the query clients hammer the server. The result gains
// the reload latency distribution (decode + pointer flip + old-reader
// drain, as measured from the client), so BENCH_serve.json records what
// a zero-downtime reindex costs under traffic. With reloads < 1 or an
// empty image it degrades to plain LoadBench.
func LoadBenchReload(baseURL string, n int, d time.Duration, conc, batch int, seed int64, image []byte, reloads int) (BenchResult, error) {
	if reloads < 1 || len(image) == 0 {
		return LoadBench(baseURL, n, d, conc, batch, seed)
	}
	interval := d / time.Duration(reloads+1)
	if interval <= 0 {
		interval = time.Millisecond
	}
	client := &http.Client{}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	var rlat []int64
	var rerrs int64
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for i := 0; i < reloads; i++ {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			t0 := time.Now()
			resp, err := client.Post(baseURL+"/admin/reload", "application/octet-stream", bytes.NewReader(image))
			if err != nil {
				rerrs++
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				rerrs++
				continue
			}
			rlat = append(rlat, time.Since(t0).Nanoseconds())
		}
	}()

	res, err := LoadBench(baseURL, n, d, conc, batch, seed)

	close(stop)
	rwg.Wait() // rlat/rerrs are safely visible after the join
	client.CloseIdleConnections()
	sort.Slice(rlat, func(i, j int) bool { return rlat[i] < rlat[j] })
	res.Reloads = int64(len(rlat))
	res.ReloadErrors = rerrs
	if len(rlat) > 0 {
		p50, p99, max := percentile(rlat, 0.50), percentile(rlat, 0.99), rlat[len(rlat)-1]
		res.ReloadP50Ns, res.ReloadP99Ns, res.ReloadMaxNs = &p50, &p99, &max
	}
	if err != nil {
		return res, err
	}
	if rerrs > 0 {
		return res, fmt.Errorf("serve: %d of %d reloads failed against %s", rerrs, reloads, baseURL)
	}
	return res, nil
}
