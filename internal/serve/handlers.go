package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"pathsep/internal/oracle"
)

// writeDist appends a JSON distance value: a number, or null for +Inf
// (unreachable or out-of-range vertices), which no JSON number can carry.
func writeDist(buf *bytes.Buffer, d float64) {
	if math.IsInf(d, 1) {
		buf.WriteString("null")
		return
	}
	buf.WriteString(strconv.FormatFloat(d, 'g', -1, 64))
}

// parseVertexPair reads integer u and v query parameters. It reports
// ok=false after writing the 400 response itself, so handlers just
// return. Range validation happens against the leased image, not here —
// the image (and so the valid ID range) can change across reloads.
func (s *Server) parseVertexPair(w http.ResponseWriter, r *http.Request) (u, v int, ok bool) {
	q := r.URL.Query()
	u, errU := strconv.Atoi(q.Get("u"))
	v, errV := strconv.Atoi(q.Get("v"))
	if errU != nil || errV != nil {
		s.fail(w, http.StatusBadRequest, "u and v must be integer vertex IDs")
		return 0, 0, false
	}
	return u, v, true
}

// rejectOutOfRange writes the 400 response for vertex IDs outside
// [0, n) and reports whether it did.
func (s *Server) rejectOutOfRange(w http.ResponseWriter, u, v, n int) bool {
	if u < 0 || v < 0 || u >= n || v >= n {
		s.fail(w, http.StatusBadRequest,
			"vertex IDs must be in [0, "+strconv.Itoa(n)+"): got u="+strconv.Itoa(u)+" v="+strconv.Itoa(v))
		return true
	}
	return false
}

// handleQuery answers GET /query?u=&v= with one distance:
//
//	{"u":3,"v":9,"dist":4.25,"ns":810}
//
// dist is null when v is unreachable from u. Non-integer or out-of-range
// IDs are client errors (400), not null distances: an ID outside the
// image is a malformed request, and answering it with a 200 hides caller
// bugs.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	u, v, ok := s.parseVertexPair(w, r)
	if !ok {
		return
	}
	im := s.acquire()
	if s.rejectOutOfRange(w, u, v, im.flat.N()) {
		s.release(im)
		return
	}
	start := time.Now()
	d := im.flat.Query(u, v)
	ns := time.Since(start).Nanoseconds()
	s.release(im)
	s.queries.Inc()

	var buf bytes.Buffer
	buf.WriteString(`{"u":`)
	buf.WriteString(strconv.Itoa(u))
	buf.WriteString(`,"v":`)
	buf.WriteString(strconv.Itoa(v))
	buf.WriteString(`,"dist":`)
	writeDist(&buf, d)
	buf.WriteString(`,"ns":`)
	buf.WriteString(strconv.FormatInt(ns, 10))
	buf.WriteString("}\n")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// batchRequest is the JSON batch body: {"pairs":[[u,v],...]}.
type batchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

// handleBatchJSON answers POST /query/batch:
//
//	{"pairs":[[0,5],[3,9]]}  ->  {"n":2,"dists":[1.5,null]}
//
// dists align with pairs; null marks unreachable pairs. A pair with an
// out-of-range vertex ID rejects the whole batch with a 400 naming the
// offending index — the structured endpoint reports caller bugs instead
// of papering over them (the binary endpoint keeps the +Inf convention
// for bulk traffic).
func (s *Server) handleBatchJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*64+4096))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge, "body too large or unreadable")
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Pairs) > s.maxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(len(req.Pairs))+" pairs exceeds the cap of "+strconv.Itoa(s.maxBatch))
		return
	}
	pairs := s.getPairs(len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = oracle.Pair{U: p[0], V: p[1]}
	}
	// One lease for the whole batch: validation and every distance in
	// this response come from a single image generation, even mid-reload.
	im := s.acquire()
	n := int32(im.flat.N())
	for i, p := range pairs {
		if p.U < 0 || p.V < 0 || p.U >= n || p.V >= n {
			s.release(im)
			s.putPairs(pairs)
			s.fail(w, http.StatusBadRequest,
				"pair "+strconv.Itoa(i)+" ["+strconv.Itoa(int(p.U))+","+strconv.Itoa(int(p.V))+
					"] out of range: vertex IDs must be in [0, "+strconv.Itoa(int(n))+")")
			return
		}
	}
	dists := s.getDists(len(pairs))
	dists = im.flat.QueryBatchWorkers(pairs, dists, s.workers)
	s.release(im)
	s.batches.Inc()
	s.pairs.Add(int64(len(pairs)))

	var buf bytes.Buffer
	buf.WriteString(`{"n":`)
	buf.WriteString(strconv.Itoa(len(dists)))
	buf.WriteString(`,"dists":[`)
	for i, d := range dists {
		if i > 0 {
			buf.WriteByte(',')
		}
		writeDist(&buf, d)
	}
	buf.WriteString("]}\n")
	s.putPairs(pairs)
	s.putDists(dists)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// handleBatchBin answers POST /query/batchbin, the wire format for bulk
// traffic: the body is little-endian (uint32 u, uint32 v) pairs, the
// response is one little-endian float64 per pair (+Inf for unreachable),
// in order. No framing, no escaping — length is the pair count.
func (s *Server) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*8+8))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge, "body too large or unreadable")
		return
	}
	if len(body)%8 != 0 {
		s.fail(w, http.StatusBadRequest, "body length must be a multiple of 8 (uint32 u, uint32 v per pair)")
		return
	}
	n := len(body) / 8
	if n > s.maxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(n)+" pairs exceeds the cap of "+strconv.Itoa(s.maxBatch))
		return
	}
	pairs := s.getPairs(n)
	decodePairs(pairs, body)
	dists := s.getDists(n)
	// One lease for the whole batch (see handleBatchJSON).
	im := s.acquire()
	dists = im.flat.QueryBatchWorkers(pairs, dists, s.workers)
	s.release(im)
	out := s.getBytes(8 * n)
	encodeDists(out, dists)
	s.batches.Inc()
	s.pairs.Add(int64(n))

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	_, _ = w.Write(out)
	s.putPairs(pairs)
	s.putDists(dists)
	s.putBytes(out)
}

// handleQueryPath answers GET /query/path?u=&v= with the approximate
// distance and a witness walk realizing it:
//
//	{"u":3,"v":9,"dist":4.25,"len":5,"path":[3,7,2,8,9],"ns":2100}
//
// dist is null and path empty when v is unreachable from u. Non-integer
// or out-of-range IDs are 400s (as on /query); a distance-only image —
// a v1 reload can land mid-flight — answers 409, telling the caller the
// resource cannot satisfy path requests rather than blaming the request.
func (s *Server) handleQueryPath(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	u, v, ok := s.parseVertexPair(w, r)
	if !ok {
		return
	}
	im := s.acquire()
	if s.rejectOutOfRange(w, u, v, im.flat.N()) {
		s.release(im)
		return
	}
	if !im.flat.PathReporting() {
		s.release(im)
		s.fail(w, http.StatusConflict, "serving image is distance-only: no path data (wire format v1)")
		return
	}
	buf := s.getPath()
	start := time.Now()
	d, buf, err := im.flat.QueryPath(u, v, buf)
	ns := time.Since(start).Nanoseconds()
	s.release(im)
	if err != nil {
		s.putPath(buf)
		s.fail(w, http.StatusInternalServerError, "path walk: "+err.Error())
		return
	}
	s.queries.Inc()

	var out bytes.Buffer
	out.WriteString(`{"u":`)
	out.WriteString(strconv.Itoa(u))
	out.WriteString(`,"v":`)
	out.WriteString(strconv.Itoa(v))
	out.WriteString(`,"dist":`)
	writeDist(&out, d)
	out.WriteString(`,"len":`)
	out.WriteString(strconv.Itoa(len(buf)))
	out.WriteString(`,"path":[`)
	for i, w := range buf {
		if i > 0 {
			out.WriteByte(',')
		}
		out.WriteString(strconv.FormatInt(int64(w), 10))
	}
	out.WriteString(`],"ns":`)
	out.WriteString(strconv.FormatInt(ns, 10))
	out.WriteString("}\n")
	s.putPath(buf)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(out.Bytes())
}

// decodePairs parses len(dst) little-endian (uint32, uint32) pairs from
// src into dst. The caller sizes both; the loop stays allocation-free so
// the binary batch path costs only its pooled buffers.
//
//pathsep:hotpath
func decodePairs(dst []oracle.Pair, src []byte) {
	for i := range dst {
		u := binary.LittleEndian.Uint32(src[8*i:])
		v := binary.LittleEndian.Uint32(src[8*i+4:])
		dst[i] = oracle.Pair{U: int32(u), V: int32(v)}
	}
}

// encodeDists writes src as little-endian float64 bits into dst, which
// the caller has sized to 8*len(src).
//
//pathsep:hotpath
func encodeDists(dst []byte, src []float64) {
	for i, d := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(d))
	}
}
