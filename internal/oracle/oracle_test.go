package oracle

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// auditStretch checks every pair (u,v): Query >= true distance, and in
// exact mode Query <= (1+eps) * true distance.
func auditStretch(t *testing.T, g *graph.Graph, o *Oracle, eps float64, guarantee bool) (worst float64) {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		tr := shortest.Dijkstra(g, u)
		for v := 0; v < g.N(); v++ {
			if u == v {
				if got := o.Query(u, v); got != 0 {
					t.Fatalf("Query(%d,%d) = %v, want 0", u, v, got)
				}
				continue
			}
			d := tr.Dist[v]
			est := o.Query(u, v)
			if math.IsInf(d, 1) {
				if !math.IsInf(est, 1) {
					t.Fatalf("Query(%d,%d) = %v for disconnected pair", u, v, est)
				}
				continue
			}
			if est < d-1e-9 {
				t.Fatalf("Query(%d,%d) = %v < true %v (underestimate)", u, v, est, d)
			}
			if ratio := est / d; ratio > worst {
				worst = ratio
			}
			if guarantee && est > (1+eps)*d+1e-9 {
				t.Fatalf("Query(%d,%d) = %v > (1+%v)*%v (stretch %v)", u, v, est, eps, d, est/d)
			}
		}
	}
	return worst
}

func buildFor(t *testing.T, g *graph.Graph, rot *embed.Rotation, opt Options) *Oracle {
	t.Helper()
	tree, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: rot})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestExactModeGridGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := embed.Grid(7, 7, graph.UniformWeights(1, 3), rng)
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		o := buildFor(t, r.G, r, Options{Epsilon: eps, Mode: CoverExact})
		auditStretch(t, r.G, o, eps, true)
	}
}

func TestExactModeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomTree(80, graph.UniformWeights(1, 5), rng)
	o := buildFor(t, g, nil, Options{Epsilon: 0.2, Mode: CoverExact})
	worst := auditStretch(t, g, o, 0.2, true)
	// Trees: estimates should actually be exact (every path crosses the
	// centroid separator at the crossing vertex itself).
	if worst > 1+1e-9 {
		t.Errorf("tree oracle worst stretch %v, want exact", worst)
	}
}

func TestExactModeKTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.KTree(60, 2, graph.UniformWeights(1, 4), rng)
	o := buildFor(t, g, nil, Options{Epsilon: 0.3, Mode: CoverExact})
	auditStretch(t, g, o, 0.3, true)
}

func TestExactModeApollonian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := embed.Apollonian(70, graph.UniformWeights(1, 3), rng)
	o := buildFor(t, r.G, r, Options{Epsilon: 0.25, Mode: CoverExact})
	auditStretch(t, r.G, o, 0.25, true)
}

func TestExactModeRandomGraphs(t *testing.T) {
	// Greedy strategy on arbitrary graphs: guarantee still holds because
	// the separator satisfies Definition 1 regardless of k.
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ConnectedGNM(40, 90, graph.UniformWeights(0.5, 2), rng)
		o := buildFor(t, g, nil, Options{Epsilon: 0.4, Mode: CoverExact})
		auditStretch(t, g, o, 0.4, true)
	}
}

func TestPortalModeNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := embed.Grid(8, 8, graph.UniformWeights(1, 2), rng)
	o := buildFor(t, r.G, r, Options{Epsilon: 0.25, Mode: CoverPortal})
	worst := auditStretch(t, r.G, o, 0.25, false)
	// Closest-attachment entries cap the stretch at 3 even in portal mode.
	if worst > 3+1e-9 {
		t.Errorf("portal mode worst stretch %v > 3", worst)
	}
}

func TestPortalModeMorePortalsLowerStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := embed.Grid(9, 9, graph.UniformWeights(1, 2), rng)
	tree, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(p int) float64 {
		o, err := Build(tree, Options{Epsilon: 0.25, Mode: CoverPortal, PortalsPerPath: p})
		if err != nil {
			t.Fatal(err)
		}
		return auditStretch(t, r.G, o, 0, false)
	}
	few := measure(2)
	many := measure(16)
	if many > few+1e-9 {
		t.Errorf("more portals should not hurt: 2 portals %v, 16 portals %v", few, many)
	}
}

func TestDisconnectedPairs(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.Build()
	tree, err := core.Decompose(g, core.Options{Strategy: core.Greedy{}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(tree, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Query(0, 5); !math.IsInf(got, 1) {
		t.Fatalf("Query across components = %v, want +Inf", got)
	}
	if got := o.Query(0, 2); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Query(0,2) = %v, want 2", got)
	}
}

func TestLabelSizesLogarithmic(t *testing.T) {
	// Label portal counts should grow roughly like log n for grids, not n.
	rng := rand.New(rand.NewSource(7))
	sizes := []int{16, 64, 256}
	var maxPortals []int
	for _, n := range sizes {
		side := isqrtTest(n)
		r := embed.Grid(side, side, graph.UnitWeights(), rng)
		o := buildFor(t, r.G, r, Options{Epsilon: 0.5, Mode: CoverExact})
		maxPortals = append(maxPortals, o.MaxLabelPortals())
	}
	// 16x growth in n should produce far less than 16x growth in label size.
	if maxPortals[2] > 8*maxPortals[0] {
		t.Errorf("label growth not logarithmic: %v", maxPortals)
	}
}

func isqrtTest(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

func TestInvalidEpsilon(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), rand.New(rand.NewSource(1)))
	tree, _ := core.Decompose(g, core.Options{})
	if _, err := Build(tree, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Build(tree, Options{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestPairMin(t *testing.T) {
	a := []Portal{{Pos: 0, Dist: 5}, {Pos: 10, Dist: 1}}
	b := []Portal{{Pos: 2, Dist: 3}, {Pos: 9, Dist: 4}}
	// Candidates: 5+2+3=10, 5+9+4=18, 1+8+3=12, 1+1+4=6 -> 6.
	if got := pairMin(a, b); got != 6 {
		t.Fatalf("pairMin = %v, want 6", got)
	}
	if got := pairMin(nil, b); !math.IsInf(got, 1) {
		t.Fatalf("pairMin empty = %v", got)
	}
}

func TestPairMinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+rng.Intn(6), 1+rng.Intn(6)
		mk := func(n int) []Portal {
			ps := make([]Portal, n)
			pos := 0.0
			for i := range ps {
				pos += rng.Float64() * 3
				ps[i] = Portal{Pos: pos, Dist: rng.Float64() * 10}
			}
			return ps
		}
		a, b := mk(na), mk(nb)
		want := math.Inf(1)
		for _, p := range a {
			for _, q := range b {
				if est := p.Dist + math.Abs(p.Pos-q.Pos) + q.Dist; est < want {
					want = est
				}
			}
		}
		if got := pairMin(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: pairMin = %v, brute force %v", trial, got, want)
		}
	}
}

func TestSpaceAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := embed.Grid(5, 5, graph.UnitWeights(), rng)
	o := buildFor(t, r.G, r, Options{Epsilon: 0.5})
	total := 0
	for v := 0; v < r.G.N(); v++ {
		total += o.Labels[v].NumPortals()
	}
	if total != o.SpacePortals() {
		t.Fatalf("SpacePortals %d != sum %d", o.SpacePortals(), total)
	}
	if o.MaxLabelPortals() == 0 || o.MaxLabelPortals() > total {
		t.Fatalf("MaxLabelPortals %d", o.MaxLabelPortals())
	}
}

func TestAuditAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := embed.Grid(6, 6, graph.UniformWeights(1, 3), rng)
	o := buildFor(t, r.G, r, Options{Epsilon: 0.25, Mode: CoverExact})
	res := o.Audit(r.G, 200, rng.Intn)
	if res.Pairs == 0 {
		t.Fatal("no pairs audited")
	}
	if res.Underestimates != 0 {
		t.Fatalf("%d underestimates", res.Underestimates)
	}
	if res.MaxStretch > 1.25+1e-9 || res.MeanStretch > res.MaxStretch {
		t.Fatalf("audit: %+v", res)
	}
}
