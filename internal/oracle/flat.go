package oracle

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pathsep/internal/obs"
	"pathsep/internal/par"
)

// Flat is the compiled read-only query form of an Oracle: the same labels
// re-laid-out as a struct-of-arrays so the query hot path touches only
// contiguous memory.
//
//   - Every distinct separator-path Key across all labels is interned into
//     keys (sorted by keyLess); entries refer to keys by their dense int32
//     ID, so the merge-join compares one int32 instead of an 8-byte struct.
//   - Per-vertex entries live in CSR form: vertex v owns entry indices
//     entryOff[v]..entryOff[v+1], and entry e owns the portal range
//     portalOff[e]..portalOff[e+1] of the single contiguous portal pool.
//
// A Flat is immutable after Freeze/DecodeFlat, so Query and QueryBatch are
// safe for unbounded concurrent use. Queries return bit-identical results
// to the pointer-walking Oracle.Query: the merge-join visits shared keys in
// the same order, and the portal sweep evaluates exactly the candidate
// values pairMin evaluates — the per-portal terms fl(Dist+Pos) and
// fl(Dist−Pos) are precomputed once (with pairMin's own rounding) into the
// pSum/pDiff arrays, so every float64 comparison sees the same bits.
type Flat struct {
	n    int
	eps  float64
	mode Mode

	keys      []Key    // interned keys, sorted by keyLess; ID = index
	entryOff  []int32  // len n+1: CSR offsets into entryKey/portalOff
	entryKey  []int32  // len numEntries: key ID per entry
	portalOff []int32  // len numEntries+1: CSR offsets into portals
	portals   []Portal // one contiguous pool, grouped by entry

	// Path-reporting sections (wire v2; see path.go and flat_encode.go).
	// hops[i] is the portal-pool index of the next record on pool record
	// i's hop chain, or -1 at the chain's anchor; pathOff/pathVert/
	// pathPos are the per-key separator-path geometry in CSR form.
	hops        []int32
	pathOff     []int32
	pathVert    []int32
	pathPos     []float64
	hasPathData bool

	// Derived view of the pool (see derive): the sweep reads one indexed
	// load per step and does one add, instead of a Portal load plus two
	// arithmetic ops. Not part of the encoding; rebuilt on decode.
	sweep []sweepPortal
	// Derived walk layout (deriveWalk; path-bearing images only): the hop
	// forest re-laid-out in heavy-chain order, each chain one contiguous
	// block in walkBlk — its records' owning vertices child-to-parent,
	// then a two-word trailer [jumpSlot, jumpEnd] naming the segment the
	// chain head hops into (jumpSlot -1 at an anchor head). A walk is a
	// handful of bulk copies: memmove the owner run, read the trailer off
	// the cache lines the copy just touched, jump. Light edges are the
	// only jumps and a walk crosses O(log P) of them. walkFrom maps a
	// pool record to its first segment (slot, run end) plus its chain's
	// final anchor index into the key's path-geometry span — one load
	// hands QueryPath both walk entries and both anchors before either
	// walk runs, so the middle segment is emitted in final order between
	// the two chains. Records a corrupt image left unreachable from any
	// anchor carry slot -1; anchor -1 marks unresolvable geometry.
	walkBlk  []int32
	walkFrom []startRec

	// buf retains the encoded byte slice when the Flat was produced by a
	// zero-copy DecodeFlat; the slices above alias it.
	buf []byte

	// Query-time instruments (SetMetrics); all nil-safe, and the disabled
	// path is a single nil check with no allocation.
	qLatency *obs.Histogram
	qPortals *obs.Histogram
	batchQPS *obs.Gauge

	// slow, when attached via SetSlowSampler, retains the slowest queries
	// as (u, v, dist, ns) exemplars. Like the instruments above it is
	// nil-safe and costs nothing when detached.
	slow *obs.SlowQuerySampler
}

// Freeze compiles the oracle into its flat serving form. The oracle itself
// is not modified or retained. Freeze fails only when the oracle exceeds
// the int32 CSR index space (more than ~2·10⁹ entries or portals).
func (o *Oracle) Freeze() (*Flat, error) {
	// Intern keys: collect the distinct Key set and rank it by keyLess, so
	// ID order coincides with the order the pointer merge-join visits keys.
	seen := make(map[Key]int32)
	var keys []Key
	numEntries, numPortals := 0, 0
	for v := range o.Labels {
		for _, e := range o.Labels[v].Entries {
			if _, ok := seen[e.Key]; !ok {
				seen[e.Key] = 0
				keys = append(keys, e.Key)
			}
			numEntries++
			numPortals += len(e.Portals)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for i, k := range keys {
		seen[k] = int32(i)
	}
	if numEntries+1 > math.MaxInt32 || numPortals > math.MaxInt32 {
		return nil, fmt.Errorf("oracle: freeze: %d entries / %d portals exceed the int32 CSR index space", numEntries, numPortals)
	}

	f := &Flat{
		n:         o.N,
		eps:       o.Eps,
		mode:      o.mode,
		keys:      keys,
		entryOff:  make([]int32, o.N+1),
		entryKey:  make([]int32, 0, numEntries),
		portalOff: make([]int32, 1, numEntries+1),
		portals:   make([]Portal, 0, numPortals),
	}
	for v := range o.Labels {
		for _, e := range o.Labels[v].Entries {
			f.entryKey = append(f.entryKey, seen[e.Key])
			f.portals = append(f.portals, e.Portals...)
			f.portalOff = append(f.portalOff, int32(len(f.portals)))
		}
		f.entryOff[v+1] = int32(len(f.entryKey))
	}
	if o.hasPathData {
		f.freezePaths(o)
	}
	f.derive()
	return f, nil
}

// sweepPortal is one precomputed step of pairMin's merged sweep: the
// portal's position plus the two derived terms the sweep actually
// combines.
type sweepPortal struct {
	pos  float64 // portals[i].Pos
	sum  float64 // fl(portals[i].Dist + portals[i].Pos)
	diff float64 // fl(portals[i].Dist - portals[i].Pos)
}

// derive materializes the sweep view of the portal pool. The sums and
// differences are rounded here exactly as pairMin rounds them
// (left-associated fl(Dist+Pos), fl(Dist−Pos)), so the sweep's candidate
// values — and therefore Query answers — stay bit-identical to the
// pointer form.
func (f *Flat) derive() {
	f.sweep = make([]sweepPortal, len(f.portals))
	for i, p := range f.portals {
		f.sweep[i] = sweepPortal{pos: p.Pos, sum: p.Dist + p.Pos, diff: p.Dist - p.Pos}
	}
	if f.hasPathData {
		f.deriveWalk()
	}
}

// startRec is the per-pool-record walk entry: the record's slot and its
// chain's last owner slot in walkBlk (slot -1 when stranded by a corrupt
// image), the chain's final anchor index into the key's path-geometry
// span (-1 when unresolvable), and the walk's total output length from
// this record to its anchor inclusive. Knowing both walks' lengths and
// anchors up front lets QueryPath size the output once and write every
// piece straight into its final position. 16 bytes keeps the record on
// one cache line.
type startRec struct {
	slot   int32
	end    int32
	anchor int32
	depth  int32
}

// deriveWalk compiles the hop forest into the walkBlk/walkFrom layout.
// Chains are emitted in heavy-path order — each record's heaviest child
// is placed immediately before it — so a chain from any slot to its head
// is one contiguous owner run the walk copies in bulk; only light edges
// jump, and a root-to-leaf walk crosses O(log P) of them. Anchor heads
// resolve their path-geometry index here (the one equality search per
// anchor that QueryPath would otherwise run per query). Records on a hop
// cycle (possible only in a corrupt image: decode validates hop ranges,
// not acyclicity) are never reached from an anchor and keep walkFrom
// slot -1, which the walk reports as a dangling record.
func (f *Flat) deriveWalk() {
	p := len(f.hops)
	f.walkFrom = make([]startRec, p)
	if p == 0 {
		f.walkBlk = nil
		return
	}
	pos := make([]int32, p)
	owner := make([]int32, p)
	for v := 0; v < f.n; v++ {
		for e := f.entryOff[v]; e < f.entryOff[v+1]; e++ {
			for i := f.portalOff[e]; i < f.portalOff[e+1]; i++ {
				owner[i] = int32(v)
			}
		}
	}
	// Children of each record in the hop forest, CSR form.
	childOff := make([]int32, p+1)
	for _, h := range f.hops {
		if h >= 0 {
			childOff[h+1]++
		}
	}
	for i := 0; i < p; i++ {
		childOff[i+1] += childOff[i]
	}
	child := make([]int32, childOff[p])
	fill := make([]int32, p)
	for i, h := range f.hops {
		if h >= 0 {
			child[childOff[h]+fill[h]] = int32(i)
			fill[h]++
		}
	}
	// Subtree sizes bottom-up (Kahn's order: leaves drain first). Cycle
	// records never drain; their sizes stay partial, which is fine — they
	// are never placed either.
	size := make([]int32, p)
	pend := fill // fully counted above; reuse as the pending-child count
	queue := make([]int32, 0, p)
	for i := 0; i < p; i++ {
		size[i] = 1
		if pend[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		i := queue[qi]
		if h := f.hops[i]; h >= 0 {
			size[h] += size[i]
			if pend[h]--; pend[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	heavy := make([]int32, p)
	for i := 0; i < p; i++ {
		best, bestSz := int32(-1), int32(0)
		for x := childOff[i]; x < childOff[i+1]; x++ {
			if c := child[x]; size[c] > bestSz {
				best, bestSz = c, size[c]
			}
		}
		heavy[i] = best
	}
	// Lay out heavy paths into walkBlk: each chain root-to-leaf, written
	// leaf-first so the bulk copy runs child-to-parent left to right, the
	// chain head on the run's last slot, and a two-word trailer after it.
	// Chains are placed parent-before-light-child (a head is pushed only
	// after its parent's chain lands), so a chain's jump and anchor
	// resolve off already-placed chains in one placement-order pass.
	for i := range pos {
		pos[i] = -1
	}
	var heads, path []int32
	for i := 0; i < p; i++ {
		if f.hops[i] < 0 {
			heads = append(heads, int32(i))
		}
	}
	type chainRec struct {
		head int32 // pool record on the run's last slot
		end  int32 // walkBlk index of that slot
	}
	var chains []chainRec
	chainOf := make([]int32, p) // pool record -> index into chains
	recEnd := make([]int32, p)  // pool record -> its chain's end slot
	blk := make([]int32, 0, p+p/2)
	for len(heads) > 0 {
		h := heads[len(heads)-1]
		heads = heads[:len(heads)-1]
		path = path[:0]
		for x := h; x >= 0; x = heavy[x] {
			path = append(path, x)
		}
		end := int32(len(blk) + len(path) - 1)
		ci := int32(len(chains))
		chains = append(chains, chainRec{head: h, end: end})
		for i := len(path) - 1; i >= 0; i-- {
			r := path[i]
			pos[r] = int32(len(blk))
			blk = append(blk, owner[r])
			chainOf[r] = ci
			recEnd[r] = end
		}
		blk = append(blk, -1, -1) // trailer, filled below
		for _, node := range path {
			for x := childOff[node]; x < childOff[node+1]; x++ {
				if c := child[x]; c != heavy[node] {
					heads = append(heads, c)
				}
			}
		}
	}
	f.walkBlk = blk
	// Resolve each placed anchor head's geometry index — a failed
	// resolution (corrupt image) stays -1 and surfaces as a walk error.
	anchorIdx := make([]int32, p)
	for i := range anchorIdx {
		anchorIdx[i] = -1
	}
	for e := 0; e < len(f.entryKey); e++ {
		kid := f.entryKey[e]
		plo, phi := f.pathOff[kid], f.pathOff[kid+1]
		pathPos := f.pathPos[plo:phi]
		pathVert := f.pathVert[plo:phi]
		for i := f.portalOff[e]; i < f.portalOff[e+1]; i++ {
			if pos[i] < 0 || f.hops[i] >= 0 {
				continue
			}
			if idx, err := pathIndexAt(pathPos, pathVert, f.portals[i].Pos, owner[i]); err == nil {
				anchorIdx[i] = int32(idx)
			}
		}
	}
	// Fill trailers and per-chain anchor/tail-depth in placement order: a
	// light chain jumps into its parent's run and inherits its anchor and
	// the walk length past its head; a root chain stops at its own
	// resolved geometry index.
	chainAnchor := make([]int32, len(chains))
	chainTail := make([]int32, len(chains)) // output length after the head
	for ci, c := range chains {
		if h := f.hops[c.head]; h >= 0 {
			blk[c.end+1] = pos[h]
			blk[c.end+2] = recEnd[h]
			hc := chainOf[h]
			chainAnchor[ci] = chainAnchor[hc]
			chainTail[ci] = (recEnd[h] - pos[h] + 1) + chainTail[hc]
		} else {
			chainAnchor[ci] = anchorIdx[c.head]
		}
	}
	for r := 0; r < p; r++ {
		sr := startRec{slot: pos[r], end: -1, anchor: -1}
		if sr.slot >= 0 {
			ci := chainOf[r]
			sr.end = recEnd[r]
			sr.anchor = chainAnchor[ci]
			sr.depth = (recEnd[r] - pos[r] + 1) + chainTail[ci]
		}
		f.walkFrom[r] = sr
	}
}

// N returns the number of labeled vertices.
func (f *Flat) N() int { return f.n }

// Eps returns the ε the source oracle was built with.
func (f *Flat) Eps() float64 { return f.eps }

// Mode returns the portal construction the source oracle was built with.
func (f *Flat) Mode() Mode { return f.mode }

// NumKeys returns the number of interned separator-path keys.
func (f *Flat) NumKeys() int { return len(f.keys) }

// NumEntries returns the total entry count across all labels.
func (f *Flat) NumEntries() int { return len(f.entryKey) }

// NumPortals returns the size of the contiguous portal pool.
func (f *Flat) NumPortals() int { return len(f.portals) }

// SetMetrics attaches (or, with nil, detaches) serving metrics:
// "oracle.query_ns" and "oracle.query_portals" observe single queries
// (same instruments as the pointer oracle), "oracle.batch_qps" records the
// throughput of the last QueryBatch, and "oracle.flat_bytes" is set once
// to the encoded size of this Flat.
func (f *Flat) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		f.qLatency, f.qPortals, f.batchQPS = nil, nil, nil
		return
	}
	f.qLatency = reg.Histogram("oracle.query_ns")
	f.qPortals = reg.Histogram("oracle.query_portals")
	f.batchQPS = reg.Gauge("oracle.batch_qps")
	reg.Gauge("oracle.flat_bytes").Set(int64(f.EncodedSize()))
}

// SetSlowSampler attaches (or, with nil, detaches) a slow-query exemplar
// reservoir: every instrumented Query offers its (u, v, dist, ns) tuple,
// and the sampler retains the slowest. The disabled path (no sampler, no
// metrics) stays a single nil check with no allocation; the enabled path
// is allocation-free too.
func (f *Flat) SetSlowSampler(s *obs.SlowQuerySampler) { f.slow = s }

// Query returns the same (1+ε)-approximate distance as the source
// Oracle.Query, bit for bit. It is goroutine-safe and allocation-free;
// malformed vertex IDs report +Inf. With metrics or a slow-query sampler
// attached it observes the query latency and portal work, including on
// the u == v fast path.
func (f *Flat) Query(u, v int) float64 {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1)
	}
	if f.qLatency == nil && f.slow == nil {
		if u == v {
			return 0
		}
		est, _ := f.query(u, v)
		return est
	}
	start := time.Now()
	if u == v {
		ns := time.Since(start)
		f.qLatency.Observe(float64(ns))
		f.qPortals.Observe(0)
		f.slow.Observe(int32(u), int32(v), 0, ns.Nanoseconds())
		return 0
	}
	est, portals := f.query(u, v)
	ns := time.Since(start)
	f.qLatency.Observe(float64(ns))
	f.qPortals.Observe(float64(portals))
	f.slow.Observe(int32(u), int32(v), est, ns.Nanoseconds())
	return est
}

// query is the flat merge-join: two CSR entry ranges advance on int32 key
// IDs; matched entries run pairMin's merged sweep inline over the derived
// pPos/pSum/pDiff arrays (one load and one add per portal, tails drained
// without the interleave test). The candidate values and their fold order
// are exactly queryLabels'/pairMin's — min over an identical multiset —
// which the differential tests pin down bit for bit.
//
//pathsep:hotpath
func (f *Flat) query(u, v int) (float64, int) {
	best := math.Inf(1)
	portals := 0
	ek, po, sp := f.entryKey, f.portalOff, f.sweep
	i, iEnd := f.entryOff[u], f.entryOff[u+1]
	j, jEnd := f.entryOff[v], f.entryOff[v+1]
	for i < iEnd && j < jEnd {
		a, b := ek[i], ek[j]
		switch {
		case a == b:
			ia, iaEnd := po[i], po[i+1]
			ib, ibEnd := po[j], po[j+1]
			portals += int(iaEnd-ia) + int(ibEnd-ib)
			minA, minB := math.Inf(1), math.Inf(1)
			if ia < iaEnd && ib < ibEnd {
				// Only the advanced side reloads; the other stays in
				// registers across iterations.
				pa, pb := sp[ia], sp[ib]
				for {
					if pa.pos <= pb.pos {
						if est := pa.sum + minB; est < best {
							best = est
						}
						if pa.diff < minA {
							minA = pa.diff
						}
						if ia++; ia == iaEnd {
							break
						}
						pa = sp[ia]
					} else {
						if est := pb.sum + minA; est < best {
							best = est
						}
						if pb.diff < minB {
							minB = pb.diff
						}
						if ib++; ib == ibEnd {
							break
						}
						pb = sp[ib]
					}
				}
			}
			for ; ia < iaEnd; ia++ {
				if est := sp[ia].sum + minB; est < best {
					best = est
				}
			}
			for ; ib < ibEnd; ib++ {
				if est := sp[ib].sum + minA; est < best {
					best = est
				}
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return best, portals
}

// answer is Query without instrumentation: the per-pair unit of QueryBatch.
//
//pathsep:hotpath
func (f *Flat) answer(u, v int) float64 {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1)
	}
	if u == v {
		return 0
	}
	est, _ := f.query(u, v)
	return est
}

// Pair is one (U, V) query of a batch.
type Pair struct {
	U, V int32
}

// batchChunksPerWorker over-splits a batch so workers that hit cheap pairs
// steal further chunks instead of idling.
const batchChunksPerWorker = 8

// QueryBatch answers pairs[i] into out[i] for every i, fanning the work
// out over runtime.GOMAXPROCS(0) workers. out is reused when it has
// sufficient capacity and allocated otherwise; the (possibly re-sliced)
// result is returned, so callers amortize to zero allocations by passing
// the previous batch's slice back in. Results are identical to calling
// Query per pair (and therefore to Oracle.Query), for every worker count.
// With metrics attached, the batch records its throughput in the
// "oracle.batch_qps" gauge; per-query histograms are not touched.
func (f *Flat) QueryBatch(pairs []Pair, out []float64) []float64 {
	return f.QueryBatchWorkers(pairs, out, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool width
// (0 means runtime.GOMAXPROCS(0), 1 runs serially on the caller).
func (f *Flat) QueryBatchWorkers(pairs []Pair, out []float64, workers int) []float64 {
	if cap(out) < len(pairs) {
		out = make([]float64, len(pairs))
	}
	out = out[:len(pairs)]
	if len(pairs) == 0 {
		return out
	}
	start := time.Now()
	if workers == 1 {
		// Serial fast path: no pool, no closure — keeps the reused-buffer
		// contract at a true zero allocations per batch.
		for i := range pairs {
			out[i] = f.answer(int(pairs[i].U), int(pairs[i].V))
		}
	} else {
		pool := par.New(workers, nil)
		chunks := pool.Workers() * batchChunksPerWorker
		if chunks > len(pairs) {
			chunks = len(pairs)
		}
		size := (len(pairs) + chunks - 1) / chunks
		pool.ForEach(chunks, func(c int) {
			lo := c * size
			hi := lo + size
			if hi > len(pairs) {
				hi = len(pairs)
			}
			for i := lo; i < hi; i++ {
				out[i] = f.answer(int(pairs[i].U), int(pairs[i].V))
			}
		})
		pool.Finish()
	}
	if f.batchQPS != nil {
		if ns := time.Since(start).Nanoseconds(); ns > 0 {
			f.batchQPS.Set(int64(float64(len(pairs)) * 1e9 / float64(ns)))
		}
	}
	return out
}
