package oracle

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
	"unsafe"

	"pathsep/internal/obs"
	"pathsep/internal/par"
)

// Flat is the compiled read-only query form of an Oracle: the same labels
// re-laid-out as a struct-of-arrays so the query hot path touches only
// contiguous memory.
//
//   - Every distinct separator-path Key across all labels is interned into
//     keys (sorted by keyLess); entries refer to keys by their dense int32
//     ID, so the merge-join compares one int32 instead of an 8-byte struct.
//   - Per-vertex entries live in CSR form: vertex v owns entry indices
//     entryOff[v]..entryOff[v+1], and entry e owns the portal range
//     portalOff[e]..portalOff[e+1] of the single contiguous portal pool.
//
// A Flat is immutable after Freeze/DecodeFlat, so Query and QueryBatch are
// safe for unbounded concurrent use. Queries return bit-identical results
// to the pointer-walking Oracle.Query: the merge-join visits shared keys in
// the same order (galloping only skips keys that cannot match), and the
// portal sweep evaluates exactly the candidate values pairMin evaluates —
// the per-portal terms fl(Dist+Pos) and fl(Dist−Pos) are precomputed once
// (with pairMin's own rounding) into the blocked sweep lanes, so every
// float64 comparison sees the same bits.
type Flat struct {
	n    int
	eps  float64
	mode Mode

	keys      []Key    // interned keys, sorted by keyLess; ID = index
	entryOff  []int32  // len n+1: CSR offsets into entryKey/portalOff
	entryKey  []int32  // len numEntries: key ID per entry
	portalOff []int32  // len numEntries+1: CSR offsets into portals
	portals   []Portal // one contiguous pool, grouped by entry

	// Path-reporting sections (wire v2; see path.go and flat_encode.go).
	// hops[i] is the portal-pool index of the next record on pool record
	// i's hop chain, or -1 at the chain's anchor; pathOff/pathVert/
	// pathPos are the per-key separator-path geometry in CSR form.
	hops        []int32
	pathOff     []int32
	pathVert    []int32
	pathPos     []float64
	hasPathData bool

	// Derived view of the pool (see derive): the sweep lane. Entry e's
	// portal run [portalOff[e], portalOff[e+1)) of k records occupies
	// lane[3*portalOff[e]:] as k three-float records
	// (pos, fl(Dist−Pos), smin), where record x's smin is the min of
	// fl(Dist+Pos) over the run's suffix [x, k). The suffix-min collapses
	// the classic sweep's per-element fold: when the merge consumes
	// element x of one side, every legal partner is exactly the other
	// side's unconsumed suffix, so the single candidate
	// fl(diff_consumed + smin_other) covers all of them at once — min is
	// exact and rounding is monotone, so that equals the min of the
	// pairwise fl(sum+diff) candidates bit for bit. One fold per step,
	// no running min registers, and no tail pass: once either side is
	// exhausted the remainder has no partners left and is never touched.
	// laneSum holds the raw fl(Dist+Pos) values (entry e's at
	// [portalOff[e], portalOff[e+1])), read only by argminPair's
	// once-per-query replay of the winning pair. Both pools are 64-byte
	// aligned. None of this is part of the encoding; it is rebuilt on
	// decode. schedU/schedV are the key shifts the batch locality
	// scheduler derives from the entry-table size.
	lane           []float64
	laneSum        []float64
	schedU, schedV uint8
	// Derived walk layout (deriveWalk; path-bearing images only): the hop
	// forest re-laid-out in heavy-chain order, each chain one contiguous
	// block in walkBlk — its records' owning vertices child-to-parent,
	// then a two-word trailer [jumpSlot, jumpEnd] naming the segment the
	// chain head hops into (jumpSlot -1 at an anchor head). A walk is a
	// handful of bulk copies: memmove the owner run, read the trailer off
	// the cache lines the copy just touched, jump. Light edges are the
	// only jumps and a walk crosses O(log P) of them. walkFrom maps a
	// pool record to its first segment (slot, run end) plus its chain's
	// final anchor index into the key's path-geometry span — one load
	// hands QueryPath both walk entries and both anchors before either
	// walk runs, so the middle segment is emitted in final order between
	// the two chains. Records a corrupt image left unreachable from any
	// anchor carry slot -1; anchor -1 marks unresolvable geometry.
	walkBlk  []int32
	walkFrom []startRec

	// buf retains the encoded byte slice when the Flat was produced by a
	// zero-copy DecodeFlat; the slices above alias it.
	buf []byte

	// Query-time instruments (SetMetrics); all nil-safe, and the disabled
	// path is a single nil check with no allocation.
	qLatency *obs.Histogram
	qPortals *obs.Histogram
	batchQPS *obs.Gauge

	// slow, when attached via SetSlowSampler, retains the slowest queries
	// as (u, v, dist, ns) exemplars. Like the instruments above it is
	// nil-safe and costs nothing when detached.
	slow *obs.SlowQuerySampler
}

// Freeze compiles the oracle into its flat serving form. The oracle itself
// is not modified or retained. Freeze fails only when the oracle exceeds
// the int32 CSR index space (more than ~2·10⁹ entries or portals).
func (o *Oracle) Freeze() (*Flat, error) {
	// Intern keys: collect the distinct Key set and rank it by keyLess, so
	// ID order coincides with the order the pointer merge-join visits keys.
	seen := make(map[Key]int32)
	var keys []Key
	numEntries, numPortals := 0, 0
	for v := range o.Labels {
		for _, e := range o.Labels[v].Entries {
			if _, ok := seen[e.Key]; !ok {
				seen[e.Key] = 0
				keys = append(keys, e.Key)
			}
			numEntries++
			numPortals += len(e.Portals)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for i, k := range keys {
		seen[k] = int32(i)
	}
	if numEntries+1 > math.MaxInt32 || numPortals > math.MaxInt32 {
		return nil, fmt.Errorf("oracle: freeze: %d entries / %d portals exceed the int32 CSR index space", numEntries, numPortals)
	}

	f := &Flat{
		n:         o.N,
		eps:       o.Eps,
		mode:      o.mode,
		keys:      keys,
		entryOff:  make([]int32, o.N+1),
		entryKey:  make([]int32, 0, numEntries),
		portalOff: make([]int32, 1, numEntries+1),
		portals:   make([]Portal, 0, numPortals),
	}
	for v := range o.Labels {
		for _, e := range o.Labels[v].Entries {
			f.entryKey = append(f.entryKey, seen[e.Key])
			f.portals = append(f.portals, e.Portals...)
			f.portalOff = append(f.portalOff, int32(len(f.portals)))
		}
		f.entryOff[v+1] = int32(len(f.entryKey))
	}
	if o.hasPathData {
		f.freezePaths(o)
	}
	f.derive()
	return f, nil
}

// alignedFloats allocates n float64s whose first element sits on a
// 64-byte boundary, so every lane run begins at a predictable cache-line
// offset. Go only guarantees 8-byte alignment for float64 backing
// arrays; the slack makes the stronger guarantee unconditional.
func alignedFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	buf := make([]float64, n+7)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%64 != 0 {
		off++
	}
	return buf[off : off+n : off+n]
}

// derive materializes the sweep lane and the replay sum pool. The sums
// and differences are rounded here exactly as pairMin rounds them
// (left-associated fl(Dist+Pos), fl(Dist−Pos)), so the sweep's candidate
// values — and therefore Query answers — stay bit-identical to the
// pointer form. Record x's smin precomputes the min of fl(Dist+Pos)
// over the run's suffix [x, k): min is exact (no rounding), so the
// query-time fold fl(diff_consumed + smin_other) equals the min of the
// pairwise candidates fl(sum+diff) the register sweep folds one by one
// (see the lane layout doc on Flat). It also fixes the batch
// scheduler's key shifts: the coarser of (entry-table bits − 16) and 6,
// so a u-block names a ~64-entry portal region and both block numbers
// fit their 16-bit key lanes.
//
// derive is the sanctioned writer of the lane views: it fills the
// aligned arrays it just allocated, before the image is published.
// The argumented directive does not opt it into hotalloc (it allocates
// the lanes by design).
//
//pathsep:hotpath writes=views
func (f *Flat) derive() {
	f.lane = alignedFloats(3 * len(f.portals))
	f.laneSum = alignedFloats(len(f.portals))
	for e := 0; e+1 < len(f.portalOff); e++ {
		lo, hi := int(f.portalOff[e]), int(f.portalOff[e+1])
		base := 3 * lo
		sm := math.Inf(1)
		for x := hi - lo - 1; x >= 0; x-- {
			p := f.portals[lo+x]
			s := p.Dist + p.Pos
			if s < sm {
				sm = s
			}
			f.lane[base+3*x] = p.Pos
			f.lane[base+3*x+1] = p.Dist - p.Pos
			f.lane[base+3*x+2] = sm
			f.laneSum[lo+x] = s
		}
	}
	need := 0
	for ne := len(f.entryKey); ne>>need != 0; need++ {
	}
	f.schedU, f.schedV = 6, 0
	if need > 16 {
		f.schedV = uint8(need - 16)
		if f.schedV > f.schedU {
			f.schedU = f.schedV
		}
	}
	if f.hasPathData {
		f.deriveWalk()
	}
}

// startRec is the per-pool-record walk entry: the record's slot and its
// chain's last owner slot in walkBlk (slot -1 when stranded by a corrupt
// image), the chain's final anchor index into the key's path-geometry
// span (-1 when unresolvable), and the walk's total output length from
// this record to its anchor inclusive. Knowing both walks' lengths and
// anchors up front lets QueryPath size the output once and write every
// piece straight into its final position. 16 bytes keeps the record on
// one cache line.
type startRec struct {
	slot   int32
	end    int32
	anchor int32
	depth  int32
}

// deriveWalk compiles the hop forest into the walkBlk/walkFrom layout.
// Chains are emitted in heavy-path order — each record's heaviest child
// is placed immediately before it — so a chain from any slot to its head
// is one contiguous owner run the walk copies in bulk; only light edges
// jump, and a root-to-leaf walk crosses O(log P) of them. Anchor heads
// resolve their path-geometry index here (the one equality search per
// anchor that QueryPath would otherwise run per query). Records on a hop
// cycle (possible only in a corrupt image: decode validates hop ranges,
// not acyclicity) are never reached from an anchor and keep walkFrom
// slot -1, which the walk reports as a dangling record.
func (f *Flat) deriveWalk() {
	p := len(f.hops)
	f.walkFrom = make([]startRec, p)
	if p == 0 {
		f.walkBlk = nil
		return
	}
	pos := make([]int32, p)
	owner := make([]int32, p)
	for v := 0; v < f.n; v++ {
		for e := f.entryOff[v]; e < f.entryOff[v+1]; e++ {
			for i := f.portalOff[e]; i < f.portalOff[e+1]; i++ {
				owner[i] = int32(v)
			}
		}
	}
	// Children of each record in the hop forest, CSR form.
	childOff := make([]int32, p+1)
	for _, h := range f.hops {
		if h >= 0 {
			childOff[h+1]++
		}
	}
	for i := 0; i < p; i++ {
		childOff[i+1] += childOff[i]
	}
	child := make([]int32, childOff[p])
	fill := make([]int32, p)
	for i, h := range f.hops {
		if h >= 0 {
			child[childOff[h]+fill[h]] = int32(i)
			fill[h]++
		}
	}
	// Subtree sizes bottom-up (Kahn's order: leaves drain first). Cycle
	// records never drain; their sizes stay partial, which is fine — they
	// are never placed either.
	size := make([]int32, p)
	pend := fill // fully counted above; reuse as the pending-child count
	queue := make([]int32, 0, p)
	for i := 0; i < p; i++ {
		size[i] = 1
		if pend[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		i := queue[qi]
		if h := f.hops[i]; h >= 0 {
			size[h] += size[i]
			if pend[h]--; pend[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	heavy := make([]int32, p)
	for i := 0; i < p; i++ {
		best, bestSz := int32(-1), int32(0)
		for x := childOff[i]; x < childOff[i+1]; x++ {
			if c := child[x]; size[c] > bestSz {
				best, bestSz = c, size[c]
			}
		}
		heavy[i] = best
	}
	// Lay out heavy paths into walkBlk: each chain root-to-leaf, written
	// leaf-first so the bulk copy runs child-to-parent left to right, the
	// chain head on the run's last slot, and a two-word trailer after it.
	// Chains are placed parent-before-light-child (a head is pushed only
	// after its parent's chain lands), so a chain's jump and anchor
	// resolve off already-placed chains in one placement-order pass.
	for i := range pos {
		pos[i] = -1
	}
	var heads, path []int32
	for i := 0; i < p; i++ {
		if f.hops[i] < 0 {
			heads = append(heads, int32(i))
		}
	}
	type chainRec struct {
		head int32 // pool record on the run's last slot
		end  int32 // walkBlk index of that slot
	}
	var chains []chainRec
	chainOf := make([]int32, p) // pool record -> index into chains
	recEnd := make([]int32, p)  // pool record -> its chain's end slot
	blk := make([]int32, 0, p+p/2)
	for len(heads) > 0 {
		h := heads[len(heads)-1]
		heads = heads[:len(heads)-1]
		path = path[:0]
		for x := h; x >= 0; x = heavy[x] {
			path = append(path, x)
		}
		end := int32(len(blk) + len(path) - 1)
		ci := int32(len(chains))
		chains = append(chains, chainRec{head: h, end: end})
		for i := len(path) - 1; i >= 0; i-- {
			r := path[i]
			pos[r] = int32(len(blk))
			blk = append(blk, owner[r])
			chainOf[r] = ci
			recEnd[r] = end
		}
		blk = append(blk, -1, -1) // trailer, filled below
		for _, node := range path {
			for x := childOff[node]; x < childOff[node+1]; x++ {
				if c := child[x]; c != heavy[node] {
					heads = append(heads, c)
				}
			}
		}
	}
	f.walkBlk = blk
	// Resolve each placed anchor head's geometry index — a failed
	// resolution (corrupt image) stays -1 and surfaces as a walk error.
	anchorIdx := make([]int32, p)
	for i := range anchorIdx {
		anchorIdx[i] = -1
	}
	for e := 0; e < len(f.entryKey); e++ {
		kid := f.entryKey[e]
		plo, phi := f.pathOff[kid], f.pathOff[kid+1]
		pathPos := f.pathPos[plo:phi]
		pathVert := f.pathVert[plo:phi]
		for i := f.portalOff[e]; i < f.portalOff[e+1]; i++ {
			if pos[i] < 0 || f.hops[i] >= 0 {
				continue
			}
			if idx, err := pathIndexAt(pathPos, pathVert, f.portals[i].Pos, owner[i]); err == nil {
				anchorIdx[i] = int32(idx)
			}
		}
	}
	// Fill trailers and per-chain anchor/tail-depth in placement order: a
	// light chain jumps into its parent's run and inherits its anchor and
	// the walk length past its head; a root chain stops at its own
	// resolved geometry index.
	chainAnchor := make([]int32, len(chains))
	chainTail := make([]int32, len(chains)) // output length after the head
	for ci, c := range chains {
		if h := f.hops[c.head]; h >= 0 {
			blk[c.end+1] = pos[h]
			blk[c.end+2] = recEnd[h]
			hc := chainOf[h]
			chainAnchor[ci] = chainAnchor[hc]
			chainTail[ci] = (recEnd[h] - pos[h] + 1) + chainTail[hc]
		} else {
			chainAnchor[ci] = anchorIdx[c.head]
		}
	}
	for r := 0; r < p; r++ {
		sr := startRec{slot: pos[r], end: -1, anchor: -1}
		if sr.slot >= 0 {
			ci := chainOf[r]
			sr.end = recEnd[r]
			sr.anchor = chainAnchor[ci]
			sr.depth = (recEnd[r] - pos[r] + 1) + chainTail[ci]
		}
		f.walkFrom[r] = sr
	}
}

// N returns the number of labeled vertices.
func (f *Flat) N() int { return f.n }

// Eps returns the ε the source oracle was built with.
func (f *Flat) Eps() float64 { return f.eps }

// Mode returns the portal construction the source oracle was built with.
func (f *Flat) Mode() Mode { return f.mode }

// NumKeys returns the number of interned separator-path keys.
func (f *Flat) NumKeys() int { return len(f.keys) }

// NumEntries returns the total entry count across all labels.
func (f *Flat) NumEntries() int { return len(f.entryKey) }

// NumPortals returns the size of the contiguous portal pool.
func (f *Flat) NumPortals() int { return len(f.portals) }

// PortalPoolBytes returns the in-memory size of the contiguous portal
// pool (16 bytes per record).
func (f *Flat) PortalPoolBytes() int { return 16 * len(f.portals) }

// LaneBytes returns the in-memory size of the derived sweep-lane pools
// (the record lane plus the replay sum/prefix-min pools; see derive).
func (f *Flat) LaneBytes() int {
	return 8 * (len(f.lane) + len(f.laneSum))
}

// LaneAligned reports whether the sweep-lane pool starts on a 64-byte
// boundary. derive aligns it unconditionally, so false means the derived
// layout regressed; an empty pool counts as aligned.
func (f *Flat) LaneAligned() bool {
	return len(f.lane) == 0 || uintptr(unsafe.Pointer(&f.lane[0]))%64 == 0
}

// PortalRunLengths appends the per-entry portal-run lengths (the k of
// each blocked lane group) to dst and returns it — the distribution
// cmd/inspect reports to explain sweep cost.
func (f *Flat) PortalRunLengths(dst []int) []int {
	for e := 0; e+1 < len(f.portalOff); e++ {
		dst = append(dst, int(f.portalOff[e+1]-f.portalOff[e]))
	}
	return dst
}

// SetMetrics attaches (or, with nil, detaches) serving metrics:
// "oracle.query_ns" and "oracle.query_portals" observe single queries
// (same instruments as the pointer oracle), "oracle.batch_qps" records the
// throughput of the last QueryBatch, and "oracle.flat_bytes" is set once
// to the encoded size of this Flat.
func (f *Flat) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		f.qLatency, f.qPortals, f.batchQPS = nil, nil, nil
		return
	}
	f.qLatency = reg.Histogram("oracle.query_ns")
	f.qPortals = reg.Histogram("oracle.query_portals")
	f.batchQPS = reg.Gauge("oracle.batch_qps")
	reg.Gauge("oracle.flat_bytes").Set(int64(f.EncodedSize()))
}

// SetSlowSampler attaches (or, with nil, detaches) a slow-query exemplar
// reservoir: every instrumented Query offers its (u, v, dist, ns) tuple,
// and the sampler retains the slowest. The disabled path (no sampler, no
// metrics) stays a single nil check with no allocation; the enabled path
// is allocation-free too.
func (f *Flat) SetSlowSampler(s *obs.SlowQuerySampler) { f.slow = s }

// Query returns the same (1+ε)-approximate distance as the source
// Oracle.Query, bit for bit. It is goroutine-safe and allocation-free;
// malformed vertex IDs report +Inf. With metrics or a slow-query sampler
// attached it observes the query latency and portal work, including on
// the u == v fast path.
func (f *Flat) Query(u, v int) float64 {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1)
	}
	if f.qLatency == nil && f.slow == nil {
		if u == v {
			return 0
		}
		est, _ := f.query(u, v)
		return est
	}
	start := time.Now()
	if u == v {
		ns := time.Since(start)
		f.qLatency.Observe(float64(ns))
		f.qPortals.Observe(0)
		f.slow.Observe(int32(u), int32(v), 0, ns.Nanoseconds())
		return 0
	}
	est, portals := f.query(u, v)
	ns := time.Since(start)
	f.qLatency.Observe(float64(ns))
	f.qPortals.Observe(float64(portals))
	f.slow.Observe(int32(u), int32(v), est, ns.Nanoseconds())
	return est
}

// gallopSkew is the length ratio at which the entry-key intersection
// switches from linear advance to galloping: with one list ≥8× longer,
// exponential probe + binary search bounds the long side's cost at
// O(short · log(long/short)) instead of O(long) — the skewed-degree
// regime where a hub vertex carries a huge label and its partner a tiny
// one.
const gallopSkew = 8

// gallopTo returns the first index in [lo, hi) with keys[x] >= target.
// The caller guarantees keys[lo] < target. Exponential probe doubles the
// step until it overshoots, then a binary search pins the boundary
// inside the last step — the classic galloping primitive, O(log gap).
//
//pathsep:hotpath
func gallopTo(keys []int32, lo, hi int, target int32) int {
	step := 1
	for lo+step < hi && keys[lo+step] < target {
		lo += step
		step <<= 1
	}
	top := lo + step
	if top > hi {
		top = hi
	}
	// Invariant: keys[lo] < target <= keys[top] (or top == hi).
	for lo+1 < top {
		mid := int(uint(lo+top) >> 1)
		if keys[mid] < target {
			lo = mid
		} else {
			top = mid
		}
	}
	return top
}

// sweepRec folds one matched key's merged sweep over two record runs
// (kA/kB are the runs' lengths in lane slots, 3 per portal; see the
// lane layout doc on Flat) and returns best folded with the run pair's
// candidates. Consuming element x of one side folds the single
// candidate fl(diff_x + smin_other), which covers every legal pairing
// of x at once — the other side's unconsumed suffix is exactly x's
// partner set — so each step is one load-add-compare, there are no
// running min registers, and when either side runs out the remainder
// has no partners and the sweep simply stops: no tail pass. The advance
// is a predicted branch on purpose: a branchless select would chain the
// next load address through the compare and serialize the memory level
// parallelism the speculative fetch down the predicted path provides.
// A separate function keeps the loop's live values inside one register
// file instead of spilling the caller's merge state around it.
//
//pathsep:hotpath
func sweepRec(recA, recB []float64, kA, kB int, best float64) float64 {
	if kA == 0 || kB == 0 {
		return best
	}
	_ = recA[kA-1]
	_ = recB[kB-1]
	xa, yb := 0, 0
	for {
		if recA[xa] <= recB[yb] {
			if est := recA[xa+1] + recB[yb+2]; est < best {
				best = est
			}
			if xa += 3; xa >= kA {
				break
			}
		} else {
			if est := recB[yb+1] + recA[xa+2]; est < best {
				best = est
			}
			if yb += 3; yb >= kB {
				break
			}
		}
	}
	return best
}

// matchBuf is the stack window of the two-phase merge-join: matched
// entry pairs collect here while the key merge runs, then sweep in one
// second pass. Collecting first lets the collect loop touch every
// matched run's first lane line up front, so the runs' cache misses
// resolve in parallel instead of serializing one sweep at a time; a
// typical query matches 3–4 keys, so the window rarely flushes early.
const matchBuf = 16

// query is the flat merge-join: two CSR entry ranges advance on int32 key
// IDs (galloping over the longer one when the lists are ≥8× skewed);
// matched entries run pairMin's merged sweep (sweepRec) over the blocked
// record lanes, collected first through the matchBuf window (see above).
// The candidate values are exactly queryLabels'/pairMin's — min over an
// identical multiset — which the differential tests pin down bit for bit.
//
//pathsep:hotpath
func (f *Flat) query(u, v int) (float64, int) {
	best := math.Inf(1)
	portals := 0
	ek, po, ln := f.entryKey, f.portalOff, f.lane
	i, iEnd := int(f.entryOff[u]), int(f.entryOff[u+1])
	j, jEnd := int(f.entryOff[v]), int(f.entryOff[v+1])
	gallop := (iEnd-i) >= gallopSkew*(jEnd-j) || (jEnd-j) >= gallopSkew*(iEnd-i)
	var mA, mB [matchBuf]int32
	touch := 0.0
	nm := 0
	for i < iEnd && j < jEnd {
		a, b := ek[i], ek[j]
		switch {
		case a == b:
			if nm == matchBuf {
				best, portals = f.sweepMatches(mA[:nm], mB[:nm], best, portals)
				nm = 0
			}
			mA[nm], mB[nm] = int32(i), int32(j)
			nm++
			// Touch both runs' first lane lines now; the loads carry no
			// dependency, so the misses overlap with the rest of the merge.
			if x := 3 * int(po[i]); x < len(ln) {
				touch += ln[x]
			}
			if x := 3 * int(po[j]); x < len(ln) {
				touch += ln[x]
			}
			i++
			j++
		case a < b:
			if i++; gallop && i < iEnd && ek[i] < b {
				i = gallopTo(ek, i, iEnd, b)
			}
		default:
			if j++; gallop && j < jEnd && ek[j] < a {
				j = gallopTo(ek, j, jEnd, a)
			}
		}
	}
	best, portals = f.sweepMatches(mA[:nm], mB[:nm], best, portals)
	if touch < 0 {
		// Unreachable (positions are non-negative), but keeps the touch
		// loads live without a data dependency into the sweep phase.
		portals = 0
	}
	return best, portals
}

// sweepMatches folds the collected matched entry pairs' sweeps into best
// (see query; portals accumulates the pool records visited for the
// query_portals histogram).
//
//pathsep:hotpath
func (f *Flat) sweepMatches(mA, mB []int32, best float64, portals int) (float64, int) {
	po, ln := f.portalOff, f.lane
	for t := 0; t < len(mA) && t < len(mB); t++ {
		i, j := int(mA[t]), int(mB[t])
		ia0, ka := int(po[i]), int(po[i+1]-po[i])
		ib0, kb := int(po[j]), int(po[j+1]-po[j])
		portals += ka + kb
		kA, kB := 3*ka, 3*kb
		best = sweepRec(ln[3*ia0:3*ia0+kA], ln[3*ib0:3*ib0+kB], kA, kB, best)
	}
	return best, portals
}

// answer is Query without instrumentation: the per-pair unit of QueryBatch.
//
//pathsep:hotpath
func (f *Flat) answer(u, v int) float64 {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1)
	}
	if u == v {
		return 0
	}
	est, _ := f.query(u, v)
	return est
}

// Pair is one (U, V) query of a batch.
type Pair struct {
	U, V int32
}

// batchChunksPerWorker over-splits a batch so workers that hit cheap pairs
// steal further chunks instead of idling.
const batchChunksPerWorker = 8

// Batch locality scheduling: a chunk's pairs are answered in an order
// that visits the portal pool front to back instead of at the caller's
// random walk, so consecutive queries hit overlapping entry-table and
// lane regions while they are still cached. schedWindow bounds the
// reorder window (and the on-stack scratch: 8 bytes per pair);
// schedMinPairs keeps tiny batches on the straight path, where a sort
// costs more than the locality buys.
const (
	schedWindow   = 2048
	schedMinPairs = 128
)

// schedKey packs the locality sort key for one pair: the high 16 bits
// are u's entry-offset block (each block names a contiguous ~64-entry
// portal region; see derive for the shifts), the low 16 bits v's, so the
// sort clusters first by the u-side region and then by the v-side within
// it. Out-of-range pairs sort last. The key orders work only — answers
// land in their original slots regardless.
func (f *Flat) schedKey(p Pair) uint64 {
	if p.U < 0 || p.V < 0 || int(p.U) >= f.n || int(p.V) >= f.n {
		return (1 << 32) - 1
	}
	eu := uint64(f.entryOff[p.U]) >> f.schedU
	ev := uint64(f.entryOff[p.V]) >> f.schedV
	return eu<<16 | ev
}

// schedSort orders the window's packed (key, slot) records by their
// high-32 key with a 3-pass LSD radix over 11-bit digits — the generic
// comparison sort cost ~60ns/pair here, an order of magnitude more than
// counting passes over a 2048-record window. Radix is stable and the
// window is filled in slot order, so equal keys keep ascending slots:
// the exact order a full-word comparison sort of key<<32|slot produces.
// Passes whose digit is constant across the window (the common case for
// the top digits of small images) skip their scatter. tmp is caller
// scratch of the same length.
func schedSort(s, tmp []uint64) {
	const rbits, rsize = 11, 1 << 11
	src, dst := s, tmp
	for shift := uint(32); shift < 64; shift += rbits {
		var cnt [rsize]int32
		for _, v := range src {
			cnt[(v>>shift)&(rsize-1)]++
		}
		if cnt[(src[0]>>shift)&(rsize-1)] == int32(len(src)) {
			continue
		}
		pos := int32(0)
		for d := 0; d < rsize; d++ {
			c := cnt[d]
			cnt[d] = pos
			pos += c
		}
		for _, v := range src {
			d := (v >> shift) & (rsize - 1)
			dst[cnt[d]] = v
			cnt[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// touchPair pulls the pair's entry-table cache lines (its entryKey and
// portalOff run heads) without answering it. The answer loops call it
// two pairs ahead of the one they answer, so the next queries' first
// misses resolve while the current query computes; the returned sum
// only exists to keep the loads live (see runtime.KeepAlive in
// answerRange).
//
//pathsep:hotpath
func (f *Flat) touchPair(p Pair) int64 {
	if p.U < 0 || p.V < 0 || int(p.U) >= f.n || int(p.V) >= f.n {
		return 0
	}
	iu, iv := f.entryOff[p.U], f.entryOff[p.V]
	t := int64(f.portalOff[iu]) + int64(f.portalOff[iv])
	if int(iu) < len(f.entryKey) {
		t += int64(f.entryKey[iu])
	}
	if int(iv) < len(f.entryKey) {
		t += int64(f.entryKey[iv])
	}
	return t
}

// answerRange answers pairs[lo:hi] into out[lo:hi], visiting each
// schedWindow-sized window in locality order (see schedKey). The scratch
// holding the packed (key, slot) records lives on the stack, so the warm
// path allocates nothing; results are written to their original slots,
// so output order and determinism are unaffected by the schedule. Both
// answer loops run two pairs ahead of themselves through touchPair, so
// consecutive queries' entry-table misses overlap instead of chaining.
func (f *Flat) answerRange(pairs []Pair, out []float64, lo, hi int) {
	touch := int64(0)
	if hi-lo < schedMinPairs {
		for i := lo; i < hi; i++ {
			if i+2 < hi {
				touch += f.touchPair(pairs[i+2])
			}
			out[i] = f.answer(int(pairs[i].U), int(pairs[i].V))
		}
		runtime.KeepAlive(touch)
		return
	}
	var sched, scratch [schedWindow]uint64
	for wlo := lo; wlo < hi; wlo += schedWindow {
		whi := wlo + schedWindow
		if whi > hi {
			whi = hi
		}
		s := sched[:whi-wlo]
		for x := range s {
			s[x] = f.schedKey(pairs[wlo+x])<<32 | uint64(uint32(x))
		}
		schedSort(s, scratch[:len(s)])
		for x, rec := range s {
			if x+2 < len(s) {
				touch += f.touchPair(pairs[wlo+int(uint32(s[x+2]))])
			}
			i := wlo + int(uint32(rec))
			out[i] = f.answer(int(pairs[i].U), int(pairs[i].V))
		}
	}
	runtime.KeepAlive(touch)
}

// QueryBatch answers pairs[i] into out[i] for every i, fanning the work
// out over runtime.GOMAXPROCS(0) workers. out is reused when it has
// sufficient capacity and allocated otherwise; the (possibly re-sliced)
// result is returned, so callers amortize to zero allocations by passing
// the previous batch's slice back in. Each worker answers its chunk in
// locality order (see answerRange) but writes every answer to the pair's
// original slot, so results are identical to calling Query per pair (and
// therefore to Oracle.Query), for every worker count and every caller
// ordering. With metrics attached, the batch records its throughput in
// the "oracle.batch_qps" gauge; per-query histograms are not touched.
func (f *Flat) QueryBatch(pairs []Pair, out []float64) []float64 {
	return f.QueryBatchWorkers(pairs, out, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit worker-pool width
// (0 means runtime.GOMAXPROCS(0), 1 runs serially on the caller).
func (f *Flat) QueryBatchWorkers(pairs []Pair, out []float64, workers int) []float64 {
	if cap(out) < len(pairs) {
		out = make([]float64, len(pairs))
	}
	out = out[:len(pairs)]
	if len(pairs) == 0 {
		return out
	}
	start := time.Now()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		// Serial fast path: no pool, no closure — keeps the reused-buffer
		// contract at a true zero allocations per batch (answerRange's
		// scheduling scratch is on the stack).
		f.answerRange(pairs, out, 0, len(pairs))
	} else {
		pool := par.New(workers, nil)
		chunks := pool.Workers() * batchChunksPerWorker
		if chunks > len(pairs) {
			chunks = len(pairs)
		}
		size := (len(pairs) + chunks - 1) / chunks
		pool.ForEach(chunks, func(c int) {
			lo := c * size
			hi := lo + size
			if hi > len(pairs) {
				hi = len(pairs)
			}
			f.answerRange(pairs, out, lo, hi)
		})
		pool.Finish()
	}
	if f.batchQPS != nil {
		if ns := time.Since(start).Nanoseconds(); ns > 0 {
			f.batchQPS.Set(int64(float64(len(pairs)) * 1e9 / float64(ns)))
		}
	}
	return out
}
