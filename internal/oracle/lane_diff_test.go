// White-box differential coverage for the blocked sweep-lane layout.
//
// The flat image no longer stores AoS portal records: Freeze/DecodeFlat
// derive per-entry lanes (pos, diff, suffix-min) plus a sum lane, and
// the merge sweep folds over those. These tests pin the layout to its
// AoS source of truth — the pointer oracle's []Portal runs — field by
// field and fold by fold, across three graph families and both modes:
//
//   - every lane record must be a bit-exact transcription of its Portal
//     (pos, Dist-Pos, suffix-min of Dist+Pos, and the sum lane);
//   - the lane fold (sweepRec) must reproduce the classic AoS
//     two-pointer fold (pairMin) bit-for-bit on every matched key;
//   - Query/QueryPath/QueryBatch must agree with the pointer oracle;
//   - locality-scheduled batches must return results in caller order
//     byte-identically under any permutation of the pair list.
package oracle

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

// laneFamilies builds the three differential graph families: planar-ish
// grid, random tree (degenerate separators), and 3D mesh plus an apex
// vertex (high-degree hub, skewed label sizes for the galloping path).
func laneFamilies(t *testing.T) map[string]struct {
	g   *graph.Graph
	rot *embed.Rotation
} {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	out := map[string]struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{}
	grid := embed.Grid(8, 8, graph.UniformWeights(1, 4), rng)
	out["grid"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{grid.G, grid}
	out["random-tree"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{graph.RandomTree(150, graph.UniformWeights(1, 4), rng), nil}
	mesh := graph.Mesh3D(4, 4, 3, graph.UniformWeights(1, 3), rng)
	mn := mesh.N()
	b := graph.NewBuilder(mn + 1)
	for u := 0; u < mn; u++ {
		for _, h := range mesh.Neighbors(u) {
			if u < h.To {
				b.AddEdge(u, h.To, h.W)
			}
		}
	}
	for u := 0; u < mn; u++ {
		b.AddEdge(u, mn, 2.5)
	}
	out["mesh-apex"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{b.Build(), nil}
	return out
}

func laneBuild(t *testing.T, g *graph.Graph, rot *embed.Rotation, mode Mode) (*Oracle, *Flat) {
	t.Helper()
	dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: rot})
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	o, err := Build(dec, Options{Epsilon: 0.25, Mode: mode})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	f, err := o.Freeze()
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	return o, f
}

// laneModes enumerates both cover modes with printable names.
var laneModes = []struct {
	mode Mode
	name string
}{{CoverExact, "exact"}, {CoverPortal, "portal"}}

// TestSweepLayoutDifferential pins the derived lanes to the AoS portal
// records and the lane fold to the classic AoS fold, bit for bit.
func TestSweepLayoutDifferential(t *testing.T) {
	for fam, fx := range laneFamilies(t) {
		for _, m := range laneModes {
			o, f := laneBuild(t, fx.g, fx.rot, m.mode)
			n := fx.g.N()

			// Field-level: each entry's lane run transcribes its Portal
			// run, and the suffix-min lane is the backward fold of the
			// sum lane under strict <.
			ei := 0
			for u := 0; u < n; u++ {
				for _, e := range o.Labels[u].Entries {
					if f.keys[f.entryKey[ei]] != e.Key {
						t.Fatalf("%s/%s: entry %d key %v, labels say %v",
							fam, m.name, ei, f.keys[f.entryKey[ei]], e.Key)
					}
					lo, hi := int(f.portalOff[ei]), int(f.portalOff[ei+1])
					if hi-lo != len(e.Portals) {
						t.Fatalf("%s/%s: entry %d run %d portals, labels have %d",
							fam, m.name, ei, hi-lo, len(e.Portals))
					}
					sm := math.Inf(1)
					for x := len(e.Portals) - 1; x >= 0; x-- {
						p := e.Portals[x]
						if s := p.Dist + p.Pos; s < sm {
							sm = s
						}
						rec := f.lane[3*(lo+x) : 3*(lo+x)+3]
						if rec[0] != p.Pos ||
							math.Float64bits(rec[1]) != math.Float64bits(p.Dist-p.Pos) ||
							math.Float64bits(rec[2]) != math.Float64bits(sm) ||
							math.Float64bits(f.laneSum[lo+x]) != math.Float64bits(p.Dist+p.Pos) {
							t.Fatalf("%s/%s: entry %d record %d = (%v,%v,%v|%v), portal (%v,%v) suffix-min %v",
								fam, m.name, ei, x, rec[0], rec[1], rec[2], f.laneSum[lo+x], p.Pos, p.Dist, sm)
						}
					}
					ei++
				}
			}

			// Fold-level: for every matched entry pair of every vertex
			// pair, the lane fold equals the AoS two-pointer fold.
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					lu, lv := &o.Labels[u], &o.Labels[v]
					i, j := 0, 0
					for i < len(lu.Entries) && j < len(lv.Entries) {
						a, b := lu.Entries[i], lv.Entries[j]
						switch {
						case a.Key == b.Key:
							want := pairMin(a.Portals, b.Portals)
							ea := int(f.entryOff[u]) + i
							eb := int(f.entryOff[v]) + j
							ia0, kA := int(f.portalOff[ea]), 3*int(f.portalOff[ea+1]-f.portalOff[ea])
							ib0, kB := int(f.portalOff[eb]), 3*int(f.portalOff[eb+1]-f.portalOff[eb])
							got := sweepRec(f.lane[3*ia0:3*ia0+kA], f.lane[3*ib0:3*ib0+kB], kA, kB, math.Inf(1))
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("%s/%s: key fold (%d,%d) entry %d/%d: lane %v, AoS %v",
									fam, m.name, u, v, i, j, got, want)
							}
							i++
							j++
						case keyLess(a.Key, b.Key):
							i++
						default:
							j++
						}
					}
				}
			}

			// End-to-end: flat Query and QueryPath against the pointer
			// oracle on a pair sample (all pairs for the smaller grid).
			var buf, pbuf []int32
			for u := -1; u <= n; u++ {
				for v := -1; v <= n; v++ {
					want := o.Query(u, v)
					if got := f.Query(u, v); math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s/%s: Query(%d,%d) = %v, pointer %v", fam, m.name, u, v, got, want)
					}
					wd, wp, werr := o.QueryPath(u, v, buf[:0])
					gd, gp, gerr := f.QueryPath(u, v, pbuf[:0])
					buf, pbuf = wp, gp
					if math.Float64bits(gd) != math.Float64bits(wd) || (werr == nil) != (gerr == nil) {
						t.Fatalf("%s/%s: QueryPath(%d,%d) = (%v,%v), pointer (%v,%v)",
							fam, m.name, u, v, gd, gerr, wd, werr)
					}
					if len(gp) != len(wp) {
						t.Fatalf("%s/%s: QueryPath(%d,%d) walk %v, pointer %v", fam, m.name, u, v, gp, wp)
					}
					for x := range gp {
						if gp[x] != wp[x] {
							t.Fatalf("%s/%s: QueryPath(%d,%d) walk %v, pointer %v", fam, m.name, u, v, gp, wp)
						}
					}
				}
			}
		}
	}
}

// TestBatchPermutationInvariance proves the locality scheduler is
// invisible: whatever order the scheduler visits pairs in, results land
// in caller slots, so any permutation of the same pair list returns the
// permuted copy of the same answers, byte for byte, at every worker
// count.
func TestBatchPermutationInvariance(t *testing.T) {
	for fam, fx := range laneFamilies(t) {
		for _, m := range laneModes {
			_, f := laneBuild(t, fx.g, fx.rot, m.mode)
			n := fx.g.N()
			rng := rand.New(rand.NewSource(29))
			pairs := make([]Pair, 512)
			for i := range pairs {
				pairs[i] = Pair{U: int32(rng.Intn(n+2) - 1), V: int32(rng.Intn(n+2) - 1)}
			}
			// Per-pair reference in caller order.
			want := make([]float64, len(pairs))
			for i, p := range pairs {
				want[i] = f.Query(int(p.U), int(p.V))
			}
			perm := rng.Perm(len(pairs))
			shuffled := make([]Pair, len(pairs))
			for i, x := range perm {
				shuffled[i] = pairs[x]
			}
			var out []float64
			for _, workers := range []int{1, 2, 4, 0} {
				out = f.QueryBatchWorkers(shuffled, out, workers)
				if len(out) != len(shuffled) {
					t.Fatalf("%s/%s: workers=%d returned %d results for %d pairs",
						fam, m.name, workers, len(out), len(shuffled))
				}
				for i, x := range perm {
					if math.Float64bits(out[i]) != math.Float64bits(want[x]) {
						t.Fatalf("%s/%s: workers=%d shuffled[%d] (pair %v) = %v, want %v",
							fam, m.name, workers, i, shuffled[i], out[i], want[x])
					}
				}
			}
		}
	}
}
