package oracle

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
)

// buildSeeded builds a pointer oracle over a seeded random graph: a tree
// for even seeds, a sparse connected graph for odd ones.
func buildSeeded(tb testing.TB, seed int64, n int, mode Mode) (*graph.Graph, *Oracle) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	if seed%2 == 0 {
		g = graph.RandomTree(n, graph.UniformWeights(1, 4), rng)
	} else {
		g = graph.ConnectedGNM(n, 2*n, graph.UniformWeights(0.5, 2), rng)
	}
	dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := Build(dec, Options{Epsilon: 0.25, Mode: mode})
	if err != nil {
		tb.Fatal(err)
	}
	return g, o
}

// TestFreezeRoundTrip pins the flat accessors and the exact Encode /
// DecodeFlat round trip against the source oracle's accounting.
func TestFreezeRoundTrip(t *testing.T) {
	_, o := buildSeeded(t, 4, 60, CoverExact)
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if fl.N() != o.N {
		t.Fatalf("N = %d, want %d", fl.N(), o.N)
	}
	if !core.SameDist(fl.Eps(), o.Eps) {
		t.Fatalf("Eps = %v, want %v", fl.Eps(), o.Eps)
	}
	if fl.NumPortals() != o.SpacePortals() {
		t.Fatalf("NumPortals = %d, want %d", fl.NumPortals(), o.SpacePortals())
	}
	entries := 0
	for v := range o.Labels {
		entries += len(o.Labels[v].Entries)
	}
	if fl.NumEntries() != entries {
		t.Fatalf("NumEntries = %d, want %d", fl.NumEntries(), entries)
	}
	dec, err := DecodeFlat(fl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < o.N; u++ {
		for v := 0; v < o.N; v++ {
			if math.Float64bits(dec.Query(u, v)) != math.Float64bits(o.Query(u, v)) {
				t.Fatalf("decoded Query(%d,%d) = %v, oracle %v", u, v, dec.Query(u, v), o.Query(u, v))
			}
		}
	}
}

// TestFlatSelfQueryObserved checks the metrics parity of the fast paths:
// both the pointer oracle and the flat form must observe self queries, so
// QPS accounting covers all traffic.
func TestFlatSelfQueryObserved(t *testing.T) {
	_, o := buildSeeded(t, 2, 30, CoverExact)
	reg := obs.New()
	o.SetMetrics(reg)
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	fl.SetMetrics(reg)

	lat := reg.Histogram("oracle.query_ns")
	base := lat.Count()
	if got := o.Query(3, 3); !core.IsZeroDist(got) {
		t.Fatalf("Query(3,3) = %v", got)
	}
	if lat.Count() != base+1 {
		t.Fatalf("self query not observed by Oracle.Query: count %d, want %d", lat.Count(), base+1)
	}
	if got := fl.Query(3, 3); !core.IsZeroDist(got) {
		t.Fatalf("Flat.Query(3,3) = %v", got)
	}
	if lat.Count() != base+2 {
		t.Fatalf("self query not observed by Flat.Query: count %d, want %d", lat.Count(), base+2)
	}
	// Out-of-range queries stay unobserved on both surfaces.
	o.Query(-1, 3)
	fl.Query(-1, 3)
	if lat.Count() != base+2 {
		t.Fatalf("out-of-range query observed: count %d, want %d", lat.Count(), base+2)
	}
	if reg.Gauge("oracle.flat_bytes").Value() != int64(fl.EncodedSize()) {
		t.Fatalf("oracle.flat_bytes = %d, want %d", reg.Gauge("oracle.flat_bytes").Value(), fl.EncodedSize())
	}
}

// TestQueryBatchRecordsQPS checks the batch throughput gauge.
func TestQueryBatchRecordsQPS(t *testing.T) {
	_, o := buildSeeded(t, 2, 30, CoverExact)
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	fl.SetMetrics(reg)
	pairs := make([]Pair, 256)
	rng := rand.New(rand.NewSource(7))
	for i := range pairs {
		pairs[i] = Pair{U: int32(rng.Intn(30)), V: int32(rng.Intn(30))}
	}
	fl.QueryBatch(pairs, nil)
	if reg.Gauge("oracle.batch_qps").Value() <= 0 {
		t.Fatal("oracle.batch_qps not recorded")
	}
}

// TestQueryBatchEdgeCases pins the batch surface against per-pair
// Flat.Query on the degenerate shapes: empty batch, single pair,
// duplicate pairs, self pairs, and out-of-range IDs — for every pool
// width.
func TestQueryBatchEdgeCases(t *testing.T) {
	_, o := buildSeeded(t, 3, 40, CoverPortal)
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	n := int32(fl.N())
	batches := map[string][]Pair{
		"empty":     {},
		"single":    {{U: 1, V: 7}},
		"self":      {{U: 5, V: 5}, {U: 0, V: 0}},
		"duplicate": {{U: 2, V: 9}, {U: 2, V: 9}, {U: 9, V: 2}, {U: 2, V: 9}},
		"bounds":    {{U: -1, V: 3}, {U: 3, V: -1}, {U: n, V: 0}, {U: 0, V: n + 7}},
		"mixed":     {{U: 4, V: 4}, {U: -1, V: 2}, {U: 1, V: 8}, {U: 1, V: 8}, {U: 0, V: n - 1}},
	}
	names := make([]string, 0, len(batches))
	for name := range batches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pairs := batches[name]
		for _, workers := range []int{1, 2, 0} {
			got := fl.QueryBatchWorkers(pairs, nil, workers)
			if len(got) != len(pairs) {
				t.Fatalf("%s workers=%d: len = %d, want %d", name, workers, len(got), len(pairs))
			}
			for i, p := range pairs {
				want := fl.Query(int(p.U), int(p.V))
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("%s workers=%d: out[%d] = %v, Query(%d,%d) = %v",
						name, workers, i, got[i], p.U, p.V, want)
				}
			}
		}
	}
	// Empty batch with a nil buffer returns an empty, usable slice.
	if out := fl.QueryBatch(nil, nil); len(out) != 0 {
		t.Fatalf("QueryBatch(nil, nil) returned %d results", len(out))
	}
}

// TestQueryBatchReusedBufferAllocs pins the amortized-zero-allocation
// contract: once the output buffer has capacity, serial batches must not
// allocate at all.
func TestQueryBatchReusedBufferAllocs(t *testing.T) {
	_, o := buildSeeded(t, 2, 40, CoverExact)
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range pairs {
		pairs[i] = Pair{U: int32(rng.Intn(40)), V: int32(rng.Intn(40))}
	}
	out := fl.QueryBatchWorkers(pairs, nil, 1)
	allocs := testing.AllocsPerRun(20, func() {
		out = fl.QueryBatchWorkers(pairs, out, 1)
	})
	if allocs != 0 {
		t.Fatalf("reused-buffer serial batch allocates %.1f allocs/op, want 0", allocs)
	}
}

// FuzzFlatRoundTrip drives Freeze → Encode → DecodeFlat over seeded
// random graphs and checks query equivalence against the pointer oracle
// on sampled pairs (including self and out-of-range IDs).
func FuzzFlatRoundTrip(f *testing.F) {
	f.Add(int64(2), uint8(24), false)
	f.Add(int64(3), uint8(31), true)
	f.Add(int64(10), uint8(5), false)

	f.Fuzz(func(t *testing.T, seed int64, size uint8, portal bool) {
		n := 2 + int(size)%38
		mode := CoverExact
		if portal {
			mode = CoverPortal
		}
		_, o := buildSeeded(t, seed, n, mode)
		fl, err := o.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFlat(fl.Encode())
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for q := 0; q < 200; q++ {
			u, v := rng.Intn(n+2)-1, rng.Intn(n+2)-1
			want := o.Query(u, v)
			if got := fl.Query(u, v); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("frozen Query(%d,%d) = %v, oracle %v", u, v, got, want)
			}
			if got := dec.Query(u, v); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("decoded Query(%d,%d) = %v, oracle %v", u, v, got, want)
			}
		}
	})
}

// FuzzDecodeFlat feeds arbitrary bytes to DecodeFlat: inputs that parse
// must re-encode to the same bytes and answer queries without panicking.
func FuzzDecodeFlat(f *testing.F) {
	_, o := buildSeeded(f, 2, 20, CoverExact)
	fl, err := o.Freeze()
	if err != nil {
		f.Fatal(err)
	}
	enc := fl.Encode()
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{flatMagic, flatVersion})
	f.Add([]byte{flatMagic, flatVersion2})
	f.Add([]byte{})
	// A distance-only v1 image of the same oracle seeds the legacy branch.
	o.hasPathData = false
	if flV1, err := o.Freeze(); err == nil {
		encV1 := flV1.Encode()
		f.Add(encV1)
		f.Add(encV1[:len(encV1)-9])
	}
	o.hasPathData = true

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode from an aligned copy and a deliberately misaligned copy,
		// not from data itself: DecodeFlat branches on buffer alignment,
		// and the fuzz engine hands inputs at arbitrary offsets, which
		// would make coverage flip between the zero-copy and copying
		// paths run to run and stall the minimizer. This way both paths
		// run deterministically on every input.
		aligned := make([]byte, len(data))
		copy(aligned, data)
		shifted := make([]byte, len(data)+1)
		copy(shifted[1:], data)

		fl, err := DecodeFlat(aligned)
		flCopy, errCopy := DecodeFlat(shifted[1:])
		if (err == nil) != (errCopy == nil) {
			t.Fatalf("decode paths disagree: zero-copy err=%v, copying err=%v", err, errCopy)
		}
		if err != nil {
			return
		}
		canon := fl.Encode()
		fl2, err := DecodeFlat(canon)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		n := fl.N()
		var buf, buf2 []int32
		for _, pair := range [][2]int{{0, 0}, {0, n - 1}, {-1, 3}, {n, n}} {
			a := fl.Query(pair[0], pair[1])
			for _, other := range []*Flat{flCopy, fl2} {
				if b := other.Query(pair[0], pair[1]); math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("Query(%d,%d): %v vs %v", pair[0], pair[1], a, b)
				}
			}
			// Path queries over decoded (possibly hostile) images may
			// return errors but must never panic, and the zero-copy and
			// copying decodes must behave identically.
			ad, buf0, errA := fl.QueryPath(pair[0], pair[1], buf)
			buf = buf0[:0]
			bd, buf1, errB := flCopy.QueryPath(pair[0], pair[1], buf2)
			buf2 = buf1[:0]
			if (errA == nil) != (errB == nil) {
				t.Fatalf("QueryPath(%d,%d): zero-copy err=%v, copying err=%v", pair[0], pair[1], errA, errB)
			}
			if errA == nil && math.Float64bits(ad) != math.Float64bits(bd) {
				t.Fatalf("QueryPath(%d,%d): %v vs %v", pair[0], pair[1], ad, bd)
			}
		}
	})
}
