package oracle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
)

func buildSmall(t *testing.T) *Oracle {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	r := embed.Grid(6, 6, graph.UniformWeights(1, 3), rng)
	tree, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(tree, Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestLabelRoundTrip(t *testing.T) {
	o := buildSmall(t)
	for v := range o.Labels {
		buf := o.Labels[v].Encode()
		got, err := DecodeLabel(buf)
		if err != nil {
			t.Fatalf("label %d: %v", v, err)
		}
		if len(got.Entries) != len(o.Labels[v].Entries) {
			t.Fatalf("label %d: entries %d != %d", v, len(got.Entries), len(o.Labels[v].Entries))
		}
		for i, e := range got.Entries {
			want := o.Labels[v].Entries[i]
			if e.Key != want.Key || len(e.Portals) != len(want.Portals) {
				t.Fatalf("label %d entry %d mismatch", v, i)
			}
			for j, p := range e.Portals {
				if p != want.Portals[j] {
					t.Fatalf("label %d entry %d portal %d mismatch", v, i, j)
				}
			}
		}
	}
}

func TestOracleRoundTripQueriesAgree(t *testing.T) {
	o := buildSmall(t)
	o2, err := Decode(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if o2.N != o.N || o2.Eps != o.Eps {
		t.Fatal("header mismatch")
	}
	for u := 0; u < o.N; u += 3 {
		for v := 0; v < o.N; v += 5 {
			a, b := o.Query(u, v), o2.Query(u, v)
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("query (%d,%d): %v != %v", u, v, a, b)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	o := buildSmall(t)
	buf := o.Encode()
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode(buf[:len(buf)/2]); err == nil {
		t.Fatal("truncated accepted")
	}
	bad := append([]byte{0x00}, buf[1:]...)
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	withTrailer := append(append([]byte{}, buf...), 0xFF)
	if _, err := Decode(withTrailer); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeLabelFuzz(t *testing.T) {
	// Random byte soup must never panic, only error or succeed.
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeLabel(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
