package oracle

import (
	"bytes"
	"testing"
)

// fuzzSeedLabel is a small but representative label: multiple entries,
// delta-coded node keys (including a backwards delta), empty and non-empty
// portal lists.
func fuzzSeedLabel() *Label {
	return &Label{Entries: []Entry{
		{Key: Key{Node: 4, Phase: 0, Path: 1}, Portals: []Portal{{Pos: 0.5, Dist: 1.25}, {Pos: 2, Dist: 3.5}}},
		{Key: Key{Node: 2, Phase: 1, Path: 0}, Portals: []Portal{{Pos: 0, Dist: 0}}},
		{Key: Key{Node: 9, Phase: 3, Path: 2}},
	}}
}

// FuzzDecodeLabel feeds arbitrary bytes to DecodeLabel. Inputs that parse
// must reach an Encode/Decode fixed point (the first re-encode may
// canonicalize non-minimal varints; after that the bytes must be stable).
func FuzzDecodeLabel(f *testing.F) {
	f.Add(fuzzSeedLabel().Encode())
	f.Add((&Label{}).Encode())
	buf := fuzzSeedLabel().Encode()
	f.Add(buf[:len(buf)/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // absurd entry count

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLabel(data)
		if err != nil {
			return
		}
		canon := l.Encode()
		l2, err := DecodeLabel(canon)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(canon, l2.Encode()) {
			t.Fatal("Encode/Decode is not a fixed point")
		}
	})
}

// FuzzDecodeOracle does the same for the whole-oracle format: magic byte,
// header, and length-prefixed labels.
func FuzzDecodeOracle(f *testing.F) {
	o := &Oracle{N: 2, Eps: 0.25, Labels: []Label{*fuzzSeedLabel(), {}}}
	f.Add(o.Encode())
	buf := o.Encode()
	f.Add(buf[:len(buf)-3]) // truncated
	f.Add([]byte{oracleMagic})
	f.Add([]byte{0x00, 0x01}) // bad magic
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Decode(data)
		if err != nil {
			return
		}
		canon := o.Encode()
		o2, err := Decode(canon)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(canon, o2.Encode()) {
			t.Fatal("Encode/Decode is not a fixed point")
		}
	})
}
