// Path reporting: the per-portal hop records laid down at build time
// turn the distance oracle into a path-reporting one (after the style of
// Elkin–Neiman–Wulff-Nilsen). A query first runs the usual merge-join,
// tracking the argmin instead of just the min; the reported walk is then
// assembled in O(len(path)): follow the u-side hop chain to its anchor
// on the certifying separator path, read the path's own vertices between
// the two anchors off the stored geometry, and append the v-side chain
// reversed. Every hop record's distance is an exact shortest distance to
// its anchor and every hop edge telescopes, so the walk's weight equals
// the reported (1+ε) estimate up to float rounding.
package oracle

import (
	"errors"
	"math"
	"sort"

	"pathsep/internal/core"
)

// ErrNoPathData reports a QueryPath against an oracle or flat image that
// carries no hop records (a distance-only build or a legacy image).
var ErrNoPathData = errors.New("oracle: no path data (distance-only image)")

// Static walk errors: corrupt or inconsistent path records are reported,
// never panicked on, and reporting them allocates nothing.
var (
	errPathCycle    = errors.New("oracle: path records form a cycle")
	errPathRecord   = errors.New("oracle: dangling path record")
	errPathGeometry = errors.New("oracle: path geometry mismatch")
)

// PathReporting reports whether the oracle carries the per-portal hop
// records QueryPath needs.
func (o *Oracle) PathReporting() bool { return o.hasPathData }

// PathReporting reports whether the flat image carries the per-portal
// hop records QueryPath needs (wire-format v2 images and freezes of
// path-reporting oracles).
func (f *Flat) PathReporting() bool { return f.hasPathData }

// NumHops returns the hop-chain section length (one record per portal
// on v2 images); 0 on a distance-only image.
func (f *Flat) NumHops() int { return len(f.hops) }

// NumPathVerts returns the total separator-path geometry length across
// all keys (the CSR payload shared by the path_vert and path_pos
// sections); 0 on a distance-only image.
func (f *Flat) NumPathVerts() int { return len(f.pathVert) }

// pairMinArg is pairMin plus the argmin: the indices into a and b whose
// combination achieved the returned minimum (-1, -1 when none did). The
// candidate values and their fold order are exactly pairMin's, so the
// returned minimum is bit-identical to it.
func pairMinArg(a, b []Portal) (float64, int, int) {
	best := math.Inf(1)
	bestA, bestB := -1, -1
	minA, minB := math.Inf(1), math.Inf(1)
	minAi, minBi := -1, -1
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Pos <= b[j].Pos) {
			if est := a[i].Dist + a[i].Pos + minB; est < best {
				best = est
				bestA, bestB = i, minBi
			}
			if v := a[i].Dist - a[i].Pos; v < minA {
				minA = v
				minAi = i
			}
			i++
		} else {
			if est := b[j].Dist + b[j].Pos + minA; est < best {
				best = est
				bestA, bestB = minAi, j
			}
			if v := b[j].Dist - b[j].Pos; v < minB {
				minB = v
				minBi = j
			}
			j++
		}
	}
	return best, bestA, bestB
}

// queryLabelsArg is queryLabels plus the argmin: the entry and portal
// indices on each side whose portal pair achieved the minimum.
func queryLabelsArg(lu, lv *Label) (float64, int, int, int, int) {
	best := math.Inf(1)
	entA, entB, pA, pB := -1, -1, -1, -1
	i, j := 0, 0
	for i < len(lu.Entries) && j < len(lv.Entries) {
		a, b := lu.Entries[i], lv.Entries[j]
		switch {
		case a.Key == b.Key:
			if est, ai, bi := pairMinArg(a.Portals, b.Portals); est < best {
				best = est
				entA, entB, pA, pB = i, j, ai, bi
			}
			i++
			j++
		case keyLess(a.Key, b.Key):
			i++
		default:
			j++
		}
	}
	return best, entA, entB, pA, pB
}

// pathIndexAt locates the path index whose position equals p and whose
// vertex is the walked-to anchor. Positions are copied bit-for-bit from
// the same prefix sums into both the portal records and the geometry, so
// the equality search is exact.
func pathIndexAt(pos []float64, verts []int32, p float64, anchor int32) (int, error) {
	x := sort.SearchFloat64s(pos, p)
	for ; x < len(pos) && core.SameDist(pos[x], p); x++ {
		if verts[x] == anchor {
			return x, nil
		}
	}
	return 0, errPathGeometry
}

func reverseInt32(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// joinSegments splices the three pieces of a reported walk already
// appended to out — [u..anchorA] then [v..anchorB, mid(B→A exclusive)]
// from mark on — into [u..anchorA, mid(A→B), anchorB..v], dropping the
// duplicated anchor when the two chains meet at the same path vertex.
func joinSegments(out []int32, mark int) []int32 {
	reverseInt32(out[mark:])
	if out[mark-1] == out[mark] {
		copy(out[mark:], out[mark+1:])
		out = out[:len(out)-1]
	}
	return out
}

// findEntry locates the entry for k in a label (entries sorted by key).
func findEntry(l *Label, k Key) *Entry {
	x := sort.Search(len(l.Entries), func(i int) bool { return !keyLess(l.Entries[i].Key, k) })
	if x < len(l.Entries) && l.Entries[x].Key == k {
		return &l.Entries[x]
	}
	return nil
}

// walkChain appends the hop chain from vertex w to its anchor on path k
// at position pos: w itself, every intermediate vertex, and the anchor.
// The step bound turns a corrupt (cyclic) hop table into an error
// instead of an unbounded loop.
func (o *Oracle) walkChain(out []int32, w int, k Key, pos float64) ([]int32, int32, error) {
	for steps := 0; steps <= o.N; steps++ {
		out = append(out, int32(w))
		e := findEntry(&o.Labels[w], k)
		if e == nil || len(e.Hops) != len(e.Portals) {
			return out, -1, errPathRecord
		}
		ps := e.Portals
		x := sort.Search(len(ps), func(i int) bool { return ps[i].Pos >= pos })
		if x == len(ps) || !core.SameDist(ps[x].Pos, pos) {
			return out, -1, errPathRecord
		}
		h := e.Hops[x]
		if h < 0 {
			return out, int32(w), nil
		}
		if int(h) >= o.N {
			return out, -1, errPathRecord
		}
		w = int(h)
	}
	return out, -1, errPathCycle
}

// QueryPath returns the same (1+ε)-approximate distance as Query
// together with a witness walk from u to v realizing it, appended into
// buf (which may be nil; pass the returned slice back in to amortize
// allocations away). The walk starts at u, ends at v, steps only along
// graph edges, and its weight equals the returned distance up to float
// rounding. Out-of-range vertex IDs and disconnected pairs report
// (+Inf, empty, nil); a distance-only oracle reports ErrNoPathData.
func (o *Oracle) QueryPath(u, v int, buf []int32) (float64, []int32, error) {
	out := buf[:0]
	if u < 0 || v < 0 || u >= len(o.Labels) || v >= len(o.Labels) {
		return math.Inf(1), out, nil
	}
	if !o.hasPathData {
		return math.Inf(1), out, ErrNoPathData
	}
	if u == v {
		return 0, append(out, int32(u)), nil
	}
	est, entA, entB, pA, pB := queryLabelsArg(&o.Labels[u], &o.Labels[v])
	if math.IsInf(est, 1) {
		return est, out, nil
	}
	ea := &o.Labels[u].Entries[entA]
	eb := &o.Labels[v].Entries[entB]
	k := ea.Key
	posA := ea.Portals[pA].Pos
	posB := eb.Portals[pB].Pos
	pi := sort.Search(len(o.paths), func(i int) bool { return !keyLess(o.paths[i].key, k) })
	if pi == len(o.paths) || o.paths[pi].key != k {
		return est, out, errPathRecord
	}
	sp := &o.paths[pi]
	out, aU, err := o.walkChain(out, u, k, posA)
	if err != nil {
		return est, out, err
	}
	ia, err := pathIndexAt(sp.pos, sp.verts, posA, aU)
	if err != nil {
		return est, out, err
	}
	mark := len(out)
	out, aV, err := o.walkChain(out, v, k, posB)
	if err != nil {
		return est, out, err
	}
	ib, err := pathIndexAt(sp.pos, sp.verts, posB, aV)
	if err != nil {
		return est, out, err
	}
	// Middle segment appended anchor-B-to-anchor-A exclusive; the join
	// reverses the tail into place.
	if ia < ib {
		for x := ib - 1; x > ia; x-- {
			out = append(out, sp.verts[x])
		}
	} else {
		for x := ib + 1; x < ia; x++ {
			out = append(out, sp.verts[x])
		}
	}
	return est, joinSegments(out, mark), nil
}

// queryArg is query plus the argmin: the key ID and the two portal-pool
// indices whose combination achieved the minimum. The hot sweep is
// query's, verbatim — same blocked lanes, same galloping key merge —
// with one change: each matched key folds into a key-local minimum
// first, and only the winning entry pair is remembered — per-portal
// argmin bookkeeping would cost ~30% in register pressure, so it runs
// once afterwards, replaying just the winning pair's sweep (argminPair).
// Min is associative and every fold uses strict <, so both the distance
// and the chosen candidate are bit-identical to the single-pass fold,
// and therefore to Query.
func (f *Flat) queryArg(u, v int) (float64, int32, int32, int32) {
	best := math.Inf(1)
	winI, winJ := -1, -1
	ek, po, ln := f.entryKey, f.portalOff, f.lane
	i, iEnd := int(f.entryOff[u]), int(f.entryOff[u+1])
	j, jEnd := int(f.entryOff[v]), int(f.entryOff[v+1])
	gallop := (iEnd-i) >= gallopSkew*(jEnd-j) || (jEnd-j) >= gallopSkew*(iEnd-i)
	var mA, mB [matchBuf]int32
	touch := 0.0
	nm := 0
	for i < iEnd && j < jEnd {
		a, b := ek[i], ek[j]
		switch {
		case a == b:
			if nm == matchBuf {
				best, winI, winJ = f.sweepMatchesArg(mA[:nm], mB[:nm], best, winI, winJ)
				nm = 0
			}
			mA[nm], mB[nm] = int32(i), int32(j)
			nm++
			if x := 3 * int(po[i]); x < len(ln) {
				touch += ln[x]
			}
			if x := 3 * int(po[j]); x < len(ln) {
				touch += ln[x]
			}
			i++
			j++
		case a < b:
			if i++; gallop && i < iEnd && ek[i] < b {
				i = gallopTo(ek, i, iEnd, b)
			}
		default:
			if j++; gallop && j < jEnd && ek[j] < a {
				j = gallopTo(ek, j, jEnd, a)
			}
		}
	}
	best, winI, winJ = f.sweepMatchesArg(mA[:nm], mB[:nm], best, winI, winJ)
	if touch < 0 {
		// Unreachable (positions are non-negative); keeps the touch loads
		// live, as in query.
		winI = -1
	}
	if winI < 0 {
		return best, -1, -1, -1
	}
	bpa, bpb := f.argminPair(int32(winI), int32(winJ), best)
	return best, ek[winI], bpa, bpb
}

// sweepMatchesArg is queryArg's flush of the collected matched pairs:
// sweepMatches with the per-key argmin kept — each pair folds into a
// key-local minimum first, so the winning entry pair is known without
// per-portal bookkeeping in the hot loop (see queryArg). Tracking the
// winning portal pair here directly (rather than replaying it after)
// does not work: portal distances are affine in path position along
// shortest-path segments, so distinct portal pairs routinely share the
// exact candidate bits, and the reported witness must break those ties
// in the pointer sweep's merge order — argminPair's job.
func (f *Flat) sweepMatchesArg(mA, mB []int32, best float64, winI, winJ int) (float64, int, int) {
	po, ln := f.portalOff, f.lane
	for t := 0; t < len(mA) && t < len(mB); t++ {
		mi, mj := int(mA[t]), int(mB[t])
		ia0, ka := int(po[mi]), int(po[mi+1]-po[mi])
		ib0, kb := int(po[mj]), int(po[mj+1]-po[mj])
		kA, kB := 3*ka, 3*kb
		kbest := sweepRec(ln[3*ia0:3*ia0+kA], ln[3*ib0:3*ib0+kB], kA, kB, math.Inf(1))
		if kbest < best {
			best = kbest
			winI, winJ = mi, mj
		}
	}
	return best, winI, winJ
}

// argminPair resolves the portal pair of one matched entry pair's known
// minimum: the pool indices of the first candidate in the pointer
// sweep's classic merge order achieving target — the same candidate
// pairMinArg's strict-< updates pick. It replays that merge over the
// winning pair's lanes (positions and diffs from the records,
// fl(Dist+Pos) from laneSum), checking each candidate against target's
// bits and returning at the first hit: target IS this pair's minimum,
// so the first candidate equal to it is exactly the strict-< fold's
// argmin. Float add is commutative, so fl(sum + diff) here carries the
// same bits as the suffix-min fold's fl(diff + sum) — the two sweeps
// agree on every candidate's value, only the fold grouping differs.
func (f *Flat) argminPair(e1, e2 int32, target float64) (int32, int32) {
	po, ln, ls := f.portalOff, f.lane, f.laneSum
	tbits := math.Float64bits(target)
	ia0, ka := int(po[e1]), int(po[e1+1]-po[e1])
	ib0, kb := int(po[e2]), int(po[e2+1]-po[e2])
	if ka == 0 || kb == 0 {
		return -1, -1
	}
	// Touch the winning runs' walkFrom lines before the replay: the
	// chosen portals' chain-start records are read right after this
	// returns, and the replay's run time hides their misses. startRecs
	// are 16 bytes, so stride 4 covers every line once.
	wt := int32(0)
	if wf := f.walkFrom; len(wf) >= ia0+ka && len(wf) >= ib0+kb {
		for x := ia0; x < ia0+ka; x += 4 {
			wt |= wf[x].slot
		}
		for x := ib0; x < ib0+kb; x += 4 {
			wt |= wf[x].slot
		}
	}
	if wt < -1<<30 {
		// Unreachable (slots are -1 or small indices); keeps the touch
		// loads live.
		return -1, -1
	}
	if ka == 1 && kb == 1 {
		// One candidate pair, and target is this pair's minimum — it is
		// that candidate.
		return int32(ia0), int32(ib0)
	}
	recA := ln[3*ia0 : 3*ia0+3*ka]
	recB := ln[3*ib0 : 3*ib0+3*kb]
	sumA := ls[ia0 : ia0+ka]
	sumB := ls[ib0 : ib0+kb]
	minA, minB := math.Inf(1), math.Inf(1)
	minAi, minBi := -1, -1
	a, b := 0, 0
	for a < ka || b < kb {
		if b >= kb || (a < ka && recA[3*a] <= recB[3*b]) {
			// A finite target never matches sum + Inf, so a hit implies
			// minBi (resp. minAi below) is a real index.
			if math.Float64bits(sumA[a]+minB) == tbits {
				return int32(ia0 + a), int32(ib0 + minBi)
			}
			if v := recA[3*a+1]; v < minA {
				minA = v
				minAi = a
			}
			a++
		} else {
			if math.Float64bits(sumB[b]+minA) == tbits {
				return int32(ia0 + minAi), int32(ib0 + b)
			}
			if v := recB[3*b+1]; v < minB {
				minB = v
				minBi = b
			}
			b++
		}
	}
	return -1, -1
}

// QueryPath returns the same (1+ε)-approximate distance as Query
// together with a witness walk from u to v realizing it, written into
// buf. With a reused buffer it runs at zero allocations per query: the
// merge-join is queryArg, the walk is O(len(path)), and all errors are
// static. Both chains' anchors and output lengths are known before
// either walk runs (per-record precompute), so the output is sized once
// and every piece lands directly in its final position: the u-chain
// left to right from the front, the v-chain right to left from the
// back, the path's middle segment between them. The two chains are
// walked interleaved, one segment each per turn — their lead cache
// misses overlap instead of serializing. Out-of-range vertex IDs and
// disconnected pairs report (+Inf, empty, nil); a distance-only image
// reports ErrNoPathData.
func (f *Flat) QueryPath(u, v int, buf []int32) (float64, []int32, error) {
	out := buf[:0]
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return math.Inf(1), out, nil
	}
	if !f.hasPathData {
		return math.Inf(1), out, ErrNoPathData
	}
	if u == v {
		return 0, append(out, int32(u)), nil
	}
	est, kid, bpa, bpb := f.queryArg(u, v)
	if math.IsInf(est, 1) {
		return est, out, nil
	}
	if bpa < 0 || bpb < 0 {
		return est, out, errPathRecord
	}
	wa, wb := f.walkFrom[bpa], f.walkFrom[bpb]
	if wa.slot < 0 || wb.slot < 0 {
		return est, out, errPathRecord
	}
	if wa.anchor < 0 || wb.anchor < 0 {
		return est, out, errPathGeometry
	}
	ia, ib := wa.anchor, wb.anchor
	mid := ib - ia - 1
	if ia > ib {
		mid = ia - ib - 1
	}
	// When the chains meet at the same path vertex (ia == ib, mid -1)
	// the v-side anchor duplicates the u-side one; the v-chain's last
	// write then lands on the u-chain's anchor cell with the same value.
	need := int(wa.depth) + int(wb.depth)
	if mid > 0 {
		need += int(mid)
	} else if ia == ib {
		need--
	}
	if cap(out) >= need {
		out = out[:need]
	} else {
		out = make([]int32, need)
	}
	blk := f.walkBlk
	xa, ea := wa.slot, wa.end
	xb, eb := wb.slot, wb.end
	wp, bp := 0, need-1
	aDone, bDone := false, false
	for segs := 0; !aDone || !bDone; segs++ {
		if segs > len(blk) {
			return est, out[:0], errPathCycle
		}
		if !aDone {
			L := int(ea-xa) + 1
			if wp+L > need {
				return est, out[:0], errPathCycle
			}
			copy(out[wp:wp+L], blk[xa:ea+1])
			wp += L
			if q := blk[ea+1]; q >= 0 {
				xa, ea = q, blk[ea+2]
			} else {
				aDone = true
			}
		}
		if !bDone {
			if bp-int(eb-xb) < 0 {
				return est, out[:0], errPathCycle
			}
			for i := xb; i <= eb; i++ {
				out[bp] = blk[i]
				bp--
			}
			if q := blk[eb+1]; q >= 0 {
				xb, eb = q, blk[eb+2]
			} else {
				bDone = true
			}
		}
	}
	if mid > 0 {
		verts := f.pathVert[f.pathOff[kid]:f.pathOff[kid+1]]
		if ia < ib {
			copy(out[wp:wp+int(mid)], verts[ia+1:ib])
		} else {
			for x := ia - 1; x > ib; x-- {
				out[wp] = verts[x]
				wp++
			}
		}
	}
	return est, out, nil
}

// QueryPathBatch answers pairs[i] into dists[i] and the vertex segment
// verts[offs[i]:offs[i+1]] (CSR form). All three buffers are reused when
// they have capacity and allocated otherwise; pass the returned slices
// back in to amortize to zero allocations. The batch runs serially —
// path queries are dominated by the walk append, not the merge-join, so
// the caller picks its own fan-out. The first walk error aborts the
// batch.
func (f *Flat) QueryPathBatch(pairs []Pair, dists []float64, verts []int32, offs []int32) ([]float64, []int32, []int32, error) {
	if cap(dists) < len(pairs) {
		dists = make([]float64, len(pairs))
	}
	dists = dists[:len(pairs)]
	if cap(offs) < len(pairs)+1 {
		offs = make([]int32, len(pairs)+1)
	}
	offs = offs[:len(pairs)+1]
	verts = verts[:0]
	offs[0] = 0
	if !f.hasPathData {
		return dists, verts, offs, ErrNoPathData
	}
	for i, p := range pairs {
		n0 := len(verts)
		d, seg, err := f.QueryPath(int(p.U), int(p.V), verts[n0:])
		if err != nil {
			return dists, verts, offs, err
		}
		dists[i] = d
		// seg aliases verts' tail when capacity sufficed; append copies
		// it into place either way without disturbing earlier segments.
		verts = append(verts[:n0], seg...)
		offs[i+1] = int32(len(verts))
	}
	return dists, verts, offs, nil
}

// findRecord locates vertex w's pool record for key kid at position pos,
// or -1 when absent.
func (f *Flat) findRecord(w int, kid int32, pos float64) int32 {
	if w < 0 || w >= f.n {
		return -1
	}
	lo, hi := int(f.entryOff[w]), int(f.entryOff[w+1])
	e := lo + sort.Search(hi-lo, func(i int) bool { return f.entryKey[lo+i] >= kid })
	if e == hi || f.entryKey[e] != kid {
		return -1
	}
	plo, phi := int(f.portalOff[e]), int(f.portalOff[e+1])
	ps := f.portals[plo:phi]
	x := sort.Search(len(ps), func(i int) bool { return ps[i].Pos >= pos })
	if x < len(ps) && core.SameDist(ps[x].Pos, pos) {
		return int32(plo + x)
	}
	return -1
}

// freezePaths compiles the hop chains and path geometry into the flat
// form: hop vertex IDs resolve to portal-pool indices (one array lookup
// per walk step at query time), and the separator-path vertex/position
// tables land in CSR form aligned with the interned key order. Any
// inconsistency — a hop with no record at the target vertex, geometry
// that does not cover the key set — degrades the Flat to distance-only
// instead of failing the freeze: the image still serves distances, and
// PathReporting reports false.
func (f *Flat) freezePaths(o *Oracle) {
	if len(o.paths) != len(f.keys) {
		return
	}
	nv := 0
	for i := range o.paths {
		if o.paths[i].key != f.keys[i] {
			return
		}
		nv += len(o.paths[i].verts)
	}
	pathOff := make([]int32, len(f.keys)+1)
	pathVert := make([]int32, 0, nv)
	pathPos := make([]float64, 0, nv)
	for i := range o.paths {
		pathVert = append(pathVert, o.paths[i].verts...)
		pathPos = append(pathPos, o.paths[i].pos...)
		pathOff[i+1] = int32(len(pathVert))
	}
	hops := make([]int32, len(f.portals))
	ei, pi := 0, 0
	for v := range o.Labels {
		for _, e := range o.Labels[v].Entries {
			if len(e.Hops) != len(e.Portals) {
				return
			}
			kid := f.entryKey[ei]
			for x := range e.Hops {
				if h := e.Hops[x]; h < 0 {
					hops[pi] = -1
				} else {
					t := f.findRecord(int(h), kid, e.Portals[x].Pos)
					if t < 0 {
						return
					}
					hops[pi] = t
				}
				pi++
			}
			ei++
		}
	}
	f.hops, f.pathOff, f.pathVert, f.pathPos = hops, pathOff, pathVert, pathPos
	f.hasPathData = true
}
