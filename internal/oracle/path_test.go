package oracle

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildPathImage builds a path-reporting oracle plus its frozen v2 image
// for the corruption tests below.
func buildPathImage(t *testing.T) (*Oracle, *Flat) {
	t.Helper()
	_, o := buildSeeded(t, 2, 24, CoverExact)
	if !o.PathReporting() {
		t.Fatal("seeded build carries no path data")
	}
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if !fl.PathReporting() {
		t.Fatal("frozen image lost path data")
	}
	return o, fl
}

// TestDecodeFlatPathValidation pins the v2 decode contract: structural
// corruption of the path sections is rejected at decode time, semantic
// corruption (in-range hop cycles) surfaces as a static query error —
// never a panic — and v1 images decode to distance-only oracles whose
// QueryPath reports ErrNoPathData.
func TestDecodeFlatPathValidation(t *testing.T) {
	o, fl := buildPathImage(t)
	enc := fl.Encode()
	if enc[1] != flatVersion2 {
		t.Fatalf("path-reporting image encoded as version %d", enc[1])
	}
	s2 := flatLayoutV2(fl.n, len(fl.keys), len(fl.entryKey), len(fl.portals), len(fl.pathVert))
	le := binary.LittleEndian

	mutate := func(f func(b []byte)) []byte {
		b := make([]byte, len(enc))
		copy(b, enc)
		f(b)
		return b
	}

	// Hop link pointing past the portal pool: decode must reject.
	bad := mutate(func(b []byte) { le.PutUint32(b[s2.hops:], uint32(len(fl.portals)+5)) })
	if _, err := DecodeFlat(bad); err == nil {
		t.Fatal("out-of-range hop link decoded without error")
	}

	// Path vertex out of range: decode must reject.
	bad = mutate(func(b []byte) { le.PutUint32(b[s2.pathVert:], uint32(fl.n)) })
	if _, err := DecodeFlat(bad); err == nil {
		t.Fatal("out-of-range path vertex decoded without error")
	}

	// NaN position: decode must reject.
	bad = mutate(func(b []byte) { le.PutUint64(b[s2.pathPos:], math.Float64bits(math.NaN())) })
	if _, err := DecodeFlat(bad); err == nil {
		t.Fatal("NaN path position decoded without error")
	}

	// In-range hop cycle: every link routed back to record 0. This passes
	// structural validation by design; the walk's step bound must convert
	// it into a static error on every reachable pair, never a panic.
	cyclic := mutate(func(b []byte) {
		for i := 0; i < len(fl.portals); i++ {
			le.PutUint32(b[s2.hops+4*i:], 0)
		}
	})
	cf, err := DecodeFlat(cyclic)
	if err != nil {
		t.Fatalf("in-range cyclic hops rejected at decode: %v", err)
	}
	var buf []int32
	sawErr := false
	for v := 1; v < cf.N(); v++ {
		var qerr error
		_, buf, qerr = cf.QueryPath(0, v, buf[:0])
		if qerr != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("cyclic hop links never surfaced a walk error")
	}

	// A distance-only freeze of the same oracle encodes as v1 and decodes
	// to an image that declines path queries with ErrNoPathData.
	o.hasPathData = false
	flV1, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	o.hasPathData = true
	encV1 := flV1.Encode()
	if encV1[1] != flatVersion {
		t.Fatalf("distance-only image encoded as version %d", encV1[1])
	}
	dv1, err := DecodeFlat(encV1)
	if err != nil {
		t.Fatal(err)
	}
	if dv1.PathReporting() {
		t.Fatal("v1 image claims path reporting")
	}
	if _, _, err := dv1.QueryPath(0, 1, nil); !errors.Is(err, ErrNoPathData) {
		t.Fatalf("v1 QueryPath error = %v, want ErrNoPathData", err)
	}
	if _, _, _, err := dv1.QueryPathBatch([]Pair{{U: 0, V: 1}}, nil, nil, nil); !errors.Is(err, ErrNoPathData) {
		t.Fatalf("v1 QueryPathBatch error = %v, want ErrNoPathData", err)
	}
	// Distance service is unharmed either way.
	if math.Float64bits(dv1.Query(0, 1)) != math.Float64bits(fl.Query(0, 1)) {
		t.Fatal("v1 image distance disagrees with v2 image")
	}
}

// TestOracleEncodePathsRoundTrip pins the 0x9D pointer wire format:
// Decode(Encode(o)) re-encodes byte-identically and answers path queries
// exactly like the original.
func TestOracleEncodePathsRoundTrip(t *testing.T) {
	o, _ := buildPathImage(t)
	enc := o.Encode()
	if enc[0] != oracleMagicPaths {
		t.Fatalf("path-reporting oracle encoded with magic %#x", enc[0])
	}
	o2, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !o2.PathReporting() {
		t.Fatal("decoded oracle lost path data")
	}
	enc2 := o2.Encode()
	if len(enc) != len(enc2) {
		t.Fatalf("re-encode length %d, want %d", len(enc2), len(enc))
	}
	for i := range enc {
		if enc[i] != enc2[i] {
			t.Fatalf("re-encode differs at byte %d", i)
		}
	}
	rng := rand.New(rand.NewSource(11))
	var buf, buf2 []int32
	for q := 0; q < 100; q++ {
		u, v := rng.Intn(o.N), rng.Intn(o.N)
		var d, d2 float64
		d, buf, err = o.QueryPath(u, v, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		d2, buf2, err = o2.QueryPath(u, v, buf2[:0])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(d) != math.Float64bits(d2) || len(buf) != len(buf2) {
			t.Fatalf("(%d,%d): decoded oracle path disagrees", u, v)
		}
		for i := range buf {
			if buf[i] != buf2[i] {
				t.Fatalf("(%d,%d): decoded path differs at %d", u, v, i)
			}
		}
	}

	// A truncated paths-image and a hop pointing past n must both be
	// rejected by the pointer decoder.
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated paths oracle decoded without error")
	}
}
