package oracle

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encode serializes the label compactly: varint-delta keys and raw float64
// portal fields. The byte length measures the label size in bits for the
// Theorem 2 space accounting (experiment E5).
func (l *Label) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(l.Entries)))
	prevNode := int64(0)
	for _, e := range l.Entries {
		buf = binary.AppendVarint(buf, int64(e.Key.Node)-prevNode)
		prevNode = int64(e.Key.Node)
		buf = binary.AppendUvarint(buf, uint64(e.Key.Phase))
		buf = binary.AppendUvarint(buf, uint64(e.Key.Path))
		buf = binary.AppendUvarint(buf, uint64(len(e.Portals)))
		for _, p := range e.Portals {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Pos))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Dist))
		}
	}
	return buf
}

// DecodeLabel parses a label produced by Encode.
func DecodeLabel(buf []byte) (*Label, error) {
	l := &Label{}
	ne, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("oracle: truncated label header")
	}
	buf = buf[n:]
	// Each entry takes at least 4 bytes (node, phase, path, portal count).
	if ne > uint64(len(buf))/4 {
		return nil, fmt.Errorf("oracle: header claims %d entries in %d bytes", ne, len(buf))
	}
	prevNode := int64(0)
	for i := uint64(0); i < ne; i++ {
		dn, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("oracle: truncated entry %d node", i)
		}
		buf = buf[n:]
		node := prevNode + dn
		prevNode = node
		phase, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("oracle: truncated entry %d phase", i)
		}
		buf = buf[n:]
		path, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("oracle: truncated entry %d path", i)
		}
		buf = buf[n:]
		np, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("oracle: truncated entry %d portal count", i)
		}
		buf = buf[n:]
		// Each portal takes exactly 16 bytes; reject absurd counts before
		// allocating.
		if np > uint64(len(buf))/16 {
			return nil, fmt.Errorf("oracle: entry %d claims %d portals in %d bytes", i, np, len(buf))
		}
		e := Entry{Key: Key{Node: int32(node), Phase: int16(phase), Path: int16(path)}}
		if np > 0 {
			e.Portals = make([]Portal, 0, np)
		}
		for j := uint64(0); j < np; j++ {
			if len(buf) < 16 {
				return nil, fmt.Errorf("oracle: truncated portal %d/%d", i, j)
			}
			pos := math.Float64frombits(binary.LittleEndian.Uint64(buf))
			dist := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
			buf = buf[16:]
			e.Portals = append(e.Portals, Portal{Pos: pos, Dist: dist})
		}
		l.Entries = append(l.Entries, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("oracle: %d trailing bytes", len(buf))
	}
	return l, nil
}

// Bits returns the serialized size of the label in bits.
func (l *Label) Bits() int { return 8 * len(l.Encode()) }

// Encode serializes the whole oracle: header (vertex count, epsilon) plus
// length-prefixed per-vertex labels. The format is versioned by a magic
// byte so stored oracles fail loudly on format drift. Path-reporting
// oracles use a second magic and interleave each label's hop records
// (one uvarint per portal, hop+1 so the -1 anchor sentinel encodes as 0)
// after the label body, then append the separator-path geometry;
// distance-only oracles keep the legacy magic byte for byte-stable round
// trips.
func (o *Oracle) Encode() []byte {
	var buf []byte
	magic := byte(oracleMagic)
	if o.hasPathData {
		magic = oracleMagicPaths
	}
	buf = append(buf, magic)
	buf = binary.AppendUvarint(buf, uint64(o.N))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Eps))
	buf = binary.AppendUvarint(buf, uint64(o.mode))
	for v := range o.Labels {
		lb := o.Labels[v].Encode()
		buf = binary.AppendUvarint(buf, uint64(len(lb)))
		buf = append(buf, lb...)
		if o.hasPathData {
			for _, e := range o.Labels[v].Entries {
				for _, h := range e.Hops {
					buf = binary.AppendUvarint(buf, uint64(h+1))
				}
			}
		}
	}
	if o.hasPathData {
		buf = binary.AppendUvarint(buf, uint64(len(o.paths)))
		for i := range o.paths {
			p := &o.paths[i]
			buf = binary.AppendUvarint(buf, uint64(uint32(p.key.Node)))
			buf = binary.AppendUvarint(buf, uint64(uint16(p.key.Phase)))
			buf = binary.AppendUvarint(buf, uint64(uint16(p.key.Path)))
			buf = binary.AppendUvarint(buf, uint64(len(p.verts)))
			for _, w := range p.verts {
				buf = binary.AppendUvarint(buf, uint64(uint32(w)))
			}
			for _, x := range p.pos {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			}
		}
	}
	return buf
}

const (
	oracleMagic      = 0x9C
	oracleMagicPaths = 0x9D
)

// Decode parses an oracle produced by Encode (either magic).
func Decode(buf []byte) (*Oracle, error) {
	if len(buf) == 0 || (buf[0] != oracleMagic && buf[0] != oracleMagicPaths) {
		return nil, fmt.Errorf("oracle: bad magic")
	}
	withPaths := buf[0] == oracleMagicPaths
	buf = buf[1:]
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("oracle: truncated header")
	}
	buf = buf[sz:]
	if len(buf) < 8 {
		return nil, fmt.Errorf("oracle: truncated epsilon")
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	mode, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("oracle: truncated mode")
	}
	buf = buf[sz:]
	// Every label costs at least one length byte; reject absurd headers
	// before allocating.
	if n > uint64(len(buf)) {
		return nil, fmt.Errorf("oracle: header claims %d labels in %d bytes", n, len(buf))
	}
	o := &Oracle{N: int(n), Eps: eps, mode: Mode(mode), Labels: make([]Label, n), hasPathData: withPaths}
	for v := uint64(0); v < n; v++ {
		l, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("oracle: truncated label %d header", v)
		}
		buf = buf[sz:]
		if uint64(len(buf)) < l {
			return nil, fmt.Errorf("oracle: truncated label %d body", v)
		}
		lbl, err := DecodeLabel(buf[:l])
		if err != nil {
			return nil, fmt.Errorf("oracle: label %d: %w", v, err)
		}
		o.Labels[v] = *lbl
		buf = buf[l:]
		if withPaths {
			for i := range lbl.Entries {
				e := &o.Labels[v].Entries[i]
				e.Hops = make([]int32, len(e.Portals))
				for x := range e.Hops {
					h, sz := binary.Uvarint(buf)
					if sz <= 0 {
						return nil, fmt.Errorf("oracle: truncated label %d hops", v)
					}
					buf = buf[sz:]
					if h > n {
						return nil, fmt.Errorf("oracle: label %d hop %d out of range", v, h)
					}
					e.Hops[x] = int32(h) - 1
				}
			}
		}
	}
	if withPaths {
		np, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("oracle: truncated path count")
		}
		buf = buf[sz:]
		// Every path costs at least 4 bytes of headers.
		if np > uint64(len(buf))/4+1 {
			return nil, fmt.Errorf("oracle: header claims %d paths in %d bytes", np, len(buf))
		}
		o.paths = make([]sepPath, 0, np)
		for i := uint64(0); i < np; i++ {
			var k Key
			node, sz := binary.Uvarint(buf)
			if sz <= 0 || node > math.MaxInt32 {
				return nil, fmt.Errorf("oracle: truncated path %d key", i)
			}
			buf = buf[sz:]
			phase, sz := binary.Uvarint(buf)
			if sz <= 0 || phase > math.MaxInt16 {
				return nil, fmt.Errorf("oracle: truncated path %d key", i)
			}
			buf = buf[sz:]
			pidx, sz := binary.Uvarint(buf)
			if sz <= 0 || pidx > math.MaxInt16 {
				return nil, fmt.Errorf("oracle: truncated path %d key", i)
			}
			buf = buf[sz:]
			k = Key{Node: int32(node), Phase: int16(phase), Path: int16(pidx)}
			if i > 0 && !keyLess(o.paths[i-1].key, k) {
				return nil, fmt.Errorf("oracle: path keys not sorted at %d", i)
			}
			nv, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return nil, fmt.Errorf("oracle: truncated path %d length", i)
			}
			buf = buf[sz:]
			// Each vertex costs >= 1 byte plus 8 bytes of position.
			if nv > uint64(len(buf))/9 {
				return nil, fmt.Errorf("oracle: path %d claims %d vertices in %d bytes", i, nv, len(buf))
			}
			p := sepPath{key: k, verts: make([]int32, nv), pos: make([]float64, nv)}
			for x := range p.verts {
				w, sz := binary.Uvarint(buf)
				if sz <= 0 || w >= n {
					return nil, fmt.Errorf("oracle: path %d vertex out of range", i)
				}
				buf = buf[sz:]
				p.verts[x] = int32(w)
			}
			prev := math.Inf(-1)
			for x := range p.pos {
				if len(buf) < 8 {
					return nil, fmt.Errorf("oracle: truncated path %d positions", i)
				}
				pv := math.Float64frombits(binary.LittleEndian.Uint64(buf))
				buf = buf[8:]
				if math.IsNaN(pv) || pv < prev {
					return nil, fmt.Errorf("oracle: path %d positions not sorted", i)
				}
				prev = pv
				p.pos[x] = pv
			}
			o.paths = append(o.paths, p)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("oracle: %d trailing bytes", len(buf))
	}
	return o, nil
}
