// Package oracle implements Theorem 2 of the paper: (1+ε)-approximate
// distance labels and the distance oracle they form, built on the k-path
// separator decomposition tree.
//
// For every node H of the decomposition tree, every phase i of its
// separator, and every path Q of phase i, a vertex w that survives phases
// j<i of H stores a small set of "portals" on Q: pairs (position along Q,
// exact distance from w in the residual graph J = H minus earlier phases).
// Since Q is a shortest path in J, the distance along Q between two of its
// vertices is the difference of their positions, so two labels suffice to
// upper-bound any shortest path that crosses Q. The first separator path
// crossed by a shortest u-v path certifies a (1+ε)-approximation.
//
// Two construction modes are provided:
//
//   - CoverExact: per-vertex ε-covers built from exact residual distances
//     (Thorup-style connections). Provably (1+ε); quadratic-ish
//     construction, intended for moderate n and for auditing.
//   - CoverPortal: a fixed number of evenly spaced portals per path plus
//     each vertex's closest attachment to the path. One Dijkstra per
//     portal; scalable. Stretch is measured rather than proven.
package oracle

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/par"
	"pathsep/internal/shortest"
)

// Mode selects the portal construction.
type Mode int

const (
	// CoverExact builds per-vertex ε-covers with exact residual distances;
	// the (1+ε) guarantee of Theorem 2 holds.
	CoverExact Mode = iota
	// CoverPortal places a fixed number of evenly spaced portals per path;
	// scalable, with measured stretch.
	CoverPortal
)

// String names the mode the way the CLI flags spell it.
func (m Mode) String() string {
	switch m {
	case CoverExact:
		return "exact"
	case CoverPortal:
		return "portal"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures Build.
type Options struct {
	// Epsilon is the ε of the (1+ε) approximation; must be > 0.
	Epsilon float64
	// Mode selects the construction; CoverExact by default.
	Mode Mode
	// PortalsPerPath bounds the evenly spaced portals per path in
	// CoverPortal mode; 0 means ceil(4/ε).
	PortalsPerPath int
	// Metrics, when non-nil, receives build-time accounting under
	// "oracle.*", "shortest.*" and "build.*" and attaches query-time
	// latency and portal histograms to the oracle (equivalent to calling
	// SetMetrics).
	Metrics *obs.Registry
	// Workers bounds the worker pool that fans out the per-separator-path
	// (and, in CoverExact mode, per-vertex) Dijkstra tasks. Task outputs
	// are merged in a fixed order, so the oracle encoding is bit-identical
	// for every worker count. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// serial reference build.
	Workers int
}

// Key identifies a separator path: decomposition node, phase index within
// its separator, and path index within the phase.
type Key struct {
	Node  int32
	Phase int16
	Path  int16
}

func keyLess(a, b Key) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	return a.Path < b.Path
}

// Portal is one label entry: a position along the separator path (prefix
// weight from the path start) and the exact distance from the labeled
// vertex to that path vertex in the residual graph.
type Portal struct {
	Pos  float64
	Dist float64
}

// Entry is the portal list a vertex stores for one separator path,
// sorted by position. Hops, when present, is parallel to Portals:
// Hops[i] is the next vertex on a shortest walk from the labeled vertex
// toward the path vertex Portals[i] points at, or -1 when the labeled
// vertex is that path vertex itself. Path-reporting builds fill it; a
// nil (or length-mismatched) Hops marks a distance-only legacy entry.
type Entry struct {
	Key     Key
	Portals []Portal
	Hops    []int32
}

// Label is the complete distance label of one vertex: entries sorted by
// Key. Two labels alone answer an approximate distance query
// (the distributed distance-labeling scheme of Theorem 2).
type Label struct {
	Entries []Entry
}

// NumPortals returns the total portal count of the label (its size in
// words, up to constants).
func (l *Label) NumPortals() int {
	total := 0
	for _, e := range l.Entries {
		total += len(e.Portals)
	}
	return total
}

// sepPath is one separator path in root-graph vertex IDs with the
// prefix-weight position of every path vertex: the geometry needed to
// expand the portal-to-portal middle segment of a reported path.
type sepPath struct {
	key   Key
	verts []int32
	pos   []float64
}

// Oracle is the centralized distance oracle: all labels plus the
// decomposition tree metadata.
type Oracle struct {
	Labels []Label
	N      int
	Eps    float64
	mode   Mode
	// paths, when hasPathData, holds every separator path sorted by
	// keyLess; QueryPath reads the middle segment of a reported walk off
	// it. pos aliases the planning pass's prefix sums, so positions match
	// portal Pos values bit for bit.
	paths       []sepPath
	hasPathData bool
	// Query-time instruments, cached so the hot path costs one nil check
	// when metrics are disabled. Set via SetMetrics / Options.Metrics.
	qLatency *obs.Histogram
	qPortals *obs.Histogram
}

// SetMetrics attaches (or, with nil, detaches) query-time metrics:
// "oracle.query_ns" observes per-query latency and
// "oracle.query_portals" the number of portals compared per query.
func (o *Oracle) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		o.qLatency, o.qPortals = nil, nil
		return
	}
	o.qLatency = reg.Histogram("oracle.query_ns")
	o.qPortals = reg.Histogram("oracle.query_portals")
}

// rec is one deferred label entry produced by a parallel build task:
// add(v, k, p, h) to be replayed by the merge pass. h is the hop vertex
// of the record (-1 when the record is a path vertex's self entry).
type rec struct {
	v int
	k Key
	p Portal
	h int32
}

// Build constructs the oracle from a decomposition tree.
//
// Construction is a three-stage pipeline. A serial planning pass walks the
// tree, builds every residual graph J and path geometry, emits the
// zero-distance self entries, and collects one closure per unit of
// Dijkstra work: per separator path in CoverPortal mode, per residual
// vertex in CoverExact mode. The tasks then fan out on a bounded worker
// pool (Options.Workers), each returning its label records into its own
// slot, and a serial merge pass replays the slots in task order. Labels
// are canonicalized by normalizeLabel, so the encoded oracle is
// bit-identical for every worker count — the differential tests compare
// Encode() bytes of workers=1 and workers=N builds.
func Build(t *core.Tree, opt Options) (*Oracle, error) {
	if !(opt.Epsilon > 0) || math.IsInf(opt.Epsilon, 1) {
		return nil, fmt.Errorf("oracle: epsilon must be positive and finite, got %v", opt.Epsilon)
	}
	span := opt.Metrics.StartSpan("oracle.build")
	defer span.End()
	col := shortest.NewCollector(opt.Metrics)
	pool := par.New(opt.Workers, opt.Metrics)
	defer pool.Finish()
	o := &Oracle{
		Labels: make([]Label, t.G.N()),
		N:      t.G.N(),
		Eps:    opt.Epsilon,
		mode:   opt.Mode,
	}
	portalsPerPath := opt.PortalsPerPath
	if portalsPerPath <= 0 {
		portalsPerPath = int(math.Ceil(4 / opt.Epsilon))
	}

	add := func(rootV int, k Key, p Portal, hop int32) {
		lbl := &o.Labels[rootV]
		if len(lbl.Entries) == 0 || lbl.Entries[len(lbl.Entries)-1].Key != k {
			lbl.Entries = append(lbl.Entries, Entry{Key: k})
		}
		e := &lbl.Entries[len(lbl.Entries)-1]
		e.Portals = append(e.Portals, p)
		e.Hops = append(e.Hops, hop)
	}

	// Stage 1: serial planning — residual graphs, path geometry, self
	// entries, and the task list.
	var tasks []func() []rec
	for _, node := range t.Nodes {
		if node.Sep == nil {
			continue
		}
		local := node.Sub.G
		removed := make(map[int]bool)
		for phaseIdx, phase := range node.Sep.Phases {
			keep := make([]int, 0, local.N())
			for v := 0; v < local.N(); v++ {
				if !removed[v] {
					keep = append(keep, v)
				}
			}
			sub := graph.Induced(local, keep) // residual J
			j := sub.G
			toJ := make(map[int]int, len(sub.Orig))
			for jv, lv := range sub.Orig {
				toJ[lv] = jv
			}
			// roots[jv] is the root-graph ID of residual vertex jv,
			// precomputed so tasks touch no shared maps.
			roots := make([]int, j.N())
			for jv := range roots {
				roots[jv] = node.Sub.Orig[sub.Orig[jv]]
			}

			// Per-path J-local vertex lists and positions.
			infos := make([]pathInfo, len(phase.Paths))
			for pi, p := range phase.Paths {
				info := pathInfo{
					verts: make([]int, len(p.Vertices)),
					pos:   make([]float64, len(p.Vertices)),
				}
				for x, lv := range p.Vertices {
					jv, ok := toJ[lv]
					if !ok {
						return nil, fmt.Errorf("oracle: node %d phase %d path %d: vertex removed earlier", node.ID, phaseIdx, pi)
					}
					info.verts[x] = jv
					if x > 0 {
						w, ok := j.EdgeWeight(info.verts[x-1], jv)
						if !ok {
							return nil, fmt.Errorf("oracle: node %d phase %d path %d: non-edge on path", node.ID, phaseIdx, pi)
						}
						info.pos[x] = info.pos[x-1] + w
					}
				}
				infos[pi] = info
				k := Key{Node: int32(node.ID), Phase: int16(phaseIdx), Path: int16(pi)}
				// Self entries: every path vertex is its own zero-distance
				// portal.
				sp := sepPath{key: k, verts: make([]int32, len(info.verts)), pos: info.pos}
				for x, jv := range info.verts {
					sp.verts[x] = int32(roots[jv])
					add(roots[jv], k, Portal{Pos: info.pos[x], Dist: 0}, -1)
				}
				o.paths = append(o.paths, sp)
			}

			switch opt.Mode {
			case CoverPortal:
				for pi := range infos {
					info := infos[pi]
					k := Key{Node: int32(node.ID), Phase: int16(phaseIdx), Path: int16(pi)}
					tasks = append(tasks, func() []rec {
						var out []rec
						// Closest-attachment entries via one multi-source run.
						trQ := shortest.MultiSource(j, info.verts)
						col.Record(trQ)
						posOf := make(map[int]float64, len(info.verts))
						for x, jv := range info.verts {
							posOf[jv] = info.pos[x]
						}
						for w := 0; w < j.N(); w++ {
							src := trQ.Source[w]
							if src < 0 || core.IsZeroDist(trQ.Dist[w]) {
								continue
							}
							// The hop is w's parent in the multi-source
							// forest: it shares w's source, so it carries a
							// record at the same (key, position) and the hop
							// chain telescopes down to the source itself.
							out = append(out, rec{roots[w], k, Portal{Pos: posOf[src], Dist: trQ.Dist[w]}, int32(roots[trQ.Parent[w]])})
						}
						// Evenly spaced portals (by weight), endpoints included.
						sel := selectEvenPortals(info.pos, portalsPerPath)
						for _, x := range sel {
							tr := shortest.Dijkstra(j, info.verts[x])
							col.Record(tr)
							for w := 0; w < j.N(); w++ {
								if math.IsInf(tr.Dist[w], 1) || core.IsZeroDist(tr.Dist[w]) {
									continue
								}
								out = append(out, rec{roots[w], k, Portal{Pos: info.pos[x], Dist: tr.Dist[w]}, int32(roots[tr.Parent[w]])})
							}
						}
						return out
					})
				}
			default: // CoverExact
				node := node
				for w := 0; w < j.N(); w++ {
					w := w
					tasks = append(tasks, func() []rec {
						var out []rec
						tr := shortest.Dijkstra(j, w)
						col.Record(tr)
						for pi, info := range infos {
							k := Key{Node: int32(node.ID), Phase: int16(phaseIdx), Path: int16(pi)}
							for _, x := range epsCover(tr.Dist, info, opt.Epsilon) {
								if info.verts[x] == w {
									continue // self entry already present
								}
								path := tr.PathTo(info.verts[x])
								out = append(out, rec{roots[w], k, Portal{Pos: info.pos[x], Dist: tr.Dist[info.verts[x]]}, int32(roots[path[1]])})
								// Closure records: the ε-cover places no
								// records at the witness path's interior
								// vertices, so emit one per interior vertex
								// (its exact tail distance to the anchor,
								// accumulated backwards) to keep every hop
								// chain landing on a record until it reaches
								// the anchor's self entry. Subpaths of a
								// shortest path are shortest, so each Dist is
								// a true distance and query stretch can only
								// improve.
								tail := 0.0
								for pidx := len(path) - 2; pidx >= 1; pidx-- {
									ew, _ := j.EdgeWeight(path[pidx], path[pidx+1])
									tail = ew + tail
									out = append(out, rec{roots[path[pidx]], k, Portal{Pos: info.pos[x], Dist: tail}, int32(roots[path[pidx+1]])})
								}
							}
						}
						return out
					})
				}
			}

			for _, p := range phase.Paths {
				for _, lv := range p.Vertices {
					removed[lv] = true
				}
			}
		}
	}

	// Stage 2: fan out the Dijkstra tasks; each writes only its own slot.
	outs := make([][]rec, len(tasks))
	pool.ForEach(len(tasks), func(i int) { outs[i] = tasks[i]() })

	// Stage 3: serial merge in fixed task order.
	for _, rs := range outs {
		for _, r := range rs {
			add(r.v, r.k, r.p, r.h)
		}
	}

	for v := range o.Labels {
		normalizeLabel(&o.Labels[v])
	}
	sort.Slice(o.paths, func(i, j int) bool { return keyLess(o.paths[i].key, o.paths[j].key) })
	o.hasPathData = true
	if m := opt.Metrics; m != nil {
		labelHist := m.Histogram("oracle.label_portals")
		for v := range o.Labels {
			labelHist.Observe(float64(o.Labels[v].NumPortals()))
		}
		m.Gauge("oracle.labels").Set(int64(o.N))
		m.Gauge("oracle.portal_words").Set(int64(o.SpacePortals()))
		m.Gauge("oracle.max_label_portals").Set(int64(o.MaxLabelPortals()))
		o.SetMetrics(m)
	}
	return o, nil
}

// selectEvenPortals picks at most p indices into pos, spaced evenly by
// weight, always including the first and last.
func selectEvenPortals(pos []float64, p int) []int {
	n := len(pos)
	if n == 0 {
		return nil
	}
	if p < 2 {
		p = 2
	}
	if n <= p {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	total := pos[n-1]
	out := []int{0}
	for i := 1; i < p-1; i++ {
		target := total * float64(i) / float64(p-1)
		x := sort.SearchFloat64s(pos, target)
		if x >= n {
			x = n - 1
		}
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// pathInfo is a separator path in residual-local IDs with prefix-weight
// positions along it.
type pathInfo struct {
	verts []int
	pos   []float64
}

// epsCover greedily selects indices x into the path such that every path
// vertex y reachable from w satisfies, for some selected x:
// dist[x] + |pos[x]-pos[y]| <= (1+eps) * dist[y]. A vertex certifies its
// own coverage when selected, so the invariant holds by construction.
func epsCover(dist []float64, info pathInfo, eps float64) []int {
	var chosen []int
	for y := range info.verts {
		dy := dist[info.verts[y]]
		if math.IsInf(dy, 1) {
			continue
		}
		covered := false
		for _, x := range chosen {
			dx := dist[info.verts[x]]
			if dx+math.Abs(info.pos[x]-info.pos[y]) <= (1+eps)*dy {
				covered = true
				break
			}
		}
		if !covered {
			chosen = append(chosen, y)
		}
	}
	return chosen
}

// portalHop pairs a portal with its hop so the two co-sort and co-dedup.
type portalHop struct {
	p Portal
	h int32
}

// normalizeLabel sorts entries by key, sorts portals by position, and
// deduplicates portals at equal positions keeping the smaller distance.
// Hops, when present, travel with their portals (ties broken by the
// smaller hop so the result is schedule-independent); entries whose Hops
// length does not match (legacy distance-only labels) take the
// portal-only path.
func normalizeLabel(l *Label) {
	sort.Slice(l.Entries, func(i, j int) bool { return keyLess(l.Entries[i].Key, l.Entries[j].Key) })
	// Merge duplicate keys (entries were appended per construction stage).
	out := l.Entries[:0]
	for _, e := range l.Entries {
		if len(out) > 0 && out[len(out)-1].Key == e.Key {
			out[len(out)-1].Portals = append(out[len(out)-1].Portals, e.Portals...)
			out[len(out)-1].Hops = append(out[len(out)-1].Hops, e.Hops...)
			continue
		}
		out = append(out, e)
	}
	l.Entries = out
	for i := range l.Entries {
		e := &l.Entries[i]
		if len(e.Hops) != len(e.Portals) {
			e.Hops = nil
			normalizePortals(e)
			continue
		}
		ph := make([]portalHop, len(e.Portals))
		for x := range ph {
			ph[x] = portalHop{p: e.Portals[x], h: e.Hops[x]}
		}
		sort.Slice(ph, func(a, b int) bool {
			if !core.SameDist(ph[a].p.Pos, ph[b].p.Pos) {
				return ph[a].p.Pos < ph[b].p.Pos
			}
			if !core.SameDist(ph[a].p.Dist, ph[b].p.Dist) {
				return ph[a].p.Dist < ph[b].p.Dist
			}
			return ph[a].h < ph[b].h
		})
		ps, hs := e.Portals[:0], e.Hops[:0]
		for _, x := range ph {
			if len(ps) > 0 && core.SameDist(ps[len(ps)-1].Pos, x.p.Pos) {
				continue // keep the smaller distance (sorted first)
			}
			ps = append(ps, x.p)
			hs = append(hs, x.h)
		}
		e.Portals, e.Hops = ps, hs
	}
}

// normalizePortals is the distance-only half of normalizeLabel: sort by
// position and dedup keeping the smaller distance.
func normalizePortals(e *Entry) {
	ps := e.Portals
	sort.Slice(ps, func(a, b int) bool {
		if !core.SameDist(ps[a].Pos, ps[b].Pos) {
			return ps[a].Pos < ps[b].Pos
		}
		return ps[a].Dist < ps[b].Dist
	})
	dedup := ps[:0]
	for _, p := range ps {
		if len(dedup) > 0 && core.SameDist(dedup[len(dedup)-1].Pos, p.Pos) {
			continue // keep the smaller distance (sorted first)
		}
		dedup = append(dedup, p)
	}
	e.Portals = dedup
}

// Query returns a (1+ε)-approximate distance between u and v, or +Inf if
// they are disconnected. Out-of-range or negative vertex IDs also report
// +Inf ("not locatable") rather than panicking — the oracle is the public
// query surface, so malformed input degrades gracefully. With metrics
// attached (SetMetrics) it also observes the query latency and the number
// of portals compared; the disabled path is a single bounds-and-nil check
// and allocation-free.
func (o *Oracle) Query(u, v int) float64 {
	if u < 0 || v < 0 || u >= len(o.Labels) || v >= len(o.Labels) {
		return math.Inf(1)
	}
	if o.qLatency == nil {
		if u == v {
			return 0
		}
		est, _ := queryLabels(&o.Labels[u], &o.Labels[v])
		return est
	}
	start := time.Now()
	// Self queries are answered on a fast path but still observed (zero
	// portals compared), so QPS and latency numbers reflect all traffic.
	if u == v {
		o.qLatency.Observe(float64(time.Since(start)))
		o.qPortals.Observe(0)
		return 0
	}
	est, portals := queryLabels(&o.Labels[u], &o.Labels[v])
	o.qLatency.Observe(float64(time.Since(start)))
	o.qPortals.Observe(float64(portals))
	return est
}

// QueryLabels answers an approximate distance query from two labels alone
// (the distributed scheme): the minimum over shared separator paths of the
// best portal-pair estimate. Nil labels report +Inf.
func QueryLabels(lu, lv *Label) float64 {
	if lu == nil || lv == nil {
		return math.Inf(1)
	}
	est, _ := queryLabels(lu, lv)
	return est
}

// queryLabels is QueryLabels plus the number of portals examined (the
// query's work, reported by the oracle.query_portals histogram).
//
//pathsep:hotpath
func queryLabels(lu, lv *Label) (float64, int) {
	best := math.Inf(1)
	portals := 0
	i, j := 0, 0
	for i < len(lu.Entries) && j < len(lv.Entries) {
		a, b := lu.Entries[i], lv.Entries[j]
		switch {
		case a.Key == b.Key:
			portals += len(a.Portals) + len(b.Portals)
			if est := pairMin(a.Portals, b.Portals); est < best {
				best = est
			}
			i++
			j++
		case keyLess(a.Key, b.Key):
			i++
		default:
			j++
		}
	}
	return best, portals
}

// pairMin computes min over portals p in a, q in b of
// p.Dist + |p.Pos - q.Pos| + q.Dist in linear time via a merged sweep
// (both lists are sorted by position).
//
//pathsep:hotpath
func pairMin(a, b []Portal) float64 {
	best := math.Inf(1)
	// Sweep left-to-right: for each element of one list, combine with the
	// best (Dist - Pos) seen so far on the other list; then symmetric.
	minA := math.Inf(1) // min over seen a of (Dist - Pos)
	minB := math.Inf(1)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Pos <= b[j].Pos) {
			if est := a[i].Dist + a[i].Pos + minB; est < best {
				best = est
			}
			if v := a[i].Dist - a[i].Pos; v < minA {
				minA = v
			}
			i++
		} else {
			if est := b[j].Dist + b[j].Pos + minA; est < best {
				best = est
			}
			if v := b[j].Dist - b[j].Pos; v < minB {
				minB = v
			}
			j++
		}
	}
	return best
}

// SpacePortals returns the total number of portal entries across all
// labels — the oracle's space in words, up to constants.
func (o *Oracle) SpacePortals() int {
	total := 0
	for i := range o.Labels {
		total += o.Labels[i].NumPortals()
	}
	return total
}

// MaxLabelPortals returns the largest label size in portals.
func (o *Oracle) MaxLabelPortals() int {
	best := 0
	for i := range o.Labels {
		if p := o.Labels[i].NumPortals(); p > best {
			best = p
		}
	}
	return best
}

// AuditResult summarizes a stretch audit against exact distances.
type AuditResult struct {
	Pairs      int
	MaxStretch float64
	// MeanStretch averages over audited (connected, distinct) pairs.
	MeanStretch float64
	// Underestimates counts pairs where the estimate fell below the true
	// distance — always zero for a correct oracle.
	Underestimates int
}

// Audit compares Query against fresh Dijkstra runs over sampled pairs
// drawn by next() (e.g. a closure over math/rand). It is the library form
// of the test-suite stretch audit, reusable by experiments and CLIs. The
// per-pair Dijkstras fan out across runtime.GOMAXPROCS(0) workers; use
// AuditWorkers to pin the width.
func (o *Oracle) Audit(g *graph.Graph, pairs int, next func(n int) int) AuditResult {
	return o.AuditWorkers(g, pairs, next, 0)
}

// AuditWorkers is Audit with an explicit worker-pool width (0 means
// runtime.GOMAXPROCS(0), 1 is fully serial). All pairs are drawn from
// next() serially up front and the ratios are reduced in draw order, so
// the result is bit-identical for every worker count.
func (o *Oracle) AuditWorkers(g *graph.Graph, pairs int, next func(n int) int, workers int) AuditResult {
	type slot struct {
		ratio float64
		under bool
		ok    bool
	}
	type pair struct{ u, v int }
	ps := make([]pair, pairs)
	for i := range ps {
		ps[i] = pair{next(o.N), next(o.N)}
	}
	slots := make([]slot, pairs)

	pool := par.New(workers, nil)
	pool.ForEach(pairs, func(i int) {
		u, v := ps[i].u, ps[i].v
		if u == v {
			return
		}
		d := shortest.Dijkstra(g, u).Dist[v]
		if math.IsInf(d, 1) || core.IsZeroDist(d) {
			return
		}
		est := o.Query(u, v)
		slots[i] = slot{ratio: est / d, under: est < d-1e-9, ok: true}
	})
	pool.Finish()

	res := AuditResult{}
	sum := 0.0
	for _, s := range slots {
		if !s.ok {
			continue
		}
		if s.under {
			res.Underestimates++
		}
		if s.ratio > res.MaxStretch {
			res.MaxStretch = s.ratio
		}
		sum += s.ratio
		res.Pairs++
	}
	if res.Pairs > 0 {
		res.MeanStretch = sum / float64(res.Pairs)
	}
	return res
}
