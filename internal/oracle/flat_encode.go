package oracle

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Flat binary format (little-endian throughout, all sections 4- or
// 8-byte aligned relative to the buffer start):
//
//	[0]   magic 0xA7
//	[1]   version 1
//	[2:8] reserved (zero)
//	[8]   n          uint64
//	[16]  eps        float64 bits
//	[24]  mode       uint64
//	[32]  numKeys    uint64
//	[40]  numEntries uint64
//	[48]  numPortals uint64
//	[56]  keys       numKeys × 8B   (node int32 | phase int16 | path int16)
//	      entryOff   (n+1) × 4B     int32
//	      entryKey   numEntries × 4B int32
//	      portalOff  (numEntries+1) × 4B int32
//	      pad to 8B
//	      portals    numPortals × 16B (pos float64 | dist float64)
//
// Version 2 (path-reporting images) grows the header by one count and
// appends the hop links and separator-path geometry after the portal
// pool; everything up to and including the portals keeps the v1 layout
// shifted by the 8 extra header bytes:
//
//	[1]   version 2
//	[56]  numPathVerts uint64
//	[64]  keys … portals   as in v1
//	      hops      numPortals × 4B int32 (pool index of the next chain
//	                record, -1 at the anchor)
//	      pathOff   (numKeys+1) × 4B int32
//	      pathVert  numPathVerts × 4B int32
//	      pad to 8B
//	      pathPos   numPathVerts × 8B float64
//
// Distance-only images keep encoding as v1, so Encode∘DecodeFlat is a
// fixed point in both directions and old readers reject v2 loudly by
// version byte.
//
// The field order and widths match the in-memory layout of Key and Portal
// on a little-endian host, so DecodeFlat can alias the sections straight
// out of the byte slice (zero copy) whenever the buffer is 8-byte aligned;
// otherwise — or on a big-endian host — it falls back to a copying decode
// that reads the same bytes portably.
const (
	flatMagic    = 0xA7
	flatVersion  = 1
	flatVersion2 = 2
	flatHeader   = 56
	flatHeaderV2 = 64
)

// hostLittleEndian reports whether this machine stores multi-byte values
// little-endian (the layout the flat encoding is defined in).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// flatSections computes the byte offsets of each section for the given
// element counts. The returned total is the exact encoded size.
type flatSections struct {
	keys, entryOff, entryKey, portalOff, portals int
	total                                        int
}

func flatLayout(n, numKeys, numEntries, numPortals int) flatSections {
	var s flatSections
	s.keys = flatHeader
	s.entryOff = s.keys + 8*numKeys
	s.entryKey = s.entryOff + 4*(n+1)
	s.portalOff = s.entryKey + 4*numEntries
	end := s.portalOff + 4*(numEntries+1)
	s.portals = (end + 7) &^ 7 // align the float64 pool
	s.total = s.portals + 16*numPortals
	return s
}

// flatSectionsV2 extends flatSections with the v2 path sections.
type flatSectionsV2 struct {
	flatSections
	hops, pathOff, pathVert, pathPos int
}

func flatLayoutV2(n, numKeys, numEntries, numPortals, numPathVerts int) flatSectionsV2 {
	var s flatSectionsV2
	s.keys = flatHeaderV2
	s.entryOff = s.keys + 8*numKeys
	s.entryKey = s.entryOff + 4*(n+1)
	s.portalOff = s.entryKey + 4*numEntries
	end := s.portalOff + 4*(numEntries+1)
	s.portals = (end + 7) &^ 7 // align the float64 pool
	s.hops = s.portals + 16*numPortals
	s.pathOff = s.hops + 4*numPortals
	s.pathVert = s.pathOff + 4*(numKeys+1)
	end = s.pathVert + 4*numPathVerts
	s.pathPos = (end + 7) &^ 7 // align the float64 positions
	s.total = s.pathPos + 8*numPathVerts
	return s
}

// EncodedSize returns the exact byte length of Encode's output.
func (f *Flat) EncodedSize() int {
	if f.hasPathData {
		return flatLayoutV2(f.n, len(f.keys), len(f.entryKey), len(f.portals), len(f.pathVert)).total
	}
	return flatLayout(f.n, len(f.keys), len(f.entryKey), len(f.portals)).total
}

// Encode serializes the flat oracle (as v2 when it carries path data,
// v1 otherwise). The output is 8-byte aligned by construction (Go
// allocations of this size always are), so decoding it back on a
// little-endian host takes the zero-copy path.
func (f *Flat) Encode() []byte {
	var s flatSections
	var s2 flatSectionsV2
	if f.hasPathData {
		s2 = flatLayoutV2(f.n, len(f.keys), len(f.entryKey), len(f.portals), len(f.pathVert))
		s = s2.flatSections
	} else {
		s = flatLayout(f.n, len(f.keys), len(f.entryKey), len(f.portals))
	}
	buf := make([]byte, s.total)
	buf[0] = flatMagic
	buf[1] = flatVersion
	le := binary.LittleEndian
	le.PutUint64(buf[8:], uint64(f.n))
	le.PutUint64(buf[16:], math.Float64bits(f.eps))
	le.PutUint64(buf[24:], uint64(f.mode))
	le.PutUint64(buf[32:], uint64(len(f.keys)))
	le.PutUint64(buf[40:], uint64(len(f.entryKey)))
	le.PutUint64(buf[48:], uint64(len(f.portals)))
	if f.hasPathData {
		buf[1] = flatVersion2
		le.PutUint64(buf[56:], uint64(len(f.pathVert)))
	}
	for i, k := range f.keys {
		at := s.keys + 8*i
		le.PutUint32(buf[at:], uint32(k.Node))
		le.PutUint16(buf[at+4:], uint16(k.Phase))
		le.PutUint16(buf[at+6:], uint16(k.Path))
	}
	for i, v := range f.entryOff {
		le.PutUint32(buf[s.entryOff+4*i:], uint32(v))
	}
	for i, v := range f.entryKey {
		le.PutUint32(buf[s.entryKey+4*i:], uint32(v))
	}
	for i, v := range f.portalOff {
		le.PutUint32(buf[s.portalOff+4*i:], uint32(v))
	}
	for i, p := range f.portals {
		at := s.portals + 16*i
		le.PutUint64(buf[at:], math.Float64bits(p.Pos))
		le.PutUint64(buf[at+8:], math.Float64bits(p.Dist))
	}
	if f.hasPathData {
		for i, v := range f.hops {
			le.PutUint32(buf[s2.hops+4*i:], uint32(v))
		}
		for i, v := range f.pathOff {
			le.PutUint32(buf[s2.pathOff+4*i:], uint32(v))
		}
		for i, v := range f.pathVert {
			le.PutUint32(buf[s2.pathVert+4*i:], uint32(v))
		}
		for i, x := range f.pathPos {
			le.PutUint64(buf[s2.pathPos+8*i:], math.Float64bits(x))
		}
	}
	return buf
}

// DecodeFlat parses a flat oracle produced by Encode. On a little-endian
// host with an 8-byte-aligned buffer the returned Flat aliases buf
// directly — no per-label rebuilding, no slice-of-slices allocation —
// so an oracle can serve straight from a mapped or fully read file; the
// only per-decode work is offset validation and one linear pass deriving
// the three sweep arrays (see Flat.derive). The caller must not mutate
// buf afterwards. Misaligned buffers and big-endian hosts decode by
// copying instead; the result is identical.
//
// All CSR offsets are validated before the Flat is returned, so a
// malformed buffer yields an error, never a panicking Query.
func DecodeFlat(buf []byte) (*Flat, error) {
	if len(buf) < flatHeader || buf[0] != flatMagic {
		return nil, fmt.Errorf("oracle: flat: bad magic or truncated header")
	}
	withPaths := false
	switch buf[1] {
	case flatVersion:
	case flatVersion2:
		withPaths = true
		if len(buf) < flatHeaderV2 {
			return nil, fmt.Errorf("oracle: flat: truncated v2 header")
		}
	default:
		return nil, fmt.Errorf("oracle: flat: unsupported version %d", buf[1])
	}
	le := binary.LittleEndian
	n := le.Uint64(buf[8:])
	eps := math.Float64frombits(le.Uint64(buf[16:]))
	mode := le.Uint64(buf[24:])
	numKeys := le.Uint64(buf[32:])
	numEntries := le.Uint64(buf[40:])
	numPortals := le.Uint64(buf[48:])
	numPathVerts := uint64(0)
	if withPaths {
		numPathVerts = le.Uint64(buf[56:])
	}
	const maxCount = math.MaxInt32
	if n > maxCount || numKeys > maxCount || numEntries >= maxCount || numPortals > maxCount || numPathVerts > maxCount {
		return nil, fmt.Errorf("oracle: flat: header counts out of range (n=%d keys=%d entries=%d portals=%d pathverts=%d)",
			n, numKeys, numEntries, numPortals, numPathVerts)
	}
	var s flatSections
	var s2 flatSectionsV2
	if withPaths {
		s2 = flatLayoutV2(int(n), int(numKeys), int(numEntries), int(numPortals), int(numPathVerts))
		s = s2.flatSections
	} else {
		s = flatLayout(int(n), int(numKeys), int(numEntries), int(numPortals))
	}
	if len(buf) != s.total {
		return nil, fmt.Errorf("oracle: flat: size %d does not match header (want %d)", len(buf), s.total)
	}

	f := &Flat{n: int(n), eps: eps, mode: Mode(mode), hasPathData: withPaths}
	if hostLittleEndian && uintptr(unsafe.Pointer(&buf[0]))%8 == 0 {
		f.buf = buf
		if numKeys > 0 {
			f.keys = unsafe.Slice((*Key)(unsafe.Pointer(&buf[s.keys])), numKeys)
		}
		f.entryOff = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s.entryOff])), n+1)
		if numEntries > 0 {
			f.entryKey = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s.entryKey])), numEntries)
		}
		f.portalOff = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s.portalOff])), numEntries+1)
		if numPortals > 0 {
			f.portals = unsafe.Slice((*Portal)(unsafe.Pointer(&buf[s.portals])), numPortals)
		}
		if withPaths {
			if numPortals > 0 {
				f.hops = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s2.hops])), numPortals)
			}
			f.pathOff = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s2.pathOff])), numKeys+1)
			if numPathVerts > 0 {
				f.pathVert = unsafe.Slice((*int32)(unsafe.Pointer(&buf[s2.pathVert])), numPathVerts)
				f.pathPos = unsafe.Slice((*float64)(unsafe.Pointer(&buf[s2.pathPos])), numPathVerts)
			}
		}
	} else {
		f.keys = make([]Key, numKeys)
		for i := range f.keys {
			at := s.keys + 8*i
			f.keys[i] = Key{
				Node:  int32(le.Uint32(buf[at:])),
				Phase: int16(le.Uint16(buf[at+4:])),
				Path:  int16(le.Uint16(buf[at+6:])),
			}
		}
		f.entryOff = make([]int32, n+1)
		for i := range f.entryOff {
			f.entryOff[i] = int32(le.Uint32(buf[s.entryOff+4*i:]))
		}
		f.entryKey = make([]int32, numEntries)
		for i := range f.entryKey {
			f.entryKey[i] = int32(le.Uint32(buf[s.entryKey+4*i:]))
		}
		f.portalOff = make([]int32, numEntries+1)
		for i := range f.portalOff {
			f.portalOff[i] = int32(le.Uint32(buf[s.portalOff+4*i:]))
		}
		f.portals = make([]Portal, numPortals)
		for i := range f.portals {
			at := s.portals + 16*i
			f.portals[i] = Portal{
				Pos:  math.Float64frombits(le.Uint64(buf[at:])),
				Dist: math.Float64frombits(le.Uint64(buf[at+8:])),
			}
		}
		if withPaths {
			f.hops = make([]int32, numPortals)
			for i := range f.hops {
				f.hops[i] = int32(le.Uint32(buf[s2.hops+4*i:]))
			}
			f.pathOff = make([]int32, numKeys+1)
			for i := range f.pathOff {
				f.pathOff[i] = int32(le.Uint32(buf[s2.pathOff+4*i:]))
			}
			f.pathVert = make([]int32, numPathVerts)
			for i := range f.pathVert {
				f.pathVert[i] = int32(le.Uint32(buf[s2.pathVert+4*i:]))
			}
			f.pathPos = make([]float64, numPathVerts)
			for i := range f.pathPos {
				f.pathPos[i] = math.Float64frombits(le.Uint64(buf[s2.pathPos+8*i:]))
			}
		}
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	f.derive()
	return f, nil
}

// validate bounds-checks every CSR offset so the hot path can index
// without guards.
func (f *Flat) validate() error {
	if f.entryOff[0] != 0 || int(f.entryOff[f.n]) != len(f.entryKey) {
		return fmt.Errorf("oracle: flat: entry offsets do not span the entry table")
	}
	for v := 0; v < f.n; v++ {
		if f.entryOff[v] > f.entryOff[v+1] {
			return fmt.Errorf("oracle: flat: entry offsets decrease at vertex %d", v)
		}
	}
	if f.portalOff[0] != 0 || int(f.portalOff[len(f.portalOff)-1]) != len(f.portals) {
		return fmt.Errorf("oracle: flat: portal offsets do not span the pool")
	}
	for e := 0; e < len(f.entryKey); e++ {
		if f.portalOff[e] > f.portalOff[e+1] {
			return fmt.Errorf("oracle: flat: portal offsets decrease at entry %d", e)
		}
		if int(f.entryKey[e]) < 0 || int(f.entryKey[e]) >= len(f.keys) {
			return fmt.Errorf("oracle: flat: entry %d references unknown key %d", e, f.entryKey[e])
		}
	}
	// Element-level checks on the record sections, not just the CSR
	// offsets that index them: an interned key must name a vertex of this
	// graph, and portal records must be NaN-free — a NaN Pos or Dist
	// would poison every min-fold the sweep lanes compute from them.
	// +Inf stays legal: it is the unreachable sentinel some constructions
	// store in Dist.
	for i := range f.keys {
		if int(f.keys[i].Node) < 0 || int(f.keys[i].Node) >= f.n {
			return fmt.Errorf("oracle: flat: key %d names out-of-range vertex %d", i, f.keys[i].Node)
		}
	}
	for i := range f.portals {
		if math.IsNaN(f.portals[i].Pos) || math.IsNaN(f.portals[i].Dist) {
			return fmt.Errorf("oracle: flat: portal record %d contains NaN", i)
		}
	}
	if f.hasPathData {
		return f.validatePaths()
	}
	return nil
}

// validatePaths bounds-checks the v2 sections: hop links stay inside the
// portal pool, the path geometry spans its CSR table, vertices are in
// range, and positions are NaN-free and non-decreasing per path. The
// walk itself still guards against semantic corruption (cycles, chains
// landing off their path) with static errors — validation here is what
// lets it index without bounds checks.
func (f *Flat) validatePaths() error {
	for i, h := range f.hops {
		if h < -1 || int(h) >= len(f.portals) {
			return fmt.Errorf("oracle: flat: hop %d links to out-of-range record %d", i, h)
		}
	}
	if f.pathOff[0] != 0 || int(f.pathOff[len(f.pathOff)-1]) != len(f.pathVert) {
		return fmt.Errorf("oracle: flat: path offsets do not span the geometry")
	}
	// Check the whole offset table before indexing through it: a later
	// decrease can push an earlier span past the geometry arrays.
	for k := 0; k+1 < len(f.pathOff); k++ {
		if f.pathOff[k] > f.pathOff[k+1] {
			return fmt.Errorf("oracle: flat: path offsets decrease at key %d", k)
		}
	}
	for k := 0; k+1 < len(f.pathOff); k++ {
		prev := math.Inf(-1)
		for x := f.pathOff[k]; x < f.pathOff[k+1]; x++ {
			if int(f.pathVert[x]) < 0 || int(f.pathVert[x]) >= f.n {
				return fmt.Errorf("oracle: flat: path vertex %d out of range", f.pathVert[x])
			}
			p := f.pathPos[x]
			if math.IsNaN(p) || p < prev {
				return fmt.Errorf("oracle: flat: path positions not sorted at key %d", k)
			}
			prev = p
		}
	}
	return nil
}
