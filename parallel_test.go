// Differential and race coverage for the parallel construction pipeline:
// the worker pool must produce byte-identical oracle encodings for every
// worker count, and the query surface must be safe to hammer concurrently
// with metrics snapshots (run with -race).
package pathsep_test

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pathsep"
	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
)

// meshApex is the Section 5.3 pairing: a 3-D mesh plus an apex vertex
// adjacent to every mesh vertex — a family with unbounded k where the
// decomposition exercises the phased (non-planar, non-tree) strategies.
func meshApex(rng *rand.Rand) *graph.Graph {
	mesh := graph.Mesh3D(4, 4, 3, graph.UniformWeights(1, 3), rng)
	n := mesh.N()
	b := graph.NewBuilder(n + 1)
	for u := 0; u < n; u++ {
		for _, h := range mesh.Neighbors(u) {
			if u < h.To {
				b.AddEdge(u, h.To, h.W)
			}
		}
	}
	for u := 0; u < n; u++ {
		b.AddEdge(u, n, 2.5)
	}
	return b.Build()
}

func parallelFamilies(t *testing.T) map[string]struct {
	g   *graph.Graph
	rot *embed.Rotation
} {
	t.Helper()
	out := map[string]struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{}
	rng := rand.New(rand.NewSource(11))
	grid := embed.Grid(8, 8, graph.UniformWeights(1, 4), rng)
	out["grid"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{grid.G, grid}
	out["random-tree"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{graph.RandomTree(150, graph.UniformWeights(1, 4), rng), nil}
	out["mesh-apex"] = struct {
		g   *graph.Graph
		rot *embed.Rotation
	}{meshApex(rng), nil}
	return out
}

// TestParallelBuildDifferential is the determinism contract: for three
// graph families and both oracle modes, workers=1 (the serial reference)
// and workers>1 must produce identical decomposition shapes and
// byte-identical encoded oracles.
func TestParallelBuildDifferential(t *testing.T) {
	for name, fam := range parallelFamilies(t) {
		for _, mode := range []oracle.Mode{oracle.CoverExact, oracle.CoverPortal} {
			modeName := "exact"
			if mode == oracle.CoverPortal {
				modeName = "portal"
			}
			var refEnc []byte
			var refDec *core.Tree
			for _, workers := range []int{1, 2, 4, 0} {
				dec, err := core.Decompose(fam.g, core.Options{
					Strategy: core.Auto{}, Rot: fam.rot, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: decompose: %v", name, modeName, workers, err)
				}
				o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: mode, Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: build: %v", name, modeName, workers, err)
				}
				enc := o.Encode()
				if workers == 1 {
					refEnc, refDec = enc, dec
					continue
				}
				if !bytes.Equal(enc, refEnc) {
					t.Fatalf("%s/%s: workers=%d encoding differs from serial build (%d vs %d bytes)",
						name, modeName, workers, len(enc), len(refEnc))
				}
				if len(dec.Nodes) != len(refDec.Nodes) || dec.Depth != refDec.Depth ||
					dec.MaxK != refDec.MaxK || dec.TotalPaths != refDec.TotalPaths {
					t.Fatalf("%s/%s: workers=%d decomposition shape differs from serial build",
						name, modeName, workers)
				}
				for v := range dec.Home {
					if dec.Home[v] != refDec.Home[v] {
						t.Fatalf("%s/%s: workers=%d Home[%d] = %d, serial %d",
							name, modeName, workers, v, dec.Home[v], refDec.Home[v])
					}
				}
			}
		}
	}
}

// TestParallelAuditDeterministic pins AuditWorkers to the serial result
// for every pool width (same draws, same reduction order).
func TestParallelAuditDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid := embed.Grid(8, 8, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverExact})
	if err != nil {
		t.Fatal(err)
	}
	audit := func(workers int) oracle.AuditResult {
		draws := rand.New(rand.NewSource(9))
		return o.AuditWorkers(grid.G, 80, draws.Intn, workers)
	}
	ref := audit(1)
	if ref.Pairs == 0 {
		t.Fatal("audit sampled no usable pairs")
	}
	for _, workers := range []int{2, 4, 0} {
		got := audit(workers)
		if got != ref {
			t.Fatalf("workers=%d audit %+v != serial %+v", workers, got, ref)
		}
	}
}

// TestQueryBoundsGuards covers the hardened query surface: malformed
// vertex IDs must degrade (Inf / failed route), never panic.
func TestQueryBoundsGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	grid := pathsep.NewGrid(6, 6, pathsep.UniformWeights(1, 3), rng)
	dec, err := pathsep.Decompose(grid.G, pathsep.Options{Embedding: grid})
	if err != nil {
		t.Fatal(err)
	}
	o, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	n := grid.G.N()
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {n, 0}, {0, n}, {-7, n + 3}} {
		if d := o.Query(pair[0], pair[1]); !math.IsInf(d, 1) {
			t.Fatalf("Query(%d,%d) = %v, want +Inf", pair[0], pair[1], d)
		}
	}
	if d := pathsep.QueryLabels(nil, &o.Labels[0]); !math.IsInf(d, 1) {
		t.Fatalf("QueryLabels(nil, l) = %v, want +Inf", d)
	}

	r, err := pathsep.NewRouter(dec, pathsep.RouterOptions{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{-1, 0}, {0, n}, {n + 2, -4}} {
		if path, ok := r.Route(pair[0], pair[1], 4*n); ok || path != nil {
			t.Fatalf("Route(%d,%d) = (%v, %v), want (nil, false)", pair[0], pair[1], path, ok)
		}
		if est, path, ok := r.EstimateAndRoute(pair[0], pair[1], 4*n); ok || path != nil || !math.IsInf(est, 1) {
			t.Fatalf("EstimateAndRoute(%d,%d) = (%v, %v, %v)", pair[0], pair[1], est, path, ok)
		}
	}

	tree := pathsep.NewRandomTree(40, pathsep.UnitWeights(), rng)
	tl, err := pathsep.NewTreeLabeling(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{-1, 0}, {0, 40}, {99, -99}} {
		if d := tl.Query(pair[0], pair[1]); !math.IsInf(d, 1) {
			t.Fatalf("TreeLabeling.Query(%d,%d) = %v, want +Inf", pair[0], pair[1], d)
		}
	}
}

// TestEpsilonValidation covers the hardened eps contract at Build.
func TestEpsilonValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := pathsep.NewRandomTree(30, pathsep.UnitWeights(), rng)
	dec, err := pathsep.Decompose(g, pathsep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, -0.5, math.Inf(1), math.NaN()} {
		if _, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: eps}); err == nil {
			t.Fatalf("NewOracle accepted eps=%v", eps)
		}
	}
}

// TestQuerySnapshotRaceStress hammers Oracle.Query from several
// goroutines (per-goroutine rngs via SplitRand) while another goroutine
// drains metrics snapshots — the -race acceptance test for the
// lock-free instrumentation on the query path.
func TestQuerySnapshotRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	grid := embed.Grid(10, 10, graph.UniformWeights(1, 4), rng)
	reg := obs.New()
	dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverExact, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, queries = 8, 400
	rngs := pathsep.SplitRand(rand.New(rand.NewSource(13)), goroutines)
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				snap := reg.Snapshot()
				if snap.Counters == nil {
					t.Error("snapshot lost its counters")
					return
				}
			}
		}
	}()
	n := grid.G.N()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(r *rand.Rand) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				// Mix malformed IDs in so the bounds guard is raced too.
				u, v := r.Intn(n+2)-1, r.Intn(n+2)-1
				if d := o.Query(u, v); d < 0 {
					t.Errorf("Query(%d,%d) = %v", u, v, d)
					return
				}
			}
		}(rngs[i])
	}
	wg.Wait()
	close(stop)
	<-snapDone
}
