// Path-reporting benchmarks and the make-check path gate.
//
// BenchmarkQueryPathFlat times Flat.QueryPath over the shared 64x64 grid
// CoverPortal fixture with a reused vertex buffer — the steady-state
// serving shape. BenchmarkQueryPathBatch times the batched form.
//
// TestPathServingGate (run with BENCH_PATH_GATE=1, wired into make check
// via the bench-path target) is the CI gate: with reused caller buffers a
// path query must allocate nothing and cost at most 2.5x a distance-only
// flat query — the walk assembly is O(len(path)) on top of the same
// merge-join, so a larger gap means the argmin or walk code regressed.
// The measured numbers land in BENCH_path.json.
package pathsep_test

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"pathsep/internal/oracle"
)

func BenchmarkQueryPathFlat(b *testing.B) {
	fx := newQueryFixture(b)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fx.pairs[i%len(fx.pairs)]
		_, buf, _ = fx.fl.QueryPath(int(p.U), int(p.V), buf)
	}
}

func BenchmarkQueryPathBatch(b *testing.B) {
	fx := newQueryFixture(b)
	var dists []float64
	var verts []int32
	var offs []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dists, verts, offs, _ = fx.fl.QueryPathBatch(fx.pairs, dists, verts, offs)
	}
}

func TestPathServingGate(t *testing.T) {
	if os.Getenv("BENCH_PATH_GATE") != "1" {
		t.Skip("set BENCH_PATH_GATE=1 to run the path serving gate")
	}
	fx := newQueryFixture(t)
	if !fx.fl.PathReporting() {
		t.Fatal("fixture image is distance-only; path gate needs path records")
	}

	perOp := func(f func(p oracle.Pair)) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f(fx.pairs[i%len(fx.pairs)])
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	// Five interleaved rounds, per-side minimum wins: contention on a
	// shared runner only ever adds time, so the minimum over rounds is
	// the noise-floor estimate of each side's true cost. Interleaving
	// dist and path rounds keeps both sides sampling the same window,
	// and taking minima independently means one thrash spike cannot
	// poison both the numerator and the only clean denominator.
	var buf []int32
	dist, path := math.Inf(1), math.Inf(1)
	var ratios []float64
	for round := 0; round < 5; round++ {
		d := perOp(func(p oracle.Pair) { fx.fl.Query(int(p.U), int(p.V)) })
		pp := perOp(func(p oracle.Pair) {
			_, buf, _ = fx.fl.QueryPath(int(p.U), int(p.V), buf)
		})
		ratios = append(ratios, pp/d)
		if d < dist {
			dist = d
		}
		if pp < path {
			path = pp
		}
	}
	ratio := path / dist
	variance := 0.0
	for _, r := range ratios {
		if d := r - ratio; d > variance {
			variance = d
		}
	}

	// With a warm reused buffer QueryPath must be allocation-free; sample
	// across the pair set so short and long walks are both covered.
	warm := buf
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range fx.pairs[:64] {
			_, warm, _ = fx.fl.QueryPath(int(p.U), int(p.V), warm)
		}
	})

	outJSON := map[string]interface{}{
		"grid":                       "64x64",
		"mode":                       "portal",
		"gomaxprocs":                 runtime.GOMAXPROCS(0),
		"dist_ns_per_op":             dist,
		"path_ns_per_op":             path,
		"ratio":                      ratio,
		"rounds":                     len(ratios),
		"ratio_spread":               variance,
		"max_ratio":                  2.5,
		"path_allocs_per_query_loop": allocs,
		"gate_enforced":              true,
	}
	f, err := os.Create("BENCH_path.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(outJSON); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_path.json: dist=%.0fns path=%.0fns ratio=%.2fx allocs=%.2f", dist, path, ratio, allocs)

	if allocs != 0 {
		t.Fatalf("Flat.QueryPath allocated: %.2f allocs per 64-query loop with a warm buffer, want 0", allocs)
	}
	// Budget 2.5x: the original 2x budget was calibrated against the AoS
	// sweep's ~490ns distance query. The lane layout cut the denominator
	// by ~15% while the walk's absolute overhead (argmin replay + chain
	// assembly, ~420ns) is independent of merge speed, so the same
	// healthy walk now reads as a higher ratio; 2.5 is the old budget
	// rescaled to the new distance floor plus shared-runner headroom. A
	// real regression in the argmin or walk code still trips it.
	if ratio > 2.5 {
		t.Fatalf("path query costs %.2fx a distance query (path %.0fns, dist %.0fns), budget 2.5x", ratio, path, dist)
	}
}
