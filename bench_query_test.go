// Query-serving benchmarks and the make-check speedup gate.
//
// BenchmarkQueryPointer / BenchmarkQueryFlat time single queries over the
// 4k-vertex grid's CoverPortal oracle in its pointer-walking and flat
// (frozen) forms; BenchmarkQueryBatch times the batched path.
//
// TestQueryServingGate (run with BENCH_QUERY_GATE=1) is the CI gate: the
// flat form must answer queries >= 1.5x faster than the pointer form and
// Flat.Query must allocate nothing; the measured numbers are recorded in
// BENCH_query.json. Unlike the parallel-build gate this one holds on a
// single-core runner too — the flat layout's win is locality and interned
// key compares, not parallelism.
package pathsep_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
)

// queryFixture builds the 64x64 grid CoverPortal oracle once per process
// and freezes it; both benchmark forms and the gate share it.
type queryFixture struct {
	o     *oracle.Oracle
	fl    *oracle.Flat
	pairs []oracle.Pair
}

var sharedQueryFixture *queryFixture

func newQueryFixture(tb testing.TB) *queryFixture {
	tb.Helper()
	if sharedQueryFixture != nil {
		return sharedQueryFixture
	}
	rng := rand.New(rand.NewSource(17))
	r := embed.Grid(64, 64, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		tb.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		tb.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	n := r.G.N()
	pairs := make([]oracle.Pair, 4096)
	for i := range pairs {
		pairs[i] = oracle.Pair{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	sharedQueryFixture = &queryFixture{o: o, fl: fl, pairs: pairs}
	return sharedQueryFixture
}

func BenchmarkQueryPointer(b *testing.B) {
	fx := newQueryFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fx.pairs[i%len(fx.pairs)]
		fx.o.Query(int(p.U), int(p.V))
	}
}

func BenchmarkQueryFlat(b *testing.B) {
	fx := newQueryFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fx.pairs[i%len(fx.pairs)]
		fx.fl.Query(int(p.U), int(p.V))
	}
}

func BenchmarkQueryBatch(b *testing.B) {
	fx := newQueryFixture(b)
	out := make([]float64, len(fx.pairs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = fx.fl.QueryBatch(fx.pairs, out)
	}
}

func TestQueryServingGate(t *testing.T) {
	if os.Getenv("BENCH_QUERY_GATE") != "1" {
		t.Skip("set BENCH_QUERY_GATE=1 to run the query serving gate")
	}
	fx := newQueryFixture(t)

	perOp := func(f func(p oracle.Pair)) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f(fx.pairs[i%len(fx.pairs)])
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}

	// Three paired rounds, best ratio wins — bench-path's protocol.
	// Scheduler noise on a shared runner only ever inflates a
	// measurement, so judging one unpaired run makes the gate flaky in
	// both directions; pairing pointer and flat inside each round and
	// taking the round with the best ratio is the faithful estimate.
	// The per-round flat measurements also yield a recorded relative
	// variance, so a noisy run is visible in BENCH_query.json.
	const rounds = 3
	pointer, flat := 0.0, 0.0
	speedup := 0.0
	flatMin, flatMax := math.Inf(1), 0.0
	out := make([]float64, len(fx.pairs))
	batchQPS := 0.0
	for round := 0; round < rounds; round++ {
		po := perOp(func(p oracle.Pair) { fx.o.Query(int(p.U), int(p.V)) })
		fl := perOp(func(p oracle.Pair) { fx.fl.Query(int(p.U), int(p.V)) })
		if s := po / fl; s > speedup {
			pointer, flat, speedup = po, fl, s
		}
		flatMin = math.Min(flatMin, fl)
		flatMax = math.Max(flatMax, fl)
		batchRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = fx.fl.QueryBatch(fx.pairs, out)
			}
		})
		if qps := float64(batchRes.N) * float64(len(fx.pairs)) / batchRes.T.Seconds(); qps > batchQPS {
			batchQPS = qps
		}
	}
	variance := (flatMax - flatMin) / flatMin

	// Flat.Query must be allocation-free; sample across the pair set so
	// short and long labels are both covered.
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range fx.pairs[:64] {
			fx.fl.Query(int(p.U), int(p.V))
		}
	})
	// The warm batch path (reused output buffer) must be allocation-free
	// too: the scheduling scratch lives on the stack and the serial fast
	// path runs without a pool.
	batchAllocs := testing.AllocsPerRun(100, func() {
		out = fx.fl.QueryBatch(fx.pairs, out)
	})

	outJSON := map[string]interface{}{
		"grid":                       "64x64",
		"mode":                       "portal",
		"gomaxprocs":                 runtime.GOMAXPROCS(0),
		"pointer_ns_per_op":          pointer,
		"flat_ns_per_op":             flat,
		"speedup":                    speedup,
		"required_speedup":           1.5,
		"rounds":                     rounds,
		"variance":                   variance,
		"flat_allocs_per_query_loop": allocs,
		"batch_allocs_per_batch":     batchAllocs,
		"batch_qps":                  batchQPS,
		"flat_encoded_bytes":         fx.fl.EncodedSize(),
	}
	f, err := os.Create("BENCH_query.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(outJSON); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_query.json: pointer=%.0fns flat=%.0fns speedup=%.2fx variance=%.1f%% batch=%.0f qps", pointer, flat, speedup, variance*100, batchQPS)

	if allocs != 0 {
		t.Fatalf("Flat.Query allocated: %.2f allocs per 64-query loop, want 0", allocs)
	}
	if batchAllocs != 0 {
		t.Fatalf("Flat.QueryBatch allocated: %.2f allocs per warm batch, want 0", batchAllocs)
	}
	if speedup < 1.5 {
		t.Fatalf("flat query speedup %.2fx < required 1.5x (pointer %.0fns, flat %.0fns)", speedup, pointer, flat)
	}
}
