// Command pathsep-lint is the repo's custom static-analysis suite (see
// internal/analyzers): the go/analysis passes that enforce pathsep's
// correctness invariants, from nil-safe observability to the determinism
// trio (maporder, slotwrite, sortcmp).
//
// It is a standard unitchecker binary, so it runs in two ways:
//
//	go vet -vettool=$(pwd)/bin/pathsep-lint ./...   # as a vettool
//	bin/pathsep-lint ./...                          # standalone
//
// Standalone invocations re-exec `go vet -vettool=<self>` with the given
// package patterns, so the go command performs package loading, caching and
// dependency export-data plumbing in both modes. `make lint` builds the
// cached binary under bin/ and runs it over ./....
//
// With -json as the first argument, standalone mode emits one JSON
// diagnostic per line on stdout — {"file","line","col","analyzer",
// "message"} — instead of go vet's grouped text, and exits 1 when there
// is at least one finding. Under GITHUB_ACTIONS=true it also prints
// ::error workflow annotations, which is how CI renders findings inline
// on pull requests. -out=FILE additionally writes the NDJSON stream to
// FILE (created even when there are no findings), which is how CI
// captures the findings artifact without annotation lines mixed in.
//
// With -stats as the first argument, standalone mode prints a
// per-analyzer table instead: finding counts from the same vet run,
// plus suppression counts — the exception-granting directive comments
// (//pathsep:detached, //pathsep:lease-bypass, the writes=views grant)
// found in non-test library sources, attributed to the analyzer each
// one silences. The table makes directive creep visible: a rising
// suppression count with flat findings means exceptions are doing the
// analyzer's job.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"pathsep/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	if vettoolInvocation(args) {
		unitchecker.Main(analyzers.All()...)
		return
	}
	jsonMode := len(args) > 0 && args[0] == "-json"
	if jsonMode {
		args = args[1:]
	}
	statsMode := len(args) > 0 && args[0] == "-stats"
	if statsMode {
		args = args[1:]
	}
	outPath := ""
	if jsonMode && len(args) > 0 && strings.HasPrefix(args[0], "-out=") {
		outPath = strings.TrimPrefix(args[0], "-out=")
		args = args[1:]
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pathsep-lint [-json [-out=FILE] | -stats] <package patterns>  (e.g. pathsep-lint ./...)")
		os.Exit(2)
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathsep-lint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	if jsonMode {
		os.Exit(runJSON(self, args, outPath))
	}
	if statsMode {
		os.Exit(runStats(self, args))
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pathsep-lint: %v\n", err)
		os.Exit(1)
	}
}

// vettoolInvocation reports whether the go command is driving us as a
// vettool: it probes with -V=full and -flags, then invokes with a single
// *.cfg argument per package.
func vettoolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "-flags" || strings.HasPrefix(a, "-V") {
			return true
		}
	}
	return false
}

// finding is one NDJSON output record.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// collect re-execs `go vet -vettool=<self> -json` and reflows the
// per-package JSON blocks it writes to stderr into a sorted finding
// slice. A non-zero returned code means vet failed for a reason other
// than findings (build error, bad pattern); its stderr has already been
// relayed.
func collect(self string, patterns []string) ([]finding, int) {
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self, "-json"}, patterns...)...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	// go vet -json interleaves "# <package>" comment lines with one JSON
	// object per package; strip the comments and decode the object stream.
	var stream bytes.Buffer
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		stream.WriteString(line)
		stream.WriteByte('\n')
	}
	var findings []finding
	dec := json.NewDecoder(bytes.NewReader(stream.Bytes()))
	for {
		var pkgs map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&pkgs); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			// Not a diagnostics stream: a build or vet failure. Relay it
			// verbatim so the cause is visible.
			os.Stderr.Write(stderr.Bytes())
			var ee *exec.ExitError
			if errors.As(runErr, &ee) {
				return nil, ee.ExitCode()
			}
			return nil, 1
		}
		for _, byAnalyzer := range pkgs {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					findings = append(findings, finding{
						File: file, Line: line, Col: col,
						Analyzer: analyzer, Message: d.Message,
					})
				}
			}
		}
	}
	if len(findings) == 0 && runErr != nil {
		os.Stderr.Write(stderr.Bytes())
		var ee *exec.ExitError
		if errors.As(runErr, &ee) {
			return nil, ee.ExitCode()
		}
		return nil, 1
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, 0
}

// runJSON prints one NDJSON diagnostic per stdout line (mirrored to
// outPath when set — created even when empty, so the CI artifact always
// exists) and returns the exit code: 1 when any finding fired, the vet
// error code when vet itself failed, 0 otherwise.
func runJSON(self string, patterns []string, outPath string) int {
	findings, code := collect(self, patterns)
	if code != 0 {
		return code
	}
	sinks := []io.Writer{os.Stdout}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathsep-lint: %v\n", err)
			return 1
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	out := json.NewEncoder(io.MultiWriter(sinks...))
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	for _, f := range findings {
		if err := out.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "pathsep-lint: %v\n", err)
			return 1
		}
		if annotate {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=%s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// suppressionDirectives maps each exception-granting directive comment
// to the analyzer it silences. Opt-in directives (bare
// //pathsep:hotpath, //pathsep:lease on a type) configure an analyzer
// rather than suppress it and are deliberately not counted.
var suppressionDirectives = map[string]string{
	"//pathsep:detached":             "ctxdone",
	"//pathsep:lease-bypass":         "leasepair",
	"//pathsep:hotpath writes=views": "unsafeview",
}

// countSuppressions walks the non-test, non-vendored library sources
// under the current directory and tallies suppression directives per
// analyzer. Files are parsed so only actual comments count — a
// directive quoted in a string literal or shown as an indented example
// inside another comment (as the analyzers' own docs do) is not a
// suppression.
func countSuppressions() (map[string]int, error) {
	counts := map[string]int{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "vendor" || name == "testdata" || name == ".git" || name == "bin" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				for dir, analyzer := range suppressionDirectives {
					if text == dir || strings.HasPrefix(text, dir+" ") {
						counts[analyzer]++
					}
				}
			}
		}
		return nil
	})
	return counts, err
}

// runStats prints a per-analyzer table of finding and suppression
// counts over the given patterns. Exit code matches runJSON: findings
// fail the run, a clean tree (suppressions or not) passes.
func runStats(self string, patterns []string) int {
	findings, code := collect(self, patterns)
	if code != 0 {
		return code
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	suppr, err := countSuppressions()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathsep-lint: counting suppressions: %v\n", err)
		return 1
	}
	fmt.Printf("%-14s %9s %13s\n", "analyzer", "findings", "suppressions")
	totalF, totalS := 0, 0
	for _, a := range analyzers.All() {
		fmt.Printf("%-14s %9d %13d\n", a.Name, byAnalyzer[a.Name], suppr[a.Name])
		totalF += byAnalyzer[a.Name]
		totalS += suppr[a.Name]
	}
	fmt.Printf("%-14s %9d %13d\n", "total", totalF, totalS)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// splitPosn splits a "file.go:line:col" position, tolerating a missing
// column or line.
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	for _, p := range []*int{&col, &line} {
		i := strings.LastIndexByte(file, ':')
		if i < 0 {
			break
		}
		n, err := strconv.Atoi(file[i+1:])
		if err != nil {
			break
		}
		*p = n
		file = file[:i]
	}
	if line == 0 && col != 0 {
		line, col = col, 0 // only one numeric suffix: it was the line
	}
	return file, line, col
}
