// Command pathsep-lint is the repo's custom static-analysis suite (see
// internal/analyzers): five go/analysis passes that enforce pathsep's
// correctness invariants.
//
// It is a standard unitchecker binary, so it runs in two ways:
//
//	go vet -vettool=$(pwd)/bin/pathsep-lint ./...   # as a vettool
//	bin/pathsep-lint ./...                          # standalone
//
// Standalone invocations re-exec `go vet -vettool=<self>` with the given
// package patterns, so the go command performs package loading, caching and
// dependency export-data plumbing in both modes. `make lint` builds the
// cached binary under bin/ and runs it over ./....
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"pathsep/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	if vettoolInvocation(args) {
		unitchecker.Main(analyzers.All()...)
		return
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pathsep-lint <package patterns>  (e.g. pathsep-lint ./...)")
		os.Exit(2)
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathsep-lint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pathsep-lint: %v\n", err)
		os.Exit(1)
	}
}

// vettoolInvocation reports whether the go command is driving us as a
// vettool: it probes with -V=full and -flags, then invokes with a single
// *.cfg argument per package.
func vettoolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "-flags" || strings.HasPrefix(a, "-V") {
			return true
		}
	}
	return false
}
