// Command oracle builds the Theorem 2 distance oracle over a graph read
// from stdin (or -in), runs random queries, and reports stretch, label
// sizes and query latency.
//
// Usage:
//
//	gengraph -family ktree -n 400 | oracle -eps 0.2 -mode exact -queries 2000
//
// With -metrics out.json it writes a JSON snapshot of the observability
// registry (decomposition level timings, Dijkstra relaxation counts,
// query latency histogram); with -pprof addr it serves net/http/pprof
// and /debug/vars while running.
//
// -flat freezes the oracle into its flat serving form (oracle.Flat) and
// runs the query and audit phases through it; -serve-bench 2s measures
// serving throughput (single-thread Query and batched QueryBatch QPS,
// reported to the oracle.batch_qps gauge when -metrics is set).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
	"pathsep/internal/shortest"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	eps := flag.Float64("eps", 0.25, "epsilon of the (1+eps) approximation")
	mode := flag.String("mode", "exact", "exact|portal")
	queries := flag.Int("queries", 1000, "random queries to run")
	audit := flag.Int("audit", 200, "queries to audit against Dijkstra")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "construction worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flat := flag.Bool("flat", false, "freeze the oracle into its flat serving form and query through it")
	serveBench := flag.Duration("serve-bench", 0, "run a query-throughput benchmark (single-thread and batched) for this long; implies -flat")
	batch := flag.Int("batch", 1024, "batch size for -serve-bench QueryBatch rounds")
	metricsOut := flag.String("metrics", "", "write a metrics JSON snapshot to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.Parse()

	if !(*eps > 0) || math.IsInf(*eps, 1) {
		fmt.Fprintf(os.Stderr, "oracle: -eps must be a positive finite number, got %v\n", *eps)
		flag.Usage()
		os.Exit(2)
	}

	var m oracle.Mode
	switch *mode {
	case "exact":
		m = oracle.CoverExact
	case "portal":
		m = oracle.CoverPortal
	default:
		fmt.Fprintf(os.Stderr, "oracle: unknown -mode %q (want exact|portal)\n", *mode)
		flag.Usage()
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = obs.New()
	}
	if *pprofAddr != "" {
		srv, _, err := obs.Serve(*pprofAddr, reg)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("debug: serving /metrics, /debug/vars and /debug/pprof on %s\n", srv.Addr)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		fail(err)
	}

	start := time.Now()
	dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Metrics: reg, Workers: *workers})
	if err != nil {
		fail(err)
	}
	decTime := time.Since(start)
	start = time.Now()
	o, err := oracle.Build(dec, oracle.Options{Epsilon: *eps, Mode: m, Metrics: reg, Workers: *workers})
	if err != nil {
		fail(err)
	}
	buildTime := time.Since(start)

	// The flat serving form: queries (and -serve-bench) run through it
	// when requested; answers are bit-identical to the pointer oracle.
	var fl *oracle.Flat
	query := o.Query
	if *flat || *serveBench > 0 {
		start = time.Now()
		var err error
		fl, err = o.Freeze()
		if err != nil {
			fail(err)
		}
		freezeTime := time.Since(start)
		fl.SetMetrics(reg)
		query = fl.Query
		fmt.Printf("flat: froze in %v  (%d keys, %d entries, %d portals, %d bytes)\n",
			freezeTime.Round(time.Millisecond), fl.NumKeys(), fl.NumEntries(), fl.NumPortals(), fl.EncodedSize())
	}

	rng := rand.New(rand.NewSource(*seed))
	start = time.Now()
	for i := 0; i < *queries; i++ {
		query(rng.Intn(g.N()), rng.Intn(g.N()))
	}
	qTime := time.Since(start) / time.Duration(max(1, *queries))

	worst, sum, count := 1.0, 0.0, 0
	for i := 0; i < *audit; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		d := shortest.Dijkstra(g, u).Dist[v]
		if math.IsInf(d, 1) || core.IsZeroDist(d) {
			continue
		}
		ratio := query(u, v) / d
		if ratio > worst {
			worst = ratio
		}
		sum += ratio
		count++
	}

	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("decompose: %v  (maxK=%d depth=%d)\n", decTime.Round(time.Millisecond), dec.MaxK, dec.Depth)
	fmt.Printf("build: %v  mode=%s eps=%g\n", buildTime.Round(time.Millisecond), *mode, *eps)
	fmt.Printf("space: %d portal entries, max label %d portals\n", o.SpacePortals(), o.MaxLabelPortals())
	fmt.Printf("query: %v/query over %d queries\n", qTime, *queries)
	if count > 0 {
		fmt.Printf("stretch: max=%.4f mean=%.4f over %d audited pairs (bound 1+eps=%.4f)\n",
			worst, sum/float64(count), count, 1+*eps)
	}
	if *serveBench > 0 {
		serveBenchmark(fl, g.N(), *serveBench, *batch, *workers, rng)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fail(err)
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}
}

// serveBenchmark measures serving throughput over the flat oracle: a
// single-thread Query loop and batched QueryBatch rounds (buffer reused
// across rounds), each for roughly half the given duration.
func serveBenchmark(fl *oracle.Flat, n int, d time.Duration, batch, workers int, rng *rand.Rand) {
	if batch < 1 {
		batch = 1
	}
	half := d / 2

	single := 0
	deadline := time.Now().Add(half)
	startSingle := time.Now()
	for time.Now().Before(deadline) {
		for i := 0; i < 256; i++ {
			fl.Query(rng.Intn(n), rng.Intn(n))
		}
		single += 256
	}
	singleQPS := float64(single) / time.Since(startSingle).Seconds()

	pairs := make([]oracle.Pair, batch)
	out := make([]float64, batch)
	batched := 0
	deadline = time.Now().Add(half)
	startBatch := time.Now()
	for time.Now().Before(deadline) {
		for i := range pairs {
			pairs[i] = oracle.Pair{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		out = fl.QueryBatchWorkers(pairs, out, workers)
		batched += len(pairs)
	}
	batchQPS := float64(batched) / time.Since(startBatch).Seconds()

	fmt.Printf("serve-bench: single-thread %.0f qps, batched %.0f qps (batch=%d workers=%d, %.1fx)\n",
		singleQPS, batchQPS, batch, workers, batchQPS/singleQPS)
}

func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
	os.Exit(1)
}
