// Command gengraph writes synthetic graphs from the library's generators
// as text edge lists on stdout.
//
// Usage:
//
//	gengraph -family grid -n 1024 [-k 3] [-seed 1] [-wmin 1 -wmax 1]
//
// Families: grid, apollonian, outerplanar, tree, ktree, mesh3d,
// meshuniversal, bipartite, gnm, hypercube, sparsehard.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/hardness"
)

func main() {
	family := flag.String("family", "grid", "graph family")
	n := flag.Int("n", 256, "target vertex count")
	k := flag.Int("k", 3, "width/side parameter where applicable")
	seed := flag.Int64("seed", 1, "random seed")
	wmin := flag.Float64("wmin", 1, "min edge weight")
	wmax := flag.Float64("wmax", 1, "max edge weight (== wmin for unit)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var w graph.WeightFn
	if *wmax <= *wmin {
		w = func(_, _ int, _ *rand.Rand) float64 { return *wmin }
	} else {
		w = graph.UniformWeights(*wmin, *wmax)
	}

	var g *graph.Graph
	switch *family {
	case "grid":
		side := int(math.Sqrt(float64(*n)))
		g = embed.Grid(side, side, w, rng).G
	case "apollonian":
		g = embed.Apollonian(*n, w, rng).G
	case "outerplanar":
		g = embed.Outerplanar(*n, *n/2, w, rng).G
	case "tree":
		g = graph.RandomTree(*n, w, rng)
	case "ktree":
		g = graph.KTree(*n, *k, w, rng)
	case "mesh3d":
		side := int(math.Cbrt(float64(*n)))
		g = graph.Mesh3D(side, side, side, w, rng)
	case "meshuniversal":
		side := int(math.Sqrt(float64(*n - 1)))
		g = graph.MeshUniversal(side)
	case "bipartite":
		g = graph.CompleteBipartite(*k, *n-*k, w, rng)
	case "gnm":
		g = graph.ConnectedGNM(*n, 3**n, w, rng)
	case "hypercube":
		d := 0
		for 1<<(d+1) <= *n {
			d++
		}
		g = graph.Hypercube(d, w, rng)
	case "sparsehard":
		g = hardness.SparseHard(*n)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown family %q\n", *family)
		os.Exit(1)
	}
	if err := g.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
