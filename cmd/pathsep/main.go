// Command pathsep reads a graph (text edge list on stdin or -in file),
// computes its k-path separator decomposition, and prints statistics:
// per-level separator sizes, phases, and the Definition 1 certificate.
//
// Usage:
//
//	gengraph -family ktree -n 500 | pathsep -strategy auto -certify
//
// -trace prints the decomposition recursion as an indented tree with
// per-node timings; -metrics out.json dumps the observability registry.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	strategy := flag.String("strategy", "auto", "auto|tree|bag|greedy")
	certify := flag.Bool("certify", false, "re-verify every separator against Definition 1")
	traceFlag := flag.Bool("trace", false, "print the decomposition recursion as an indented tree")
	workers := flag.Int("workers", 0, "construction worker pool size (0 = GOMAXPROCS, 1 = serial)")
	metricsOut := flag.String("metrics", "", "write a metrics JSON snapshot to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		fail(err)
	}

	var strat core.Strategy
	switch *strategy {
	case "auto":
		strat = core.Auto{}
	case "tree":
		strat = core.TreeCentroid{}
	case "bag":
		strat = core.CenterBag{}
	case "greedy":
		strat = core.Greedy{}
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = obs.New()
	}
	if *pprofAddr != "" {
		srv, _, err := obs.Serve(*pprofAddr, reg)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("debug: serving /metrics, /debug/vars and /debug/pprof on %s\n", srv.Addr)
	}
	var trace *obs.Trace
	if *traceFlag {
		trace = obs.NewTrace()
	}

	start := time.Now()
	dec, err := core.Decompose(g, core.Options{Strategy: strat, Certify: *certify, Metrics: reg, Trace: trace, Workers: *workers})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("decomposition: nodes=%d depth=%d maxK=%d totalPaths=%d time=%v\n",
		len(dec.Nodes), dec.Depth, dec.MaxK, dec.TotalPaths, elapsed.Round(time.Millisecond))
	// Per-depth k histogram.
	type stat struct{ nodes, maxK, maxPhases int }
	byDepth := map[int]*stat{}
	for _, nd := range dec.Nodes {
		s := byDepth[nd.Depth]
		if s == nil {
			s = &stat{}
			byDepth[nd.Depth] = s
		}
		s.nodes++
		if nd.Sep != nil {
			if k := nd.Sep.NumPaths(); k > s.maxK {
				s.maxK = k
			}
			if p := nd.Sep.NumPhases(); p > s.maxPhases {
				s.maxPhases = p
			}
		}
	}
	fmt.Println("depth  nodes  maxK  maxPhases")
	for d := 0; d <= dec.Depth; d++ {
		if s := byDepth[d]; s != nil {
			fmt.Printf("%5d  %5d  %4d  %9d\n", d, s.nodes, s.maxK, s.maxPhases)
		}
	}
	if *certify {
		fmt.Println("certificate: every separator verified against Definition 1")
	}
	if trace != nil {
		fmt.Println("decomposition trace:")
		if err := trace.WriteIndented(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pathsep: %v\n", err)
	os.Exit(1)
}
