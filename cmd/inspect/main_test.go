package main

import (
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
)

// buildImage freezes a small grid oracle and returns its v2 encoding.
func buildImage(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	r := embed.Grid(8, 8, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.5, Mode: oracle.CoverPortal})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return fl.Encode()
}

// toV1 rewrites a v2 encoding into the equivalent distance-only v1
// image: drop the path-vertex header field (8 bytes) and the path
// sections; all residues mod 8 are preserved, so the result decodes.
func toV1(t *testing.T, enc []byte) []byte {
	t.Helper()
	if enc[1] != 2 {
		t.Fatalf("expected a v2 image, got version %d", enc[1])
	}
	le := binary.LittleEndian
	n := int(le.Uint64(enc[8:]))
	numKeys := int(le.Uint64(enc[32:]))
	numEntries := int(le.Uint64(enc[40:]))
	numPortals := int(le.Uint64(enc[48:]))
	end := 64 + 8*numKeys + 4*(n+1) + 4*numEntries + 4*(numEntries+1)
	portalsEnd := (end+7)&^7 + 16*numPortals
	v1 := make([]byte, 0, portalsEnd-8)
	v1 = append(v1, enc[:56]...)
	v1 = append(v1, enc[64:portalsEnd]...)
	v1[1] = 1
	return v1
}

// runInspect captures inspectImage's stdout for one image file.
func runInspect(t *testing.T, img []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "image.bin")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = wr
	inspectErr := inspectImage(path)
	os.Stdout = saved
	wr.Close()
	out, _ := io.ReadAll(rd)
	rd.Close()
	if inspectErr != nil {
		t.Fatalf("inspectImage: %v\n%s", inspectErr, out)
	}
	return string(out)
}

// TestInspectImagePathSections checks the path-section report: byte
// counts on a v2 image, `absent` markers (mirroring /query/path's 409
// semantics) on the synthesized v1 image of the same oracle.
func TestInspectImagePathSections(t *testing.T) {
	v2 := buildImage(t)

	out2 := runInspect(t, v2)
	if !strings.Contains(out2, "path sections (wire v2): hops=") {
		t.Errorf("v2 inspect missing path-section sizes:\n%s", out2)
	}
	if strings.Contains(out2, "absent") {
		t.Errorf("v2 inspect reports absent sections:\n%s", out2)
	}

	out1 := runInspect(t, toV1(t, v2))
	for _, sec := range []string{"hops=absent", "path_off=absent", "path_vert=absent", "path_pos=absent"} {
		if !strings.Contains(out1, sec) {
			t.Errorf("v1 inspect missing %q:\n%s", sec, out1)
		}
	}
	if !strings.Contains(out1, "409") {
		t.Errorf("v1 inspect does not mention the 409 semantics:\n%s", out1)
	}
}
