// Command inspect reads a graph, decomposes it, and renders the k-path
// separator decomposition tree as indented text: per node, the subgraph
// size, strategy, phases, and the separator paths themselves.
//
// Usage:
//
//	gengraph -family apollonian -n 60 | inspect -maxdepth 3
//	inspect -image oracle.img
//
// -mode pins the separator strategy (auto|tree|bag|planar|greedy; unknown
// values are rejected) and -workers bounds the construction pool. With
// -image the input is a flat oracle image instead of a graph, and the
// report covers the serving layout: sweep-lane pool sizes, alignment,
// and the per-entry portal-run length distribution that drives merge
// sweep cost.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	image := flag.String("image", "", "inspect a flat oracle image file instead of a graph")
	maxDepth := flag.Int("maxdepth", 4, "deepest level to print (-1 = all)")
	showPaths := flag.Bool("paths", true, "print the separator paths")
	mode := flag.String("mode", "auto", "decomposition strategy: auto|tree|bag|planar|greedy")
	workers := flag.Int("workers", 0, "construction worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *image != "" {
		if err := inspectImage(*image); err != nil {
			fail(err)
		}
		return
	}

	// Validate -mode up front, the same way cmd/oracle validates its mode:
	// an unknown value is a usage error, not a silent fallback to auto.
	var strat core.Strategy
	switch *mode {
	case "auto":
		strat = core.Auto{}
	case "tree":
		strat = core.TreeCentroid{}
	case "bag":
		strat = core.CenterBag{}
	case "planar":
		strat = core.Planar{}
	case "greedy":
		strat = core.Greedy{}
	default:
		fmt.Fprintf(os.Stderr, "inspect: unknown -mode %q (want auto|tree|bag|planar|greedy)\n", *mode)
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		fail(err)
	}
	dec, err := core.Decompose(g, core.Options{Strategy: strat, Workers: *workers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph n=%d m=%d | decomposition: %d nodes, depth %d, maxK %d\n\n",
		g.N(), g.M(), len(dec.Nodes), dec.Depth, dec.MaxK)

	var render func(id, depth int)
	render = func(id, depth int) {
		if *maxDepth >= 0 && depth > *maxDepth {
			return
		}
		nd := dec.Nodes[id]
		indent := strings.Repeat("  ", depth)
		fmt.Printf("%s[node %d] n=%d strategy=%s", indent, nd.ID, nd.Sub.G.N(), nd.StrategyName)
		if nd.Sep != nil {
			fmt.Printf(" k=%d phases=%d", nd.Sep.NumPaths(), nd.Sep.NumPhases())
		}
		fmt.Println()
		if nd.Sep != nil && *showPaths {
			rootSep := nd.SepInRootIDs()
			for pi, ph := range rootSep.Phases {
				for qi, p := range ph.Paths {
					vs := p.Vertices
					preview := fmt.Sprint(vs)
					if len(vs) > 12 {
						preview = fmt.Sprintf("%v...(+%d)", vs[:12], len(vs)-12)
					}
					fmt.Printf("%s  P%d.%d (%d vertices): %s\n", indent, pi, qi, len(vs), preview)
				}
			}
		}
		for _, c := range nd.Children {
			render(c, depth+1)
		}
	}
	render(dec.Root().ID, 0)
	if *maxDepth >= 0 && dec.Depth > *maxDepth {
		fmt.Printf("\n(levels below %d elided; pass -maxdepth -1 for all)\n", *maxDepth)
	}
}

// inspectImage reports the serving layout of a flat oracle image: header
// metadata, pool sizes (wire portal pool vs the derived sweep lanes the
// queries actually walk), lane alignment, and the per-entry portal-run
// length distribution — short runs are one-candidate sweeps, long runs
// are where the suffix-min fold and the batch scheduler earn their keep.
func inspectImage(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fl, err := oracle.DecodeFlat(buf)
	if err != nil {
		return err
	}
	fmt.Printf("flat image %s: n=%d eps=%g mode=%s path_reporting=%v\n",
		path, fl.N(), fl.Eps(), fl.Mode(), fl.PathReporting())
	fmt.Printf("  keys=%d entries=%d portals=%d encoded=%d B\n",
		fl.NumKeys(), fl.NumEntries(), fl.NumPortals(), fl.EncodedSize())
	fmt.Printf("  portal pool %d B (wire AoS), sweep lanes %d B (derived), lane pool 64B-aligned: %v\n",
		16*fl.NumPortals(), fl.LaneBytes(), fl.LaneAligned())

	// Path sections: present on wire-v2 images, absent on distance-only
	// v1 images — printed as `absent`, matching the 409 Conflict that
	// /query/path answers for the same image.
	if fl.PathReporting() {
		fmt.Printf("  path sections (wire v2): hops=%d (%d B)  path_off=%d (%d B)  path_vert=%d (%d B)  path_pos=%d (%d B)\n",
			fl.NumHops(), 4*fl.NumHops(),
			fl.NumKeys()+1, 4*(fl.NumKeys()+1),
			fl.NumPathVerts(), 4*fl.NumPathVerts(),
			fl.NumPathVerts(), 8*fl.NumPathVerts())
	} else {
		fmt.Println("  path sections (wire v1): hops=absent  path_off=absent  path_vert=absent  path_pos=absent")
		fmt.Println("    distance-only image: /query/path on this image answers 409 Conflict")
	}

	runs := fl.PortalRunLengths(nil)
	if len(runs) == 0 {
		fmt.Println("  no portal runs")
		return nil
	}
	sort.Ints(runs)
	total := 0
	for _, r := range runs {
		total += r
	}
	fmt.Printf("  portal runs: %d, min=%d p50=%d p90=%d p99=%d max=%d mean=%.2f\n",
		len(runs), runs[0], runs[len(runs)/2], runs[len(runs)*9/10],
		runs[len(runs)*99/100], runs[len(runs)-1], float64(total)/float64(len(runs)))

	// Length histogram in power-of-two bins: count and share of all
	// portal slots (i.e. of sweep work), so a few huge runs are visible
	// even when short runs dominate the count.
	type bin struct{ count, slots int }
	bins := map[int]*bin{}
	for _, r := range runs {
		b := 1
		for b < r {
			b <<= 1
		}
		if bins[b] == nil {
			bins[b] = &bin{}
		}
		bins[b].count++
		bins[b].slots += r
	}
	bounds := make([]int, 0, len(bins))
	for b := range bins {
		bounds = append(bounds, b)
	}
	sort.Ints(bounds)
	fmt.Println("  run-length distribution (run ≤ bound: runs, share of portal slots):")
	for _, b := range bounds {
		fmt.Printf("    ≤%4d: %7d runs  %5.1f%% of slots\n",
			b, bins[b].count, 100*float64(bins[b].slots)/float64(total))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inspect: %v\n", err)
	os.Exit(1)
}
