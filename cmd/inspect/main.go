// Command inspect reads a graph, decomposes it, and renders the k-path
// separator decomposition tree as indented text: per node, the subgraph
// size, strategy, phases, and the separator paths themselves.
//
// Usage:
//
//	gengraph -family apollonian -n 60 | inspect -maxdepth 3
//
// -mode pins the separator strategy (auto|tree|bag|planar|greedy; unknown
// values are rejected) and -workers bounds the construction pool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pathsep/internal/core"
	"pathsep/internal/graph"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	maxDepth := flag.Int("maxdepth", 4, "deepest level to print (-1 = all)")
	showPaths := flag.Bool("paths", true, "print the separator paths")
	mode := flag.String("mode", "auto", "decomposition strategy: auto|tree|bag|planar|greedy")
	workers := flag.Int("workers", 0, "construction worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	// Validate -mode up front, the same way cmd/oracle validates its mode:
	// an unknown value is a usage error, not a silent fallback to auto.
	var strat core.Strategy
	switch *mode {
	case "auto":
		strat = core.Auto{}
	case "tree":
		strat = core.TreeCentroid{}
	case "bag":
		strat = core.CenterBag{}
	case "planar":
		strat = core.Planar{}
	case "greedy":
		strat = core.Greedy{}
	default:
		fmt.Fprintf(os.Stderr, "inspect: unknown -mode %q (want auto|tree|bag|planar|greedy)\n", *mode)
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		fail(err)
	}
	dec, err := core.Decompose(g, core.Options{Strategy: strat, Workers: *workers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph n=%d m=%d | decomposition: %d nodes, depth %d, maxK %d\n\n",
		g.N(), g.M(), len(dec.Nodes), dec.Depth, dec.MaxK)

	var render func(id, depth int)
	render = func(id, depth int) {
		if *maxDepth >= 0 && depth > *maxDepth {
			return
		}
		nd := dec.Nodes[id]
		indent := strings.Repeat("  ", depth)
		fmt.Printf("%s[node %d] n=%d strategy=%s", indent, nd.ID, nd.Sub.G.N(), nd.StrategyName)
		if nd.Sep != nil {
			fmt.Printf(" k=%d phases=%d", nd.Sep.NumPaths(), nd.Sep.NumPhases())
		}
		fmt.Println()
		if nd.Sep != nil && *showPaths {
			rootSep := nd.SepInRootIDs()
			for pi, ph := range rootSep.Phases {
				for qi, p := range ph.Paths {
					vs := p.Vertices
					preview := fmt.Sprint(vs)
					if len(vs) > 12 {
						preview = fmt.Sprintf("%v...(+%d)", vs[:12], len(vs)-12)
					}
					fmt.Printf("%s  P%d.%d (%d vertices): %s\n", indent, pi, qi, len(vs), preview)
				}
			}
		}
		for _, c := range nd.Children {
			render(c, depth+1)
		}
	}
	render(dec.Root().ID, 0)
	if *maxDepth >= 0 && dec.Depth > *maxDepth {
		fmt.Printf("\n(levels below %d elided; pass -maxdepth -1 for all)\n", *maxDepth)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "inspect: %v\n", err)
	os.Exit(1)
}
