// Command experiments regenerates every experiment table (E1–E10 of
// EXPERIMENTS.md): one table per measurable claim of the paper.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pathsep/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "run a single experiment (E1..E10)")
	workers := flag.Int("workers", 0, "construction worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cfg := exp.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	type entry struct {
		name string
		run  func(exp.Config) *exp.Table
	}
	all := []entry{
		{"E1", exp.E1Separator},
		{"E2", exp.E2Treewidth},
		{"E3", exp.E3StrongLB},
		{"E4", exp.E4Oracle},
		{"E5", exp.E5Labels},
		{"E6", exp.E6Routing},
		{"E7", exp.E7SmallWorld},
		{"E8", exp.E8Note2},
		{"E9", exp.E9Doubling},
		{"E10", exp.E10Sparse},
	}
	ran := 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		if err := e.run(cfg).Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", e.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
