// Command pathsepd serves a frozen flat distance oracle over HTTP: the
// oracle-as-a-service daemon of the pathsep library.
//
// Load a pre-built flat image, or build one from a graph edge list:
//
//	pathsepd -image oracle.flat -listen :9120
//	gengraph -family grid -n 4096 | pathsepd -graph - -eps 0.25 -mode portal
//
// Endpoints (see internal/serve):
//
//	GET  /query?u=&v=      one distance, JSON
//	GET  /query/path?u=&v= distance plus witness path, JSON (409 on
//	                       distance-only images)
//	POST /query/batch      JSON batch
//	POST /query/batchbin   binary batch (LE uint32 pairs -> LE float64)
//	GET  /admin/status     image metadata, serving stats, slow queries
//	POST /admin/reload     swap in a new flat image without downtime
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text format
//	     /debug/vars, /debug/pprof/*
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests finish (bounded by -drain), then the process exits.
// SIGHUP re-reads the -image file and swaps it in atomically; in-flight
// queries finish on the generation they started with.
//
// With -serve-bench the daemon instead self-loads: it binds an ephemeral
// port, fires the load generator at itself, writes QPS/p50/p99 to
// -bench-out (BENCH_serve.json by default) and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
	"pathsep/internal/serve"
)

func main() {
	listen := flag.String("listen", ":9120", "address to serve on")
	image := flag.String("image", "", "flat oracle image to load (from FlatOracle.Encode / -save-image)")
	graphIn := flag.String("graph", "", "build the oracle from this edge-list file instead (\"-\" = stdin)")
	eps := flag.Float64("eps", 0.25, "epsilon of the (1+eps) approximation (with -graph)")
	mode := flag.String("mode", "portal", "exact|portal (with -graph)")
	workers := flag.Int("workers", 0, "worker pool width for build and batch queries (0 = GOMAXPROCS)")
	saveImage := flag.String("save-image", "", "after building from -graph, also write the flat image here")
	slowN := flag.Int("slow", 16, "slow-query exemplars to retain for /admin/status (0 disables)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max pairs per batch request")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM")
	serveBench := flag.Duration("serve-bench", 0, "self-load for this long, write the results, and exit")
	benchConc := flag.Int("bench-conc", 4, "concurrent single-query clients for -serve-bench")
	benchBatch := flag.Int("bench-batch", 1024, "pairs per binary batch for -serve-bench")
	benchReloads := flag.Int("bench-reloads", 6, "image swaps to fire mid-load during -serve-bench (0 disables)")
	benchOut := flag.String("bench-out", "BENCH_serve.json", "where -serve-bench writes its measurements")
	seed := flag.Int64("seed", 1, "random seed for -serve-bench traffic")
	flag.Parse()

	if (*image == "") == (*graphIn == "") {
		fmt.Fprintln(os.Stderr, "pathsepd: exactly one of -image or -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if !(*eps > 0) || math.IsInf(*eps, 1) {
		fmt.Fprintf(os.Stderr, "pathsepd: -eps must be a positive finite number, got %v\n", *eps)
		os.Exit(2)
	}
	if *maxBatch <= 0 {
		fmt.Fprintf(os.Stderr, "pathsepd: -max-batch must be positive, got %d\n", *maxBatch)
		os.Exit(2)
	}
	if *image != "" {
		// Fail the bad path before building anything: a typo'd image path
		// should be a crisp usage error, not a late decode failure.
		if f, err := os.Open(*image); err != nil {
			fmt.Fprintf(os.Stderr, "pathsepd: -image: %v\n", err)
			os.Exit(2)
		} else {
			f.Close()
		}
	}

	fl, source, err := loadFlat(*image, *graphIn, *eps, *mode, *workers, *saveImage)
	if err != nil {
		fail(err)
	}
	paths := "distance-only"
	if fl.PathReporting() {
		paths = "paths"
	}
	fmt.Printf("pathsepd: image %s: n=%d eps=%g mode=%s %s (%d keys, %d entries, %d portals, %d bytes)\n",
		source, fl.N(), fl.Eps(), fl.Mode(), paths, fl.NumKeys(), fl.NumEntries(), fl.NumPortals(), fl.EncodedSize())

	var slow *obs.SlowQuerySampler
	if *slowN > 0 {
		slow = obs.NewSlowQuerySampler(*slowN)
	}
	srv, err := serve.New(serve.Config{
		Flat:     fl,
		Reg:      obs.New(),
		Slow:     slow,
		Workers:  *workers,
		MaxBatch: *maxBatch,
		Source:   source,
	})
	if err != nil {
		fail(err)
	}

	if *serveBench > 0 {
		runBench(srv, fl, *serveBench, *benchConc, *benchBatch, *benchReloads, *benchOut, *seed, *drain)
		return
	}

	addr, err := srv.Start(*listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("pathsepd: serving on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	// SIGHUP re-reads -image and swaps it in without dropping traffic.
	// Handled here in main (no extra goroutine): reloads are rare and the
	// daemon has nothing else to do but wait for signals.
wait:
	for {
		select {
		case <-ctx.Done():
			break wait
		case <-hup:
			if *image == "" {
				fmt.Fprintln(os.Stderr, "pathsepd: SIGHUP ignored: serving a -graph build, no image file to reload")
				continue
			}
			res, err := srv.ReloadFromFile(*image)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pathsepd: %v\n", err)
				continue
			}
			fmt.Printf("pathsepd: reloaded %s: generation %d (n=%d, %d bytes, load %s, drained=%v)\n",
				*image, res.Generation, res.N, res.Bytes, time.Duration(res.LoadNs), res.Drained)
		}
	}
	stop()
	fmt.Println("pathsepd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fail(fmt.Errorf("drain: %w", err))
	}
	fmt.Println("pathsepd: done")
}

// loadFlat produces the serving image: decoded from a file, or built from
// an edge list and frozen.
func loadFlat(image, graphIn string, eps float64, mode string, workers int, saveImage string) (*oracle.Flat, string, error) {
	if image != "" {
		buf, err := os.ReadFile(image)
		if err != nil {
			return nil, "", err
		}
		fl, err := oracle.DecodeFlat(buf)
		if err != nil {
			return nil, "", fmt.Errorf("decode %s: %w", image, err)
		}
		return fl, "file:" + image, nil
	}

	var m oracle.Mode
	switch mode {
	case "exact":
		m = oracle.CoverExact
	case "portal":
		m = oracle.CoverPortal
	default:
		return nil, "", fmt.Errorf("unknown -mode %q (want exact|portal)", mode)
	}
	var r io.Reader = os.Stdin
	source := "graph:stdin"
	if graphIn != "-" {
		f, err := os.Open(graphIn)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		r = f
		source = "graph:" + graphIn
	}
	g, err := graph.Read(r)
	if err != nil {
		return nil, "", err
	}
	dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Workers: workers})
	if err != nil {
		return nil, "", err
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: eps, Mode: m, Workers: workers})
	if err != nil {
		return nil, "", err
	}
	fl, err := o.Freeze()
	if err != nil {
		return nil, "", err
	}
	if saveImage != "" {
		if err := os.WriteFile(saveImage, fl.Encode(), 0o644); err != nil {
			return nil, "", fmt.Errorf("save image: %w", err)
		}
		fmt.Printf("pathsepd: wrote flat image to %s\n", saveImage)
	}
	return fl, source, nil
}

// runBench self-loads the server on an ephemeral port and writes the
// measurements as JSON. With reloads > 0 the load generator also swaps
// the image mid-run, so the output records reload latency under traffic.
func runBench(srv *serve.Server, fl *oracle.Flat, d time.Duration, conc, batch, reloads int, out string, seed int64, drain time.Duration) {
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	var img []byte
	if reloads > 0 {
		img = fl.Encode()
	}
	res, err := serve.LoadBenchReload("http://"+addr.String(), fl.N(), d, conc, batch, seed, img, reloads)
	if err != nil {
		fail(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	reloadP99 := int64(0)
	if res.ReloadP99Ns != nil {
		reloadP99 = *res.ReloadP99Ns
	}
	fmt.Printf("serve-bench: %d reqs %.0f qps p50=%dns p99=%dns; batch %.0f pairs/s (batch=%d); %d reloads p99=%dns -> %s\n",
		res.Requests, res.QPS, res.P50Ns, res.P99Ns, res.BatchQPS, batch, res.Reloads, reloadP99, out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pathsepd: %v\n", err)
	os.Exit(1)
}
