// Command smallworld runs the Section 4 small-world experiment on a
// grid: augments it with each long-range distribution and reports mean
// greedy-routing hops (Theorem 3's measured quantity).
//
// Usage:
//
//	smallworld -side 24 -trials 200 [-weighted]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/smallworld"
)

func main() {
	side := flag.Int("side", 24, "grid side length")
	trials := flag.Int("trials", 200, "greedy routing trials per model")
	seed := flag.Int64("seed", 1, "random seed")
	weighted := flag.Bool("weighted", false, "random edge weights in [1,8)")
	metricsOut := flag.String("metrics", "", "write a metrics JSON snapshot to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address")
	flag.Parse()

	var reg *obs.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = obs.New()
	}
	if *pprofAddr != "" {
		srv, _, err := obs.Serve(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallworld: pprof server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug: serving /metrics, /debug/vars and /debug/pprof on %s\n", srv.Addr)
	}

	rng := rand.New(rand.NewSource(*seed))
	w := graph.UnitWeights()
	if *weighted {
		w = graph.UniformWeights(1, 8)
	}
	grid := embed.Grid(*side, *side, w, rng)
	dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid, Metrics: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallworld: %v\n", err)
		os.Exit(1)
	}
	n := grid.G.N()
	fmt.Printf("grid %dx%d (n=%d), decomposition maxK=%d depth=%d\n", *side, *side, n, dec.MaxK, dec.Depth)
	fmt.Printf("reference: log2(n)^2 = %.1f\n", math.Pow(math.Log2(float64(n)), 2))
	fmt.Println("model               meanHops  maxHops  delivered")

	report := func(name string, a *smallworld.Augmented) {
		st := smallworld.ExperimentObserved(a, *trials, rng, nil, reg)
		fmt.Printf("%-18s  %8.1f  %7d  %d/%d\n", name, st.MeanHops, st.MaxHops, st.Delivered, st.Trials)
	}
	for _, model := range []smallworld.Model{
		smallworld.ModelPathSeparator,
		smallworld.ModelClosestSeparator,
		smallworld.ModelUniform,
		smallworld.ModelNone,
	} {
		a, err := smallworld.Augment(dec, model, rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallworld: %v\n", err)
			os.Exit(1)
		}
		report(model.String(), a)
	}
	report("kleinberg", smallworld.AugmentKleinbergGrid(grid.G, *side, *side, rng))

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallworld: %v\n", err)
			os.Exit(1)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "smallworld: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smallworld: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}
}
